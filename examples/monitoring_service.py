#!/usr/bin/env python
"""Heterogeneous service with priority hints + per-call tracing.

Section 4.1 motivates function-level hints with exactly this shape of
service: "it is common for a high priority service to have unimportant
functions, e.g., some functions that are called periodically like
heartbeats between server and client.  These functions ... can be
optimized with low priority and give way to other significant RPC
functions."

This example runs a monitoring/control service where:

* ``Query`` is the hot path (latency hints -> Direct-WriteIMM, busy poll);
* ``Heartbeat`` is periodic noise (``priority = low`` -> the resource-
  efficient path: event polling, no pinned core);
* ``BulkExport`` ships big snapshots (throughput + payload hints).

A :class:`repro.core.tracing.Tracer` shows what the engine actually did.

Run:  python examples/monitoring_service.py
"""

from repro.core.runtime import HatRpcServer, hatrpc_connect, service_plan_of
from repro.core.tracing import attach_tracer
from repro.idl import load_idl
from repro.sim.units import ms, us
from repro.testbed import Testbed

IDL = """
service Monitor {
    hint: concurrency = 8, perf_goal = latency;

    string Query(1: string metric),
    i64 Heartbeat(1: i64 seq) [
        hint: priority = low;
    ]
    binary BulkExport(1: i32 shard) [
        hint: perf_goal = throughput, payload_size = 64KB;
    ]
}
"""


class MonitorHandler:
    def __init__(self, node):
        self.node = node
        self.beats = 0
        self.snapshot = bytes(range(256)) * 256  # 64 KB

    def Query(self, metric):
        return f"{metric}=42.0"

    def Heartbeat(self, seq):
        self.beats += 1
        return seq

    def BulkExport(self, shard):
        yield self.node.compute(5 * us)
        return self.snapshot


def main():
    gen = load_idl(IDL, "monitor_gen")
    plan = service_plan_of(gen, "Monitor")
    print("channel plan (note Heartbeat demoted off the busy-poll path):")
    for fn, route in sorted(plan.routes.items()):
        ch = plan.channels[route.channel]
        print(f"  {fn:10s} -> {ch.protocol:16s} "
              f"server={ch.server_poll.value:5s}  [{route.choice.rationale}]")

    tb = Testbed(n_nodes=2)
    handler = MonitorHandler(tb.node(0))
    HatRpcServer(tb.node(0), gen, "Monitor", handler).start()
    box = {}

    def heartbeater(stub):
        for seq in range(20):
            yield from stub.Heartbeat(seq)
            yield tb.sim.timeout(1 * ms)

    def operator():
        stub = yield from hatrpc_connect(tb.node(1), tb.node(0), gen,
                                         "Monitor")
        box["tracer"] = attach_tracer(stub._hatrpc.engine)
        # a second logical client on its own connection for the heartbeats
        hb_stub = yield from hatrpc_connect(tb.node(1), tb.node(0), gen,
                                            "Monitor")
        tb.sim.process(heartbeater(hb_stub))
        for i in range(50):
            yield from stub.Query(f"cpu.{i % 4}")
            if i % 10 == 9:
                yield from stub.BulkExport(i // 10)
            yield tb.sim.timeout(200 * us)

    tb.sim.run(tb.sim.process(operator()))
    tb.sim.run()

    print(f"\nheartbeats served: {handler.beats}")
    print("\nper-function trace (operator connection):")
    for line in box["tracer"].summary_lines():
        print(" ", line)


if __name__ == "__main__":
    main()
