#!/usr/bin/env python
"""A distributed-file-system RPC tier: the paper's motivating scenario.

Section 3.3: "an RPC framework in a distributed file system needs to fetch
metadata from metadata servers with low latency and write to (or read from)
chunk servers with high throughput.  But for existing RPC frameworks, they
are not performant in this use case since they are not aware of the
heterogeneous functionality requirements."

This example builds exactly that service -- Stat/Lookup (tiny, latency
critical) next to ReadChunk/WriteChunk (bulk, throughput critical) -- and
measures it twice: over hint-less Thrift-over-RDMA (Hybrid-EagerRNDV, one
configuration for everything) and over HatRPC with per-function hints.

Run:  python examples/filestore.py
"""

from repro.core.engine import pinned_plan
from repro.core.runtime import HatRpcServer, hatrpc_connect
from repro.idl import load_idl
from repro.sim.units import KiB, us
from repro.testbed import Testbed
from repro.verbs.cq import PollMode

CHUNK = 256 * KiB

IDL = f"""
service FileStore {{
    hint: concurrency = 8;

    // metadata plane: single-digit-microsecond lookups
    string Stat(1: string path) [
        hint: perf_goal = latency, payload_size = 256;
    ]
    string Lookup(1: string path) [
        hint: perf_goal = latency, payload_size = 256;
    ]
    // data plane: saturate the link
    binary ReadChunk(1: string path, 2: i64 offset) [
        hint: perf_goal = throughput, payload_size = {CHUNK // KiB}KB;
        s_hint: numa_binding = true;
    ]
    void WriteChunk(1: string path, 2: i64 offset, 3: binary data) [
        hint: perf_goal = throughput, payload_size = {CHUNK // KiB}KB;
        s_hint: numa_binding = true;
    ]
}}
"""


class FileStoreHandler:
    def __init__(self, node):
        self.node = node
        self.files = {}
        self.chunk = bytes(range(256)) * (CHUNK // 256)

    def Stat(self, path):
        return f"{{\"path\": \"{path}\", \"size\": {CHUNK}, \"replicas\": 3}}"

    def Lookup(self, path):
        return f"chunkserver-{hash(path) % 4}"

    def ReadChunk(self, path, offset):
        yield self.node.compute(2e-6)  # page-cache lookup
        return self.chunk

    def WriteChunk(self, path, offset, data):
        yield self.node.compute(len(data) / 10e9)  # buffer-cache copy
        self.files[(path, offset)] = len(data)


def run_workload(tb, gen, plan, tag):
    """8 clients: half metadata-heavy, half streaming chunks."""
    handler = FileStoreHandler(tb.node(0))
    server = HatRpcServer(tb.node(0), gen, "FileStore", handler,
                          base_service_id=4000 + hash(tag) % 100,
                          concurrency=8, plan=plan).start()
    meta_lat, chunk_bytes = [], [0]
    t_start = tb.sim.now

    def meta_client(i):
        fs = yield from hatrpc_connect(tb.node(1), tb.node(0), gen,
                                       "FileStore",
                                       base_service_id=server.base_service_id,
                                       concurrency=8, plan=plan)
        for k in range(40):
            t0 = tb.sim.now
            yield from fs.Stat(f"/data/file-{i}-{k}")
            yield from fs.Lookup(f"/data/file-{i}-{k}")
            if k >= 5:
                meta_lat.append((tb.sim.now - t0) / 2)

    def data_client(i):
        fs = yield from hatrpc_connect(tb.node(2), tb.node(0), gen,
                                       "FileStore",
                                       base_service_id=server.base_service_id,
                                       concurrency=8, plan=plan)
        for k in range(25):
            data = yield from fs.ReadChunk(f"/data/big-{i}", k * CHUNK)
            chunk_bytes[0] += len(data)
            yield from fs.WriteChunk(f"/data/big-{i}", k * CHUNK, data)
            chunk_bytes[0] += len(data)

    for i in range(4):
        tb.sim.process(meta_client(i))
        tb.sim.process(data_client(i))
    tb.sim.run()
    elapsed = tb.sim.now - t_start
    mean_meta = sum(meta_lat) / len(meta_lat)
    gbps = chunk_bytes[0] * 8 / elapsed / 1e9
    print(f"{tag:34s} metadata {mean_meta / us:7.2f} us   "
          f"data plane {gbps:6.2f} Gb/s")
    return mean_meta, gbps


def main():
    gen = load_idl(IDL, "filestore_gen")
    print("FileStore over a simulated 100 Gb/s cluster, 8 clients "
          "(4 metadata-heavy, 4 streaming)\n")
    baseline_plan = pinned_plan("FileStore",
                                gen.SERVICE_FUNCTIONS["FileStore"],
                                "hybrid_eager_rndv", PollMode.EVENT,
                                max_msg=CHUNK + 8 * KiB)
    base_meta, base_gbps = run_workload(Testbed(n_nodes=3), gen,
                                        baseline_plan,
                                        "hint-less Thrift-over-RDMA")
    hat_meta, hat_gbps = run_workload(Testbed(n_nodes=3), gen, None,
                                      "HatRPC (function-level hints)")
    print(f"\nHatRPC: metadata latency "
          f"{(base_meta - hat_meta) / base_meta * 100:.0f}% lower, "
          f"data-plane throughput x{hat_gbps / base_gbps:.2f} -- from one "
          "IDL file, no protocol code written.")


if __name__ == "__main__":
    main()
