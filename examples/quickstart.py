#!/usr/bin/env python
"""Quickstart: define a hinted service, generate code, call it over RDMA.

This walks the whole HatRPC pipeline on a two-node simulated cluster:

1. write a Thrift IDL with HatRPC hints (Figure 7 syntax);
2. compile it with the IDL compiler (lexer -> parser -> hint validation ->
   Python codegen);
3. start a HatRPC server and connect a client -- the hint-aware engine
   derives the channel plan (protocol + polling per function) from the
   generated hint map;
4. make calls and inspect what the hints decided.

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace trace.json --metrics

``--trace PATH`` installs the distributed-trace collector: every call gets
a trace whose server-side handler/backend spans are children of the client
call span (the context crosses the wire in the RPC framing).  The file is
Chrome ``trace_event`` JSON -- open it at https://ui.perfetto.dev, where
each simulated node is its own process track -- and one trace tree plus
the hint-attribution table are printed to stdout.  ``--sample-rate`` keeps
only that fraction of traces (faulted calls are always kept).
``--metrics`` installs a metrics registry and prints the snapshot;
``--metrics-out FILE`` additionally writes it in Prometheus text format
(render both later with ``scripts/obs_dump.py``).
``--tuner`` turns on closed-loop hint tuning: the plan provisions
alternate channels on both peers, a :class:`~repro.core.tuner.HintTuner`
watches live call stats, and the demo pushes a payload far beyond Post's
declared hint so you can watch the tuner retarget the route online.
"""

import argparse

from repro import obs
from repro.obs import trace as obstrace
from repro.core.runtime import HatRpcServer, hatrpc_connect, service_plan_of
from repro.core.tracing import Tracer, attach_tracer
from repro.idl import load_idl
from repro.sim.units import us
from repro.testbed import Testbed

IDL = """
// An echo service with heterogeneous functions (compare Figure 1).
service Echo {
    // Service-level hints set the tone for every function...
    hint: perf_goal = throughput, concurrency = 4;

    string Ping(1: string msg) [
        // ...and function-level hints override for the functions that
        // need something different: Ping is latency-critical.
        hint: perf_goal = latency, payload_size = 64;
    ]
    binary Post(1: binary payload) [
        hint: payload_size = 64KB;
    ]
    oneway void Deliver(1: i64 token),
}
"""


class EchoHandler:
    """The application code: plain methods (or coroutines for
    handlers that consume simulated time)."""

    def __init__(self):
        self.delivered = []

    def Ping(self, msg):
        return f"pong: {msg}"

    def Post(self, payload):
        return payload[::-1]

    def Deliver(self, token):
        self.delivered.append(token)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--trace", metavar="PATH", default=None,
                    help="write a Perfetto-loadable trace_event JSON file")
    ap.add_argument("--sample-rate", type=float, default=1.0,
                    help="head-sampling rate for --trace (default: 1.0; "
                         "faulted calls are always kept)")
    ap.add_argument("--metrics", action="store_true",
                    help="install a metrics registry and print its snapshot")
    ap.add_argument("--metrics-out", metavar="FILE", default=None,
                    help="also write the snapshot as Prometheus text "
                         "(implies --metrics)")
    ap.add_argument("--tuner", action="store_true",
                    help="enable closed-loop hint tuning and demo an "
                         "online retarget")
    args = ap.parse_args(argv)

    # Observability must be installed BEFORE the testbed/engine are built:
    # components capture their registry/collector once, at construction.
    registry = (obs.install() if args.metrics or args.metrics_out
                else None)
    collector = (obstrace.install(sample_rate=args.sample_rate)
                 if args.trace else None)

    # -- 1+2: compile the IDL into an importable module --------------------
    gen = load_idl(IDL, "echo_gen")
    print("generated symbols:",
          [s for s in dir(gen) if s.startswith("Echo")])

    # -- inspect the hint-derived channel plan ------------------------------
    plan = service_plan_of(gen, "Echo")
    for fn, route in sorted(plan.routes.items()):
        ch = plan.channels[route.channel]
        print(f"  {fn:8s} -> channel {ch.index}: {ch.protocol} "
              f"({ch.server_poll.value} polling)  [{route.choice.rationale}]")

    # -- 3: a simulated two-node cluster ------------------------------------
    tb = Testbed(n_nodes=2)
    handler = EchoHandler()
    HatRpcServer(tb.node(0), gen, "Echo", handler,
                 tunable=args.tuner).start()
    tuner = None
    if args.tuner:
        from repro.core.tuner import HintTuner, TunerConfig
        tuner = HintTuner(TunerConfig(epoch_samples=8, min_samples=4,
                                      confirm_epochs=2, min_dwell=0.0))

    # -- 4: client calls (coroutines under the simulator) -------------------
    out = {}
    tracer = Tracer() if args.trace else None

    def client():
        echo = yield from hatrpc_connect(tb.node(1), tb.node(0), gen, "Echo",
                                         tuner=tuner)
        if tracer is not None:
            attach_tracer(echo._hatrpc.engine, tracer)
        out["engine"] = echo._hatrpc.engine
        out["ping"] = yield from echo.Ping("hello HatRPC")
        t0 = tb.sim.now
        yield from echo.Ping("timed")
        out["ping_latency"] = tb.sim.now - t0
        blob = bytes(range(256)) * 64
        out["post"] = (yield from echo.Post(blob)) == blob[::-1]
        yield from echo.Deliver(42)
        if tuner is not None:
            # A payload far beyond Post's declared 64KB hint: the first
            # attempt fails oversize, the tuner urgently retargets onto an
            # alternate channel that fits, and the re-issued call works.
            big = bytes(range(256)) * 480            # 120 KiB
            try:
                yield from echo.Post(big)
            except Exception as exc:
                out["tuner_error"] = type(exc).__name__
            out["tuned_post"] = (yield from echo.Post(big)) == big[::-1]

    tb.sim.run(tb.sim.process(client()))
    tb.sim.run()

    print(f"\nPing reply:        {out['ping']!r}")
    print(f"Ping latency:      {out['ping_latency'] / us:.2f} us "
          "(simulated, over RDMA Direct-WriteIMM)")
    print(f"Post roundtrip ok: {out['post']}")
    print(f"Oneway delivered:  {handler.delivered}")
    if tuner is not None:
        print("\ntuner (closed-loop hints):")
        for line in tuner.summary_lines():
            print("  " + line)
        print(f"  oversize Post after retarget ok: {out['tuned_post']}")

    if tracer is not None:
        obs.export_chrome_trace(args.trace, tracer=tracer,
                                engine=out["engine"], collector=collector)
        n_spans = len(tracer.spans) + len(collector.spans)
        print(f"\nwrote {args.trace} ({n_spans} spans) -- "
              "open it at https://ui.perfetto.dev")
        traces = collector.traces()
        if traces:
            # Show one end-to-end tree: client call -> attempt -> stages,
            # with the server's handler/backend spans nested under the
            # attempt that carried their context over the wire.
            first = next(iter(traces.values()))
            print("\nfirst trace:")
            print(obstrace.format_trace(first))
            print("\nhint attribution (all traces):")
            print(obs.attribution_table(collector.spans))
        obstrace.uninstall()
    if registry is not None:
        print("\nmetrics snapshot:")
        print(obs.pretty(registry.snapshot()))
        if args.metrics_out:
            with open(args.metrics_out, "w") as f:
                f.write(obs.promtext_render(registry))
            print(f"wrote {args.metrics_out} (Prometheus text format)")
        obs.uninstall()


if __name__ == "__main__":
    main()
