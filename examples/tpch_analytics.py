#!/usr/bin/env python
"""Distributed TPC-H with HatRPC exchange operators (Section 5.5).

Builds the 10-node analytics cluster (1 coordinator + 9 workers holding
orderkey-striped orders/lineitem), runs a handful of representative TPC-H
queries under all three transports, and prints the Fig. 17-style
comparison plus one query's actual result rows.

Run:  python examples/tpch_analytics.py
"""

from repro.tpch.distributed import DistributedTpch
from repro.tpch.schema import int_to_date

QUERIES = [1, 3, 6, 9, 13, 19]
SF = 0.005


def main():
    print(f"TPC-H at SF={SF} on 1 coordinator + 9 workers "
          "(simulated 100 Gb/s cluster)\n")
    elapsed = {}
    results = {}
    for mode in ("ipoib", "hatrpc_service", "hatrpc_function"):
        ex = DistributedTpch(mode=mode, sf=SF, n_workers=9, seed=1).start()
        elapsed[mode] = {}
        for q in QUERIES:
            r = ex.run_query(q)
            elapsed[mode][q] = r.elapsed
            results[q] = r.result

    print(f"{'query':>6s} {'Thrift/IPoIB':>14s} {'HatRPC-Svc':>12s} "
          f"{'HatRPC-Fn':>12s} {'speedup':>8s}")
    for q in QUERIES:
        ipo = elapsed["ipoib"][q]
        fn = elapsed["hatrpc_function"][q]
        print(f"   Q{q:02d} {ipo * 1e3:11.3f}ms "
              f"{elapsed['hatrpc_service'][q] * 1e3:10.3f}ms "
              f"{fn * 1e3:10.3f}ms   x{ipo / fn:.2f}")
    tot = {m: sum(v.values()) for m, v in elapsed.items()}
    print(f"{'TOTAL':>6s} {tot['ipoib'] * 1e3:11.3f}ms "
          f"{tot['hatrpc_service'] * 1e3:10.3f}ms "
          f"{tot['hatrpc_function'] * 1e3:10.3f}ms   "
          f"x{tot['ipoib'] / tot['hatrpc_function']:.2f}")

    q3 = results[3]
    print("\nQ3 (shipping priority), top unshipped BUILDING orders:")
    for i in range(min(5, len(q3))):
        print(f"  order {int(q3['l_orderkey'][i]):>7d}  "
              f"revenue {q3['revenue'][i]:12.2f}  "
              f"placed {int_to_date(q3['o_orderdate'][i])}")


if __name__ == "__main__":
    main()
