#!/usr/bin/env python
"""HatKV under YCSB: the co-designed key-value store (Sections 4.4 / 5.4).

Runs the extended YCSB workload B (read-intensive, with MultiGET/MultiPUT
at batch 10) against HatKV and two of the paper's emulated comparators, on
a 5-node simulated cluster.  Also shows the backend co-design: LMDB's
reader table and commit strategy are tuned from the service hints.

Run:  python examples/kvstore_ycsb.py
"""

from repro.emul import SYSTEMS, start_system
from repro.lmdb import SyncMode
from repro.sim.units import us
from repro.testbed import Testbed
from repro.ycsb import OpType, WORKLOAD_B, run_ycsb

N_CLIENTS = 32


def main():
    print(f"YCSB workload B ({N_CLIENTS} clients, 4 client nodes, "
          "zipfian keys, 24B keys / 1000B values, batch 10)\n")
    results = {}
    for system in ("hatkv_function", "ar_grpc", "herd"):
        tb = Testbed(n_nodes=5)
        server, connect = start_system(tb, system, n_clients=N_CLIENTS)
        if system == "hatkv_function":
            env = server.backend.env
            print("HatKV backend co-design (from the concurrency / "
                  "perf_goal hints):")
            print(f"  max_readers = {env.max_readers} "
                  "(sized from the concurrency hint)")
            print(f"  sync mode   = {env.sync_mode.value}, group commit = "
                  f"{server.backend._group_commit}\n")
        results[system] = run_ycsb(server, connect, WORKLOAD_B, testbed=tb,
                                   n_clients=N_CLIENTS, ops_per_client=15,
                                   warmup_per_client=3)

    name = {k: SYSTEMS[k].name for k in results}
    hat = results["hatkv_function"].throughput_ops
    print(f"{'system':16s} {'throughput':>12s} {'GET':>10s} "
          f"{'MultiGET':>10s} {'PUT':>10s}")
    for system, r in results.items():
        def lat(op):
            s = r.latency(op)
            return f"{s.mean / us:8.1f}us" if s.samples else "     n/a"
        print(f"{name[system]:16s} {r.throughput_ops / 1e3:9.1f}kop "
              f"{lat(OpType.GET)} {lat(OpType.MULTI_GET)} {lat(OpType.PUT)}")
    print(f"\nHatKV vs HERD:    x{hat / results['herd'].throughput_ops:.2f} "
          "(HERD's chunked SEND responses collapse on 10KB MultiGETs)")
    print(f"HatKV vs AR-gRPC: x{hat / results['ar_grpc'].throughput_ops:.2f}")


if __name__ == "__main__":
    main()
