"""ATB benchmark tests: the Section 5.2-5.3 effects at reduced scale."""

import pytest

from repro.atb import LatencyBenchmark, MixBenchmark, ThroughputBenchmark
from repro.atb.idl import load_atb_module
from repro.sim.units import KiB, us


def test_atb_idl_compiles_with_hints():
    gen = load_atb_module(goal="latency", payload=4096, concurrency=8)
    hints = gen.SERVICE_HINTS["ATBench"]
    assert hints["service"]["shared"]["perf_goal"] == "latency"
    assert hints["service"]["shared"]["payload_size"] == 4096
    assert hints["functions"]["LatCall"]["shared"]["perf_goal"] == "latency"


def test_latency_benchmark_runs_all_modes():
    for mode in ("hatrpc", "hybrid_eager_rndv", "ipoib"):
        stats = LatencyBenchmark(mode=mode, payload=512, iters=6,
                                 warmup=2).run()
        assert stats.count == 6
        assert stats.mean > 0


def test_hatrpc_latency_beats_hybrid_baseline():
    """Fig. 11: 37-54% improvement over Hybrid-EagerRNDV for small sizes."""
    hat = LatencyBenchmark(mode="hatrpc", payload=512, iters=10).run()
    hyb = LatencyBenchmark(mode="hybrid_eager_rndv", payload=512,
                           iters=10).run()
    assert hat.mean < hyb.mean
    # The gap should be substantial (paper: >= 37% for <= 4KB).
    assert (hyb.mean - hat.mean) / hyb.mean > 0.10


def test_hatrpc_latency_matches_direct_writeimm():
    """Fig. 11: 'the difference between HatRPC and Direct-WriteIMM is
    within 3%' -- HatRPC selects that protocol and adds only routing."""
    hat = LatencyBenchmark(mode="hatrpc", payload=512, iters=10).run()
    dwi = LatencyBenchmark(mode="direct_writeimm", payload=512,
                           iters=10).run()
    assert hat.mean == pytest.approx(dwi.mean, rel=0.05)


def test_hatrpc_large_payload_latency():
    hat = LatencyBenchmark(mode="hatrpc", payload=128 * KiB, iters=8).run()
    hyb = LatencyBenchmark(mode="hybrid_eager_rndv", payload=128 * KiB,
                           iters=8).run()
    assert hat.mean < hyb.mean


def test_throughput_benchmark_runs():
    r = ThroughputBenchmark(mode="hatrpc", payload=512, n_clients=8,
                            iters=10, warmup=3).run()
    assert r.ops_per_sec > 0
    assert r.latency.count == 8 * 10


def test_hatrpc_throughput_beats_ipoib():
    hat = ThroughputBenchmark(mode="hatrpc", payload=512, n_clients=8,
                              iters=10, warmup=3).run()
    ipo = ThroughputBenchmark(mode="ipoib", payload=512, n_clients=8,
                              iters=10, warmup=3).run()
    assert hat.ops_per_sec > 2 * ipo.ops_per_sec


def test_mix_benchmark_isolates_functions():
    """Function-level hints put LatCall and TputCall on separate channels;
    the latency calls must stay fast despite throughput traffic."""
    r = MixBenchmark(mode="hatrpc", payload=512, n_clients=8, iters=12,
                     warmup=3).run()
    assert r.lat_stats.count > 0 and r.tput_stats.count > 0
    assert r.lat_stats.mean < 100 * us


def test_mix_hatrpc_not_worse_than_hybrid():
    hat = MixBenchmark(mode="hatrpc", payload=512, n_clients=8, iters=12,
                       warmup=3).run()
    hyb = MixBenchmark(mode="hybrid_eager_rndv", payload=512, n_clients=8,
                       iters=12, warmup=3).run()
    assert hat.lat_stats.mean < hyb.lat_stats.mean * 1.05


def test_mix_deterministic_schedule():
    a = MixBenchmark(mode="hatrpc", payload=512, n_clients=4, iters=8,
                     warmup=2, seed=7).run()
    b = MixBenchmark(mode="hatrpc", payload=512, n_clients=4, iters=8,
                     warmup=2, seed=7).run()
    assert a.lat_stats.samples == b.lat_stats.samples
