"""YCSB generator tests (distribution properties)."""

import collections

import pytest
from hypothesis import given, settings, strategies as st

from repro.ycsb.generators import (
    DiscreteGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a_64,
)


def test_uniform_bounds_and_coverage():
    g = UniformGenerator(5, 14, seed=1)
    seen = {g.next() for _ in range(2000)}
    assert seen == set(range(5, 15))


def test_uniform_rejects_bad_range():
    with pytest.raises(ValueError):
        UniformGenerator(10, 5)


def test_zipfian_in_range_and_skewed():
    n = 1000
    g = ZipfianGenerator(n, seed=3)
    counts = collections.Counter(g.next() for _ in range(20000))
    assert all(0 <= k < n for k in counts)
    # Rank 0 must dominate: classic zipf head-heaviness.
    assert counts[0] > counts.get(100, 0) * 5
    top10 = sum(counts[i] for i in range(10)) / 20000
    assert top10 > 0.3


def test_scrambled_zipfian_spreads_hot_keys():
    n = 1000
    g = ScrambledZipfianGenerator(n, seed=3)
    counts = collections.Counter(g.next() for _ in range(20000))
    assert all(0 <= k < n for k in counts)
    # Still skewed (one key dominates)...
    hot = counts.most_common(1)[0][1]
    assert hot > 20000 * 0.05
    # ...but the hottest keys are not clustered at the low end.
    hot_keys = [k for k, _ in counts.most_common(5)]
    assert max(hot_keys) > n // 10


def test_latest_generator_tracks_insertions():
    g = LatestGenerator(100, seed=5)
    first = [g.next() for _ in range(100)]
    assert max(first) == 99
    for _ in range(50):
        g.advance()
    later = [g.next() for _ in range(100)]
    assert max(later) == 149


def test_discrete_generator_proportions():
    g = DiscreteGenerator([("a", 0.8), ("b", 0.2)], seed=9)
    counts = collections.Counter(g.next() for _ in range(10000))
    assert 0.75 < counts["a"] / 10000 < 0.85


def test_discrete_generator_validation():
    with pytest.raises(ValueError):
        DiscreteGenerator([])
    with pytest.raises(ValueError):
        DiscreteGenerator([("a", -1), ("b", 2)])


def test_fnv_deterministic_and_spread():
    assert fnv1a_64(42) == fnv1a_64(42)
    hashes = {fnv1a_64(i) % 1000 for i in range(1000)}
    assert len(hashes) > 600  # decent dispersion


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 10000), st.integers(0, 2**31))
def test_zipfian_always_in_range(n, seed):
    g = ZipfianGenerator(n, seed=seed)
    for _ in range(50):
        assert 0 <= g.next() < n


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31))
def test_generators_deterministic_by_seed(seed):
    a = [ZipfianGenerator(500, seed=seed).next() for _ in range(20)]
    b = [ZipfianGenerator(500, seed=seed).next() for _ in range(20)]
    assert a == b
