"""Workload geometry and full YCSB runs over HatKV + comparators."""

import pytest

from repro.emul import SYSTEMS, start_system
from repro.testbed import Testbed
from repro.ycsb import OpType, WORKLOAD_A, WORKLOAD_B, Workload, run_ycsb
from repro.ycsb.workload import BATCH_SIZE, FIELD_COUNT, FIELD_LENGTH, KEY_LENGTH


def test_workload_geometry():
    wl = Workload(WORKLOAD_A, seed=1)
    key = wl.key_of(7)
    assert len(key) == KEY_LENGTH == 24
    assert key.startswith(b"user") and key.endswith(b"7")
    assert len(wl.value()) == FIELD_COUNT * FIELD_LENGTH == 1000


def test_load_items_cover_keyspace():
    wl = Workload(WORKLOAD_A, seed=1)
    items = list(wl.load_items())
    assert len(items) == WORKLOAD_A.record_count
    assert len({k for k, _ in items}) == WORKLOAD_A.record_count


def test_mix_proportions_workload_a():
    wl = Workload(WORKLOAD_A, seed=2)
    from collections import Counter
    counts = Counter(wl.next_op()[0] for _ in range(4000))
    for op, _w in WORKLOAD_A.mix:
        assert 0.2 < counts[op] / 4000 < 0.3, op


def test_mix_proportions_workload_b():
    wl = Workload(WORKLOAD_B, seed=2)
    from collections import Counter
    counts = Counter(wl.next_op()[0] for _ in range(4000))
    assert counts[OpType.GET] / 4000 > 0.4
    assert counts[OpType.PUT] / 4000 < 0.07
    assert counts[OpType.MULTI_GET] / 4000 > 0.4


def test_multi_ops_batched():
    wl = Workload(WORKLOAD_A, seed=3)
    for _ in range(100):
        op, args = wl.next_op()
        if op is OpType.MULTI_GET:
            assert len(args[0]) == BATCH_SIZE
        elif op is OpType.MULTI_PUT:
            keys, values = args
            assert len(keys) == len(values) == BATCH_SIZE
            assert all(len(v) == 1000 for v in values)


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_ycsb_runs_on_every_system(system):
    tb = Testbed(n_nodes=5)
    server, connect = start_system(tb, system, n_clients=4)
    result = run_ycsb(server, connect, WORKLOAD_A, testbed=tb, n_clients=4,
                      ops_per_client=6, warmup_per_client=1)
    assert result.total_ops == 4 * 6
    assert result.throughput_ops > 0


def test_hatkv_function_beats_comparators_workload_b():
    """The headline Fig. 16 ordering at reduced scale.

    Run past the under-subscription threshold (the paper uses 128 clients):
    below it every candidate busy-polls and the orderings blur.
    """
    results = {}
    for system in ("hatkv_function", "herd", "rfp"):
        tb = Testbed(n_nodes=5)
        server, connect = start_system(tb, system, n_clients=24)
        results[system] = run_ycsb(server, connect, WORKLOAD_B, testbed=tb,
                                   n_clients=24, ops_per_client=10,
                                   warmup_per_client=2).throughput_ops
    assert results["hatkv_function"] > results["rfp"]
    assert results["hatkv_function"] > results["herd"]


def test_ycsb_deterministic():
    def once():
        tb = Testbed(n_nodes=5)
        server, connect = start_system(tb, "hatkv_service", n_clients=4)
        return run_ycsb(server, connect, WORKLOAD_A, testbed=tb, n_clients=4,
                        ops_per_client=5, warmup_per_client=1).throughput_ops
    assert once() == once()


def test_extended_workloads_cde():
    """Library extension: the remaining standard YCSB mixes."""
    from repro.ycsb import WORKLOAD_C, WORKLOAD_D, WORKLOAD_E
    from collections import Counter
    wl_c = Workload(WORKLOAD_C, seed=1)
    c = Counter(wl_c.next_op()[0] for _ in range(1000))
    assert set(c) == {OpType.GET, OpType.MULTI_GET}
    wl_d = Workload(WORKLOAD_D, seed=1)
    d = Counter(wl_d.next_op()[0] for _ in range(1000))
    assert d[OpType.INSERT] > 0 and d[OpType.GET] > d[OpType.INSERT]
    wl_e = Workload(WORKLOAD_E, seed=1)
    e = Counter(wl_e.next_op()[0] for _ in range(1000))
    assert e[OpType.SCAN] > 800


def test_insert_keys_disjoint_per_client():
    from repro.ycsb import WORKLOAD_D
    a = Workload(WORKLOAD_D, seed=1, insert_start=10_000)
    b = Workload(WORKLOAD_D, seed=2, insert_start=20_000)
    keys_a = set()
    keys_b = set()
    for _ in range(500):
        op, args = a.next_op()
        if op is OpType.INSERT:
            keys_a.add(args[0])
        op, args = b.next_op()
        if op is OpType.INSERT:
            keys_b.add(args[0])
    assert keys_a and keys_b and not (keys_a & keys_b)


def test_latest_distribution_tracks_run_wide_inserts():
    """Regression: 'latest' only advanced on the local client's inserts,
    so with many clients the hot set lagged the true newest insert by a
    factor of the client count.  A shared InsertSequence closes the gap:
    every client's keychooser must be able to reach the global high-water
    mark, not just its own."""
    from repro.ycsb import WORKLOAD_D
    from repro.ycsb.workload import InsertSequence
    seq = InsertSequence(WORKLOAD_D.record_count)
    writer = Workload(WORKLOAD_D, seed=1, insert_seq=seq)
    reader = Workload(WORKLOAD_D, seed=2, insert_seq=seq)
    # The writer inserts; the reader never does (we skip its inserts).
    for _ in range(600):
        writer.next_op()
    assert seq.high_water >= WORKLOAD_D.record_count  # inserts happened
    seen = set()
    sampled = 0
    while sampled < 2000:
        op, args = reader.next_op()
        if op is OpType.GET:
            seen.add(args[0])
            sampled += 1
    newest = Workload.key_of(seq.high_water)
    assert newest in seen, \
        "reader's 'latest' distribution never reached the global newest key"


def test_shared_insert_sequence_claims_disjoint_indices():
    from repro.ycsb import WORKLOAD_D
    from repro.ycsb.workload import InsertSequence
    seq = InsertSequence(1000)
    a = Workload(WORKLOAD_D, seed=1, insert_seq=seq)
    b = Workload(WORKLOAD_D, seed=2, insert_seq=seq)
    keys_a, keys_b = set(), set()
    for _ in range(500):
        op, args = a.next_op()
        if op is OpType.INSERT:
            keys_a.add(args[0])
        op, args = b.next_op()
        if op is OpType.INSERT:
            keys_b.add(args[0])
    assert keys_a and keys_b and not (keys_a & keys_b)
    # contiguous global allocation: nothing skipped below the high-water
    claimed = {int(k[4:].lstrip(b"0") or b"0") for k in keys_a | keys_b}
    assert claimed == set(range(1000, seq.high_water + 1))


def test_scan_workload_end_to_end():
    """Workload E drives LMDB cursors through the full RPC stack."""
    from repro.ycsb import WORKLOAD_E
    tb = Testbed(n_nodes=5)
    server, connect = start_system(tb, "hatkv_function", n_clients=4)
    r = run_ycsb(server, connect, WORKLOAD_E, testbed=tb, n_clients=4,
                 ops_per_client=8, warmup_per_client=1)
    assert r.total_ops == 32
    assert r.per_op[OpType.SCAN].count > 0
