"""Comparator-system registry and setup tests."""

import pytest

from repro.emul import SYSTEMS, start_system
from repro.testbed import Testbed


def test_registry_has_all_six_candidates():
    assert set(SYSTEMS) == {"hatkv_service", "hatkv_function", "ar_grpc",
                            "herd", "pilaf", "rfp"}
    assert SYSTEMS["ar_grpc"].protocol == "hybrid_eager_readrndv"
    assert SYSTEMS["herd"].protocol == "herd"
    assert SYSTEMS["hatkv_function"].protocol is None  # hint-driven


def test_only_hatkv_gets_tuned_backend():
    assert SYSTEMS["hatkv_service"].tuned_backend
    assert SYSTEMS["hatkv_function"].tuned_backend
    for name in ("ar_grpc", "herd", "pilaf", "rfp"):
        assert not SYSTEMS[name].tuned_backend, name


def test_unknown_system_rejected():
    tb = Testbed(n_nodes=3)
    with pytest.raises(KeyError, match="carrier"):
        start_system(tb, "carrier_pigeon", n_clients=2)


def test_comparator_backend_untouched():
    tb = Testbed(n_nodes=3)
    server, _ = start_system(tb, "pilaf", n_clients=64)
    # stock LMDB defaults, not hint-tuned
    assert server.backend.env.max_readers == 126
    assert not server.backend._group_commit


def test_hatkv_backend_tuned():
    tb = Testbed(n_nodes=3)
    server, _ = start_system(tb, "hatkv_function", n_clients=64)
    assert server.backend.env.max_readers == 64


@pytest.mark.parametrize("system", ["ar_grpc", "herd"])
def test_comparator_roundtrip(system):
    tb = Testbed(n_nodes=3)
    server, connect = start_system(tb, system, n_clients=2)
    out = {}

    def client():
        kv = yield from connect(tb.node(1))
        key = b"key".ljust(24, b"0")
        yield from kv.Put(key, b"value" * 200)
        out["v"] = yield from kv.Get(key)

    tb.sim.run(tb.sim.process(client()))
    assert out["v"].found and out["v"].value == b"value" * 200
