"""Data-generator distribution and schema-conformance tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tpch.datagen import CONTAINERS, NATIONS, SEGMENTS, generate
from repro.tpch.schema import BASE_ROWS, SCHEMA, date_to_int


@pytest.fixture(scope="module")
def db():
    return generate(sf=0.01, seed=42)


def test_all_tables_present_with_full_schema(db):
    for table, columns in SCHEMA.items():
        assert table in db
        assert set(db[table].names) == set(columns), table


def test_row_counts_scale(db):
    assert len(db["orders"]) == int(BASE_ROWS["orders"] * 0.01)
    assert len(db["customer"]) == int(BASE_ROWS["customer"] * 0.01)
    # lineitem: 1..7 lines per order, mean ~4
    ratio = len(db["lineitem"]) / len(db["orders"])
    assert 3.5 < ratio < 4.5


def test_deterministic_by_seed():
    a = generate(sf=0.002, seed=9)
    b = generate(sf=0.002, seed=9)
    assert (a["lineitem"]["l_extendedprice"] ==
            b["lineitem"]["l_extendedprice"]).all()
    c = generate(sf=0.002, seed=10)
    ca = a["lineitem"]["l_extendedprice"]
    cc = c["lineitem"]["l_extendedprice"]
    assert len(ca) != len(cc) or not (ca == cc).all()


def test_lineitem_date_invariants(db):
    li = db["lineitem"]
    assert (li["l_receiptdate"] > li["l_shipdate"]).all()
    # receipts within 30 days of shipping per our generator
    assert (li["l_receiptdate"] - li["l_shipdate"] <= 30).all()


def test_lineitem_ship_after_order(db):
    li = db["lineitem"]
    o = db["orders"]
    odate = dict(zip(o["o_orderkey"].tolist(), o["o_orderdate"].tolist()))
    ship = li["l_shipdate"]
    ok = li["l_orderkey"]
    for i in range(0, len(li), 997):  # sample
        assert ship[i] > odate[ok[i]]


def test_return_flags_follow_current_date(db):
    li = db["lineitem"]
    current = date_to_int("1995-06-17")
    flags = li["l_returnflag"]
    receipts = li["l_receiptdate"]
    n_mask = flags == "N"
    assert (receipts[n_mask] > current).all()
    assert (receipts[~n_mask] <= current).all()


def test_discount_and_tax_ranges(db):
    li = db["lineitem"]
    assert li["l_discount"].min() >= 0.0 and li["l_discount"].max() <= 0.10
    assert li["l_tax"].min() >= 0.0 and li["l_tax"].max() <= 0.08
    assert li["l_quantity"].min() >= 1 and li["l_quantity"].max() <= 50


def test_vocabularies(db):
    assert set(db["customer"]["c_mktsegment"]) <= set(SEGMENTS)
    assert set(db["part"]["p_container"]) <= set(CONTAINERS)
    assert len(db["nation"]) == len(NATIONS) == 25


def test_orders_skip_every_third_customer(db):
    custkeys = set(db["orders"]["o_custkey"].tolist())
    assert all(k % 3 != 0 for k in custkeys)


def test_foreign_keys_in_range(db):
    np_ = len(db["part"])
    ns = len(db["supplier"])
    li = db["lineitem"]
    assert li["l_partkey"].min() >= 1 and li["l_partkey"].max() <= np_
    assert li["l_suppkey"].min() >= 1 and li["l_suppkey"].max() <= ns
    ps = db["partsupp"]
    assert ps["ps_partkey"].max() <= np_ and ps["ps_suppkey"].max() <= ns


@settings(max_examples=10, deadline=None)
@given(st.floats(0.0005, 0.01), st.integers(0, 100))
def test_any_scale_factor_produces_valid_db(sf, seed):
    db = generate(sf=sf, seed=seed)
    assert len(db["lineitem"]) >= 1
    assert set(db["lineitem"]["l_orderkey"].tolist()) <= \
        set(db["orders"]["o_orderkey"].tolist())
