"""Distributed executor: fragment/final equivalence + RPC-mode effects."""

import numpy as np
import pytest

from repro.tpch.datagen import generate
from repro.tpch.distributed import DistributedTpch
from repro.tpch.fragments import PLANS
from repro.tpch.queries import run_query
from repro.tpch.ser import deserialize_table, serialize_table
from repro.tpch.table import Table


def tables_equal(a: Table, b: Table, float_tol=1e-6) -> bool:
    if set(a.names) != set(b.names) or len(a) != len(b):
        return False
    for name in a.names:
        ca, cb = a[name], b[name]
        if ca.dtype.kind == "f" or cb.dtype.kind == "f":
            if not np.allclose(ca.astype(float), cb.astype(float),
                               rtol=float_tol, atol=1e-9):
                return False
        else:
            if ca.tolist() != cb.tolist():
                return False
    return True


def test_serialize_roundtrip():
    t = Table({"a": np.asarray([1, 2, 3], dtype=np.int64),
               "b": np.asarray([1.5, -2.5, 0.0]),
               "c": np.asarray(["x", "y", "unicode ✓"], dtype=object)})
    out = deserialize_table(serialize_table(t))
    assert tables_equal(t, out)


def test_serialize_empty():
    t = Table({"a": np.zeros(0, dtype=np.int64)})
    out = deserialize_table(serialize_table(t))
    assert len(out) == 0 and out.names == ["a"]


@pytest.fixture(scope="module")
def setup():
    db = generate(sf=0.003, seed=3)
    # Partition exactly as the executor does.
    W = 4
    o, li = db["orders"], db["lineitem"]
    dims = {t: db[t] for t in ("region", "nation", "supplier", "customer",
                               "part", "partsupp")}
    parts = []
    for w in range(W):
        p = dict(dims)
        p["orders"] = o.filter(o["o_orderkey"] % W == w)
        p["lineitem"] = li.filter(li["l_orderkey"] % W == w)
        parts.append(p)
    return db, parts


@pytest.mark.parametrize("qn", sorted(PLANS))
def test_fragment_final_equals_single_node(setup, qn):
    """The distributed plan must compute exactly the single-node answer."""
    db, parts = setup
    plan = PLANS[qn]
    partials = [plan.fragment(p) for p in parts]
    # Simulate the serialize/merge path (includes the wire roundtrip).
    partials = [deserialize_table(serialize_table(t)) for t in partials]
    non_empty = [t for t in partials if len(t) > 0]
    merged = non_empty[0] if non_empty else partials[0]
    for t in non_empty[1:]:
        merged = merged.concat(t)
    distributed = plan.final(merged, db)
    single = run_query(db, qn)
    assert tables_equal(distributed, single), f"Q{qn} diverged"


def test_executor_end_to_end_matches_single_node():
    ex = DistributedTpch(mode="hatrpc_function", sf=0.002, n_workers=3,
                         seed=5).start()
    single_db = ex.db
    for qn in (1, 4, 6, 13):
        r = ex.run_query(qn)
        assert tables_equal(r.result, run_query(single_db, qn)), qn
        assert r.elapsed > 0
        assert r.exchange_bytes > 0


def test_ipoib_slower_than_hatrpc():
    times = {}
    for mode in ("ipoib", "hatrpc_function"):
        ex = DistributedTpch(mode=mode, sf=0.002, n_workers=3, seed=5).start()
        times[mode] = sum(ex.run_query(q).elapsed for q in (1, 6, 9, 13))
    assert times["hatrpc_function"] < times["ipoib"]


def test_bad_mode_rejected():
    with pytest.raises(ValueError):
        DistributedTpch(mode="carrier_pigeon")


def test_chunked_transfer_for_large_partials():
    """Q9 partials exceed one chunk at a larger SF; bytes must reassemble."""
    ex = DistributedTpch(mode="hatrpc_service", sf=0.01, n_workers=2,
                         seed=2).start()
    r = ex.run_query(9)
    assert tables_equal(r.result, run_query(ex.db, 9))
