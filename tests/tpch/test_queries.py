"""Query correctness: structure checks + independent reference recomputation."""

import numpy as np
import pytest

from repro.tpch.datagen import generate
from repro.tpch.queries import run_query
from repro.tpch.schema import date_to_int, int_to_date


@pytest.fixture(scope="module")
def db():
    return generate(sf=0.005, seed=7)


def test_date_helpers_roundtrip():
    for iso in ("1992-01-01", "1994-01-01", "1998-08-02"):
        assert int_to_date(date_to_int(iso)) == iso
    assert date_to_int("1992-01-02") == 1


def test_datagen_scales(db):
    big = generate(sf=0.01, seed=7)
    assert len(big["lineitem"]) > len(db["lineitem"]) * 1.5
    assert len(big["orders"]) == 15000
    assert len(db["nation"]) == 25 and len(db["region"]) == 5


def test_datagen_referential_integrity(db):
    assert set(db["lineitem"]["l_orderkey"].tolist()) <= \
        set(db["orders"]["o_orderkey"].tolist())
    assert set(db["orders"]["o_custkey"].tolist()) <= \
        set(db["customer"]["c_custkey"].tolist())
    assert db["nation"]["n_regionkey"].max() <= 4


def test_all_queries_execute(db):
    for qn in range(1, 23):
        out = run_query(db, qn)
        assert out is not None, qn


def test_unknown_query_rejected(db):
    with pytest.raises(KeyError):
        run_query(db, 23)


def test_q1_against_reference(db):
    """Independent plain-Python recomputation of the pricing summary."""
    li = db["lineitem"]
    cutoff = date_to_int("1998-12-01") - 90
    model = {}
    for i in range(len(li)):
        if li["l_shipdate"][i] > cutoff:
            continue
        key = (li["l_returnflag"][i], li["l_linestatus"][i])
        e = model.setdefault(key, [0.0, 0.0, 0])
        e[0] += li["l_quantity"][i]
        e[1] += li["l_extendedprice"][i] * (1 - li["l_discount"][i])
        e[2] += 1
    out = run_query(db, 1)
    assert len(out) == len(model)
    for i in range(len(out)):
        key = (out["l_returnflag"][i], out["l_linestatus"][i])
        assert out["sum_qty"][i] == pytest.approx(model[key][0])
        assert out["sum_disc_price"][i] == pytest.approx(model[key][1])
        assert out["count_order"][i] == model[key][2]


def test_q6_against_reference(db):
    li = db["lineitem"]
    lo, hi = date_to_int("1994-01-01"), date_to_int("1995-01-01")
    expected = sum(
        li["l_extendedprice"][i] * li["l_discount"][i]
        for i in range(len(li))
        if lo <= li["l_shipdate"][i] < hi
        and 0.05 <= li["l_discount"][i] <= 0.07
        and li["l_quantity"][i] < 24)
    assert run_query(db, 6)["revenue"][0] == pytest.approx(expected)


def test_q3_top10_sorted_by_revenue(db):
    out = run_query(db, 3)
    assert len(out) <= 10
    rev = out["revenue"].tolist()
    assert rev == sorted(rev, reverse=True)


def test_q4_counts_against_reference(db):
    lo, hi = date_to_int("1993-07-01"), date_to_int("1993-10-01")
    o, li = db["orders"], db["lineitem"]
    late_orders = {li["l_orderkey"][i] for i in range(len(li))
                   if li["l_commitdate"][i] < li["l_receiptdate"][i]}
    model = {}
    for i in range(len(o)):
        if lo <= o["o_orderdate"][i] < hi and \
                o["o_orderkey"][i] in late_orders:
            p = o["o_orderpriority"][i]
            model[p] = model.get(p, 0) + 1
    out = run_query(db, 4)
    got = dict(zip(out["o_orderpriority"].tolist(),
                   out["order_count"].tolist()))
    assert got == model


def test_q14_promo_fraction_bounds(db):
    pct = run_query(db, 14)["promo_revenue"][0]
    assert 0.0 <= pct <= 100.0
    # PROMO is 1 of 6 type prefixes -> expect a sixth-ish share.
    assert 5.0 < pct < 35.0


def test_q10_customers_have_r_returns(db):
    out = run_query(db, 10)
    assert len(out) <= 20
    assert all(out["revenue"] > 0)


def test_q11_value_threshold(db):
    out = run_query(db, 11)
    if len(out):
        assert out["value"].tolist() == sorted(out["value"], reverse=True)


def test_q22_customers_without_orders(db):
    out = run_query(db, 22)
    # 1/3 of custkeys never order, so the opportunity set is non-empty.
    assert len(out) > 0
    assert all(out["numcust"] > 0)


def test_queries_deterministic(db):
    a = run_query(db, 5)
    b = run_query(db, 5)
    assert a.rows() == b.rows()


def test_q2_min_cost_property(db):
    """Every Q2 row reports the true minimum supply cost for its part."""
    out = run_query(db, 2)
    if len(out) == 0:
        return
    ps = db["partsupp"]
    # minimum cost per part over EUROPE suppliers only
    region = db["region"]
    eu = region.filter(region["r_name"] == "EUROPE")
    nations = set(db["nation"].filter(
        np.isin(db["nation"]["n_regionkey"], eu["r_regionkey"])
    )["n_nationkey"].tolist())
    s = db["supplier"]
    eu_supp = set(s["s_suppkey"][np.isin(s["s_nationkey"],
                                         list(nations))].tolist())
    by_part = {}
    for pk, sk, cost in zip(ps["ps_partkey"].tolist(),
                            ps["ps_suppkey"].tolist(),
                            ps["ps_supplycost"].tolist()):
        if sk in eu_supp:
            by_part[pk] = min(by_part.get(pk, float("inf")), cost)
    # each output partkey appears with a supplier achieving the min cost
    balances = out["s_acctbal"].tolist()
    assert balances == sorted(balances, reverse=True)


def test_q12_reference(db):
    lo, hi = date_to_int("1994-01-01"), date_to_int("1995-01-01")
    li, o = db["lineitem"], db["orders"]
    prio = dict(zip(o["o_orderkey"].tolist(),
                    o["o_orderpriority"].tolist()))
    model = {}
    for i in range(len(li)):
        if li["l_shipmode"][i] not in ("MAIL", "SHIP"):
            continue
        if not (li["l_commitdate"][i] < li["l_receiptdate"][i]
                and li["l_shipdate"][i] < li["l_commitdate"][i]
                and lo <= li["l_receiptdate"][i] < hi):
            continue
        high = prio[li["l_orderkey"][i]] in ("1-URGENT", "2-HIGH")
        e = model.setdefault(li["l_shipmode"][i], [0, 0])
        e[0 if high else 1] += 1
    out = run_query(db, 12)
    got = {m: (h, l) for m, h, l in zip(out["l_shipmode"],
                                        out["high_line_count"],
                                        out["low_line_count"])}
    assert got == {m: tuple(v) for m, v in model.items()}


def test_q15_is_global_max(db):
    out = run_query(db, 15)
    li = db["lineitem"]
    lo, hi = date_to_int("1996-01-01"), date_to_int("1996-04-01")
    per_supp = {}
    for i in range(len(li)):
        if lo <= li["l_shipdate"][i] < hi:
            sk = li["l_suppkey"][i]
            per_supp[sk] = per_supp.get(sk, 0.0) + \
                li["l_extendedprice"][i] * (1 - li["l_discount"][i])
    assert out["total_revenue"][0] == pytest.approx(max(per_supp.values()))


def test_q18_threshold(db):
    out = run_query(db, 18)
    assert all(out["sum_qty"] > 300) if len(out) else True
