"""Columnar Table operator tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tpch.table import Table


def t(**cols):
    return Table({k: np.asarray(v) for k, v in cols.items()})


def test_ragged_columns_rejected():
    with pytest.raises(ValueError, match="ragged"):
        t(a=[1, 2], b=[1])


def test_filter_select_with_column():
    x = t(a=[1, 2, 3, 4], b=[10.0, 20.0, 30.0, 40.0])
    y = x.filter(x["a"] % 2 == 0)
    assert y["a"].tolist() == [2, 4]
    z = y.select(["b"]).with_column("c", y["b"] * 2)
    assert z["c"].tolist() == [40.0, 80.0]


def test_inner_join_one_to_many():
    left = t(k=[1, 2, 2, 3], v=[10, 20, 21, 30])
    right = t(rk=[2, 3, 4], w=[200, 300, 400])
    j = left.join(right, "k", "rk")
    assert sorted(zip(j["v"].tolist(), j["w"].tolist())) == [
        (20, 200), (21, 200), (30, 300)]


def test_join_duplicate_build_keys():
    left = t(k=[1], v=[10])
    right = t(rk=[1, 1], w=[100, 101])
    j = left.join(right, "k", "rk")
    assert sorted(j["w"].tolist()) == [100, 101]


def test_semi_and_anti_join():
    left = t(k=[1, 2, 3, 4])
    right = t(rk=[2, 4, 9])
    assert left.semi_join(right, "k", "rk")["k"].tolist() == [2, 4]
    assert left.semi_join(right, "k", "rk", anti=True)["k"].tolist() == [1, 3]


def test_group_by_aggregates():
    x = t(g=["a", "b", "a", "b", "a"], v=[1.0, 2.0, 3.0, 4.0, 5.0])
    g = x.group_by(["g"], {"s": ("sum", "v"), "m": ("mean", "v"),
                           "n": ("count", "v"), "mn": ("min", "v"),
                           "mx": ("max", "v")})
    rows = {r[0]: r[1:] for r in zip(g["g"], g["s"], g["m"], g["n"],
                                     g["mn"], g["mx"])}
    assert rows["a"] == (9.0, 3.0, 3, 1.0, 5.0)
    assert rows["b"] == (6.0, 3.0, 2, 2.0, 4.0)


def test_group_by_empty_input():
    x = t(g=np.asarray([], dtype=object), v=np.zeros(0))
    g = x.group_by(["g"], {"s": ("sum", "v")})
    assert len(g) == 0


def test_sort_multi_key_with_descending():
    x = t(a=[1, 2, 1, 2], b=[9.0, 8.0, 7.0, 6.0])
    s = x.sort([("a", True), ("b", False)])
    assert list(zip(s["a"].tolist(), s["b"].tolist())) == [
        (1, 9.0), (1, 7.0), (2, 8.0), (2, 6.0)]


def test_concat_schema_checked():
    with pytest.raises(ValueError):
        t(a=[1]).concat(t(b=[2]))
    c = t(a=[1]).concat(t(a=[2]))
    assert c["a"].tolist() == [1, 2]


def test_head_and_take():
    x = t(a=[5, 6, 7, 8])
    assert x.head(2)["a"].tolist() == [5, 6]
    assert x.take(np.asarray([3, 0]))["a"].tolist() == [8, 5]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.floats(-100, 100)),
                max_size=60))
def test_group_sum_matches_model(pairs):
    if not pairs:
        return
    x = t(g=[p[0] for p in pairs], v=[p[1] for p in pairs])
    g = x.group_by(["g"], {"s": ("sum", "v")})
    model = {}
    for k, v in pairs:
        model[k] = model.get(k, 0.0) + v
    got = dict(zip(g["g"].tolist(), g["s"].tolist()))
    assert set(got) == set(model)
    for k in model:
        assert got[k] == pytest.approx(model[k])


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 20), max_size=50),
       st.lists(st.integers(0, 20), max_size=50))
def test_join_matches_model(lk, rk):
    left = t(k=lk, v=list(range(len(lk))))
    right = t(rk=rk, w=list(range(len(rk))))
    j = left.join(right, "k", "rk")
    expected = sorted((a, b) for a in lk for b in rk if a == b)
    assert sorted(zip(j["k"].tolist(), j["rk"].tolist())) == expected
