"""Prometheus text rendering of a MetricsRegistry."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import render


def test_counter_and_gauge_render():
    reg = MetricsRegistry()
    reg.counter("engine.calls").inc(3)
    g = reg.gauge("engine.inflight")
    g.set(2)
    g.set(5)
    g.set(1)
    text = render(reg)
    assert "# TYPE hatrpc_engine_calls counter" in text
    assert "hatrpc_engine_calls 3" in text
    assert "# TYPE hatrpc_engine_inflight gauge" in text
    assert "hatrpc_engine_inflight 1" in text
    assert "hatrpc_engine_inflight_high_water 5" in text
    assert text.endswith("\n")


def test_histogram_renders_as_summary():
    reg = MetricsRegistry()
    h = reg.histogram("rpc.latency")
    for v in (1.0, 2.0, 3.0, 4.0):
        h.record(v)
    text = render(reg)
    assert "# TYPE hatrpc_rpc_latency summary" in text
    assert 'hatrpc_rpc_latency{quantile="0.5"}' in text
    assert 'hatrpc_rpc_latency{quantile="0.95"}' in text
    assert "hatrpc_rpc_latency_sum 10" in text
    assert "hatrpc_rpc_latency_count 4" in text


def test_empty_histogram_still_has_count():
    reg = MetricsRegistry()
    reg.histogram("rpc.latency")
    text = render(reg)
    assert "hatrpc_rpc_latency_count 0" in text


def test_probe_groups_become_labelled_gauges():
    reg = MetricsRegistry()
    reg.probe("faults", lambda: {"retries": 2, "timeouts": 0})
    text = render(reg)
    assert 'hatrpc_faults{key="retries"} 2' in text
    assert 'hatrpc_faults{key="timeouts"} 0' in text


def test_names_survive_the_prometheus_grammar():
    reg = MetricsRegistry()
    reg.counter("proto.eager-sendrecv.ops/total").inc()
    text = render(reg)
    assert "hatrpc_proto_eager_sendrecv_ops_total 1" in text


def test_label_values_are_escaped():
    reg = MetricsRegistry()
    reg.probe("odd", lambda: {'with"quote\\slash': 1})
    text = render(reg)
    assert '{key="with\\"quote\\\\slash"}' in text


def test_help_text_can_be_suppressed():
    reg = MetricsRegistry()
    reg.counter("a.b").inc()
    assert "# HELP" in render(reg)
    assert "# HELP" not in render(reg, help_text=False)


def test_floats_render_roundtrippably():
    reg = MetricsRegistry()
    reg.gauge("g").set(2.5)
    text = render(reg, help_text=False)
    assert "hatrpc_g 2.5" in text
