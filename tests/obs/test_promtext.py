"""Prometheus text rendering of a MetricsRegistry."""

import re

from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import render


def test_counter_and_gauge_render():
    reg = MetricsRegistry()
    reg.counter("engine.calls").inc(3)
    g = reg.gauge("engine.inflight")
    g.set(2)
    g.set(5)
    g.set(1)
    text = render(reg)
    assert "# TYPE hatrpc_engine_calls counter" in text
    assert "hatrpc_engine_calls 3" in text
    assert "# TYPE hatrpc_engine_inflight gauge" in text
    assert "hatrpc_engine_inflight 1" in text
    assert "hatrpc_engine_inflight_high_water 5" in text
    assert text.endswith("\n")


def test_histogram_renders_as_histogram():
    reg = MetricsRegistry()
    h = reg.histogram("rpc.latency")
    for v in (1.0, 2.0, 3.0, 4.0):
        h.record(v)
    text = render(reg)
    assert "# TYPE hatrpc_rpc_latency histogram" in text
    assert 'hatrpc_rpc_latency_bucket{le="' in text
    assert 'hatrpc_rpc_latency_bucket{le="+Inf"} 4' in text
    assert "hatrpc_rpc_latency_sum 10" in text
    assert "hatrpc_rpc_latency_count 4" in text


def test_histogram_buckets_are_cumulative_and_close_at_inf():
    reg = MetricsRegistry()
    h = reg.histogram("rpc.latency")
    for v in (1e-6, 2e-6, 4e-6, 1e-3, 2.5):
        h.record(v)
    text = render(reg, help_text=False)
    buckets = re.findall(
        r'hatrpc_rpc_latency_bucket\{le="([^"]+)"\} (\d+)', text)
    assert buckets[-1][0] == "+Inf"
    counts = [int(c) for _, c in buckets]
    assert counts == sorted(counts), "bucket counts must be cumulative"
    assert counts[-1] == 5
    bounds = [float(b) for b, _ in buckets[:-1]]
    assert bounds == sorted(bounds), "le= bounds must ascend"
    # every finite bucket's count is how many samples fell at or below it
    assert all(c <= 5 for c in counts)


def test_empty_histogram_still_has_count():
    reg = MetricsRegistry()
    reg.histogram("rpc.latency")
    text = render(reg)
    assert 'hatrpc_rpc_latency_bucket{le="+Inf"} 0' in text
    assert "hatrpc_rpc_latency_count 0" in text


def test_probe_groups_become_labelled_gauges():
    reg = MetricsRegistry()
    reg.probe("faults", lambda: {"retries": 2, "timeouts": 0})
    text = render(reg)
    assert 'hatrpc_faults{key="retries"} 2' in text
    assert 'hatrpc_faults{key="timeouts"} 0' in text


def test_names_survive_the_prometheus_grammar():
    reg = MetricsRegistry()
    reg.counter("proto.eager-sendrecv.ops/total").inc()
    text = render(reg)
    assert "hatrpc_proto_eager_sendrecv_ops_total 1" in text


def test_label_values_are_escaped():
    reg = MetricsRegistry()
    reg.probe("odd", lambda: {'with"quote\\slash': 1})
    text = render(reg)
    assert '{key="with\\"quote\\\\slash"}' in text


def test_help_text_can_be_suppressed():
    reg = MetricsRegistry()
    reg.counter("a.b").inc()
    assert "# HELP" in render(reg)
    assert "# HELP" not in render(reg, help_text=False)


def test_floats_render_roundtrippably():
    reg = MetricsRegistry()
    reg.gauge("g").set(2.5)
    text = render(reg, help_text=False)
    assert "hatrpc_g 2.5" in text


def test_newlines_and_backslashes_escaped_in_labels_and_help():
    reg = MetricsRegistry()
    reg.probe("odd", lambda: {"line1\nline2": 1.0, "back\\slash": 2.0})
    reg.counter("weird\nname\\here").inc()
    text = render(reg)
    # Every physical line must be a comment or a sample -- no raw newline
    # from a label/help value may split a line in two.
    for line in text.strip().split("\n"):
        assert line.startswith("#") or re.match(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \S+$", line), line
    assert '{key="line1\\nline2"}' in text
    assert '{key="back\\\\slash"}' in text
    assert "# HELP hatrpc_weird_name_here counter weird\\nname\\\\here" \
        in text


_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"(,[a-zA-Z_][a-zA-Z0-9_]*='
    r'"(\\.|[^"\\\n])*")*\})?'
    r" [0-9eE+.\-]+|[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'\{le="\+Inf"\} [0-9]+)$')


def test_exposition_format_conformance():
    """Every rendered line satisfies the text 0.0.4 line grammar, for a
    registry exercising all four instrument families at once."""
    reg = MetricsRegistry()
    reg.counter("rpc.calls").inc(7)
    g = reg.gauge("engine.inflight")
    g.set(3)
    h = reg.histogram("rpc.latency")
    for v in (1e-6, 3e-6, 250e-6, 0.5):
        h.record(v)
    reg.probe("faults", lambda: {"timeouts": 0.0, "retries": 2.0})
    text = render(reg)
    assert text.endswith("\n")
    seen_types = {}
    for line in text.strip().split("\n"):
        assert _LINE.match(line), f"non-conformant line: {line!r}"
        if line.startswith("# TYPE"):
            _, _, name, family = line.split(" ", 3)
            assert family in ("counter", "gauge", "histogram", "summary")
            assert name not in seen_types, f"duplicate TYPE for {name}"
            seen_types[name] = family
    assert seen_types["hatrpc_rpc_calls"] == "counter"
    assert seen_types["hatrpc_rpc_latency"] == "histogram"
    # _count always equals the +Inf bucket.
    inf = re.search(r'hatrpc_rpc_latency_bucket\{le="\+Inf"\} (\d+)', text)
    count = re.search(r"hatrpc_rpc_latency_count (\d+)", text)
    assert inf.group(1) == count.group(1) == "4"
