"""Cross-node trace propagation, including under faults: a faulted call
(timeout -> retry -> failover) must yield ONE trace whose attempt spans,
fault events, and server-side spans all link back to the client root."""

import random

import pytest

from repro.core.tracing import Tracer, attach_tracer
from repro.core.runtime import HatRpcServer, hatrpc_connect
from repro.obs import trace as obstrace
from repro.sim.units import ms, us
from repro.testbed import Testbed
from repro.thrift.errors import TTransportException
from repro.idl import load_idl

KV_IDL = """
service MiniKV {
    hint: concurrency = 4;

    string Get(1: string k) [ hint: perf_goal = latency; ]
    void Put(1: string k, 2: string v) [ hint: perf_goal = latency; ]
    string Slow(1: string k) [ hint: perf_goal = latency; ]
    string Legacy(1: string k) [ hint: transport = tcp; ]
}
"""


class KVHandler:
    def __init__(self, tb):
        self.tb = tb
        self.store = {}

    def Get(self, k):
        return self.store.get(k, "")

    def Put(self, k, v):
        self.store[k] = v

    def Slow(self, k):
        yield self.tb.sim.timeout(10 * ms)
        return k

    def Legacy(self, k):
        return self.store.get(k, "")


@pytest.fixture(scope="module")
def gen():
    return load_idl(KV_IDL, "trace_prop_gen")


def ancestors(span, by_id):
    """Walk parent links to the trace root; returns the chain (nearest
    first).  Fails the test on a broken link inside the same trace."""
    chain = []
    cur = span
    while cur.parent_span_id:
        cur = by_id[cur.parent_span_id]
        chain.append(cur)
    return chain


def trace_of(col, root_name):
    """The one committed trace whose client root is ``root_name``."""
    matches = [spans for spans in col.traces().values()
               if any(s.kind == "client" and not s.parent_span_id
                      and s.name == root_name for s in spans)]
    assert len(matches) == 1, (
        f"expected exactly one {root_name!r} trace, got {len(matches)}")
    return matches[0]


# -- the healthy path --------------------------------------------------------

def test_server_spans_are_descendants_of_the_client_call(gen):
    with obstrace.installed() as col:
        tb = Testbed(n_nodes=2)
        handler = KVHandler(tb)
        HatRpcServer(tb.node(0), gen, "MiniKV", handler).start()

        def run():
            stub = yield from hatrpc_connect(tb.node(1), tb.node(0), gen,
                                             "MiniKV")
            yield from stub.Put("k", "v")
            return (yield from stub.Get("k"))

        assert tb.sim.run(tb.sim.process(run())) == "v"
        tb.sim.run()

        spans = trace_of(col, "Get")
        by_id = {s.span_id: s for s in spans}
        root = next(s for s in spans if not s.parent_span_id)
        assert root.node == "node1"

        server = next(s for s in spans if s.kind == "server")
        assert server.node == "node0"
        chain = ancestors(server, by_id)
        assert chain[-1] is root                    # true descendant
        assert chain[0].name.startswith("attempt#")  # parented per attempt

        handler_stage = next(s for s in spans if s.name == "handler")
        assert ancestors(handler_stage, by_id)[-1] is root
        assert handler_stage.node == "node0"


def test_tcp_channel_traces_cross_node_too(gen):
    with obstrace.installed() as col:
        tb = Testbed(n_nodes=2)
        handler = KVHandler(tb)
        handler.store["k"] = "v"
        HatRpcServer(tb.node(0), gen, "MiniKV", handler).start()

        def run():
            stub = yield from hatrpc_connect(tb.node(1), tb.node(0), gen,
                                             "MiniKV")
            return (yield from stub.Legacy("k"))     # hinted transport=tcp

        assert tb.sim.run(tb.sim.process(run())) == "v"
        tb.sim.run()

        spans = trace_of(col, "Legacy")
        by_id = {s.span_id: s for s in spans}
        server = next(s for s in spans if s.kind == "server")
        assert server.attrs.get("protocol") == "tcp"
        root = next(s for s in spans if not s.parent_span_id)
        assert ancestors(server, by_id)[-1] is root
        assert {"poll", "dispatch", "handler", "reply"} <= {
            s.name for s in spans if s.node == "node0"}


# -- satellite: one trace through timeout -> retry -> failover ---------------

def test_faulted_call_yields_one_trace_covering_every_attempt(gen):
    with obstrace.installed() as col:
        tb = Testbed(n_nodes=2)
        handler = KVHandler(tb)
        handler.store["k"] = "v"
        server = HatRpcServer(tb.node(0), gen, "MiniKV", handler).start()
        # Kill every RDMA listener: the Get must retry on its primary,
        # trip the breaker, and fail over to the Legacy TCP channel.
        for ch, srv in zip(server.plan.channels, server.endpoint.servers):
            if ch.transport == "rdma":
                srv.stop()

        def run():
            stub = yield from hatrpc_connect(
                tb.node(1), tb.node(0), gen, "MiniKV",
                idempotent=("Get",), rng=random.Random(42))
            value = yield from stub.Get("k")
            return value, stub._hatrpc.engine

        value, engine = tb.sim.run(tb.sim.process(run()))
        tb.sim.run()
        assert value == "v"
        assert engine.faults.failovers == 1
        assert engine.faults.retries >= 1

        spans = trace_of(col, "Get")                # ONE trace, all attempts
        by_id = {s.span_id: s for s in spans}
        root = next(s for s in spans if not s.parent_span_id)

        attempts = [s for s in spans if s.name.startswith("attempt#")]
        assert len(attempts) >= 2                   # failed + failover
        assert all(s.parent_span_id == root.span_id for s in attempts)
        assert any(s.status == "error" for s in attempts)
        ok = [s for s in attempts if s.status == "ok"]
        assert len(ok) == 1

        events = {s.name for s in spans if s.kind == "event"}
        assert "retry" in events and "failover" in events

        # The successful attempt reached the TCP server; its server span
        # parents to that attempt -- the whole story in one trace.
        server_spans = [s for s in spans if s.kind == "server"]
        assert server_spans, "no server span survived the failover"
        for srv_span in server_spans:
            assert ancestors(srv_span, by_id)[-1] is root
        assert any(s.parent_span_id == ok[0].span_id for s in server_spans)


def test_timeout_commits_the_trace_even_when_unsampled(gen):
    # sample_rate=0: nothing commits unless a call faults.  The deadline
    # expiry marks the call faulted, so the whole buffered trace commits.
    with obstrace.installed(sample_rate=0.0) as col:
        tb = Testbed(n_nodes=2)
        handler = KVHandler(tb)
        HatRpcServer(tb.node(0), gen, "MiniKV", handler).start()

        def run():
            stub = yield from hatrpc_connect(tb.node(1), tb.node(0), gen,
                                             "MiniKV", deadline=200 * us)
            with pytest.raises(TTransportException) as ei:
                yield from stub.Slow("x")
            assert ei.value.type == TTransportException.TIMED_OUT
            yield from stub.Put("k", "v")          # healthy call: dropped
            return stub._hatrpc.engine

        engine = tb.sim.run(tb.sim.process(run()))
        assert engine.faults.timeouts == 1

        spans = trace_of(col, "Slow")
        root = next(s for s in spans if not s.parent_span_id)
        assert root.status != "ok"
        assert any(s.name == "timeout" and s.kind == "event" for s in spans)
        # the healthy Put stayed unsampled
        assert not any(s.name == "Put" for s in col.spans)
        assert col.dropped_calls >= 1


# -- satellite: FaultCounters stay deduplicated ------------------------------

def test_tracer_reads_the_engines_fault_counters(gen):
    """attach_tracer must NOT create a second FaultCounters: each retry /
    failover decision bumps exactly one counter, on the engine's instance,
    which the tracer merely exposes."""
    tb = Testbed(n_nodes=2)
    handler = KVHandler(tb)
    handler.store["k"] = "v"
    server = HatRpcServer(tb.node(0), gen, "MiniKV", handler).start()
    for ch, srv in zip(server.plan.channels, server.endpoint.servers):
        if ch.transport == "rdma":
            srv.stop()
    box = {}

    def run():
        stub = yield from hatrpc_connect(
            tb.node(1), tb.node(0), gen, "MiniKV",
            idempotent=("Get",), rng=random.Random(42))
        box["tracer"] = attach_tracer(stub._hatrpc.engine, Tracer())
        box["engine"] = stub._hatrpc.engine
        yield from stub.Get("k")
        return None

    tb.sim.run(tb.sim.process(run()))
    tracer, engine = box["tracer"], box["engine"]
    assert tracer.faults is engine.faults          # same object, no copy
    # exactly one failover decision -> exactly one counter bump, visible
    # identically through both names
    assert engine.faults.failovers == 1
    assert tracer.faults.failovers == 1
    retries = sum(1 for _, kind, *_ in engine.fault_trace
                  if kind == "retry")
    assert engine.faults.retries == retries        # one bump per decision
    failovers = sum(1 for _, kind, *_ in engine.fault_trace
                    if kind == "failover")
    assert engine.faults.failovers == failovers
    assert any("faults:" in line for line in tracer.summary_lines())
