"""The install-order footgun warning: installing a registry after
components already captured None must warn, once."""

import warnings

import pytest

import repro.obs as obs


@pytest.fixture(autouse=True)
def reset_footgun_state(monkeypatch):
    """Isolate the module-level detector from the rest of the session."""
    monkeypatch.setattr(obs, "_missed_captures", 0)
    monkeypatch.setattr(obs, "_warned_install_order", False)
    yield
    obs.uninstall()


def test_install_after_capture_warns():
    assert obs.current() is None        # a component constructed too early
    with pytest.warns(obs.ObsInstallOrderWarning, match="1 component"):
        obs.install()


def test_warning_fires_only_once_per_process():
    obs.current()
    with pytest.warns(obs.ObsInstallOrderWarning):
        obs.install()
    obs.uninstall()
    obs.current()                       # miss again...
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # ...but the warning stays quiet
        obs.install()


def test_clean_install_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        reg = obs.install()
    assert obs.current() is reg         # capture after install: no miss


def test_captures_after_install_do_not_poison_later_installs():
    obs.install()
    obs.current()                       # successful capture
    obs.uninstall()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        obs.install()
