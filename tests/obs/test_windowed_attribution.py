"""WindowedAttribution: the ring-buffered live feed behind the tuner."""

import pytest

from repro.obs.attribution import HintKey, WindowedAttribution
from repro.obs.trace import Span


def test_stats_over_exact_window():
    w = WindowedAttribution(window=8)
    for v in (1.0, 2.0, 3.0, 4.0):
        w.observe("k", "call", v)
    st = w.stats("k", "call")
    assert st.count == 4
    assert st.p50 == 2.0
    assert st.p95 == 4.0
    assert st.mean == pytest.approx(2.5)
    assert st.total == pytest.approx(10.0)


def test_window_evicts_oldest_samples():
    w = WindowedAttribution(window=4)
    for v in range(100):
        w.observe("k", "call", float(v))
    st = w.stats("k", "call")
    assert st.count == 4
    assert st.p50 == 97.0            # only 96..99 remain
    assert w.count("k", "call") == 4


def test_keys_and_stages_are_independent():
    w = WindowedAttribution()
    w.observe(("fn", "<=256B"), "call", 1.0)
    w.observe(("fn", ">64KiB"), "call", 9.0)
    w.observe(("fn", "<=256B"), "poll", 5.0)
    assert w.stats(("fn", "<=256B"), "call").p50 == 1.0
    assert w.stats(("fn", ">64KiB"), "call").p50 == 9.0
    assert w.stats(("fn", "<=256B"), "poll").p50 == 5.0
    assert w.stats(("fn", "<=256B"), "network") is None
    assert w.count("missing", "call") == 0


def test_snapshot_and_clear():
    w = WindowedAttribution()
    w.observe("a", "call", 1.0)
    w.observe("b", "call", 2.0)
    snap = w.snapshot()
    assert set(snap) == {"a", "b"}
    assert snap["a"]["call"].count == 1
    w.clear()
    assert w.snapshot() == {}
    assert w.stats("a", "call") is None


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        WindowedAttribution(window=0)


def _span(trace_id, span_id, parent, name, kind, start, end, **attrs):
    return Span(trace_id=trace_id, span_id=span_id, parent_span_id=parent,
                name=name, kind=kind, node="n", start=start, end=end,
                attrs=attrs)


def test_ingest_spans_matches_batch_grouping():
    spans = [
        _span("t1", "r1", "", "Ping", "client", 0.0, 3e-6,
              perf_goal="latency", req_bytes=64, concurrency=4,
              protocol="direct_writeimm"),
        _span("t1", "s1", "r1", "post", "stage", 0.0, 2e-6),
        _span("t2", "s2", "", "orphan-stage", "stage", 0.0, 1e-6),
    ]
    w = WindowedAttribution()
    n = w.ingest_spans(spans)
    assert n == 1                     # the orphan has no root to join
    key = HintKey(perf_goal="latency", payload="<=256B", concurrency=4,
                  protocol="direct_writeimm")
    assert w.stats(key, "post").p50 == pytest.approx(2e-6)
