"""Timeline exporter: valid Chrome trace_event JSON."""

import json

from repro.core.tracing import CallSpan
from repro.obs.timeline import TimelineExporter, export_chrome_trace


def _span(fn="Echo", ch=0, start=1e-6, end=4e-6):
    return CallSpan(function=fn, channel=ch, protocol="direct_writeimm",
                    transport="hatrpc", request_bytes=64, response_bytes=64,
                    start=start, end=end)


def test_complete_event_fields():
    ex = TimelineExporter()
    ex.add_complete("Echo", start=2e-6, duration=3e-6, pid=1, tid=7)
    (ev,) = ex.events
    assert ev["ph"] == "X"
    assert ev["ts"] == 2.0          # sim seconds -> microseconds
    assert ev["dur"] == 3.0
    assert ev["pid"] == 1 and ev["tid"] == 7
    assert ev["name"] == "Echo"


def test_instant_and_counter_events():
    ex = TimelineExporter()
    ex.add_instant("retry", ts=5e-6, tid=3)
    ex.add_counter("inflight", ts=6e-6, values={"calls": 2})
    inst, ctr = ex.events
    assert inst["ph"] == "i" and inst["s"] == "t"
    assert ctr["ph"] == "C" and ctr["args"] == {"calls": 2}


def test_call_spans_create_labeled_tracks():
    ex = TimelineExporter()
    n = ex.add_call_spans([_span(ch=0), _span(ch=2)], pid=4)
    assert n == 2
    meta = [e for e in ex.events if e["ph"] == "M"]
    names = {(e["name"], e.get("tid")) for e in meta}
    assert ("process_name", 0) in names
    assert ("thread_name", 0) in names and ("thread_name", 2) in names
    spans = [e for e in ex.events if e["ph"] == "X"]
    assert all(e["args"]["protocol"] == "direct_writeimm" for e in spans)


def test_fault_trace_becomes_instants():
    ex = TimelineExporter()
    n = ex.add_fault_trace([(1e-5, "retry", "Echo", 0, "timeout"),
                            (2e-5, "failover", "Echo", -1, "breaker")])
    assert n == 2
    evs = [e for e in ex.events if e["ph"] == "i"]
    assert evs[0]["name"] == "retry" and evs[0]["tid"] == 0
    assert evs[1]["tid"] == 999     # sentinel track for channel-less events


def test_json_round_trip(tmp_path):
    path = tmp_path / "trace.json"
    ex = export_chrome_trace(path, spans=[_span()],
                             fault_trace=[(5e-6, "retry", "Echo", 0, "x")])
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ns"
    assert isinstance(doc["traceEvents"], list)
    # Every event carries the required trace_event fields.
    for ev in doc["traceEvents"]:
        assert "ph" in ev and "pid" in ev and "name" in ev
        if ev["ph"] != "M":
            assert "ts" in ev
    assert doc == ex.to_dict()


def test_metadata_deduped():
    ex = TimelineExporter()
    ex.add_call_spans([_span(), _span()])
    meta = [e for e in ex.events if e["ph"] == "M"]
    assert len(meta) == 2  # one process_name + one thread_name
