"""Unit tests for the distributed-trace core: envelope wire format,
span-tree mechanics, head sampling, and the install contract."""

import pytest

from repro.obs import trace


def collector(**kw):
    return trace.TraceCollector(**kw)


def fixed_clock(t=0.0):
    state = {"now": t}

    def now():
        return state["now"]

    now.advance = lambda dt: state.__setitem__("now", state["now"] + dt)
    return now


# -- wire envelope -----------------------------------------------------------

def test_envelope_roundtrip():
    ctx = trace.SpanContext("ab" * 16, "cd" * 8, sampled=True)
    data = trace.pack_envelope(ctx) + b"payload"
    got, rest = trace.split_envelope(data)
    assert got == ctx
    assert rest == b"payload"


def test_envelope_size_is_constant():
    ctx = trace.SpanContext("0" * 32, "0" * 16, sampled=False)
    assert len(trace.pack_envelope(ctx)) == trace.ENVELOPE_BYTES == 30


def test_unenveloped_bytes_pass_through_identically():
    for payload in (b"", b"\x80\x01\x00\x01plain thrift", b"\xc3TR",
                    b"\xc3" + b"x" * 40):
        ctx, rest = trace.split_envelope(payload)
        assert ctx is None
        assert rest == payload


def test_unknown_envelope_version_passes_through():
    ctx = trace.SpanContext("ab" * 16, "cd" * 8)
    data = bytearray(trace.pack_envelope(ctx))
    data[4] = 99                                # version byte
    got, rest = trace.split_envelope(bytes(data))
    assert got is None
    assert rest == bytes(data)


# -- client call lifecycle ---------------------------------------------------

def test_attempts_are_siblings_under_the_root():
    col = collector()
    now = fixed_clock()
    act = col.start_call("Get", "n1", now)
    act.begin_attempt(now())
    now.advance(1e-6)
    act.end_attempt(now(), status="error", error="QPError")
    act.begin_attempt(now())
    now.advance(1e-6)
    act.end_attempt(now())
    act.finish(now())

    spans = {s.name: s for s in col.spans}
    root = spans["Get"]
    assert root.parent_span_id == ""
    a0, a1 = spans["attempt#0"], spans["attempt#1"]
    assert a0.parent_span_id == root.span_id
    assert a1.parent_span_id == root.span_id
    assert a0.status == "error" and a0.attrs["error"] == "QPError"
    assert a1.status == "ok"


def test_stages_nest_under_the_open_attempt():
    col = collector()
    now = fixed_clock()
    act = col.start_call("Get", "n1", now)
    act.begin_attempt(now())
    act.stage("post", now(), now(), nbytes=10)
    act.end_attempt(now())
    act.finish(now())
    spans = {s.name: s for s in col.spans}
    assert spans["post"].parent_span_id == spans["attempt#0"].span_id


def test_fault_event_after_end_attempt_is_root_level():
    col = collector()
    now = fixed_clock()
    act = col.start_call("Get", "n1", now)
    act.begin_attempt(now())
    act.end_attempt(now(), status="error")
    act.event("retry", now())
    act.finish(now(), status="error")
    spans = {s.name: s for s in col.spans}
    assert spans["retry"].parent_span_id == spans["Get"].span_id
    assert spans["retry"].kind == "event"


def test_annotate_enriches_the_innermost_open_stage():
    col = collector()
    now = fixed_clock()
    act = col.start_call("Get", "n1", now)
    act.open_stage("handler", now())
    act.annotate(op="get", key_bytes=3)
    act.close_stage(now())
    act.finish(now())
    spans = {s.name: s for s in col.spans}
    assert spans["handler"].attrs == {"op": "get", "key_bytes": 3}


def test_annotate_falls_back_to_the_root_span():
    col = collector()
    now = fixed_clock()
    act = col.start_call("Get", "n1", now)
    act.annotate(resp_bytes=7)
    act.finish(now())
    root = next(s for s in col.spans if s.name == "Get")
    assert root.attrs["resp_bytes"] == 7


def test_late_span_after_finish_commits_directly():
    # A detached NIC process may record its network stage after the RPC
    # returned; the span must still land in the committed trace.
    col = collector()
    now = fixed_clock()
    act = col.start_call("Get", "n1", now)
    act.finish(now())
    before = len(col.spans)
    act.stage("network", now(), now())
    assert len(col.spans) == before + 1


def test_late_span_on_a_dropped_call_is_dropped():
    col = collector(sample_rate=0.0)
    now = fixed_clock()
    act = col.start_call("Get", "n1", now)
    act.finish(now())
    assert col.spans == []
    act.stage("network", now(), now())
    assert col.spans == []


# -- envelope emission policy ------------------------------------------------

def test_no_envelope_when_unsampled_and_unfaulted():
    col = collector(sample_rate=0.0)
    act = col.start_call("Get", "n1", fixed_clock())
    assert act.envelope() == b""


def test_envelope_appears_once_the_call_faults():
    col = collector(sample_rate=0.0)
    now = fixed_clock()
    act = col.start_call("Get", "n1", now)
    assert act.envelope() == b""
    act.event("timeout", now())                # marks the call faulted
    act.begin_attempt(now())
    env = act.envelope()
    ctx, rest = trace.split_envelope(env + b"x")
    assert ctx is not None and rest == b"x"
    assert ctx.trace_id == act.trace_id


def test_envelope_carries_the_open_attempt_span_id():
    col = collector()
    now = fixed_clock()
    act = col.start_call("Get", "n1", now)
    act.begin_attempt(now())
    ctx, _ = trace.split_envelope(act.envelope())
    assert ctx.span_id == act._attempt.span_id
    assert ctx.span_id != act.root_span_id


# -- sampling ----------------------------------------------------------------

def test_faulted_call_commits_even_at_sample_rate_zero():
    col = collector(sample_rate=0.0)
    now = fixed_clock()
    act = col.start_call("Get", "n1", now)
    act.event("retry", now())
    act.finish(now())
    assert col.committed_calls == 1
    assert any(s.name == "retry" for s in col.spans)


def test_sampling_is_seed_deterministic():
    def run(seed):
        col = collector(sample_rate=0.5, seed=seed)
        now = fixed_clock()
        kept = []
        for i in range(50):
            act = col.start_call(f"c{i}", "n1", now)
            act.finish(now())
            kept.append(act.sampled)
        return kept

    assert run(7) == run(7)
    assert run(7) != run(8)                    # vanishing-probability flake
    k = run(7)
    assert 0 < sum(k) < len(k)                 # both outcomes occur


def test_sample_rate_bounds_validated():
    with pytest.raises(ValueError):
        collector(sample_rate=1.5)
    with pytest.raises(ValueError):
        collector(sample_rate=-0.1)


def test_ids_are_deterministic_across_runs():
    def ids():
        col = collector(seed=3)
        act = col.start_call("Get", "n1", fixed_clock())
        act.finish(0.0)
        return [(s.trace_id, s.span_id) for s in col.spans]

    assert ids() == ids()


# -- server calls ------------------------------------------------------------

def test_server_call_parents_to_the_wire_context():
    col = collector()
    now = fixed_clock()
    ctx = trace.SpanContext("ab" * 16, "cd" * 8)
    srv = col.server_call(ctx, "server", "n0", now)
    srv.stage("poll", now(), now())
    srv.finish(now())
    root = next(s for s in col.spans if s.name == "server")
    assert root.trace_id == ctx.trace_id
    assert root.parent_span_id == ctx.span_id
    assert root.kind == "server"


# -- trees / rendering -------------------------------------------------------

def test_build_trees_orphan_parent_becomes_root():
    col = collector()
    now = fixed_clock()
    ctx = trace.SpanContext("ab" * 16, "cd" * 8)  # client side never kept
    srv = col.server_call(ctx, "server", "n0", now)
    srv.finish(now())
    roots, children = trace.build_trees(col.spans)
    assert [r.name for r in roots] == ["server"]


def test_format_trace_renders_nested_tree():
    col = collector()
    now = fixed_clock()
    act = col.start_call("Get", "n1", now)
    act.begin_attempt(now())
    act.stage("post", now(), now())
    act.end_attempt(now())
    act.finish(now())
    text = trace.format_trace(col.spans)
    assert "Get" in text and "attempt#0" in text and "post" in text
    # the stage is indented under the attempt
    post_line = next(ln for ln in text.splitlines() if "post" in ln)
    attempt_line = next(ln for ln in text.splitlines()
                        if "attempt#0" in ln)
    assert post_line.index("post") > attempt_line.index("attempt#0")
    assert trace.format_trace([]) == "(empty trace)"


# -- install contract --------------------------------------------------------

def test_install_uninstall_current():
    assert trace.current() is None
    col = trace.install(sample_rate=0.25)
    try:
        assert trace.current() is col
        assert col.sample_rate == 0.25
    finally:
        trace.uninstall()
    assert trace.current() is None


def test_installed_context_manager():
    with trace.installed() as col:
        assert trace.current() is col
    assert trace.current() is None
