"""Histogram-restart visibility in the sampler stream.

Regression: when a histogram's count went backwards between samples (the
instrumented component restarted), the sampler silently substituted the
full post-restart state for the window delta -- the splice was
indistinguishable from a clean window in the stream.  It now emits a
``histogram_restart`` annotation and a cumulative ``<name>.restarts``
series next to the tainted one.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import JsonlSink, MetricsSampler
from repro.sim.core import Simulator

INTERVAL = 1.0


def _restart(h):
    """What a component reboot looks like to the sampler: the histogram
    object is re-created, i.e. its cumulative state snaps back."""
    h.count = 0
    h.total = 0.0
    h.buckets.clear()


def test_histogram_restart_is_annotated_and_counted(tmp_path):
    sim = Simulator()
    reg = MetricsRegistry()
    h = reg.histogram("rpc.lat")
    path = tmp_path / "stream.jsonl"
    sink = JsonlSink(path)
    sampler = MetricsSampler(sim, reg, interval=INTERVAL, sink=sink)

    def driver():
        for _ in range(3):
            h.record(2e-6)
        yield sim.timeout(1.5)              # window 1: clean, 3 samples
        _restart(h)
        h.record(4e-6)
        yield sim.timeout(1.0)              # window 2: restarted mid-window
        h.record(8e-6)
        yield sim.timeout(1.0)              # window 3: clean again

    sampler.start()
    sim.process(driver())
    sim.run(until=3.8)
    sampler.stop(final_sample=False)
    sink.close()

    restarts = [e for e in sampler.events if e["kind"] == "histogram_restart"]
    assert len(restarts) == 1
    assert restarts[0]["name"] == "rpc.lat"
    assert restarts[0]["prev_count"] == 3 and restarts[0]["count"] == 1
    # cumulative series appears from the restart on, and stays flat after
    s = sampler.get("rpc.lat.restarts")
    assert s is not None
    assert [v for _, v in s] == [1.0, 1.0]
    # the annotation also landed in the stream file for offline readers
    text = path.read_text()
    assert '"histogram_restart"' in text and '"rpc.lat"' in text


def test_first_appearance_of_a_histogram_is_not_a_restart():
    sim = Simulator()
    reg = MetricsRegistry()
    sampler = MetricsSampler(sim, reg, interval=INTERVAL)

    def driver():
        yield sim.timeout(1.2)
        # registered AFTER the sampler primed: first delta covers its
        # whole history, which is correct and not a restart
        h = reg.histogram("late.lat")
        h.record(1e-6)
        yield sim.timeout(1.0)

    sampler.start()
    sim.process(driver())
    sim.run(until=2.8)
    sampler.stop(final_sample=False)

    assert [e for e in sampler.events if e["kind"] == "histogram_restart"] \
        == []
    assert sampler.get("late.lat.restarts") is None


def test_restart_still_reports_post_restart_window_rates():
    # The splice substitutes post-restart state for the delta (the best
    # available answer); the fix adds visibility, it must not change the
    # numbers themselves.
    sim = Simulator()
    reg = MetricsRegistry()
    h = reg.histogram("x")
    sampler = MetricsSampler(sim, reg, interval=INTERVAL)

    def driver():
        for _ in range(5):
            h.record(1e-6)
        yield sim.timeout(1.5)
        _restart(h)
        h.record(3e-6)
        h.record(3e-6)
        yield sim.timeout(1.0)

    sampler.start()
    sim.process(driver())
    sim.run(until=2.8)
    sampler.stop(final_sample=False)

    rates = [v for _, v in sampler.get("x.rate")]
    assert rates[0] == 5.0
    assert rates[1] == 2.0                  # the post-restart count
    means = [v for _, v in sampler.get("x.mean")]
    assert means[1] == 3e-6
