"""Property tests: histogram bucket/merge correctness vs exact statistics."""

import math

from hypothesis import given, settings, strategies as st

from repro.bench.stats import percentile as exact_percentile
from repro.obs.metrics import Histogram

samples_st = st.lists(st.floats(1e-8, 1e3, allow_nan=False,
                                allow_infinity=False),
                      min_size=1, max_size=200)


@given(samples_st, st.sampled_from([50, 90, 95, 99]))
@settings(max_examples=100)
def test_percentile_within_one_bucket_of_exact(samples, p):
    """Reported percentile q satisfies exact <= q <= exact * growth."""
    h = Histogram("h", lowest=1e-9, growth=2.0)
    for v in samples:
        h.record(v)
    exact = exact_percentile(samples, p)
    reported = h.percentile(p)
    # Never an underestimate beyond float slop; at most one bucket over
    # (the clamp to max_value can only tighten the upper side).
    assert reported >= exact * (1 - 1e-9)
    assert reported <= exact * h.growth * (1 + 1e-9)


@given(samples_st)
@settings(max_examples=100)
def test_exact_stats_match(samples):
    h = Histogram("h")
    for v in samples:
        h.record(v)
    assert h.count == len(samples)
    assert h.min == min(samples)
    assert h.max == max(samples)
    assert math.isclose(h.mean, sum(samples) / len(samples),
                        rel_tol=1e-9, abs_tol=1e-18)


@given(samples_st, samples_st)
@settings(max_examples=100)
def test_merge_equals_recording_concatenation(a_samples, b_samples):
    """merge(a, b) has exactly the buckets of a histogram fed a+b."""
    a = Histogram("h", lowest=1e-9, growth=2.0)
    b = Histogram("h", lowest=1e-9, growth=2.0)
    both = Histogram("h", lowest=1e-9, growth=2.0)
    for v in a_samples:
        a.record(v)
        both.record(v)
    for v in b_samples:
        b.record(v)
        both.record(v)
    m = a.merge(b)
    assert m.buckets == both.buckets
    assert m.count == both.count
    assert m.min == both.min and m.max == both.max
    assert math.isclose(m.total, both.total, rel_tol=1e-9, abs_tol=1e-18)
    # Merge commutes on everything quantiles are computed from.
    m2 = b.merge(a)
    assert m2.buckets == m.buckets


@given(samples_st)
@settings(max_examples=50)
def test_percentiles_monotone(samples):
    h = Histogram("h")
    for v in samples:
        h.record(v)
    prev = h.percentile(0)
    for p in (10, 25, 50, 75, 90, 99, 100):
        cur = h.percentile(p)
        assert cur >= prev
        prev = cur
