"""End-to-end: an installed registry sees every instrumented layer."""

import pytest

from repro import obs
from repro.bench.proto_runner import ProtoBenchSpec, run_protocol_bench
from repro.core.runtime import HatRpcServer, hatrpc_connect
from repro.idl import load_idl
from repro.testbed import Testbed

IDL = """
service ObsSvc {
    hint: concurrency = 1;

    string Echo(1: string x) [ hint: perf_goal = latency; ]
}
"""


@pytest.fixture
def registry():
    with obs.installed() as reg:
        yield reg


def test_protocol_bench_populates_all_layers(registry):
    spec = ProtoBenchSpec(protocol="eager_sendrecv", payload=256,
                          n_clients=2, iters=8, warmup=3)
    run_protocol_bench(spec)
    ncalls = spec.n_clients * (spec.iters + spec.warmup)  # warmup included
    flat = registry.flat_values()
    # proto layer
    assert flat["proto.eager_sendrecv.ops"] == ncalls
    assert flat["proto.eager_sendrecv.server_requests"] >= ncalls
    assert flat["proto.eager_sendrecv.latency.count"] == ncalls
    assert flat["proto.eager_sendrecv.doorbells"] > 0
    assert flat["proto.eager_sendrecv.req_bytes"] == ncalls * 256
    # verbs datapath
    assert flat["verbs.doorbells"] > 0
    assert flat["verbs.wrs_posted"] >= flat["verbs.doorbells"]
    assert flat["cq.completions"] > 0
    assert flat["cq.wait_busy"] > 0
    # netfab probe
    assert flat["netfab.messages_sent"] > 0
    assert flat["netfab.bytes_sent"] > 0


def test_engine_metrics_and_fault_probe(registry):
    gen = load_idl(IDL, "obs_itest_gen")
    tb = Testbed(n_nodes=2)

    class H:
        def Echo(self, x):
            return x

    HatRpcServer(tb.node(0), gen, "ObsSvc", H()).start()

    def run():
        stub = yield from hatrpc_connect(tb.node(1), tb.node(0), gen,
                                         "ObsSvc")
        for _ in range(5):
            yield from stub.Echo("hello")
        return stub._hatrpc.engine

    engine = tb.sim.run(tb.sim.process(run()))
    flat = registry.flat_values()
    assert flat["engine.calls"] == 5
    assert flat["engine.call_latency.count"] == 5
    assert flat["engine.channels_opened"] >= 1
    proto = engine.plan.channels[0].protocol
    assert flat[f"engine.{proto}.ops"] == 5
    # Selector decision counters were recorded at plan-build time.
    assert any(k.startswith("selector.") and v >= 1
               for k, v in flat.items())
    # FaultCounters fold in as a probe group (all zero on a clean run).
    snap = registry.snapshot()
    assert snap["probes"]["faults"]["retries"] == 0
    assert snap["probes"]["faults"]["timeouts"] == 0
    # The per-channel inflight gauge drained to zero but saw traffic.
    idx = engine.plan.routes["Echo"].channel
    assert flat[f"engine.ch{idx}.inflight.value"] == 0
    assert flat[f"engine.ch{idx}.inflight.high_water"] >= 1


def test_counters_safe_across_sim_processes(registry):
    """N interleaved sim coroutines all update shared instruments."""
    tb = Testbed(n_nodes=1)
    c = registry.counter("shared")
    g = registry.gauge("depth")

    def worker():
        for _ in range(100):
            c.inc()
            g.inc()
            yield tb.sim.timeout(1e-7)
            g.dec()

    procs = [tb.sim.process(worker()) for _ in range(8)]
    for p in procs:
        tb.sim.run(p)
    assert c.value == 800
    assert g.value == 0
    assert g.high_water >= 1


def test_disabled_components_carry_no_instruments():
    assert obs.current() is None
    tb = Testbed(n_nodes=2)
    assert tb.node(0).nic._m_doorbells is None
    from repro.core.engine import HatRpcEngine, pinned_plan
    from repro.sim.units import KiB
    from repro.verbs.cq import PollMode
    plan = pinned_plan("Svc", ["Echo"], "direct_writeimm", PollMode.BUSY,
                       max_msg=8 * KiB)
    engine = HatRpcEngine(tb.node(1), plan)
    assert engine._obs is None and engine._m_calls is None
