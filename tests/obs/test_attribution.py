"""Hint attribution: grouping stage timings by resolved hint tuple, and
the Chrome-JSON round trip that feeds scripts/obs_dump.py."""

from repro.obs import trace
from repro.obs.attribution import (HintKey, attribution_table,
                                   hint_attribution, payload_class,
                                   spans_from_chrome, _percentile)
from repro.obs.timeline import TimelineExporter
from repro.sim.units import KiB


def test_payload_classes():
    assert payload_class(None) == "unknown"
    assert payload_class(0) == "<=256B"
    assert payload_class(256) == "<=256B"
    assert payload_class(257) == "<=4KiB"
    assert payload_class(4 * KiB) == "<=4KiB"
    assert payload_class(64 * KiB) == "<=64KiB"
    assert payload_class(64 * KiB + 1) == ">64KiB"


def test_percentile_is_exact_nearest_rank():
    vals = sorted([10.0, 20.0, 30.0, 40.0])
    assert _percentile(vals, 50) == 20.0
    assert _percentile(vals, 95) == 40.0
    assert _percentile([7.0], 50) == 7.0


def _make_traced_call(col, name, perf_goal, req_bytes, post_dur,
                      with_server=True):
    t = [0.0]

    def now():
        return t[0]

    act = col.start_call(name, "n1", now,
                         attrs={"perf_goal": perf_goal,
                                "req_bytes": req_bytes,
                                "concurrency": 4,
                                "protocol": "direct_writeimm"})
    act.begin_attempt(now())
    act.stage("serialize", 0.0, 0.0, nbytes=req_bytes)
    t[0] += post_dur
    act.stage("post", 0.0, t[0])
    if with_server:
        ctx, _ = trace.split_envelope(act.envelope())
        srv = col.server_call(ctx, "server", "n0", now)
        srv.stage("handler", t[0], t[0] + 1e-6)
        srv.finish(t[0] + 1e-6)
    act.end_attempt(t[0])
    act.finish(t[0])


def test_grouping_by_hint_tuple_and_server_join():
    col = trace.TraceCollector()
    _make_traced_call(col, "Ping", "latency", 64, 2e-6)
    _make_traced_call(col, "Ping", "latency", 64, 4e-6)
    _make_traced_call(col, "Post", "throughput", 64 * KiB, 10e-6)

    report = hint_attribution(col.spans)
    lat = HintKey("latency", "<=256B", 4, "direct_writeimm")
    tput = HintKey("throughput", "<=64KiB", 4, "direct_writeimm")
    assert set(report) == {lat, tput}

    assert report[lat]["post"].count == 2
    assert report[lat]["post"].p50 == 2e-6
    assert report[lat]["post"].p95 == 4e-6
    assert report[lat]["post"].mean == 3e-6
    # zero-duration stages are kept -- an honest 0.00 row
    assert report[lat]["serialize"].count == 2
    assert report[lat]["serialize"].p95 == 0.0
    # server-side handler stages joined through the shared trace_id
    assert report[lat]["handler"].count == 2
    assert report[tput]["handler"].count == 1


def test_orphan_server_spans_are_skipped():
    col = trace.TraceCollector()
    ctx = trace.SpanContext("ab" * 16, "cd" * 8)
    srv = col.server_call(ctx, "server", "n0", lambda: 0.0)
    srv.stage("handler", 0.0, 1e-6)
    srv.finish(1e-6)
    assert hint_attribution(col.spans) == {}
    assert attribution_table(col.spans) == "(no attributable stage spans)"


def test_attribution_table_prints_tuple_once_per_block():
    col = trace.TraceCollector()
    _make_traced_call(col, "Ping", "latency", 64, 2e-6)
    text = attribution_table(col.spans)
    label = "latency/<=256B/c=4/direct_writeimm"
    assert text.count(label) == 1
    assert "serialize" in text and "post" in text and "handler" in text
    assert "p50(us)" in text and "p95(us)" in text


def test_chrome_roundtrip_preserves_tree_and_attribution():
    col = trace.TraceCollector()
    _make_traced_call(col, "Ping", "latency", 64, 2e-6)

    ex = TimelineExporter()
    ex.add_trace_spans(col.spans)
    doc = ex.to_dict()
    loaded = spans_from_chrome(doc)
    assert len(loaded) == len(col.spans)

    by_id = {s.span_id: s for s in loaded}
    orig_by_id = {s.span_id: s for s in col.spans}
    for sid, span in by_id.items():
        orig = orig_by_id[sid]
        assert span.trace_id == orig.trace_id
        assert span.parent_span_id == orig.parent_span_id
        assert span.kind == orig.kind
        assert span.node == orig.node
        assert abs(span.start - orig.start) < 1e-9
        assert abs(span.duration - orig.duration) < 1e-9

    # the attribution table computed from the file matches the live one
    assert attribution_table(loaded) == attribution_table(col.spans)
    # and the tree renders identically
    assert trace.format_trace(loaded) == trace.format_trace(col.spans)


def test_exporter_gives_each_node_its_own_pid():
    col = trace.TraceCollector()
    _make_traced_call(col, "Ping", "latency", 64, 2e-6)
    ex = TimelineExporter()
    ex.add_trace_spans(col.spans)
    events = ex.to_dict()["traceEvents"]
    names = {ev["args"]["name"]: ev["pid"] for ev in events
             if ev.get("ph") == "M" and ev["name"] == "process_name"}
    assert "node n1" in names and "node n0" in names
    assert names["node n1"] != names["node n0"]
    span_events = [ev for ev in events if ev.get("ph") == "X"]
    assert {ev["pid"] for ev in span_events} == set(names.values())
