"""Property tests for the telemetry substrate: ring-buffer eviction
ordering, and counter-rate computation across series wrap-around and
counter restarts."""

import math

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import MetricsSampler, RingBuffer
from repro.sim.core import Simulator

INTERVAL = 1.0


# -- ring-buffer eviction ordering ------------------------------------------

@given(st.integers(1, 16), st.integers(0, 200))
@settings(max_examples=200)
def test_ring_buffer_keeps_newest_in_append_order(capacity, n):
    rb = RingBuffer(capacity)
    for i in range(n):
        rb.append(i)
    survivors = list(rb)
    assert len(rb) == len(survivors) == min(n, capacity)
    # eviction is FIFO: exactly the oldest appends are gone, and the
    # survivors iterate strictly oldest -> newest
    assert survivors == list(range(max(0, n - capacity), n))
    assert rb.evicted == max(0, n - capacity)
    if n:
        assert rb.last == n - 1
        assert rb[0] == max(0, n - capacity)
        assert rb[-1] == n - 1


@given(st.integers(1, 16), st.lists(st.integers(), max_size=64))
@settings(max_examples=100)
def test_ring_buffer_indexing_matches_iteration(capacity, items):
    rb = RingBuffer(capacity)
    for item in items:
        rb.append(item)
    survivors = list(rb)
    assert [rb[i] for i in range(len(rb))] == survivors
    assert rb[:] == survivors
    assert rb[::-1] == survivors[::-1]


# -- counter-rate windows ----------------------------------------------------

# Each step is one sampling window: either a monotone increment or a
# counter restart (the instrumented component "rebooted" to a fresh,
# usually smaller, value).
_steps = st.lists(
    st.one_of(
        st.tuples(st.just("inc"), st.integers(0, 1000)),
        st.tuples(st.just("restart"), st.integers(0, 50)),
    ),
    min_size=1, max_size=40)


def _expected_rates(steps):
    """The model: delta/dt per window, where a backwards-moving counter is
    treated as restarted and its whole current value is the delta."""
    prev = cur = 0.0
    out = []
    for kind, val in steps:
        cur = cur + val if kind == "inc" else float(val)
        delta = cur - prev if cur >= prev else cur
        out.append(delta / INTERVAL)
        prev = cur
    return out


def _run_sampler(steps, capacity=4096):
    sim = Simulator()
    reg = MetricsRegistry()
    c = reg.counter("x")
    sampler = MetricsSampler(sim, reg, interval=INTERVAL, capacity=capacity)

    def driver():
        # mutate mid-window so the mutation/sample order at tick
        # boundaries is never ambiguous
        yield sim.timeout(INTERVAL / 2)
        for kind, val in steps:
            if kind == "inc":
                c.inc(val)
            else:
                c.value = val
            yield sim.timeout(INTERVAL)

    sampler.start()
    sim.process(driver())
    sim.run(until=(len(steps) + 0.75) * INTERVAL)
    sampler.stop(final_sample=False)
    return sampler


@given(_steps)
@settings(max_examples=60, deadline=None)
def test_counter_rate_windows_and_restart_guard(steps):
    sampler = _run_sampler(steps)
    rates = sampler.series["x.rate"].values()
    expected = _expected_rates(steps)
    assert len(rates) == len(expected)
    for got, want in zip(rates, expected):
        assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-12)


@given(_steps, st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_counter_rates_survive_ring_wraparound(steps, capacity):
    """A wrapped series ring keeps the newest rates verbatim -- eviction
    must never corrupt the delta bookkeeping of the surviving points."""
    sampler = _run_sampler(steps, capacity=capacity)
    series = sampler.series["x.rate"]
    expected = _expected_rates(steps)
    assert series.points.evicted == max(0, len(expected) - capacity)
    tail = expected[-capacity:]
    rates = series.values()
    assert len(rates) == len(tail)
    for got, want in zip(rates, tail):
        assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-12)
    # timestamps of the survivors are the last windows' tick instants
    ticks = [(len(expected) - len(tail) + i + 1) * INTERVAL
             for i in range(len(tail))]
    for got_t, want_t in zip(series.times(), ticks):
        assert math.isclose(got_t, want_t, rel_tol=1e-9)
