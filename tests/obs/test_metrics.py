"""Unit tests for the metrics registry and its instruments."""

import pytest

from repro import obs
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_basics():
    c = Counter("x")
    assert c.value == 0
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_gauge_high_water():
    g = Gauge("depth")
    g.inc(3)
    g.dec()
    g.inc()
    assert g.value == 3
    assert g.high_water == 3
    g.set(10)
    assert g.high_water == 10


def test_histogram_summary_and_percentiles():
    h = Histogram("lat", lowest=1.0, growth=2.0)
    for v in (1.0, 2.0, 4.0, 8.0):
        h.record(v)
    s = h.summary()
    assert s["count"] == 4
    assert s["min"] == 1.0 and s["max"] == 8.0
    assert s["mean"] == pytest.approx(3.75)
    # Reported percentiles are bucket upper edges clamped to observed range.
    assert 1.0 <= s["p50"] <= 8.0
    assert s["p99"] == 8.0


def test_histogram_empty():
    h = Histogram("lat")
    assert h.summary() == {"count": 0}
    for attr in ("mean", "min", "max"):
        with pytest.raises(ValueError, match="no samples"):
            getattr(h, attr)
    with pytest.raises(ValueError, match="no samples"):
        h.percentile(50)


def test_histogram_rejects_bad_input():
    h = Histogram("lat")
    with pytest.raises(ValueError):
        h.record(-1.0)
    h.record(0.5)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_merge_is_pure():
    a = Histogram("lat", lowest=1.0, growth=2.0)
    b = Histogram("lat", lowest=1.0, growth=2.0)
    a.record(1.0)
    b.record(8.0)
    m = a.merge(b)
    assert m is not a and m is not b
    assert m.count == 2 and a.count == 1 and b.count == 1
    assert m.summary()["max"] == 8.0


def test_histogram_merge_geometry_mismatch():
    a = Histogram("lat", lowest=1.0, growth=2.0)
    b = Histogram("lat", lowest=1.0, growth=4.0)
    with pytest.raises(ValueError):
        a.merge(b)


def test_registry_get_or_create():
    reg = MetricsRegistry()
    c1 = reg.counter("a.b")
    c2 = reg.counter("a.b")
    assert c1 is c2
    h1 = reg.histogram("a.h")
    assert reg.histogram("a.h") is h1


def test_registry_snapshot_nesting():
    reg = MetricsRegistry()
    reg.counter("proto.rc.ops").inc(3)
    reg.gauge("engine.ch0.inflight").set(2)
    reg.histogram("engine.lat").record(1e-6)
    snap = reg.snapshot()
    assert snap["counters"]["proto"]["rc"]["ops"] == 3
    assert snap["gauges"]["engine"]["ch0"]["inflight"]["value"] == 2
    assert snap["histograms"]["engine"]["lat"]["count"] == 1


def test_registry_probe_groups_sum():
    reg = MetricsRegistry()
    reg.probe("faults", lambda: {"injected": 1, "recovered": 0})
    reg.probe("faults", lambda: {"injected": 2, "recovered": 5})
    vals = reg.probe_values()
    assert vals["faults"] == {"injected": 3, "recovered": 5}


def test_install_current_uninstall():
    assert obs.current() is None
    reg = MetricsRegistry()
    obs.install(reg)
    try:
        assert obs.current() is reg
    finally:
        obs.uninstall()
    assert obs.current() is None


def test_installed_context_manager():
    with obs.installed() as reg:
        assert obs.current() is reg
        reg.counter("x").inc()
    assert obs.current() is None


def test_flat_values():
    reg = MetricsRegistry()
    reg.counter("a").inc(7)
    flat = reg.flat_values()
    assert flat["a"] == 7
