"""Smoke test: the quickstart's --trace output feeds scripts/obs_dump.py
cleanly -- the artifact pipeline CI publishes nightly."""

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def run(cmd, **kw):
    return subprocess.run(
        cmd, cwd=REPO, capture_output=True, text=True, timeout=120, **kw)


def test_quickstart_trace_then_obs_dump_runs_clean(tmp_path):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.prom"

    qs = run([sys.executable, "examples/quickstart.py",
              "--trace", str(trace_path),
              "--metrics-out", str(metrics_path)])
    assert qs.returncode == 0, qs.stderr
    assert "first trace:" in qs.stdout
    assert "hint attribution" in qs.stdout
    assert trace_path.exists() and metrics_path.exists()

    # the file is well-formed Chrome trace JSON with embedded span ids
    doc = json.loads(trace_path.read_text())
    events = doc["traceEvents"]
    assert any("trace_id" in (ev.get("args") or {}) for ev in events)

    dump = run([sys.executable, "scripts/obs_dump.py", str(trace_path),
                "--metrics", str(metrics_path)])
    assert dump.returncode == 0, dump.stderr
    assert "traces" in dump.stdout
    assert "attempt#0" in dump.stdout          # nested tree rendered
    assert "server" in dump.stdout             # cross-node child present
    assert "hint attribution" in dump.stdout
    assert "hatrpc_" in dump.stdout            # metrics echoed


def test_obs_dump_rejects_garbage_input(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    res = run([sys.executable, "scripts/obs_dump.py", str(bad)])
    assert res.returncode == 2
    assert "error" in res.stderr
