"""Tests for the kernel TCP / IPoIB stack."""

import pytest

from repro.netfab.tcp import TcpError
from repro.sim.units import us
from repro.testbed import Testbed


def echo_server(tb, port):
    lst = tb.node(1).tcp.listen(port)

    def server():
        conn = yield lst.accept()
        while True:
            data = yield from conn.recv(1 << 20)
            if not data:
                return
            yield from conn.send(data.upper())

    tb.sim.process(server())
    return lst


def test_connect_send_recv_roundtrip():
    tb = Testbed(n_nodes=2)
    echo_server(tb, 9090)

    def client():
        conn = yield from tb.node(0).tcp.connect(tb.node(1), 9090)
        yield from conn.send(b"hello world")
        reply = yield from conn.recv_exact(11)
        conn.close()
        return reply

    p = tb.sim.process(client())
    assert tb.sim.run(p) == b"HELLO WORLD"


def test_connect_refused_without_listener():
    tb = Testbed(n_nodes=2)

    def client():
        yield from tb.node(0).tcp.connect(tb.node(1), 1234)

    p = tb.sim.process(client())
    with pytest.raises(TcpError):
        tb.sim.run(p)


def test_large_transfer_segmented_and_intact():
    tb = Testbed(n_nodes=2)
    payload = bytes(range(256)) * 2048  # 512 KiB, > MTU
    lst = tb.node(1).tcp.listen(7)
    got = {}

    def server():
        conn = yield lst.accept()
        got["data"] = yield from conn.recv_exact(len(payload))

    def client():
        conn = yield from tb.node(0).tcp.connect(tb.node(1), 7)
        yield from conn.send(payload)

    tb.sim.process(server())
    tb.sim.process(client())
    tb.sim.run()
    assert got["data"] == payload


def test_recv_exact_eof_raises():
    tb = Testbed(n_nodes=2)
    lst = tb.node(1).tcp.listen(7)
    outcome = {}

    def server():
        conn = yield lst.accept()
        try:
            yield from conn.recv_exact(100)
        except TcpError as e:
            outcome["err"] = str(e)

    def client():
        conn = yield from tb.node(0).tcp.connect(tb.node(1), 7)
        yield from conn.send(b"only 13 bytes")
        yield tb.sim.timeout(1)
        conn.close()

    tb.sim.process(server())
    tb.sim.process(client())
    tb.sim.run()
    assert "13/100" in outcome["err"]


def test_tcp_latency_far_above_rdma_scale():
    """Small-message RPC over IPoIB should be tens of microseconds."""
    tb = Testbed(n_nodes=2)
    echo_server(tb, 9090)
    out = {}

    def client():
        conn = yield from tb.node(0).tcp.connect(tb.node(1), 9090)
        t0 = tb.sim.now
        yield from conn.send(b"x" * 64)
        yield from conn.recv_exact(64)
        out["rtt"] = tb.sim.now - t0

    tb.sim.run(tb.sim.process(client()))
    assert 15 * us < out["rtt"] < 200 * us


def test_double_listen_same_port_rejected():
    tb = Testbed(n_nodes=2)
    tb.node(1).tcp.listen(7)
    with pytest.raises(TcpError):
        tb.node(1).tcp.listen(7)


def test_send_on_closed_connection_raises():
    tb = Testbed(n_nodes=2)
    lst = tb.node(1).tcp.listen(7)
    outcome = {}

    def server():
        conn = yield lst.accept()
        conn.close()

    def client():
        conn = yield from tb.node(0).tcp.connect(tb.node(1), 7)
        yield tb.sim.timeout(1)
        try:
            yield from conn.send(b"data")
        except TcpError:
            outcome["raised"] = True

    tb.sim.process(server())
    tb.sim.process(client())
    tb.sim.run()
    assert outcome.get("raised")
