"""Tests for the wire model."""

import pytest

from repro.sim.units import Gbps, us
from repro.testbed import Testbed


def test_transmit_time_small_message():
    tb = Testbed(n_nodes=2)
    fp = tb.fabric.params

    def proc():
        t0 = tb.sim.now
        yield from tb.fabric.transmit(tb.node(0), tb.node(1), 64)
        return tb.sim.now - t0

    p = tb.sim.process(proc())
    elapsed = tb.sim.run(p)
    ser = (64 + fp.per_message_wire_overhead) / fp.link_rate
    assert elapsed == pytest.approx(2 * ser + fp.wire_latency)


def test_transmit_bandwidth_large_message():
    tb = Testbed(n_nodes=2)
    size = 128 * 1024

    def proc():
        t0 = tb.sim.now
        yield from tb.fabric.transmit(tb.node(0), tb.node(1), size)
        return tb.sim.now - t0

    p = tb.sim.process(proc())
    elapsed = tb.sim.run(p)
    # 128 KiB at 100 Gb/s is ~10.5 us serialization; model charges it twice
    # (egress + ingress) plus 1 us wire latency.
    assert 20 * us < elapsed < 25 * us


def test_rate_cap_slows_transfer():
    tb = Testbed(n_nodes=2)
    size = 1024 * 1024
    times = {}

    def proc(tag, cap):
        t0 = tb.sim.now
        yield from tb.fabric.transmit(tb.node(0), tb.node(1), size, rate_cap=cap)
        times[tag] = tb.sim.now - t0

    p = tb.sim.process(proc("fast", None))
    tb.sim.run(p)
    p = tb.sim.process(proc("slow", 10 * Gbps))
    tb.sim.run(p)
    assert times["slow"] > 5 * times["fast"]


def test_incast_serializes_at_receiver():
    """Two senders to one receiver share its ingress: total time ~2x one flow."""
    tb = Testbed(n_nodes=3)
    size = 512 * 1024
    done = []

    def sender(i):
        yield from tb.fabric.transmit(tb.node(i), tb.node(2), size)
        done.append(tb.sim.now)

    tb.sim.process(sender(0))
    tb.sim.process(sender(1))
    tb.sim.run()
    one_flow_ser = tb.fabric.ports["node2"].wire_time(size)
    # The later finisher must have queued behind the earlier at node2's RX.
    assert done[1] - done[0] >= one_flow_ser * 0.95


def test_negative_size_rejected():
    tb = Testbed(n_nodes=2)

    def proc():
        yield from tb.fabric.transmit(tb.node(0), tb.node(1), -1)

    p = tb.sim.process(proc())
    with pytest.raises(ValueError):
        tb.sim.run(p)


def test_port_counters():
    tb = Testbed(n_nodes=2)

    def proc():
        yield from tb.fabric.transmit(tb.node(0), tb.node(1), 1000)

    tb.sim.run(tb.sim.process(proc()))
    assert tb.fabric.ports["node0"].bytes_sent == 1000
    assert tb.fabric.ports["node1"].bytes_received == 1000
