"""PhasedRun: phase-boundary attribution, per-phase BenchRecords, and a
fast 2-phase mini-scenario smoke (sampler + SLO watchdog end to end)."""

import pytest

from repro.bench.harness import PHASE_ORDER, Phase, PhasedRun
from repro.bench.report import SINK
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloSpec, SloWatchdog
from repro.obs.timeseries import (JsonlSink, MetricsSampler, read_stream,
                                  summarize_stream)
from repro.sim.core import Simulator
from repro.sim.units import us


def _driven_run(warmup=100 * us, measurement=200 * us, cooldown=50 * us,
                **kw):
    sim = Simulator()
    run = PhasedRun(sim, "t", warmup=warmup, measurement=measurement,
                    cooldown=cooldown, **kw)
    driver = sim.process(run.drive())
    sim.run(until=driver)
    return sim, run


# -- phase-boundary attribution ---------------------------------------------

def test_op_straddling_warmup_boundary_counts_as_warmup():
    _, run = _driven_run()
    m = run.window(Phase.MEASUREMENT)
    # starts 1us before MEASUREMENT opens, completes 10us into it:
    # start-time attribution keeps it out of the measured window
    run.record("get", 11 * us, start=m.start - 1 * us)
    assert run.ops(Phase.WARMUP) == 1
    assert run.ops(Phase.MEASUREMENT) == 0
    assert run.throughput(Phase.MEASUREMENT) == 0.0


def test_boundary_instant_is_start_inclusive_to_the_later_phase():
    _, run = _driven_run()
    m = run.window(Phase.MEASUREMENT)
    run.record("get", 5 * us, start=m.start)
    assert run.ops(Phase.MEASUREMENT) == 1
    assert run.ops(Phase.WARMUP) == 0


def test_op_straddling_measurement_end_counts_as_measurement():
    _, run = _driven_run()
    m = run.window(Phase.MEASUREMENT)
    run.record("get", 20 * us, start=m.end - 1 * us)
    assert run.ops(Phase.MEASUREMENT) == 1
    assert run.ops(Phase.COOLDOWN) == 0


def test_ops_outside_every_window_are_unattributed():
    _, run = _driven_run()
    end = run.window(Phase.COOLDOWN).end
    run.record("get", 1 * us, start=-1 * us)
    run.record("get", 1 * us, start=end + 1 * us)
    assert run.unattributed == 2
    assert all(run.ops(p) == 0 for p in PHASE_ORDER)


def test_default_start_is_now_minus_latency():
    sim, run = _driven_run()
    # sim.now is the cooldown close; an op whose latency reaches back into
    # MEASUREMENT attributes there even without an explicit start
    assert sim.now == run.window(Phase.COOLDOWN).end
    run.record("get", run.durations[Phase.COOLDOWN] + 1 * us)
    assert run.ops(Phase.MEASUREMENT) == 1


def test_throughput_counts_only_the_phases_own_ops():
    _, run = _driven_run()
    w = run.window(Phase.WARMUP)
    m = run.window(Phase.MEASUREMENT)
    for i in range(5):
        run.record("get", 1 * us, start=w.start + i * us)
    for i in range(10):
        run.record("get", 1 * us, start=m.start + i * us)
    assert run.ops(Phase.MEASUREMENT) == 10
    assert run.throughput(Phase.MEASUREMENT) == pytest.approx(
        10 / m.duration)
    assert run.throughput(Phase.WARMUP) == pytest.approx(5 / w.duration)


# -- per-phase BenchRecords --------------------------------------------------

def test_emit_phase_records_names_and_gating_directions():
    _, run = _driven_run()
    m = run.window(Phase.MEASUREMENT)
    run.record("get", 2 * us, start=m.start)
    run.record("get", 2 * us, start=run.window(Phase.WARMUP).start)
    saved = list(SINK.records)
    try:
        recs = run.emit_phase_records("figx", name="mini", config={"k": 1})
        by_name = {r.name: r for r in recs}
        assert set(by_name) == {"mini.preparing", "mini.warmup",
                                "mini.measurement", "mini.cooldown"}
        meas = by_name["mini.measurement"]
        # only MEASUREMENT metrics carry regression directions
        assert meas.metrics["tput_kops"]["better"] == "higher"
        assert meas.metrics["lat_us.get.p99"]["better"] == "lower"
        assert meas.meta["phase"] == "measurement"
        assert meas.config == {"k": 1}
        warm = by_name["mini.warmup"]
        assert warm.metrics["tput_kops"]["better"] == "none"
        assert warm.metrics["lat_us.get.p99"]["better"] == "none"
        for rec in recs:
            assert rec.figure == "figx"
            assert rec.metrics["ops"]["better"] == "none"
    finally:
        SINK.records = saved


def test_phase_metrics_duration_matches_window():
    _, run = _driven_run(measurement=300 * us)
    cells = run.phase_metrics(Phase.MEASUREMENT)
    assert cells["duration_us"]["value"] == pytest.approx(300)


# -- 2-phase mini-scenario smoke ---------------------------------------------

def test_two_phase_mini_scenario_smoke(tmp_path):
    """Tier-1 smoke: a tiny warmup+measurement run with live sampling and
    one deterministic mid-measurement latency spike that must raise
    exactly one sustained-SLO violation, attributed to MEASUREMENT."""
    stream = tmp_path / "mini_stream.jsonl"
    sim = Simulator()
    reg = MetricsRegistry()
    sampler = MetricsSampler(sim, reg, interval=10 * us,
                             sink=JsonlSink(str(stream)))
    watchdog = SloWatchdog(
        [SloSpec("get-p99", "bench.op_latency.get.p99", "<", 50 * us,
                 sustain=50 * us, phases=(Phase.MEASUREMENT.value,))],
        registry=reg).attach(sampler)
    run = PhasedRun(sim, "mini", warmup=200 * us, measurement=600 * us,
                    registry=reg, sampler=sampler, watchdog=watchdog)

    def workload():
        while not run.stopped:
            now = sim.now
            lat = 100 * us if 300 * us <= now < 450 * us else 10 * us
            run.record("get", lat, start=now)
            yield sim.timeout(5 * us)

    driver = sim.process(run.drive())
    sim.process(workload())
    sim.run(until=driver)
    run.stop()
    sim.run()

    # attribution: every op landed in a window
    assert run.unattributed == 0
    assert run.ops(Phase.WARMUP) > 0
    assert run.ops(Phase.MEASUREMENT) > 0
    m = run.window(Phase.MEASUREMENT)
    assert m.duration == pytest.approx(600 * us)

    # exactly one violation, in MEASUREMENT, and it recovered
    violations = watchdog.violations
    assert len(violations) == 1
    v = violations[0]
    assert v.phase == Phase.MEASUREMENT.value
    assert m.start <= v.t < m.end
    assert v.recovered_t is not None and v.recovered_t > v.t
    assert watchdog.report()["ok"] is False

    # the stream round-trips: phase-tagged samples plus the SLO events
    digest = summarize_stream(read_stream(str(stream)))
    assert digest["n_samples"] >= 20
    assert [p for _, p in digest["phases"]][:3] == [
        "preparing", "warmup", "measurement"]
    assert digest["phases"][-1][1] == "done"
    kinds = {}
    for e in digest["events"]:
        kinds[e["kind"]] = kinds.get(e["kind"], 0) + 1
    assert kinds.get("slo_violation") == 1
    assert kinds.get("slo_recovered") == 1
    assert digest["slo"]["get-p99"]["violations"] == 1
