"""BenchRecord schema: round-trips, config hashing, sink behaviour."""

import json

import pytest

from repro.bench.report import (SCHEMA_VERSION, BenchRecord, BenchSink,
                                config_hash, default_bench_path, load_bench,
                                metric, write_bench)


def rec(**kw):
    kw.setdefault("figure", "fig04")
    kw.setdefault("name", "protocol_latency")
    kw.setdefault("scale", "small")
    kw.setdefault("config", {"sizes": [64, 512]})
    kw.setdefault("metrics", {"lat_us.busy.rc.64": metric(3.2, "us")})
    return BenchRecord(**kw)


def test_metric_validates_better():
    assert metric(1.0)["better"] == "lower"
    assert metric(1.0, better="higher")["better"] == "higher"
    with pytest.raises(ValueError):
        metric(1.0, better="sideways")


def test_config_hash_stable_and_order_insensitive():
    h1 = config_hash({"a": 1, "b": [2, 3]})
    h2 = config_hash({"b": [2, 3], "a": 1})
    assert h1 == h2 and len(h1) == 16
    assert config_hash({"a": 2}) != h1


def test_record_round_trip():
    r = rec(meta={"note": "x"})
    d = r.to_dict()
    assert d["config_hash"] == r.config_hash
    r2 = BenchRecord.from_dict(json.loads(json.dumps(d)))
    assert r2.key == r.key
    assert r2.metrics == r.metrics
    assert r2.config == r.config and r2.meta == r.meta


def test_from_dict_validates():
    with pytest.raises(ValueError, match="missing field"):
        BenchRecord.from_dict({"figure": "f", "name": "n", "scale": "s"})
    with pytest.raises(ValueError, match="no value"):
        BenchRecord.from_dict({"figure": "f", "name": "n", "scale": "s",
                               "metrics": {"m": {"unit": "us"}}})


def test_write_and_load_bench(tmp_path):
    path = tmp_path / "BENCH_x.json"
    write_bench([rec()], str(path))
    doc = json.loads(path.read_text())
    assert doc["schema"] == SCHEMA_VERSION
    assert doc["scale"] == "small"
    records = load_bench(str(path))
    assert len(records) == 1 and records[0].figure == "fig04"


def test_load_bench_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": 99, "records": []}))
    with pytest.raises(ValueError, match="schema"):
        load_bench(str(path))


def test_default_bench_path_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_OUT", raising=False)
    monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
    assert default_bench_path() == "BENCH_full.json"
    monkeypatch.setenv("REPRO_BENCH_OUT", "/tmp/custom.json")
    assert default_bench_path() == "/tmp/custom.json"
    monkeypatch.delenv("REPRO_BENCH_SCALE")
    monkeypatch.delenv("REPRO_BENCH_OUT")
    assert default_bench_path() == "BENCH_small.json"


def test_sink_replaces_same_key(tmp_path):
    sink = BenchSink()
    sink.add(rec(metrics={"m": metric(1.0)}))
    sink.add(rec(metrics={"m": metric(2.0)}))
    assert len(sink.records) == 1
    assert sink.records[0].metrics["m"]["value"] == 2.0
    path = sink.flush(str(tmp_path / "out.json"))
    assert path is not None
    assert load_bench(path)[0].metrics["m"]["value"] == 2.0


def test_sink_empty_flush_is_noop(tmp_path):
    sink = BenchSink()
    assert sink.flush(str(tmp_path / "never.json")) is None
    assert not (tmp_path / "never.json").exists()
