"""Latency statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.bench import LatencyStats, percentile


def test_percentile_basics():
    s = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(s, 0) == 1.0
    assert percentile(s, 50) == 3.0
    assert percentile(s, 100) == 5.0
    assert percentile(s, 99) == 5.0


def test_percentile_unsorted_input():
    assert percentile([5.0, 1.0, 3.0], 50) == 3.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([1.0], -1)


def test_latency_stats_accumulation():
    st_ = LatencyStats()
    for v in (3.0, 1.0, 2.0):
        st_.record(v)
    assert st_.count == 3
    assert st_.mean == pytest.approx(2.0)
    assert st_.min == 1.0 and st_.max == 3.0
    assert st_.p50 == 2.0


def test_merge_returns_new_object():
    a = LatencyStats([1.0, 2.0])
    b = LatencyStats([3.0])
    merged = a.merge(b)
    assert merged is not a and merged is not b
    assert merged.count == 3 and merged.max == 3.0
    # The operands are untouched.
    assert a.count == 2 and b.count == 1


def test_empty_accessors_raise_uniformly():
    empty = LatencyStats()
    for attr in ("mean", "min", "max"):
        with pytest.raises(ValueError, match="no samples"):
            getattr(empty, attr)


@given(st.lists(st.floats(0.001, 1000), min_size=1, max_size=200))
def test_percentile_bounds_and_monotone(samples):
    lo = percentile(samples, 0)
    hi = percentile(samples, 100)
    assert min(samples) == lo
    assert max(samples) == hi
    prev = lo
    for p in (10, 25, 50, 75, 90, 99):
        cur = percentile(samples, p)
        assert cur >= prev
        prev = cur


@given(st.lists(st.floats(0.001, 1000), min_size=1, max_size=100))
def test_mean_within_minmax(samples):
    s = LatencyStats(list(samples))
    eps = 1e-9 * max(samples)  # float summation slack
    assert s.min - eps <= s.mean <= s.max + eps
