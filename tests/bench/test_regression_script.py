"""The CI perf gate: scripts/check_bench_regression.py pass/fail paths."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent.parent
_spec = importlib.util.spec_from_file_location(
    "check_bench_regression", ROOT / "scripts" / "check_bench_regression.py")
cbr = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(cbr)

from repro.bench.report import BenchRecord, metric, write_bench  # noqa: E402


def bench_file(tmp_path, fname, lat=10.0, tput=100.0, config=None,
               extra=None):
    recs = [BenchRecord(
        figure="fig04", name="latency", scale="small",
        config=config or {"sizes": [64]},
        metrics={"lat_us.busy.64": metric(lat, "us", "lower"),
                 "tput_kops.64": metric(tput, "kops", "higher"),
                 "cells": metric(42, "cells", "none")})]
    if extra:
        recs.extend(extra)
    path = tmp_path / fname
    write_bench(recs, str(path))
    return str(path)


def test_identical_files_pass(tmp_path, capsys):
    base = bench_file(tmp_path, "base.json")
    cur = bench_file(tmp_path, "cur.json")
    assert cbr.main([base, cur]) == 0
    assert "PASS" in capsys.readouterr().out


def test_degraded_latency_fails(tmp_path, capsys):
    base = bench_file(tmp_path, "base.json", lat=10.0)
    cur = bench_file(tmp_path, "cur.json", lat=12.0)   # +20% > 10% tol
    assert cbr.main([base, cur]) == 1
    out = capsys.readouterr().out
    assert "REGRESSED" in out and "lat_us.busy.64" in out


def test_degraded_throughput_fails(tmp_path):
    base = bench_file(tmp_path, "base.json", tput=100.0)
    cur = bench_file(tmp_path, "cur.json", tput=80.0)  # -20% > 10% tol
    assert cbr.main([base, cur]) == 1


def test_within_tolerance_passes(tmp_path):
    base = bench_file(tmp_path, "base.json", lat=10.0, tput=100.0)
    cur = bench_file(tmp_path, "cur.json", lat=10.5, tput=96.0)
    assert cbr.main([base, cur]) == 0


def test_override_tolerance(tmp_path):
    base = bench_file(tmp_path, "base.json", lat=10.0)
    cur = bench_file(tmp_path, "cur.json", lat=12.0)
    # A 25% latency tolerance forgives the 20% slip.
    assert cbr.main([base, cur, "--override", "lat_us.*=0.25"]) == 0
    # But tightening the default to 5% keeps other metrics gated.
    assert cbr.main([base, cur, "--tolerance", "0.05",
                     "--override", "lat_us.*=0.25"]) == 0


def test_informational_metrics_never_gate(tmp_path):
    base = bench_file(tmp_path, "base.json")
    cur_path = tmp_path / "cur.json"
    recs = [BenchRecord(
        figure="fig04", name="latency", scale="small",
        config={"sizes": [64]},
        metrics={"lat_us.busy.64": metric(10.0, "us", "lower"),
                 "tput_kops.64": metric(100.0, "kops", "higher"),
                 "cells": metric(9999, "cells", "none")})]
    write_bench(recs, str(cur_path))
    assert cbr.main([base, str(cur_path)]) == 0


def test_config_change_skips_comparison(tmp_path, capsys):
    base = bench_file(tmp_path, "base.json", lat=10.0,
                      config={"sizes": [64]})
    cur = bench_file(tmp_path, "cur.json", lat=99.0,
                     config={"sizes": [64, 512]})
    assert cbr.main([base, cur]) == 0
    assert "config changed" in capsys.readouterr().out


def test_missing_record_fails_the_gate(tmp_path, capsys):
    # A benchmark that silently stops running is a regression: the gate
    # must fail, not shrug (this used to warn-and-pass).
    extra = [BenchRecord(figure="fig05", name="tput", scale="small",
                         metrics={"m": metric(1.0)})]
    base = bench_file(tmp_path, "base.json", extra=extra)
    cur = bench_file(tmp_path, "cur.json")
    assert cbr.main([base, cur]) == 1
    out = capsys.readouterr().out
    assert "MISSING" in out and "missing from current run" in out
    assert "FAIL" in out


def test_missing_metric_fails_the_gate(tmp_path, capsys):
    base = bench_file(tmp_path, "base.json")
    cur_path = tmp_path / "cur.json"
    recs = [BenchRecord(
        figure="fig04", name="latency", scale="small",
        config={"sizes": [64]},
        metrics={"lat_us.busy.64": metric(10.0, "us", "lower")})]
    write_bench(recs, str(cur_path))                 # tput_kops.64 vanished
    assert cbr.main([base, str(cur_path)]) == 1
    assert "metric tput_kops.64 missing" in capsys.readouterr().out


def test_allow_missing_downgrades_to_warning(tmp_path, capsys):
    extra = [BenchRecord(figure="fig05", name="tput", scale="small",
                         metrics={"m": metric(1.0)})]
    base = bench_file(tmp_path, "base.json", extra=extra)
    cur = bench_file(tmp_path, "cur.json")
    assert cbr.main([base, cur, "--allow-missing"]) == 0
    out = capsys.readouterr().out
    assert "WARNING" in out and "PASS" in out


def test_summary_markdown_worst_offenders_first(tmp_path):
    extra = [BenchRecord(figure="fig05", name="tput", scale="small",
                         metrics={"m": metric(1.0)})]
    base = bench_file(tmp_path, "base.json", lat=10.0, tput=100.0,
                      extra=extra)
    # lat +100% (worst), tput -15% (second), and one missing record.
    cur = bench_file(tmp_path, "cur.json", lat=20.0, tput=85.0)
    summary = tmp_path / "summary.md"
    assert cbr.main([base, cur, "--summary", str(summary)]) == 1
    text = summary.read_text()
    assert "FAIL" in text and "2 regressed" in text and "1 missing" in text
    body = [ln for ln in text.splitlines() if ln.startswith("|")]
    order = [ln.split("|")[3].strip() for ln in body[2:]]  # metric column
    assert order[0] == "lat_us.busy.64"                    # worst first
    assert order[1] == "tput_kops.64"
    assert "missing from current run" in order[2]


def test_summary_appends_and_reports_pass(tmp_path):
    base = bench_file(tmp_path, "base.json")
    cur = bench_file(tmp_path, "cur.json")
    summary = tmp_path / "summary.md"
    summary.write_text("# earlier step\n")
    assert cbr.main([base, cur, "--summary", str(summary)]) == 0
    text = summary.read_text()
    assert text.startswith("# earlier step")       # appended, not clobbered
    assert "PASS" in text


def test_missing_file_is_usage_error(tmp_path):
    base = bench_file(tmp_path, "base.json")
    assert cbr.main([base, str(tmp_path / "nope.json")]) == 2


def test_invalid_json_is_usage_error(tmp_path):
    base = bench_file(tmp_path, "base.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    assert cbr.main([base, str(bad)]) == 2


def test_bad_override_is_usage_error(tmp_path):
    base = bench_file(tmp_path, "base.json")
    assert cbr.main([base, base, "--override", "no-equals"]) == 2
