"""Online hint tuner: hysteresis, epoch guard, plan alternates, e2e."""

from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.core.overload import pack_rej
from repro.core.pipeline import EPO_BYTES, pack_epo, split_epo
from repro.core.runtime import HatRpcServer, hatrpc_connect, service_plan_of
from repro.core.tuner import HintTuner, TunerConfig
from repro.idl import load_idl
from repro.testbed import Testbed
from repro.verbs.cq import PollMode

TUNABLE_IDL = """
service Tunable {
    hint: tunable = true;
    binary Echo(1: binary blob) [
        hint: perf_goal = throughput, concurrency = 64;
    ]
}
"""

SMALL = 512
LARGE = 131072


@pytest.fixture(scope="module")
def gen():
    return load_idl(TUNABLE_IDL, "tunable_gen")


@pytest.fixture(scope="module")
def plan(gen):
    return service_plan_of(gen, "Tunable")


class FakeEngine:
    """Just enough engine for driving the tuner's decision loop directly."""

    def __init__(self, plan, now=0.0):
        self.plan = plan
        self.node = SimpleNamespace(sim=SimpleNamespace(now=now))
        self.trace = []

    def retarget(self, fn, idx, choice):
        routes = dict(self.plan.routes)
        routes[fn] = replace(routes[fn], channel=idx, choice=choice)
        self.plan = replace(self.plan, routes=routes)

    def _trace(self, kind, fn, channel, detail=""):
        self.trace.append((kind, fn, channel, detail))


def feed(tuner, eng, fn, nbytes, n, latency=1e-5):
    """n completed calls on fn's current channel."""
    for _ in range(n):
        tuner.observe(fn, nbytes, latency, eng.node.sim.now,
                      eng.plan.routes[fn].channel)


# -- the epoch wire frame ----------------------------------------------------

def test_epoch_frame_roundtrip():
    tagged = pack_epo(7) + b"payload"
    assert len(pack_epo(7)) == EPO_BYTES
    epoch, rest = split_epo(tagged)
    assert epoch == 7 and rest == b"payload"


def test_untagged_bytes_pass_through():
    for raw in (b"", b"x", b"plain thrift message"):
        assert split_epo(raw) == (None, raw)


def test_rejection_frame_not_mistaken_for_epoch():
    rej = pack_rej(0.002)
    epoch, rest = split_epo(rej)
    assert epoch is None and rest == rej


# -- tunable plans -----------------------------------------------------------

def test_tunable_hint_provisions_alternates(plan):
    alts = [ch for ch in plan.channels if ch.alternate]
    assert alts, "tunable=true hint must append alternate channels"
    for ch in alts:
        assert ch.functions == ()
    # Every selector choice reachable over the tuning grid has a channel.
    protos = {(ch.protocol, ch.server_poll) for ch in plan.channels}
    assert ("direct_writeimm", PollMode.BUSY) in protos
    assert ("rfp", PollMode.EVENT) in protos


def test_alternates_deterministic_between_peers(gen):
    a = service_plan_of(gen, "Tunable")
    b = service_plan_of(gen, "Tunable")
    assert a == b


def test_untunable_plan_is_declared_prefix(gen):
    idl = TUNABLE_IDL.replace("hint: tunable = true;", "")
    plain_gen = load_idl(idl, "untunable_gen")
    plain = service_plan_of(plain_gen, "Tunable")
    tuned = service_plan_of(plain_gen, "Tunable", tunable=True)
    assert not any(ch.alternate for ch in plain.channels)
    # Declared channels keep their indices; alternates only append, so a
    # tunable plan routes identically until the tuner acts.
    assert tuned.channels[:len(plain.channels)] == plain.channels
    assert tuned.routes == plain.routes


# -- hysteresis --------------------------------------------------------------

def cfg(**kw):
    base = dict(window=32, epoch_samples=32, min_samples=8,
                confirm_epochs=2, min_dwell=0.0)
    base.update(kw)
    return TunerConfig(**base)


def test_no_switch_below_confidence(plan):
    tuner = HintTuner(cfg(min_samples=64, epoch_samples=8))
    eng = FakeEngine(plan)
    tuner.bind(eng)
    feed(tuner, eng, "Echo", LARGE, 40)     # 5 epochs, all under-confident
    assert tuner.switches == 0 and tuner.epoch == 0
    assert tuner.holds > 0


def test_steady_workload_never_switches(plan):
    tuner = HintTuner(cfg())
    eng = FakeEngine(plan)
    tuner.bind(eng)
    before = eng.plan.routes["Echo"]
    feed(tuner, eng, "Echo", SMALL, 32 * 20)
    assert tuner.switches == 0 and tuner.epoch == 0
    assert eng.plan.routes["Echo"] == before


def test_phase_shift_switches_all_bound_engines(plan):
    tuner = HintTuner(cfg())
    eng1, eng2 = FakeEngine(plan), FakeEngine(plan)
    tuner.bind(eng1)
    tuner.bind(eng2)
    feed(tuner, eng1, "Echo", SMALL, 32 * 2)
    assert tuner.switches == 0
    # Payload regime shifts: needs confirm_epochs consecutive agreements.
    feed(tuner, eng1, "Echo", LARGE, 32)
    assert tuner.switches == 0, "one epoch must not be enough"
    feed(tuner, eng1, "Echo", LARGE, 32)
    assert tuner.switches == 1 and tuner.epoch == 1
    for eng in (eng1, eng2):
        route = eng.plan.routes["Echo"]
        assert route.choice.protocol == "rfp"
        assert eng.plan.channels[route.channel].alternate
    assert [d.kind for d in tuner.decisions] == ["switch"]
    assert ("tuner_switch", "Echo", eng1.plan.routes["Echo"].channel,
            tuner.decisions[0].from_choice + "->" +
            tuner.decisions[0].to_choice + " epoch=1") in \
        [(k, f, c, d) for (k, f, c, d) in eng1.trace]


def test_flapping_workload_is_bounded_by_confirmation(plan):
    tuner = HintTuner(cfg(confirm_epochs=2))
    eng = FakeEngine(plan)
    tuner.bind(eng)
    # The regime flips every epoch: no target ever wins two in a row.
    for _ in range(20):
        feed(tuner, eng, "Echo", SMALL, 32)
        feed(tuner, eng, "Echo", LARGE, 32)
    assert tuner.switches == 0 and tuner.epoch == 0


def test_flapping_bounded_by_improvement_gate(plan):
    # Even with confirmation disabled, identical measured latencies on
    # both choices mean no candidate ever clears the improvement
    # threshold: only the first (unmeasured, prior-driven) switch and at
    # most one back-switch can happen.
    tuner = HintTuner(cfg(confirm_epochs=1))
    eng = FakeEngine(plan)
    tuner.bind(eng)
    for _ in range(20):
        feed(tuner, eng, "Echo", SMALL, 32)
        feed(tuner, eng, "Echo", LARGE, 32)
    assert tuner.switches <= 2
    assert tuner.holds > 0


def test_min_dwell_blocks_rapid_reswitching(plan):
    tuner = HintTuner(cfg(confirm_epochs=1, min_dwell=1.0))
    eng = FakeEngine(plan, now=0.0)
    tuner.bind(eng)
    feed(tuner, eng, "Echo", LARGE, 32)
    assert tuner.switches == 1                 # first switch: dwell clock
    feed(tuner, eng, "Echo", SMALL, 32 * 10)   # wants to switch back...
    assert tuner.switches == 1, "dwell must pin the plan"
    eng.node.sim.now = 2.0                     # ...until the dwell passes
    feed(tuner, eng, "Echo", SMALL, 32)
    assert tuner.switches == 2


def test_switch_rate_cap(plan):
    tuner = HintTuner(cfg(confirm_epochs=1, max_switch_rate=2,
                          rate_window=100.0, improvement_threshold=-10.0))
    # improvement_threshold < 0 approves every measured candidate, so only
    # the rate cap stands between the tuner and a flap per epoch.
    eng = FakeEngine(plan)
    tuner.bind(eng)
    for _ in range(10):
        feed(tuner, eng, "Echo", SMALL, 32)
        feed(tuner, eng, "Echo", LARGE, 32)
    assert tuner.switches == 2


def test_disabled_tuner_leaves_declared_hints(plan):
    tuner = HintTuner(cfg(enabled=False))
    eng = FakeEngine(plan)
    tuner.bind(eng)
    before = eng.plan.routes["Echo"]
    feed(tuner, eng, "Echo", LARGE, 32 * 10)
    assert tuner.switches == 0 and tuner.epoch == 0
    assert not tuner.decisions
    assert eng.plan.routes["Echo"] == before


def test_stale_epoch_samples_dropped(plan):
    tuner = HintTuner(cfg())
    eng = FakeEngine(plan)
    tuner.bind(eng)
    for _ in range(40):
        tuner.observe("Echo", LARGE, 1e-5, 0.0,
                      eng.plan.routes["Echo"].channel, epoch_ok=False)
    assert tuner.stale_samples == 40
    assert tuner.switches == 0 and tuner.epochs("Echo") == 0


def test_urgent_oversize_retargets_immediately():
    idl = """
    service Sized {
        hint: tunable = true;
        binary Echo(1: binary blob) [
            hint: perf_goal = throughput, concurrency = 64,
                  payload_size = 512;
        ]
    }
    """
    sized_gen = load_idl(idl, "sized_gen")
    sized_plan = service_plan_of(sized_gen, "Sized")
    tuner = HintTuner(cfg())
    eng = FakeEngine(sized_plan)
    tuner.bind(eng)
    declared = eng.plan.routes["Echo"].channel
    assert eng.plan.channels[declared].max_msg < LARGE
    tuner.observe_error("Echo", LARGE, declared)
    assert tuner.urgent_switches == 1 and tuner.epoch == 1
    new_ch = eng.plan.channels[eng.plan.routes["Echo"].channel]
    assert new_ch.max_msg >= LARGE


# -- end to end over the real stack ------------------------------------------

def test_e2e_phase_shift_converges_and_guards_epochs(gen):
    tb = Testbed(n_nodes=2)

    class H:
        def Echo(self, blob):
            return blob

    server = HatRpcServer(tb.node(1), gen, "Tunable", H()).start()
    tuner = HintTuner(TunerConfig(epoch_samples=16, min_samples=8,
                                  confirm_epochs=2, min_dwell=0.0))
    ok = []

    def client(i):
        stub = yield from hatrpc_connect(tb.node(0), tb.node(1), gen,
                                         "Tunable", tuner=tuner)
        small, large = b"x" * SMALL, b"y" * LARGE
        for _ in range(20):
            r = yield from stub.Echo(small)
            assert len(r) == SMALL
        for _ in range(8):
            r = yield from stub.Echo(large)
            assert len(r) == LARGE
        ok.append(i)

    for i in range(8):
        tb.sim.process(client(i))
    tb.sim.run()
    assert len(ok) == 8, "every call must stay correct across the switch"
    assert tuner.switches >= 1
    assert tuner._engines[0].plan.routes["Echo"].choice.protocol == "rfp"
    # The server echoed (and therefore saw) the post-switch plan epoch.
    assert server.tuner_epoch_seen >= 1
    # In-flight calls across the switch were marked stale, not mis-counted.
    assert tuner.stale_samples >= 0


def test_e2e_without_tuner_has_no_epoch_state(gen):
    tb = Testbed(n_nodes=2)

    class H:
        def Echo(self, blob):
            return blob

    server = HatRpcServer(tb.node(1), gen, "Tunable", H()).start()
    got = {}

    def client():
        stub = yield from hatrpc_connect(tb.node(0), tb.node(1), gen,
                                         "Tunable")
        got["r"] = yield from stub.Echo(b"q" * 64)

    tb.sim.run(tb.sim.process(client()))
    assert got["r"] == b"q" * 64
    assert server.tuner_epoch_seen == -1, \
        "untuned clients must not put epoch frames on the wire"
