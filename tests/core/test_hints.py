"""Hint schema, merging, and hierarchical resolution tests."""

import pytest
from hypothesis import given, strategies as st

from repro.core.hints import (
    DEFAULT_HINTS,
    HINT_SCHEMA,
    HintError,
    ResolvedHints,
    merge_hint_groups,
    resolve_hints,
    validate_hint,
)
from repro.idl.nodes import Hint, HintGroup


def test_validate_known_keys():
    assert validate_hint("perf_goal", "latency") == "latency"
    assert validate_hint("concurrency", 16) == 16
    assert validate_hint("payload_size", 1024) == 1024
    assert validate_hint("numa_binding", True) is True
    assert validate_hint("transport", "tcp") == "tcp"


@pytest.mark.parametrize("key,value", [
    ("perf_goal", "warp"),
    ("concurrency", 0),
    ("concurrency", "sixteen"),
    ("concurrency", True),        # bools are not ints for hints
    ("payload_size", -1),
    ("transport", "carrier_pigeon"),
    ("polling", "psychic"),
    ("numa_binding", 1),
])
def test_validate_rejects_bad_values(key, value):
    with pytest.raises(HintError):
        validate_hint(key, value)


def test_validate_rejects_unknown_key():
    with pytest.raises(HintError, match="undefined hint key"):
        validate_hint("quantumness", 11)


def test_merge_groups_same_side_later_wins():
    groups = [
        HintGroup("shared", [Hint("perf_goal", "latency"),
                             Hint("concurrency", 4)]),
        HintGroup("shared", [Hint("perf_goal", "throughput")]),
        HintGroup("server", [Hint("polling", "event")]),
    ]
    merged = merge_hint_groups(groups)
    assert merged["shared"] == {"perf_goal": "throughput", "concurrency": 4}
    assert merged["server"] == {"polling": "event"}
    assert merged["client"] == {}


def test_resolution_precedence_chain():
    service = {"shared": {"perf_goal": "latency", "concurrency": 8},
               "server": {"polling": "event"}}
    function = {"shared": {"perf_goal": "throughput"},
                "server": {"payload_size": 65536}}
    r = resolve_hints(service, function, "server")
    # function shared overrides service shared:
    assert r.perf_goal == "throughput"
    # service shared survives when unchallenged:
    assert r.concurrency == 8
    # side-specific layers apply:
    assert r.polling == "event"
    assert r.payload_size == 65536


def test_function_side_beats_everything():
    service = {"shared": {"perf_goal": "latency"},
               "client": {"perf_goal": "throughput"}}
    function = {"shared": {"perf_goal": "res_util"},
                "client": {"perf_goal": "latency"}}
    assert resolve_hints(service, function, "client").perf_goal == "latency"


def test_sides_are_isolated():
    service = {"server": {"numa_binding": True},
               "client": {"numa_binding": False}}
    assert resolve_hints(service, None, "server").numa_binding is True
    assert resolve_hints(service, None, "client").numa_binding is False


def test_defaults_fill_gaps():
    r = resolve_hints({}, None, "server")
    for key, value in DEFAULT_HINTS.items():
        assert getattr(r, key) == value
    assert r.polling is None


def test_resolution_validates_values():
    with pytest.raises(HintError):
        resolve_hints({"shared": {"perf_goal": "bogus"}}, None, "server")


def test_resolution_side_must_be_concrete():
    with pytest.raises(HintError):
        resolve_hints({}, None, "shared")


# -- property tests -----------------------------------------------------------

_hint_values = {
    "perf_goal": st.sampled_from(["latency", "throughput", "res_util"]),
    "concurrency": st.integers(1, 1024),
    "payload_size": st.integers(1, 1 << 20),
    "numa_binding": st.booleans(),
    "transport": st.sampled_from(["rdma", "tcp"]),
    "polling": st.sampled_from(["busy", "event"]),
    "priority": st.sampled_from(["high", "normal", "low"]),
    "batch_size": st.integers(1, 64),
}


def _hint_dicts():
    return st.dictionaries(st.sampled_from(sorted(_hint_values)),
                           st.none(), max_size=4).flatmap(
        lambda keys: st.fixed_dictionaries(
            {k: _hint_values[k] for k in keys}))


def _side_maps():
    return st.fixed_dictionaries({
        "shared": _hint_dicts(), "server": _hint_dicts(),
        "client": _hint_dicts()})


@given(_side_maps(), _side_maps(), st.sampled_from(["server", "client"]))
def test_resolution_total_and_idempotent(service, function, side):
    r1 = resolve_hints(service, function, side)
    r2 = resolve_hints(service, function, side)
    assert r1 == r2
    assert isinstance(r1, ResolvedHints)
    # resolved values always validate
    for key in DEFAULT_HINTS:
        validate_hint(key, getattr(r1, key))


@given(_side_maps(), st.sampled_from(["server", "client"]))
def test_function_level_none_equals_empty(service, side):
    assert resolve_hints(service, None, side) == \
        resolve_hints(service, {}, side)


@given(_hint_dicts(), st.sampled_from(["server", "client"]))
def test_function_side_always_wins(fn_side_hints, side):
    service = {"shared": {"perf_goal": "latency", "concurrency": 7}}
    function = {side: fn_side_hints}
    r = resolve_hints(service, function, side)
    for key, value in fn_side_hints.items():
        assert getattr(r, key, r.polling) == value or \
            (key == "polling" and r.polling == value)


# -- the cacheable hint -------------------------------------------------------

def test_validate_cacheable_accepts_well_formed_params():
    v = validate_hint("cacheable", {"ttl": 2e-4, "hot_promote": 8})
    assert v == {"ttl": 2e-4, "hot_promote": 8}
    assert validate_hint("cacheable", {"ttl": 1}) == {"ttl": 1}


@pytest.mark.parametrize("value", [
    {},                                   # ttl is mandatory
    {"ttl": 0},                           # must be positive
    {"ttl": -1e-3},
    {"ttl": True},                        # bools are not numbers
    {"ttl": 1e-3, "hot_promote": -1},     # threshold must be >= 0
    {"ttl": 1e-3, "hot_promote": 2.5},    # and integral
    {"ttl": 1e-3, "hot_promote": True},
    {"ttl": 1e-3, "warmup": 5},           # unknown parameter
    "200us",                              # not a parameter dict at all
])
def test_validate_cacheable_rejects_malformed(value):
    with pytest.raises(HintError):
        validate_hint("cacheable", value)


def test_cacheable_hint_view_and_default():
    from repro.core.hints import CacheableHint, cacheable_hint

    fn_map = merge_hint_groups([HintGroup(side="shared", hints=[
        Hint("cacheable", {"ttl": 1e-3, "hot_promote": 4})])])
    resolved = resolve_hints({}, fn_map, "client")
    assert cacheable_hint(resolved) == CacheableHint(ttl=1e-3, hot_promote=4)
    assert cacheable_hint(resolve_hints({}, None, "client")) is None
