"""TRdma transport + HintedProtocol unit tests."""

import pytest

from repro.core.engine import HatRpcEngine, pinned_plan
from repro.core.runtime import HatRpcServer, hatrpc_connect
from repro.core.trdma import HintedProtocol, TRdma
from repro.idl import load_idl
from repro.sim.units import KiB
from repro.testbed import Testbed
from repro.thrift import TBinaryProtocol, TMessageType
from repro.verbs.cq import PollMode

IDL = """
service Echo {
    string Ping(1: string msg),
    oneway void Fire(1: i64 token),
}
"""


@pytest.fixture(scope="module")
def gen():
    return load_idl(IDL, "trdma_gen")


def test_flush_without_method_context_rejected():
    tb = Testbed(n_nodes=2)
    plan = pinned_plan("Echo", ["Ping"], "direct_writeimm", PollMode.BUSY,
                       max_msg=8 * KiB)
    trans = TRdma(HatRpcEngine(tb.node(0), plan))
    trans.write(b"raw bytes")

    def run():
        yield from trans.flush()

    p = tb.sim.process(run())
    with pytest.raises(RuntimeError, match="HintedProtocol"):
        tb.sim.run(p)


def test_hinted_protocol_captures_method_and_oneway(gen):
    tb = Testbed(n_nodes=2)

    class H:
        def __init__(self):
            self.fired = []

        def Ping(self, msg):
            return msg

        def Fire(self, token):
            self.fired.append(token)

    h = H()
    HatRpcServer(tb.node(0), gen, "Echo", h).start()

    def client():
        stub = yield from hatrpc_connect(tb.node(1), tb.node(0), gen, "Echo")
        trans = stub._hatrpc.trans
        yield from stub.Ping("a")
        assert trans._current_fn == "Ping"
        assert trans._current_oneway is False
        yield from stub.Fire(9)
        assert trans._current_fn == "Fire"
        assert trans._current_oneway is True
        return trans._fn_switches

    p = tb.sim.process(client())
    switches = tb.sim.run(p)
    tb.sim.run()
    assert switches == 2  # one switch per distinct function
    assert h.fired == [9]


def test_fn_switch_cache_avoids_recounting(gen):
    """Repeated calls to the same function hit the cached route (the
    paper's dynamic-hint minimization)."""
    tb = Testbed(n_nodes=2)

    class H:
        def Ping(self, msg):
            return msg

        def Fire(self, token):
            pass

    HatRpcServer(tb.node(0), gen, "Echo", H()).start()

    def client():
        stub = yield from hatrpc_connect(tb.node(1), tb.node(0), gen, "Echo")
        for _ in range(10):
            yield from stub.Ping("x")
        return stub._hatrpc.trans._fn_switches

    p = tb.sim.process(client())
    assert tb.sim.run(p) == 1


def test_trdma_read_serves_buffered_response(gen):
    tb = Testbed(n_nodes=2)

    class H:
        def Ping(self, msg):
            return msg.upper()

        def Fire(self, token):
            pass

    HatRpcServer(tb.node(0), gen, "Echo", H()).start()

    def client():
        stub = yield from hatrpc_connect(tb.node(1), tb.node(0), gen, "Echo")
        out = yield from stub.Ping("abc")
        trans = stub._hatrpc.trans
        # After a completed call the read buffer is fully consumed.
        assert trans.read(1024) == b""
        return out

    p = tb.sim.process(client())
    assert tb.sim.run(p) == "ABC"


def test_hinted_protocol_delegates_everything():
    from repro.thrift import TMemoryBuffer

    class FakeTrans:
        def __init__(self):
            self.seen = None

        def set_current_function(self, name, mtype, seqid=None):
            self.seen = (name, mtype, seqid)

    buf = TMemoryBuffer()
    inner = TBinaryProtocol(buf)
    fake = FakeTrans()
    prot = HintedProtocol(inner, fake)
    prot.write_message_begin("DoIt", TMessageType.CALL, 7)
    assert fake.seen == ("DoIt", TMessageType.CALL, 7)
    # delegated attribute access:
    prot.write_i32(42)
    assert prot.trans is buf
    name, mtype, seqid = TBinaryProtocol(
        TMemoryBuffer(buf.getvalue())).read_message_begin()
    assert (name, mtype, seqid) == ("DoIt", TMessageType.CALL, 7)
