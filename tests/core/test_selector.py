"""Exhaustive tests of the Figure 6 hint -> protocol mapping."""

import pytest

from repro.core.hints import ResolvedHints, resolve_hints
from repro.core.selector import (
    SMALL_MESSAGE_THRESHOLD,
    UNDER_SUB_THRESHOLD,
    ProtocolChoice,
    select_protocol,
    subscription_regime,
)
from repro.verbs.cq import PollMode


def hints(**kw):
    merged = {"shared": kw}
    return resolve_hints(merged, None, "server")


def test_subscription_regimes():
    assert subscription_regime(1) == "under"
    assert subscription_regime(16) == "under"
    assert subscription_regime(17) == "full"
    assert subscription_regime(28) == "full"
    assert subscription_regime(29) == "over"
    assert subscription_regime(512) == "over"


# -- latency column of Figure 6 ------------------------------------------------

@pytest.mark.parametrize("payload", [64, 512, 4096, 128 * 1024])
@pytest.mark.parametrize("conc", [1, 16, 64])
def test_latency_goal_always_dwi_busy(payload, conc):
    c = select_protocol(hints(perf_goal="latency", payload_size=payload,
                              concurrency=conc))
    assert c.protocol == "direct_writeimm"
    assert c.poll_mode is PollMode.BUSY


# -- throughput column ---------------------------------------------------------

def test_throughput_small_always_dwi():
    for conc in (1, 16, 64, 512):
        c = select_protocol(hints(perf_goal="throughput", payload_size=512,
                                  concurrency=conc))
        assert c.protocol == "direct_writeimm"


def test_throughput_small_polling_follows_subscription():
    under = select_protocol(hints(perf_goal="throughput", payload_size=512,
                                  concurrency=8))
    over = select_protocol(hints(perf_goal="throughput", payload_size=512,
                                 concurrency=128))
    assert under.poll_mode is PollMode.BUSY
    assert over.poll_mode is PollMode.EVENT


def test_throughput_large_switches_to_rfp_past_threshold():
    """S5.2: 'switches to RFP with event-based polling when the concurrency
    is above the threshold 16'."""
    below = select_protocol(hints(perf_goal="throughput",
                                  payload_size=128 * 1024, concurrency=16))
    above = select_protocol(hints(perf_goal="throughput",
                                  payload_size=128 * 1024, concurrency=17))
    assert below.protocol == "direct_writeimm"
    assert below.poll_mode is PollMode.BUSY
    assert above.protocol == "rfp"
    assert above.poll_mode is PollMode.EVENT


def test_rfp_switch_respects_measured_crossover():
    """Mid-size payloads stay on Direct-WriteIMM even at scale: this
    reproduction's Fig. 5 data puts the RFP crossover near 48 KiB."""
    from repro.core.selector import RFP_SWITCH_THRESHOLD
    mid = select_protocol(hints(perf_goal="throughput", concurrency=64,
                                payload_size=10 * 1024))
    past = select_protocol(hints(perf_goal="throughput", concurrency=64,
                                 payload_size=RFP_SWITCH_THRESHOLD + 1))
    assert mid.protocol == "direct_writeimm"
    assert past.protocol == "rfp"


# -- res_util column ------------------------------------------------------------

def test_res_util_under_subscription():
    small = select_protocol(hints(perf_goal="res_util", payload_size=512,
                                  concurrency=4))
    large = select_protocol(hints(perf_goal="res_util",
                                  payload_size=64 * 1024, concurrency=4))
    assert small.protocol == "direct_writeimm"
    assert large.protocol == "write_rndv"


def test_res_util_at_scale_converges_to_eager_and_rndv():
    """Fig. 6: full/over-subscription res_util -> Eager-SendRecv (small),
    Write/Read-RNDV (large)."""
    small = select_protocol(hints(perf_goal="res_util", payload_size=512,
                                  concurrency=64))
    large = select_protocol(hints(perf_goal="res_util",
                                  payload_size=64 * 1024, concurrency=64))
    assert small.protocol == "eager_sendrecv"
    assert large.protocol == "write_rndv"
    assert small.poll_mode is PollMode.EVENT


# -- overrides -------------------------------------------------------------------

def test_explicit_polling_override():
    c = select_protocol(hints(perf_goal="latency", polling="event"))
    assert c.poll_mode is PollMode.EVENT
    c = select_protocol(hints(perf_goal="res_util", polling="busy",
                              concurrency=64))
    assert c.poll_mode is PollMode.BUSY


def test_tcp_transport_hint_bypasses_rdma():
    c = select_protocol(hints(transport="tcp", perf_goal="latency"))
    assert c.transport == "tcp"
    assert not c.is_rdma
    assert c.protocol == ""


def test_every_choice_names_registered_protocol():
    from repro.protocols import protocol_names
    known = set(protocol_names())
    for goal in ("latency", "throughput", "res_util"):
        for payload in (64, 4096, 4097, 512 * 1024):
            for conc in (1, 16, 17, 28, 29, 512):
                c = select_protocol(hints(perf_goal=goal,
                                          payload_size=payload,
                                          concurrency=conc))
                assert c.protocol in known
                assert c.rationale  # every decision is explained


def test_choice_is_deterministic():
    h = hints(perf_goal="throughput", payload_size=8192, concurrency=100)
    assert select_protocol(h) == select_protocol(h)


def test_low_priority_takes_resource_efficient_path():
    """S4.1: heartbeat-style functions 'optimized with low priority and
    give way to other significant RPC functions'."""
    normal = select_protocol(hints(perf_goal="latency", payload_size=256))
    low = select_protocol(hints(perf_goal="latency", payload_size=256,
                                priority="low"))
    assert normal.poll_mode is PollMode.BUSY
    assert low.poll_mode is PollMode.EVENT  # never pins a core
    assert low.protocol in ("direct_writeimm", "eager_sendrecv")


def test_low_priority_isolated_from_hot_path():
    """A low-priority heartbeat lands on its own channel, away from the
    latency-critical traffic."""
    from repro.core.engine import build_service_plan
    plan = build_service_plan("Svc", {
        "service": {"shared": {"perf_goal": "latency"}},
        "functions": {"Heartbeat": {"shared": {"priority": "low"}}},
    }, ["Call", "Heartbeat"])
    assert plan.routes["Call"].channel != plan.routes["Heartbeat"].channel


def test_high_priority_is_default_behaviour():
    a = select_protocol(hints(perf_goal="throughput", priority="high"))
    b = select_protocol(hints(perf_goal="throughput"))
    assert (a.protocol, a.poll_mode) == (b.protocol, b.poll_mode)
