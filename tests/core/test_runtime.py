"""End-to-end HatRPC runtime tests: IDL -> codegen -> engine -> RDMA."""

import pytest

from repro.core.runtime import HatRpcServer, hatrpc_connect, service_plan_of
from repro.idl import load_idl
from repro.testbed import Testbed
from repro.verbs.cq import PollMode

MIX_IDL = """
exception Boom { 1: string why }

service Mixed {
    hint: concurrency = 4;

    string Fast(1: string msg) [
        hint: perf_goal = latency, payload_size = 512;
    ]
    binary Bulk(1: binary blob) [
        hint: perf_goal = throughput, payload_size = 128KB, concurrency = 64;
    ]
    i32 Risky(1: i32 x) throws (1: Boom kaboom),
    oneway void Fire(1: i64 token),
    string Legacy(1: string msg) [
        hint: transport = tcp;
    ]
}
"""


class MixedHandler:
    def __init__(self):
        self.fired = []

    def Fast(self, msg):
        return msg.upper()

    def Bulk(self, blob):
        return blob[::-1]

    def Risky(self, x):
        if x < 0:
            import kv_gen_does_not_exist  # noqa: F401 - raises
        return x * 2

    def Fire(self, token):
        self.fired.append(token)

    def Legacy(self, msg):
        return "legacy:" + msg


@pytest.fixture(scope="module")
def gen():
    return load_idl(MIX_IDL, "mixed_gen")


@pytest.fixture
def tb():
    return Testbed(n_nodes=3)


def test_plan_isolates_optimization_goals(gen):
    plan = service_plan_of(gen, "Mixed")
    routes = plan.routes
    # Fast (latency) and Bulk (throughput/large/over-threshold) must not
    # share a channel: that is the optimization-isolation property.
    assert routes["Fast"].channel != routes["Bulk"].channel
    fast_ch = plan.channel_for("Fast")
    bulk_ch = plan.channel_for("Bulk")
    assert fast_ch.protocol == "direct_writeimm"
    assert fast_ch.server_poll is PollMode.BUSY
    assert bulk_ch.protocol == "rfp"
    assert bulk_ch.server_poll is PollMode.EVENT
    # Legacy rides the hybrid TCP transport.
    assert plan.channel_for("Legacy").transport == "tcp"
    # Unhinted functions share the default channel.
    assert routes["Risky"].channel == routes["Fire"].channel


def test_plan_buffer_sizing(gen):
    plan = service_plan_of(gen, "Mixed")
    assert plan.channel_for("Bulk").max_msg >= 128 * 1024
    # Fast shares its channel with the unhinted Risky/Fire, so the channel
    # keeps the conservative unhinted floor; a fully hinted service gets
    # exact sizing instead.
    from repro.idl import load_idl
    tight = load_idl("""
    service Tight {
        string Fast(1: string msg) [
            hint: perf_goal = latency, payload_size = 512;
        ]
    }
    """, "tight_gen")
    tight_plan = service_plan_of(tight, "Tight")
    assert tight_plan.channel_for("Fast").max_msg < 64 * 1024


def test_end_to_end_all_functions(tb, gen):
    handler = MixedHandler()
    HatRpcServer(tb.node(1), gen, "Mixed", handler).start()
    out = {}

    def client():
        stub = yield from hatrpc_connect(tb.node(0), tb.node(1), gen, "Mixed")
        out["fast"] = yield from stub.Fast("hello")
        out["bulk"] = yield from stub.Bulk(bytes(range(256)) * 16)
        out["risky"] = yield from stub.Risky(21)
        yield from stub.Fire(777)
        out["legacy"] = yield from stub.Legacy("x")

    p = tb.sim.process(client())
    tb.sim.run(p)
    tb.sim.run()
    assert out["fast"] == "HELLO"
    assert out["bulk"] == (bytes(range(256)) * 16)[::-1]
    assert out["risky"] == 42
    assert out["legacy"] == "legacy:x"
    assert handler.fired == [777]


def test_declared_exception_travels_the_wire(tb):
    idl = """
    exception Boom { 1: string why }
    service S {
        i32 explode(1: i32 x) throws (1: Boom kaboom),
    }
    """
    gen = load_idl(idl, "boom_gen")

    class H:
        def explode(self, x):
            raise gen.Boom(why=f"x={x}")

    HatRpcServer(tb.node(1), gen, "S", H()).start()
    caught = {}

    def client():
        stub = yield from hatrpc_connect(tb.node(0), tb.node(1), gen, "S")
        try:
            yield from stub.explode(13)
        except gen.Boom as e:
            caught["why"] = e.why

    tb.sim.run(tb.sim.process(client()))
    assert caught["why"] == "x=13"


def test_unexpected_exception_maps_to_application_exception(tb, gen):
    from repro.thrift import TApplicationException
    HatRpcServer(tb.node(1), gen, "Mixed", MixedHandler()).start()
    caught = {}

    def client():
        stub = yield from hatrpc_connect(tb.node(0), tb.node(1), gen, "Mixed")
        try:
            yield from stub.Risky(-1)
        except TApplicationException as e:
            caught["type"] = e.type

    tb.sim.run(tb.sim.process(client()))
    assert caught["type"] == TApplicationException.INTERNAL_ERROR


def test_latency_channel_faster_than_ipoib_for_small_calls(tb, gen):
    """The headline effect: hinted RDMA beats the TCP/IPoIB channel."""
    HatRpcServer(tb.node(1), gen, "Mixed", MixedHandler()).start()
    t = {}

    def client():
        stub = yield from hatrpc_connect(tb.node(0), tb.node(1), gen, "Mixed")
        yield from stub.Fast("warm")
        yield from stub.Legacy("warm")
        t0 = tb.sim.now
        yield from stub.Fast("ping")
        t["rdma"] = tb.sim.now - t0
        t0 = tb.sim.now
        yield from stub.Legacy("ping")
        t["tcp"] = tb.sim.now - t0

    tb.sim.run(tb.sim.process(client()))
    assert t["rdma"] * 3 < t["tcp"]


def test_concurrency_override_changes_plan(gen):
    base = service_plan_of(gen, "Mixed")
    scaled = service_plan_of(gen, "Mixed", concurrency=256)
    # Risky had concurrency=4 (service hint) -> under-subscription busy;
    # the deployment override pushes it to event polling.
    assert base.channel_for("Risky").server_poll is PollMode.BUSY
    assert scaled.channel_for("Risky").server_poll is PollMode.EVENT


def test_plan_deterministic_between_peers(gen):
    a = service_plan_of(gen, "Mixed")
    b = service_plan_of(gen, "Mixed")
    assert a == b


def test_multiple_clients_share_server(tb, gen):
    server = HatRpcServer(tb.node(1), gen, "Mixed", MixedHandler()).start()
    results = []

    def client(i, node):
        stub = yield from hatrpc_connect(tb.node(node), tb.node(1), gen,
                                         "Mixed")
        r = yield from stub.Fast(f"c{i}")
        results.append(r == f"C{i}")

    for i in range(4):
        tb.sim.process(client(i, 0 if i % 2 else 2))
    tb.sim.run()
    assert len(results) == 4 and all(results)
    assert server.requests >= 4
