"""Unit tests for the admission-control pieces: the rejection frame, the
read-only function-name peek, and the priority-tiered gate."""

import struct

import pytest

from repro.core.overload import (
    REJ_BYTES,
    AdmissionConfig,
    AdmissionGate,
    pack_rej,
    peek_fn_name,
    split_rej,
)


class FakeSim:
    now = 0.0


def strict_msg(name: str, mtype: int = 1, seqid: int = 7) -> bytes:
    """A strict Thrift binary message-begin + seqid (as TBinaryProtocol
    writes it)."""
    nb = name.encode("utf-8")
    return struct.pack("!I", 0x80010000 | mtype) + \
        struct.pack("!i", len(nb)) + nb + struct.pack("!i", seqid)


# -- rejection frame ---------------------------------------------------------

def test_rej_roundtrip():
    frame = pack_rej(1.5e-3)
    assert len(frame) == REJ_BYTES
    retry_after, rest = split_rej(frame + b"tail")
    assert retry_after == pytest.approx(1.5e-3)
    assert rest == b"tail"


def test_rej_clamps_negative_retry_after():
    retry_after, _ = split_rej(pack_rej(-1.0))
    assert retry_after == 0.0


def test_split_rej_passes_ordinary_responses_through():
    for data in (b"", b"\x00", strict_msg("Get"), b"\xc5RE",
                 b"\xc4PIPxxxx" + strict_msg("Get")):
        retry_after, rest = split_rej(data)
        assert retry_after is None
        assert rest == data             # byte-identical pass-through


def test_rej_magic_cannot_start_a_strict_thrift_message():
    # Strict message headers are 0x8001xxxx; 0xC5 'REJ' collides with
    # neither a strict header nor the 0xC4 PIP magic one layer down.
    assert strict_msg("AnyFn")[0] == 0x80
    assert pack_rej(0.0)[0] == 0xC5


# -- function-name peek ------------------------------------------------------

def test_peek_fn_name_reads_strict_messages():
    assert peek_fn_name(strict_msg("Get")) == "Get"
    assert peek_fn_name(strict_msg("MultiPut", mtype=4)) == "MultiPut"


def test_peek_fn_name_rejects_malformed_input():
    assert peek_fn_name(b"") is None
    assert peek_fn_name(b"\x00" * 7) is None                 # short
    assert peek_fn_name(struct.pack("!i", 3) + b"Get\x00") is None  # non-strict
    msg = strict_msg("Get")
    assert peek_fn_name(msg[:9]) is None                     # truncated name
    huge = struct.pack("!I", 0x80010001) + struct.pack("!i", 100000)
    assert peek_fn_name(huge + b"x" * 16) is None            # absurd length
    bad_utf8 = struct.pack("!I", 0x80010001) + \
        struct.pack("!i", 2) + b"\xff\xfe" + struct.pack("!i", 0)
    assert peek_fn_name(bad_utf8) is None


# -- admission gate ----------------------------------------------------------

def gate(capacity=10, low=0.5, normal=0.8):
    return AdmissionGate(FakeSim(), AdmissionConfig(
        capacity=capacity, low_fraction=low, normal_fraction=normal))


def test_gate_admits_until_capacity_then_rejects():
    g = gate(capacity=4)
    for _ in range(4):
        assert g.admit("high") is None
    retry_after = g.admit("high")
    assert retry_after is not None and retry_after > 0
    assert g.admitted == 4 and g.rejected == 1
    assert g.high_water == 4


def test_shed_order_low_before_normal_before_high():
    g = gate(capacity=10, low=0.5, normal=0.8)
    for _ in range(5):
        assert g.admit("normal") is None
    # occupancy 5 = low threshold: low sheds, normal and high still admitted
    assert g.admit("low") is not None
    assert g.admit("normal") is None
    assert g.admit("normal") is None
    assert g.admit("normal") is None            # occupancy 8
    assert g.admit("normal") is not None        # normal sheds at 0.8
    assert g.admit("high") is None              # high rides to capacity...
    assert g.admit("high") is None              # occupancy 10 = full
    assert g.admit("high") is not None          # ... and only sheds full
    assert g.shed_by_priority == {"low": 1, "normal": 1, "high": 1}


def test_release_reopens_the_gate():
    g = gate(capacity=2)
    assert g.admit("high") is None
    assert g.admit("high") is None
    assert g.admit("high") is not None
    g.release()
    assert g.admit("high") is None
    assert g.inflight == 2
    # release never underflows
    for _ in range(5):
        g.release()
    assert g.inflight == 0


def test_retry_after_grows_with_occupancy():
    g = gate(capacity=10, low=0.1)
    assert g.admit("normal") is None
    shallow = g.admit("low")
    for _ in range(6):
        assert g.admit("normal") is None
    deep = g.admit("low")
    assert deep > shallow                       # advice scales with depth


def test_unknown_priority_treated_as_high_threshold():
    # Defensive: an unmapped priority string falls back to full capacity.
    g = gate(capacity=2)
    assert g.admit("??") is None
    assert g.admit("??") is None
    assert g.admit("??") is not None


def test_raising_high_water_hook_cannot_leak_an_admission_slot():
    # Regression: a high-water observer that raised used to escape
    # admit() with the slot already consumed and the occupancy gauge not
    # yet updated -- the caller never saw the admit, never released, and
    # the gate under-reported capacity forever after.  Hooks are now
    # contained (and counted); the slot stays owned by the caller.
    g = gate(capacity=4)

    def bad_hook(mark):
        raise RuntimeError("observer blew up")

    g.on_high_water.append(bad_hook)
    assert g.admit("normal") is None        # no exception escapes
    assert g.hook_errors == 1
    assert g.inflight == 1
    g.release()
    assert g.inflight == 0


@pytest.mark.filterwarnings("ignore::repro.obs.ObsInstallOrderWarning")
def test_occupancy_gauge_stays_synced_when_hook_raises():
    from repro import obs

    with obs.installed() as reg:
        g = gate(capacity=4)
        g.on_high_water.append(lambda mark: (_ for _ in ()).throw(
            RuntimeError("boom")))
        for expect in (1, 2, 3):
            assert g.admit("high") is None
            assert reg.gauge("admission.occupancy").value == expect
        g.release()
        assert reg.gauge("admission.occupancy").value == 2
        assert g.hook_errors == 3
