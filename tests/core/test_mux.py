"""MuxPool/MuxClient: many logical clients over a bounded connection pool."""

import random

import pytest

from repro.core.mux import MuxPool
from repro.core.runtime import HatRpcServer
from repro.idl import load_idl
from repro.sim.units import us
from repro.testbed import Testbed

IDL = """
service MuxKV {
    hint: concurrency = 8;

    string Echo(1: string k) [ hint: perf_goal = throughput; ]
}
"""


class Handler:
    def __init__(self, tb):
        self.tb = tb
        self.calls = 0

    def Echo(self, k):
        self.calls += 1
        # Stagger completion by tag so responses come back out of posting
        # order -- the demux (0xC4 correlation) must still route each one.
        yield self.tb.sim.timeout((int(k.rsplit("-", 1)[1]) % 3) * 50 * us)
        return k


@pytest.fixture(scope="module")
def gen():
    return load_idl(IDL, "mux_gen")


def make_pool(tb, gen, size):
    HatRpcServer(tb.node(0), gen, "MuxKV", Handler(tb),
                 pipeline=True).start()
    return MuxPool(tb.node(1), gen, "MuxKV", size=size,
                   pipeline=True, rng=random.Random(3))


def test_pool_validates_size_and_connection_state(gen):
    tb = Testbed(n_nodes=2)
    with pytest.raises(ValueError):
        MuxPool(tb.node(1), gen, "MuxKV", size=0)
    pool = MuxPool(tb.node(1), gen, "MuxKV", size=2, pipeline=True)
    with pytest.raises(RuntimeError, match="not connected"):
        pool.lease()


def test_leases_spread_over_least_loaded_slots(gen):
    tb = Testbed(n_nodes=2)
    pool = make_pool(tb, gen, size=3)
    tb.sim.run(tb.sim.process(pool.connect(tb.node(0))))
    clients = [pool.lease() for _ in range(7)]
    assert sorted(pool._leases) == [2, 2, 3]
    assert pool.leases_granted == 7
    clients[0].release()
    clients[0].release()                  # idempotent
    assert sum(pool._leases) == 6
    fresh = pool.lease()                  # lands on the now-lightest slot
    assert pool._leases[fresh._slot] - 1 <= min(
        pool._leases[i] for i in range(pool.size) if i != fresh._slot)
    with pytest.raises(RuntimeError, match="released"):
        drop = clients[0]
        tb.sim.run(tb.sim.process(drop.call("Echo", "x")))


def test_many_logical_clients_demux_correctly_over_two_connections(gen):
    """16 logical clients share 2 wire connections; every interleaved,
    out-of-order response must come back to the client that asked."""
    tb = Testbed(n_nodes=2)
    pool = make_pool(tb, gen, size=2)
    tb.sim.run(tb.sim.process(pool.connect(tb.node(0))))
    results = {}

    def logical(i):
        lease = pool.lease()
        tag = f"cli{i}-{i}"
        value = yield from lease.call("Echo", tag)
        results[i] = value
        lease.release()

    procs = [tb.sim.process(logical(i)) for i in range(16)]
    for p in procs:
        tb.sim.run(p)
    assert results == {i: f"cli{i}-{i}" for i in range(16)}
    # Bounded fan-in held: 16 logical clients, still only 2 connections.
    assert len(pool._clients) == 2
    assert pool.leases_granted == 16
    assert sum(pool._leases) == 0         # all released
    # Both pooled connections actually carried traffic.
    assert all(e.calls_routed > 0 for e in pool.engines)
    pool.close()
    assert not pool._connected


def test_async_handles_interleave_across_one_shared_slot(gen):
    """Two logical clients on ONE connection post before either waits:
    unique seqids + correlation keep the interleaved replies straight."""
    tb = Testbed(n_nodes=2)
    pool = make_pool(tb, gen, size=1)
    tb.sim.run(tb.sim.process(pool.connect(tb.node(0))))

    def run():
        a, b = pool.lease(), pool.lease()
        ha = yield from a.call_async("Echo", "slow-2")   # finishes later
        hb = yield from b.call_async("Echo", "fast-0")   # finishes first
        vb = yield from hb.wait()
        va = yield from ha.wait()
        return va, vb

    va, vb = tb.sim.run(tb.sim.process(run()))
    assert (va, vb) == ("slow-2", "fast-0")
