"""RPC tracing tests."""

import pytest

from repro.core.runtime import HatRpcServer, hatrpc_connect
from repro.core.tracing import Tracer, attach_tracer
from repro.idl import load_idl
from repro.testbed import Testbed

IDL = """
service Svc {
    string Fast(1: string m) [ hint: perf_goal = latency; ]
    binary Bulk(1: binary b) [ hint: payload_size = 32KB,
                                     perf_goal = res_util; ]
}
"""


@pytest.fixture
def setup():
    gen = load_idl(IDL, "trace_gen")
    tb = Testbed(n_nodes=2)

    class H:
        def Fast(self, m):
            return m

        def Bulk(self, b):
            return b

    HatRpcServer(tb.node(0), gen, "Svc", H()).start()
    return tb, gen


def test_spans_record_routing_and_sizes(setup):
    tb, gen = setup
    box = {}

    def client():
        stub = yield from hatrpc_connect(tb.node(1), tb.node(0), gen, "Svc")
        tracer = attach_tracer(stub._hatrpc.engine)
        yield from stub.Fast("hello")
        yield from stub.Fast("again")
        yield from stub.Bulk(b"z" * 8192)
        box["tracer"] = tracer

    tb.sim.run(tb.sim.process(client()))
    tracer = box["tracer"]
    assert len(tracer.spans) == 3
    fast, fast2, bulk = tracer.spans
    assert fast.function == "Fast" and bulk.function == "Bulk"
    assert fast.protocol == "direct_writeimm"
    assert bulk.protocol == "write_rndv"
    assert fast.channel != bulk.channel
    assert bulk.request_bytes > 8192  # payload + thrift framing
    assert all(s.latency > 0 for s in tracer.spans)
    assert fast2.start >= fast.end


def test_summary_aggregates_per_function(setup):
    tb, gen = setup
    box = {}

    def client():
        stub = yield from hatrpc_connect(tb.node(1), tb.node(0), gen, "Svc")
        box["tracer"] = attach_tracer(stub._hatrpc.engine)
        for _ in range(5):
            yield from stub.Fast("x")
        yield from stub.Bulk(b"y" * 100)

    tb.sim.run(tb.sim.process(client()))
    summary = box["tracer"].by_function()
    assert summary["Fast"].calls == 5
    assert summary["Bulk"].calls == 1
    assert summary["Fast"].mean_latency > 0
    lines = box["tracer"].summary_lines()
    assert any("Fast" in line for line in lines)


def test_max_spans_drops_and_counts(setup):
    tb, gen = setup
    box = {}

    def client():
        stub = yield from hatrpc_connect(tb.node(1), tb.node(0), gen, "Svc")
        box["tracer"] = attach_tracer(stub._hatrpc.engine,
                                      Tracer(max_spans=3))
        for _ in range(10):
            yield from stub.Fast("x")

    tb.sim.run(tb.sim.process(client()))
    t = box["tracer"]
    assert len(t.spans) == 3
    assert t.dropped == 7
    assert any("dropped" in line for line in t.summary_lines())
