"""Channel-plan and engine unit tests."""

import pytest

from repro.core.engine import (
    ChannelPlan,
    HatRpcEngine,
    build_service_plan,
    pinned_plan,
)
from repro.sim.units import KiB
from repro.testbed import Testbed
from repro.verbs.cq import PollMode


def plan_of(hint_map, fns, conc=None):
    return build_service_plan("Svc", hint_map, fns,
                              concurrency_override=conc)


def test_identical_choices_share_one_channel():
    plan = plan_of({"service": {"shared": {"perf_goal": "latency"}},
                    "functions": {}}, ["A", "B", "C"])
    assert len(plan.channels) == 1
    assert set(plan.channels[0].functions) == {"A", "B", "C"}


def test_different_goals_isolated():
    plan = plan_of({
        "service": {"shared": {"concurrency": 64}},
        "functions": {
            "Fast": {"shared": {"perf_goal": "latency"}},
            "Bulk": {"shared": {"perf_goal": "res_util",
                                "payload_size": 64 * KiB}},
        }}, ["Fast", "Bulk", "Plain"])
    assert plan.routes["Fast"].channel != plan.routes["Bulk"].channel
    fast = plan.channel_for("Fast")
    bulk = plan.channel_for("Bulk")
    assert fast.server_poll is PollMode.BUSY
    assert bulk.protocol == "write_rndv"
    assert bulk.server_poll is PollMode.EVENT


def test_size_classes_do_not_share_buffers():
    plan = plan_of({
        "service": {"shared": {"perf_goal": "throughput"}},
        "functions": {
            "Small": {"shared": {"payload_size": 256}},
            "Big": {"shared": {"payload_size": 32 * KiB}},
        }}, ["Small", "Big"])
    assert plan.routes["Small"].channel != plan.routes["Big"].channel
    assert plan.channel_for("Big").max_msg > plan.channel_for("Small").max_msg


def test_unhinted_payload_gets_conservative_floor():
    plan = plan_of({"service": {}, "functions": {}}, ["F"])
    assert plan.channels[0].max_msg >= 128 * KiB
    hinted = plan_of({"service": {"shared": {"payload_size": 1024}},
                      "functions": {}}, ["F"])
    assert hinted.channels[0].max_msg < 32 * KiB


def test_concurrency_override():
    hint_map = {"service": {"shared": {"concurrency": 2}}, "functions": {}}
    under = plan_of(hint_map, ["F"])
    over = plan_of(hint_map, ["F"], conc=200)
    assert under.channels[0].server_poll is PollMode.BUSY
    assert over.channels[0].server_poll is PollMode.EVENT


def test_lateral_polling_differs_per_side():
    plan = plan_of({
        "service": {"server": {"polling": "event"},
                    "client": {"polling": "busy"}},
        "functions": {}}, ["F"])
    ch = plan.channels[0]
    assert ch.server_poll is PollMode.EVENT
    assert ch.client_poll is PollMode.BUSY


def test_resp_hint_from_server_payload():
    plan = plan_of({
        "service": {},
        "functions": {"Get": {"client": {"payload_size": 64},
                              "server": {"payload_size": 10 * KiB}}}},
        ["Get"])
    assert plan.routes["Get"].resp_hint == 10 * KiB


def test_pinned_plan_shape():
    plan = pinned_plan("Svc", ["A", "B"], "rfp", PollMode.EVENT,
                       max_msg=32 * KiB)
    assert len(plan.channels) == 1
    assert plan.channels[0].protocol == "rfp"
    assert not plan.channels[0].hinted
    assert plan.routes["A"].channel == plan.routes["B"].channel == 0


def test_pinned_tcp_plan():
    plan = pinned_plan("Svc", ["A"], "tcp", PollMode.EVENT, max_msg=8 * KiB)
    assert plan.channels[0].transport == "tcp"
    assert plan.channels[0].protocol == ""


def test_engine_unknown_function_rejected():
    tb = Testbed(n_nodes=2)
    plan = pinned_plan("Svc", ["A"], "direct_writeimm", PollMode.BUSY,
                       max_msg=8 * KiB)
    engine = HatRpcEngine(tb.node(0), plan)

    def run():
        yield from engine.connect(tb.node(1))
        yield from engine.call("Nope", b"x")

    p = tb.sim.process(run())
    with pytest.raises(KeyError, match="Nope"):
        tb.sim.run(p)


def test_engine_call_before_connect_rejected():
    tb = Testbed(n_nodes=2)
    plan = pinned_plan("Svc", ["A"], "direct_writeimm", PollMode.BUSY,
                       max_msg=8 * KiB)
    engine = HatRpcEngine(tb.node(0), plan)

    def run():
        yield from engine.call("A", b"x")

    p = tb.sim.process(run())
    with pytest.raises(RuntimeError, match="not connected"):
        tb.sim.run(p)


def test_lazy_channels_open_on_first_use():
    from repro.core.runtime import HatRpcServer, service_plan_of
    from repro.idl import load_idl
    gen = load_idl("""
    service Two {
        string A(1: string x) [ hint: perf_goal = latency; ]
        string B(1: string x) [ hint: perf_goal = res_util,
                                      payload_size = 32KB; ]
    }
    """, "lazy_gen")
    tb = Testbed(n_nodes=2)

    class H:
        def A(self, x): return x
        def B(self, x): return x

    HatRpcServer(tb.node(0), gen, "Two", H()).start()
    plan = service_plan_of(gen, "Two")
    engine = HatRpcEngine(tb.node(1), plan)

    def run():
        yield from engine.connect(tb.node(0))
        assert len(engine._channels) == 0          # nothing opened yet
        # Route through the thrift layer via the runtime client instead of
        # raw engine bytes: use stub-level calls.
        from repro.core.runtime import HatRpcClient
        client = HatRpcClient(tb.node(1), gen, "Two")
        stub = yield from client.connect(tb.node(0))
        yield from stub.A("x")
        opened_after_a = len(client.engine._channels)
        yield from stub.B("y")
        return opened_after_a, len(client.engine._channels)

    p = tb.sim.process(run())
    after_a, after_b = tb.sim.run(p)
    assert after_a == 1
    assert after_b == 2


def test_plan_channels_deterministic_ordering():
    hint_map = {
        "service": {"shared": {"concurrency": 64}},
        "functions": {
            "L": {"shared": {"perf_goal": "latency"}},
            "T": {"shared": {"perf_goal": "throughput",
                             "payload_size": 128 * KiB}},
            "R": {"shared": {"perf_goal": "res_util"}},
        }}
    a = plan_of(hint_map, ["L", "T", "R"])
    b = plan_of(hint_map, ["L", "T", "R"])
    assert a == b
