"""Engine failure handling under injected faults: deadlines, retries,
idempotency gating, failover/failback, lifecycle, and replay determinism."""

import random

import pytest

from repro.core.engine import HatRpcEngine
from repro.core.resilience import CircuitBreaker, RetryPolicy
from repro.core.runtime import (HatRpcServer, hatrpc_connect,
                                service_plan_of)
from repro.faults import FaultInjector, FaultPlan, LinkFlap, QPError
from repro.idl import load_idl
from repro.sim.units import ms, us
from repro.testbed import Testbed
from repro.thrift.errors import TTransportException

KV_IDL = """
service MiniKV {
    hint: concurrency = 4;

    string Get(1: string k) [ hint: perf_goal = latency; ]
    void Put(1: string k, 2: string v) [ hint: perf_goal = latency; ]
    string Slow(1: string k) [ hint: perf_goal = latency; ]
    string Legacy(1: string k) [ hint: transport = tcp; ]
}
"""


class KVHandler:
    def __init__(self, tb):
        self.tb = tb
        self.store = {}
        self.puts = 0

    def Get(self, k):
        return self.store.get(k, "")

    def Put(self, k, v):
        self.store[k] = v
        self.puts += 1

    def Slow(self, k):
        yield self.tb.sim.timeout(10 * ms)
        return k

    def Legacy(self, k):
        return self.store.get(k, "")


@pytest.fixture(scope="module")
def gen():
    return load_idl(KV_IDL, "resilience_gen")


def start(tb, gen):
    handler = KVHandler(tb)
    server = HatRpcServer(tb.node(0), gen, "MiniKV", handler).start()
    return server, handler


def connect(tb, gen, **kw):
    kw.setdefault("rng", random.Random(42))
    return hatrpc_connect(tb.node(1), tb.node(0), gen, "MiniKV", **kw)


# -- deadlines ---------------------------------------------------------------

def test_deadline_expiry_raises_timed_out_then_recovers(gen):
    tb = Testbed(n_nodes=2)
    server, handler = start(tb, gen)

    def run():
        stub = yield from connect(tb, gen, deadline=200 * us)
        engine = stub._hatrpc.engine
        with pytest.raises(TTransportException) as ei:
            yield from stub.Slow("x")
        assert ei.value.type == TTransportException.TIMED_OUT
        assert engine.faults.timeouts == 1
        # The in-flight channel was discarded; the next call reconnects
        # transparently and completes inside the same budget.
        yield from stub.Put("k", "v")
        value = yield from stub.Get("k")
        return value, engine

    value, engine = tb.sim.run(tb.sim.process(run()))
    assert value == "v"
    assert engine.faults.reconnects >= 1
    assert any(kind == "timeout" for _, kind, *_ in engine.fault_trace)


# -- retry + idempotency -----------------------------------------------------

def test_idempotent_get_retries_through_qp_error(gen):
    tb = Testbed(n_nodes=2)
    server, handler = start(tb, gen)
    FaultInjector(tb, FaultPlan(events=(
        QPError("node1", at=100 * us),))).arm()

    def run():
        stub = yield from connect(tb, gen, idempotent=("Get",))
        yield from stub.Put("k", "v1")
        yield tb.sim.timeout(200 * us)     # the QP dies at 100us
        value = yield from stub.Get("k")   # retried on a fresh connection
        return value, stub._hatrpc.engine

    value, engine = tb.sim.run(tb.sim.process(run()))
    assert value == "v1"
    assert engine.faults.retries >= 1
    assert engine.faults.reconnects >= 1
    assert engine.faults.channel_failures >= 1
    assert engine.faults.blind_retries_prevented == 0
    # the server side saw the dead connection and released it
    assert sum(getattr(s, "teardowns", 0)
               for s in server.endpoint.servers) >= 1


def test_non_idempotent_put_is_never_blind_retried(gen):
    tb = Testbed(n_nodes=2)
    server, handler = start(tb, gen)
    FaultInjector(tb, FaultPlan(events=(
        QPError("node1", at=100 * us),))).arm()

    def run():
        stub = yield from connect(tb, gen, idempotent=("Get",))
        yield from stub.Put("k", "v1")
        yield tb.sim.timeout(200 * us)
        engine = stub._hatrpc.engine
        with pytest.raises(TTransportException):
            yield from stub.Put("k", "v2")  # fails post-send: no retry
        assert engine.faults.blind_retries_prevented == 1
        # the sanctioned path: the application re-issues under a fresh
        # seqid (the stub allocates one per call)
        yield from stub.Put("k", "v2")
        return stub._hatrpc.engine

    engine = tb.sim.run(tb.sim.process(run()))
    assert handler.puts == 2               # v1 + re-issued v2; no double-apply
    assert handler.store["k"] == "v2"
    assert any(kind == "blind_retry_prevented"
               for _, kind, *_ in engine.fault_trace)


def test_seqid_gate_refuses_duplicate_wire_send(gen):
    tb = Testbed(n_nodes=2)
    server, handler = start(tb, gen)

    def run():
        stub = yield from connect(tb, gen)
        yield from stub.Put("k", "v")
        engine = stub._hatrpc.engine
        used = [s for fn, s in engine._sent_seqids if fn == "Put"]
        assert len(used) == 1
        with pytest.raises(TTransportException, match="fresh seqid"):
            yield from engine.call("Put", b"replayed-bytes", seqid=used[0])
        assert engine.faults.blind_retries_prevented == 1
        return None

    tb.sim.run(tb.sim.process(run()))
    assert handler.puts == 1               # the replay never hit the wire


# -- failover / failback -----------------------------------------------------

def test_failover_to_tcp_when_rdma_listeners_gone(gen):
    tb = Testbed(n_nodes=2)
    server, handler = start(tb, gen)
    handler.store["k"] = "v"
    # Kill every RDMA listener; only the Legacy TCP channel keeps serving.
    for ch, srv in zip(server.plan.channels, server.endpoint.servers):
        if ch.transport == "rdma":
            srv.stop()

    def run():
        stub = yield from connect(tb, gen, idempotent=("Get",))
        value = yield from stub.Get("k")   # degrades onto the TCP channel
        return value, stub._hatrpc.engine

    value, engine = tb.sim.run(tb.sim.process(run()))
    assert value == "v"
    assert engine.faults.failovers == 1
    assert engine.faults.breaker_opens == 1
    assert engine.faults.retries >= 1
    tcp_idx = next(ch.index for ch in engine.plan.channels
                   if ch.transport == "tcp")
    assert any(kind == "failover" and chan == tcp_idx
               for _, kind, _fn, chan, _d in engine.fault_trace)


def test_failback_once_primary_breaker_readmits(gen):
    tb = Testbed(n_nodes=2)
    server, handler = start(tb, gen)
    handler.store["k"] = "v"

    def run():
        stub = yield from connect(tb, gen, idempotent=("Get",))
        engine = stub._hatrpc.engine
        primary = engine.plan.routes["Get"].channel
        yield from stub.Get("k")               # healthy, on the primary
        br = engine._breaker(primary)
        for _ in range(br.failure_threshold):
            br.record_failure()                # primary declared dead
        yield from stub.Get("k")
        assert engine.faults.failovers == 1
        yield tb.sim.timeout(br.reset_after + 1 * us)
        yield from stub.Get("k")               # HALF_OPEN probe -> primary
        assert engine.faults.failbacks == 1
        assert br.state == br.CLOSED
        return engine

    engine = tb.sim.run(tb.sim.process(run()))
    assert any(kind == "failback" for _, kind, *_ in engine.fault_trace)


# -- lifecycle ---------------------------------------------------------------

def test_close_is_idempotent_and_is_open_tracks_state(gen):
    tb = Testbed(n_nodes=2)
    server, handler = start(tb, gen)

    def run():
        stub = yield from connect(tb, gen)
        client = stub._hatrpc
        yield from stub.Put("k", "v")
        assert client.engine.is_open()
        assert client.trans.is_open()          # TRdma mirrors the engine
        client.close()
        client.close()                          # second close is a no-op
        assert not client.engine.is_open()
        assert not client.trans.is_open()
        assert client.engine._channels == {}
        with pytest.raises(RuntimeError, match="not connected"):
            yield from stub.Get("k")
        return None

    tb.sim.run(tb.sim.process(run()))


def test_connect_failure_leaves_no_half_open_channels(gen):
    tb = Testbed(n_nodes=2)                    # no server at all
    engine = HatRpcEngine(tb.node(1), service_plan_of(gen, "MiniKV"))

    def run():
        with pytest.raises((ConnectionError, TTransportException)):
            yield from engine.connect(tb.node(0), eager=True)
        return None

    tb.sim.run(tb.sim.process(run()))
    assert not engine.is_open()
    assert engine._channels == {}


# -- policy objects ----------------------------------------------------------

def test_backoff_schedule_is_seeded_and_capped():
    policy = RetryPolicy(base_backoff=50 * us, multiplier=2.0,
                         max_backoff=200 * us, jitter=0.2)
    s1 = [policy.backoff(i, random.Random(5)) for i in range(6)]
    s2 = [policy.backoff(i, random.Random(5)) for i in range(6)]
    assert s1 == s2                            # same seed, same schedule
    assert all(b <= 200 * us * 1.2 + 1e-12 for b in s1)
    plain = RetryPolicy(base_backoff=50 * us, multiplier=2.0,
                        max_backoff=200 * us, jitter=0.0)
    assert [plain.backoff(i) for i in range(4)] == \
        pytest.approx([50 * us, 100 * us, 200 * us, 200 * us])


def test_circuit_breaker_state_machine():
    class FakeSim:
        now = 0.0

    sim = FakeSim()
    opened = []
    br = CircuitBreaker(sim, failure_threshold=2, reset_after=100 * us,
                        on_open=opened.append)
    assert br.allow()
    br.record_failure()
    assert br.state == br.CLOSED and br.allow()
    br.record_failure()
    assert br.state == br.OPEN and not br.allow()
    assert br.opens == 1 and opened == [br]
    sim.now = 150 * us
    assert br.allow()                          # timed probe window
    assert br.state == br.HALF_OPEN
    br.record_failure()                        # probe failed
    assert br.state == br.OPEN and br.opens == 2
    sim.now = 300 * us
    assert br.allow()
    br.record_success()
    assert br.state == br.CLOSED and br.allow()


def test_circuit_breaker_transition_log_bounded_under_flapping():
    """Sustained flapping must not grow the transition log without limit:
    the deque keeps the most recent ``transitions_cap`` entries and counts
    the evicted ones."""
    class FakeSim:
        now = 0.0

    sim = FakeSim()
    cap = 8
    br = CircuitBreaker(sim, failure_threshold=1, reset_after=10 * us,
                        transitions_cap=cap)
    # Each lap is CLOSED->OPEN, OPEN->HALF_OPEN, HALF_OPEN->CLOSED:
    # 3 transitions x 100 laps of flapping.
    for _ in range(100):
        br.record_failure()                    # -> OPEN
        sim.now += br.reset_after + 1 * us
        assert br.allow()                      # -> HALF_OPEN probe
        br.record_success()                    # -> CLOSED
    assert len(br.transitions) == cap          # bounded, not 300
    assert br.transitions_dropped == 300 - cap
    # The survivors are the most recent entries, in order.
    times = [t for t, _f, _t in br.transitions]
    assert times == sorted(times)
    assert br.transitions[-1][1:] == (br.HALF_OPEN, br.CLOSED)

    with pytest.raises(ValueError):
        CircuitBreaker(sim, transitions_cap=0)


# -- server-side write-transaction abort -------------------------------------

def test_hatkv_write_txn_aborts_when_handler_dies_mid_rpc():
    from repro.hatkv.backend import LmdbBackend
    tb = Testbed(n_nodes=1)
    backend = LmdbBackend(tb.node(0))

    def put(value):
        yield from backend.put(b"k1", value)

    victim = tb.sim.process(put(b"v1"))
    victim.defuse()                            # its failure is expected

    def killer():
        yield tb.sim.timeout(0.15 * us)        # mid-write, pre-commit
        victim.interrupt("connection died")

    tb.sim.process(killer())
    tb.sim.run()
    assert backend.aborts == 1
    assert backend.writes == 0

    def check():
        missing = yield from backend.get(b"k1")
        yield from backend.put(b"k1", b"v2")   # writer lock was released
        value = yield from backend.get(b"k1")
        return missing, value

    missing, value = tb.sim.run(tb.sim.process(check()))
    assert missing is None                     # the txn never committed
    assert value == b"v2"
    assert backend.writes == 1


# -- replay determinism ------------------------------------------------------

def _faulted_scenario(gen, seed):
    tb = Testbed(n_nodes=2)
    server, handler = start(tb, gen)
    FaultInjector(tb, FaultPlan(seed=seed, events=(
        QPError("node1", at=150 * us),
        LinkFlap("node0", start=400 * us, duration=300 * us),
    ))).arm()

    def run():
        stub = yield from connect(tb, gen, idempotent=("Get",),
                                  rng=random.Random(seed))
        yield from stub.Put("a", "1")
        for _ in range(10):
            try:
                yield from stub.Get("a")
            except TTransportException:
                pass                           # flap window: expected
            yield tb.sim.timeout(60 * us)
        return stub._hatrpc.engine.fault_trace

    return tb.sim.run(tb.sim.process(run()))


def test_same_seed_replays_identical_fault_trace(gen):
    t1 = _faulted_scenario(gen, seed=5)
    t2 = _faulted_scenario(gen, seed=5)
    assert t1 == t2
    assert len(t1) > 0
    assert any(kind == "retry" for _, kind, *_ in t1)
