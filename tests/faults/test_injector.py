"""Fault-plan and injector tests: windows, instants, and determinism."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkFlap,
    PacketLoss,
    QPError,
    ServerCrash,
)
from repro.sim.units import us
from repro.testbed import Testbed
from repro.verbs import QPState
from repro.verbs.qp import connect_pair


def make_qp_pair(tb, i=0, j=1):
    """A connected QP pair between node i and node j (no CQ plumbing)."""
    cdev, sdev = tb.node(i).nic, tb.node(j).nic
    cqp = cdev.create_qp(cdev.alloc_pd(), cdev.create_cq(), cdev.create_cq())
    sqp = sdev.create_qp(sdev.alloc_pd(), sdev.create_cq(), sdev.create_cq())
    connect_pair(cqp, sqp)
    return cqp, sqp


# -- plan validation ---------------------------------------------------------

def test_plan_rejects_unknown_event_type():
    with pytest.raises(TypeError, match="unknown fault event"):
        FaultPlan(seed=1, events=("not-an-event",))


def test_event_seed_is_pure_function_of_seed_and_index():
    a, b = FaultPlan(seed=7), FaultPlan(seed=7)
    assert [a.event_seed(i) for i in range(4)] == \
        [b.event_seed(i) for i in range(4)]
    assert FaultPlan(seed=8).event_seed(0) != a.event_seed(0)


def test_arm_twice_rejected():
    tb = Testbed(n_nodes=2)
    inj = FaultInjector(tb, FaultPlan()).arm()
    with pytest.raises(RuntimeError, match="already armed"):
        inj.arm()


# -- window events -----------------------------------------------------------

def test_link_flap_installs_down_window():
    tb = Testbed(n_nodes=2)
    plan = FaultPlan(events=(LinkFlap("node1", start=10 * us,
                                      duration=50 * us),))
    FaultInjector(tb, plan).arm()
    port = tb.fabric.ports["node1"]
    assert not port.is_down(5 * us)
    assert port.is_down(30 * us)
    assert not port.is_down(70 * us)


def test_packet_loss_window_is_seeded_and_replayable():
    def drop_pattern(seed):
        tb = Testbed(n_nodes=2)
        plan = FaultPlan(seed=seed, events=(
            PacketLoss("node0", start=0.0, duration=100 * us,
                       drop_prob=0.5),))
        FaultInjector(tb, plan).arm()
        port = tb.fabric.ports["node0"]
        return [port.roll_drop(t * us) for t in range(50)]

    first = drop_pattern(3)
    assert any(first) and not all(first)   # p=0.5 over 50 rolls
    assert first == drop_pattern(3)        # same seed -> identical drops
    assert first != drop_pattern(4)        # seed actually feeds the RNG


def test_rolls_outside_loss_window_never_drop():
    tb = Testbed(n_nodes=2)
    plan = FaultPlan(events=(
        PacketLoss("node0", start=50 * us, duration=10 * us,
                   drop_prob=0.999),))
    FaultInjector(tb, plan).arm()
    port = tb.fabric.ports["node0"]
    assert not port.roll_drop(10 * us)
    assert port.roll_drop(55 * us)
    assert not port.roll_drop(70 * us)


# -- instant events ----------------------------------------------------------

def test_qp_error_event_errors_the_pair():
    tb = Testbed(n_nodes=2)
    cqp, sqp = make_qp_pair(tb)
    plan = FaultPlan(events=(QPError("node0", at=20 * us),))
    inj = FaultInjector(tb, plan).arm()
    tb.sim.run()
    assert cqp.state is QPState.ERROR
    assert sqp.state is QPState.ERROR
    assert (20 * us, "qp_error", "node0") in inj.log


def test_qp_error_can_target_one_qp():
    tb = Testbed(n_nodes=2)
    a_c, a_s = make_qp_pair(tb)
    b_c, b_s = make_qp_pair(tb)
    plan = FaultPlan(events=(QPError("node0", at=5 * us,
                                     qp_num=a_c.qp_num),))
    FaultInjector(tb, plan).arm()
    tb.sim.run()
    assert a_c.state is QPState.ERROR and a_s.state is QPState.ERROR
    assert b_c.state is QPState.RTS and b_s.state is QPState.RTS


def test_server_crash_and_restore_cycle():
    tb = Testbed(n_nodes=2)
    node = tb.node(0)
    cqp, sqp = make_qp_pair(tb, i=0, j=1)
    plan = FaultPlan(events=(ServerCrash("node0", at=10 * us,
                                         downtime=40 * us),))
    inj = FaultInjector(tb, plan)
    restarted = []
    inj.on_restore("node0", lambda: restarted.append(tb.sim.now))
    inj.arm()

    observed = {}

    def watcher():
        yield tb.sim.timeout(20 * us)        # mid-downtime
        observed["during"] = node.up

    tb.sim.process(watcher())
    tb.sim.run()
    assert observed["during"] is False
    assert node.up and node.crashes == 1
    # crash killed the node's QPs (and flushed the peer's)
    assert cqp.state is QPState.ERROR and sqp.state is QPState.ERROR
    assert node.nic._listeners == {}
    assert restarted == [50 * us]
    assert (10 * us, "crash", "node0") in inj.log
    assert (50 * us, "restore", "node0") in inj.log


# -- determinism of the whole schedule ---------------------------------------

def test_same_plan_replays_identical_log():
    plan = FaultPlan(seed=11, events=(
        LinkFlap("node1", start=5 * us, duration=20 * us),
        QPError("node0", at=12 * us),
        ServerCrash("node1", at=40 * us, downtime=15 * us),
        PacketLoss("node0", start=60 * us, duration=30 * us, drop_prob=0.3),
    ))

    def run_once():
        tb = Testbed(n_nodes=2)
        make_qp_pair(tb)
        inj = FaultInjector(tb, plan).arm()
        tb.sim.run()
        return inj.log

    assert run_once() == run_once()
