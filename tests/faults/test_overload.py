"""Overload behavior end to end: typed rejection, honored retry_after,
the shared retry budget's anti-amplification bound, and the OverloadStorm
fault event."""

import random

import pytest

from repro.core.overload import AdmissionConfig
from repro.core.resilience import RetryBudget, RetryPolicy
from repro.core.runtime import HatRpcServer, hatrpc_connect
from repro.faults import FaultInjector, FaultPlan, OverloadStorm
from repro.idl import load_idl
from repro.sim.units import ms, us
from repro.testbed import Testbed
from repro.thrift.errors import TRejectedException, TTransportException

IDL = """
service OverKV {
    hint: concurrency = 4;

    string Get(1: string k) [ hint: perf_goal = latency; ]
    string Slow(1: string k) [ hint: perf_goal = latency; ]
}
"""


class Handler:
    def __init__(self, tb, slow=2 * ms):
        self.tb = tb
        self.slow = slow
        self.store = {"k": "v"}

    def Get(self, k):
        return self.store.get(k, "")

    def Slow(self, k):
        yield self.tb.sim.timeout(self.slow)
        return k


@pytest.fixture(scope="module")
def gen():
    return load_idl(IDL, "overload_gen")


def start(tb, gen, admission, slow=2 * ms):
    handler = Handler(tb, slow=slow)
    server = HatRpcServer(tb.node(0), gen, "OverKV", handler,
                          admission=admission).start()
    return server, handler


def connect(tb, gen, **kw):
    kw.setdefault("rng", random.Random(7))
    return hatrpc_connect(tb.node(1), tb.node(0), gen, "OverKV", **kw)


# -- typed rejection + honored retry_after -----------------------------------

def test_rejection_is_typed_and_retry_honors_retry_after(gen):
    tb = Testbed(n_nodes=2)
    cfg = AdmissionConfig(capacity=1, retry_after_base=500 * us)
    start(tb, gen, cfg)

    def occupier():
        stub = yield from connect(tb, gen)
        yield from stub.Slow("x")           # holds the gate for 2ms

    def contender():
        yield tb.sim.timeout(100 * us)      # let Slow get in first
        stub = yield from connect(
            tb, gen, retry_policy=RetryPolicy(max_attempts=6,
                                              base_backoff=50 * us,
                                              jitter=0.0))
        value = yield from stub.Get("k")    # rejected, retried, then lands
        return value, stub._hatrpc.engine, tb.sim.now

    tb.sim.process(occupier())
    value, engine, t_done = tb.sim.run(tb.sim.process(contender()))
    assert value == "v"
    assert engine.faults.rejections >= 1
    assert engine.faults.rejected_retries >= 1
    assert engine.faults.timeouts == 0      # overload != timeout
    trace = engine.fault_trace
    assert any(kind == "rejected" for _, kind, *_ in trace)
    # The advised retry_after (base * (1 + occupancy) = 1ms here) was
    # honored: at least that long passed between the first rejection and
    # the call finally completing.
    t_rej = next(t for t, kind, *_ in trace if kind == "rejected")
    assert t_done - t_rej >= 2 * cfg.retry_after_base
    # Rejection is not a channel failure: no breaker ever opened.
    assert engine.faults.breaker_opens == 0
    assert engine.faults.reconnects == 0


def test_exhausted_attempts_surface_trejected_not_timed_out(gen):
    tb = Testbed(n_nodes=2)
    start(tb, gen, AdmissionConfig(capacity=1, retry_after_base=100 * us),
          slow=50 * ms)                     # occupied far past the retries

    def occupier():
        stub = yield from connect(tb, gen)
        yield from stub.Slow("x")

    def contender():
        yield tb.sim.timeout(100 * us)
        stub = yield from connect(
            tb, gen, retry_policy=RetryPolicy(max_attempts=2,
                                              base_backoff=50 * us,
                                              jitter=0.0))
        with pytest.raises(TRejectedException) as ei:
            yield from stub.Get("k")
        assert ei.value.type == TTransportException.REJECTED
        assert ei.value.retry_after > 0
        return stub._hatrpc.engine

    tb.sim.process(occupier())
    engine = tb.sim.run(tb.sim.process(contender()))
    assert engine.faults.rejections == 2    # both attempts refused
    assert engine.faults.timeouts == 0


# -- the shared retry budget -------------------------------------------------

def test_shared_budget_bounds_aggregate_rejection_retries(gen):
    """8 clients hammer a full gate through one 4-token budget with a
    negligible refill: at most 4 rejection retries happen in total, the
    rest fail fast with the typed error -- the storm cannot amplify
    itself."""
    tb = Testbed(n_nodes=2)
    start(tb, gen, AdmissionConfig(capacity=1, retry_after_base=100 * us),
          slow=50 * ms)
    # ~1e-6 tokens/s: zero on this test's millisecond timescale.
    budget = RetryBudget(tb.sim, cap=4, refill_rate=1e-6)
    engines = []
    outcomes = []

    def occupier():
        stub = yield from connect(tb, gen)
        yield from stub.Slow("x")

    def client(i):
        yield tb.sim.timeout(100 * us + i * 5 * us)
        stub = yield from connect(
            tb, gen, retry_budget=budget,
            rng=random.Random(i),
            retry_policy=RetryPolicy(max_attempts=8, base_backoff=50 * us,
                                     jitter=0.0))
        engines.append(stub._hatrpc.engine)
        try:
            yield from stub.Get("k")
            outcomes.append("ok")
        except TRejectedException:
            outcomes.append("rejected")
        except TTransportException as exc:
            outcomes.append(f"transport:{exc.type}")

    tb.sim.process(occupier())
    procs = [tb.sim.process(client(i)) for i in range(8)]
    for p in procs:
        tb.sim.run(p)

    assert outcomes.count("rejected") == 8  # typed failure, nothing else
    total_retries = sum(e.faults.rejected_retries for e in engines)
    assert total_retries == 4               # exactly the budget, no refill
    assert sum(e.faults.budget_exhausted for e in engines) >= 8 - 4
    assert budget.spent == 4
    assert budget.denied >= 4
    # Every wire attempt = 1 first try + 1 per spent token.
    assert sum(e.faults.rejections for e in engines) == 8 + 4


def test_budget_refill_restores_retries_over_time(gen):
    tb = Testbed(n_nodes=2)
    budget = RetryBudget(tb.sim, cap=1, refill_rate=2000.0)  # 2 tokens/ms
    start(tb, gen, AdmissionConfig(capacity=1, retry_after_base=400 * us),
          slow=3 * ms)

    def occupier():
        stub = yield from connect(tb, gen)
        yield from stub.Slow("x")

    def contender():
        yield tb.sim.timeout(100 * us)
        stub = yield from connect(
            tb, gen, retry_budget=budget,
            retry_policy=RetryPolicy(max_attempts=10, base_backoff=50 * us,
                                     jitter=0.0))
        value = yield from stub.Get("k")
        return value, stub._hatrpc.engine

    tb.sim.process(occupier())
    value, engine = tb.sim.run(tb.sim.process(contender()))
    # Each ~800us retry wait refills a full token at 2/ms; the call
    # grinds through the occupied window and succeeds once Slow drains.
    assert value == "v"
    assert engine.faults.rejected_retries >= 2
    assert budget.spent == engine.faults.rejected_retries


# -- the OverloadStorm fault event -------------------------------------------

def test_overload_storm_drives_registered_hooks_on_schedule():
    tb = Testbed(n_nodes=2)
    ev = OverloadStorm("node1", start=200 * us, duration=500 * us, clients=4)
    inj = FaultInjector(tb, FaultPlan(events=(ev,))).arm()
    seen = []

    def hook(event, handle):
        seen.append((tb.sim.now, event.clients, handle))

    inj.on_storm(hook)

    def probe():
        yield tb.sim.timeout(400 * us)      # mid-window
        mid_active = seen[0][2].active if seen else None
        yield tb.sim.timeout(400 * us)      # past ev.end = 700us
        return mid_active, seen[0][2].active

    mid_active, end_active = tb.sim.run(tb.sim.process(probe()))
    assert [t for t, *_ in seen] == [pytest.approx(200 * us)]
    assert seen[0][1] == 4                  # the event reaches the driver
    assert mid_active is True               # generators keep going...
    assert end_active is False              # ...until exactly the window end
    assert (pytest.approx(200 * us), "storm_start", "node1") in \
        [(pytest.approx(t), k, n) for t, k, n in inj.log]
    assert any(k == "storm_end" and t == pytest.approx(700 * us)
               for t, k, n in inj.log)


def test_storm_event_validates_in_fault_plan():
    plan = FaultPlan(events=(OverloadStorm("node0", start=0.0,
                                           duration=1 * ms),))
    assert plan.events[0].end == pytest.approx(1 * ms)
    with pytest.raises(TypeError):
        FaultPlan(events=("not-an-event",))
