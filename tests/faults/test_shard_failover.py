"""Shard failover under injected faults.

One shard's node loses its link mid-run: reads routed to it must fail
over to the replica shard (including swept in-flight pipelined reads,
which the router's ``sweep_reroute`` hook re-posts on the replica's
engine), while writes surface typed transport errors -- the router never
blind-retries a write.
"""

import random

import pytest

from repro.faults import FaultInjector, FaultPlan, LinkFlap
from repro.hatkv import ShardedKVCluster
from repro.sim.units import ms, us
from repro.testbed import Testbed
from repro.thrift.errors import TTransportException
from repro.ycsb.workload import Workload

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.obs.ObsInstallOrderWarning")

N_KEYS = 120
VALUE = b"payload-" * 12


def build_cluster(tb, **kw):
    kw.setdefault("replicas", 2)
    cluster = ShardedKVCluster(tb, 2, **kw).start()
    items = [(Workload.key_of(i), VALUE) for i in range(N_KEYS)]
    cluster.load(items)
    return cluster, [k for k, _ in items]


def keys_on_shard(cluster, keys, shard):
    return [k for k in keys if cluster.primary(k) == shard]


def test_reads_fail_over_to_replica_during_link_flap():
    tb = Testbed(n_nodes=6)
    cluster, keys = build_cluster(tb)
    flap_node = cluster.servers[0].node.name
    FaultInjector(tb, FaultPlan(seed=3, events=(
        LinkFlap(flap_node, start=150 * us, duration=8 * ms),
    ))).arm()
    shard0_keys = keys_on_shard(cluster, keys, 0)
    assert len(shard0_keys) >= 10
    out = {"values": [], "write_errors": 0}

    def client():
        router = yield from cluster.connect(tb.node(4),
                                            rng=random.Random(7))
        yield tb.sim.timeout(300 * us)         # well inside the flap window
        for key in shard0_keys[:8]:
            got = yield from router.Get(key)   # replica serves the read
            out["values"].append((got.found, got.value))
        for key in shard0_keys[:3]:            # writes: typed error, no retry
            try:
                yield from router.Put(key, b"clobber")
            except TTransportException:
                out["write_errors"] += 1
        router.close()

    tb.sim.run(tb.sim.process(client()))
    assert out["values"] == [(True, VALUE)] * 8
    assert out["write_errors"] == 3
    # the data was never clobbered mid-flap on the replica either
    for key in shard0_keys[:3]:
        env = cluster.servers[1].backend.env
        with env.begin() as txn:
            assert txn.get(key) == VALUE


def test_swept_inflight_reads_reroute_to_replica():
    """A pipelined burst is in flight when the primary's link drops: the
    swept idempotent entries must settle with correct values from the
    replica, via the engine's sweep_reroute hook."""
    tb = Testbed(n_nodes=6)
    cluster, keys = build_cluster(tb)
    flap_node = cluster.servers[0].node.name
    FaultInjector(tb, FaultPlan(seed=5, events=(
        LinkFlap(flap_node, start=30 * us, duration=10 * ms),
    ))).arm()
    out = {}

    def client():
        router = yield from cluster.connect(tb.node(4),
                                            rng=random.Random(11))
        shard0 = keys_on_shard(cluster, keys, 0)[:40]
        out["values"] = yield from router.multi_get(shard0)
        out["engines"] = [e.faults.as_dict() for e in router._engines]
        router.close()

    tb.sim.run(tb.sim.process(client()))
    assert out["values"] == [VALUE] * 40
    # at least one swept call crossed engines or failed over at the router
    crossed = sum(f["reroutes"] for f in out["engines"])
    assert crossed > 0 or out["engines"][0]["channel_failures"] > 0


def test_flap_over_reads_and_writes_recover_after_window():
    tb = Testbed(n_nodes=6)
    cluster, keys = build_cluster(tb)
    flap_node = cluster.servers[0].node.name
    FaultInjector(tb, FaultPlan(seed=9, events=(
        LinkFlap(flap_node, start=100 * us, duration=2 * ms),
    ))).arm()
    key = keys_on_shard(cluster, keys, 0)[0]
    out = {}

    def client():
        router = yield from cluster.connect(tb.node(4),
                                            rng=random.Random(13))
        yield tb.sim.timeout(5 * ms)           # past the window
        yield from router.Put(key, b"after-flap")
        got = yield from router.Get(key)
        out["after"] = (got.found, got.value)
        router.close()

    tb.sim.run(tb.sim.process(client()))
    assert out["after"] == (True, b"after-flap")
    # the write replicated to both owners
    for shard in cluster.preference(key):
        with cluster.servers[shard].backend.env.begin() as txn:
            assert txn.get(key) == b"after-flap"


def test_no_replicas_means_reads_fail_typed():
    """replicas=1: no failover target -- reads surface the transport
    error instead of silently returning wrong data."""
    tb = Testbed(n_nodes=6)
    cluster, keys = build_cluster(tb, replicas=1)
    flap_node = cluster.servers[0].node.name
    FaultInjector(tb, FaultPlan(seed=2, events=(
        LinkFlap(flap_node, start=100 * us, duration=8 * ms),
    ))).arm()
    key = keys_on_shard(cluster, keys, 0)[0]
    out = {}

    def client():
        router = yield from cluster.connect(tb.node(4),
                                            rng=random.Random(3))
        yield tb.sim.timeout(300 * us)
        try:
            yield from router.Get(key)
            out["error"] = None
        except TTransportException as exc:
            out["error"] = exc
        router.close()

    tb.sim.run(tb.sim.process(client()))
    assert isinstance(out["error"], TTransportException)
