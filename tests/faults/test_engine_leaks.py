"""Regression tests for the engine's in-flight accounting leaks, plus the
pipelined-path invariants that guard against reintroducing them: after any
timed-out call every inflight gauge reads 0, committed traces carry no
dangling attempt spans, the idempotency ledger stays bounded, close() wipes
resilience state, and the bounded window backpressures / correlates
out-of-order completions without losing a call."""

import random
from collections import deque

import pytest

from repro import obs
from repro.core.engine import pinned_plan
from repro.core.pipeline import (BoundedSeqidSet, ChannelPipeline, pack_pip,
                                 split_pip)
from repro.core.runtime import HatRpcServer, hatrpc_connect
from repro.idl import load_idl
from repro.obs import trace as obstrace
from repro.sim.core import Simulator
from repro.sim.units import ms, us
from repro.testbed import Testbed
from repro.thrift.errors import TTransportException
from repro.verbs.cq import PollMode

# earlier test modules in a full run capture instruments registry-less,
# which makes our late obs.install() warn; that mismatch is expected here
pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.obs.ObsInstallOrderWarning")

KV_IDL = """
service MiniKV {
    hint: concurrency = 4;

    string Get(1: string k) [ hint: perf_goal = latency; ]
    void Put(1: string k, 2: string v) [ hint: perf_goal = latency; ]
    string Slow(1: string k) [ hint: perf_goal = latency; ]
}
"""


class KVHandler:
    def __init__(self, tb):
        self.tb = tb
        self.store = {}

    def Get(self, k):
        return self.store.get(k, "")

    def Put(self, k, v):
        self.store[k] = v

    def Slow(self, k):
        yield self.tb.sim.timeout(10 * ms)
        return k


@pytest.fixture(scope="module")
def gen():
    return load_idl(KV_IDL, "engine_leaks_gen")


def connect(tb, gen, **kw):
    kw.setdefault("rng", random.Random(42))
    return hatrpc_connect(tb.node(1), tb.node(0), gen, "MiniKV", **kw)


def assert_gauges_zero(reg, engine):
    for ch in engine.plan.channels:
        g = reg.gauge(f"engine.ch{ch.index}.inflight")
        assert g.value == 0, f"leaked {g.name}={g.value}"
        occ = reg.gauge(f"engine.ch{ch.index}.window_occupancy")
        assert occ.value == 0, f"leaked {occ.name}={occ.value}"


# -- satellite: gauge leak on deadline interrupt ------------------------------

def test_inflight_gauge_zero_after_deadline_timeout(gen):
    with obs.installed() as reg:
        tb = Testbed(n_nodes=2)
        HatRpcServer(tb.node(0), gen, "MiniKV", KVHandler(tb)).start()

        def run():
            stub = yield from connect(tb, gen, deadline=200 * us)
            with pytest.raises(TTransportException) as ei:
                yield from stub.Slow("x")
            assert ei.value.type == TTransportException.TIMED_OUT
            return stub._hatrpc.engine

        engine = tb.sim.run(tb.sim.process(run()))
        tb.sim.run()
        assert engine.faults.timeouts == 1
        assert_gauges_zero(reg, engine)


# -- satellite: dangling attempt span on timeout ------------------------------

def test_timed_out_call_commits_no_dangling_attempt_span(gen):
    with obstrace.installed(sample_rate=0.0) as col:
        tb = Testbed(n_nodes=2)
        HatRpcServer(tb.node(0), gen, "MiniKV", KVHandler(tb)).start()

        def run():
            stub = yield from connect(tb, gen, deadline=200 * us)
            with pytest.raises(TTransportException):
                yield from stub.Slow("x")
            return None

        tb.sim.run(tb.sim.process(run()))
        tb.sim.run()

        slow = [spans for spans in col.traces().values()
                if any(s.kind == "client" and not s.parent_span_id
                       and s.name == "Slow" for s in spans)]
        assert len(slow) == 1
        spans = slow[0]
        attempts = [s for s in spans if s.name.startswith("attempt#")]
        assert attempts, "the interrupted attempt never committed"
        assert any(s.status == "interrupted" for s in attempts)
        # every committed span is closed: end at/after start, nothing open
        for s in spans:
            assert s.end >= s.start


# -- satellite: bounded idempotency ledger ------------------------------------

def test_bounded_seqid_set_evicts_lru():
    s = BoundedSeqidSet(cap=3)
    for i in range(3):
        s.add(("Put", i))
    s.add(("Put", 0))                       # refresh: 0 is now newest
    s.add(("Put", 3))                       # evicts the oldest -> ("Put", 1)
    assert ("Put", 1) not in s
    assert ("Put", 0) in s and ("Put", 2) in s and ("Put", 3) in s
    assert len(s) == 3
    assert s.evictions == 1
    s.discard(("Put", 2))
    assert len(s) == 2
    with pytest.raises(ValueError):
        BoundedSeqidSet(cap=0)


def test_bounded_seqid_set_never_evicts_pinned():
    # Regression: cap pressure used to LRU-evict the seqid of a live
    # (still-in-flight) slow call, silently re-opening its duplicate-send
    # window.  Pinned keys must ride out any amount of pressure.
    s = BoundedSeqidSet(cap=2)
    s.add(("Slow", 1), pinned=True)
    s.add(("Slow", 2), pinned=True)
    s.add(("Slow", 3), pinned=True)
    assert len(s) == 3                # live keys may overflow the cap
    assert s.evictions == 0           # ...without evicting each other
    s.add(("Put", 1))                 # historical: first out under pressure
    assert ("Put", 1) not in s
    for i in (1, 2, 3):
        assert ("Slow", i) in s and s.pinned(("Slow", i))
    s.unpin(("Slow", 1))              # completed -> merely historical
    assert not s.pinned(("Slow", 1))
    assert len(s) == 2 and ("Slow", 1) not in s
    s.discard(("Slow", 2))            # discard clears the pin too
    assert not s.pinned(("Slow", 2))


def test_live_seqids_survive_cap_pressure_from_fast_calls():
    # A window of stalled Slow calls + a tiny ledger cap: fast Puts on
    # another channel churning through the ledger must never evict the
    # Slows' live seqids (pre-fix, plain LRU evicted them oldest-first).
    # The payload hints put Put on its own channel, so the stalled Slow
    # server loop does not serialize the pressure traffic behind it.
    pin_gen = load_idl("""
service PinKV {
    hint: concurrency = 4;

    string Slow(1: string k) [ hint: perf_goal = latency; ]
    void Put(1: string k, 2: string v)
        [ c_hint: payload_size = 10KB; s_hint: payload_size = 64; ]
}
""", "seqid_pin_gen")
    tb = Testbed(n_nodes=2)

    class Handler:
        def Slow(self, k):
            yield tb.sim.timeout(10 * ms)
            return k

        def Put(self, k, v):
            pass

    HatRpcServer(tb.node(0), pin_gen, "PinKV", Handler(),
                 pipeline=True).start()

    def run():
        stub = yield from hatrpc_connect(tb.node(1), tb.node(0), pin_gen,
                                         "PinKV", rng=random.Random(42),
                                         pipeline=True)
        engine = stub._hatrpc.engine
        engine._sent_seqids = BoundedSeqidSet(cap=2)
        caller = stub._hatrpc.async_caller()
        h1 = yield from caller.call_async("Slow", "a")
        h2 = yield from caller.call_async("Slow", "b")
        live = [k for k in engine._sent_seqids if k[0] == "Slow"]
        assert len(live) == 2
        for i in range(6):            # cap-thrashing fast traffic
            yield from stub.Put("k%d" % i, "v")
        for key in live:
            assert key in engine._sent_seqids, f"live {key} evicted"
            assert engine._sent_seqids.pinned(key)
        assert (yield from h1.wait()) == "a"
        assert (yield from h2.wait()) == "b"
        for key in live:              # completed -> unpinned, evictable
            assert not engine._sent_seqids.pinned(key)
        assert len(engine._sent_seqids) <= 2
        return engine

    tb.sim.run(tb.sim.process(run()))


def test_engine_seqid_ledger_stays_bounded(gen):
    tb = Testbed(n_nodes=2)
    HatRpcServer(tb.node(0), gen, "MiniKV", KVHandler(tb)).start()

    def run():
        stub = yield from connect(tb, gen)
        engine = stub._hatrpc.engine
        engine._sent_seqids = BoundedSeqidSet(cap=4)
        for i in range(10):
            yield from stub.Put("k%d" % i, "v")
        return engine

    engine = tb.sim.run(tb.sim.process(run()))
    assert len(engine._sent_seqids) <= 4
    assert engine._sent_seqids.evictions >= 6
    # the ledger still iterates as (fn, seqid) tuples for the gate
    assert all(fn == "Put" for fn, _ in engine._sent_seqids)


# -- satellite: close() wipes resilience state --------------------------------

def test_reconnect_after_close_sees_no_phantom_failback(gen):
    tb = Testbed(n_nodes=2)
    HatRpcServer(tb.node(0), gen, "MiniKV", KVHandler(tb)).start()

    def run():
        stub = yield from connect(tb, gen)
        client = stub._hatrpc
        engine = client.engine
        yield from stub.Put("k", "v")
        primary = engine.plan.routes["Get"].channel
        # pretend a failover happened: routing memory points off-primary
        engine._last_channel[primary] = primary + 1
        engine._breaker(primary).record_failure()
        client.close()
        assert engine._breakers == {}
        assert engine._last_channel == {}
        assert engine._pipelines == {}
        # a fresh connection must not report a failback it never performed
        stub2 = yield from connect(tb, gen)
        value = yield from stub2.Get("k")
        return value, stub2._hatrpc.engine

    value, engine2 = tb.sim.run(tb.sim.process(run()))
    assert value == "v"
    assert engine2.faults.failbacks == 0
    assert not any(kind == "failback" for _, kind, *_ in engine2.fault_trace)


# -- tentpole: window backpressure --------------------------------------------

def test_window_backpressure_blocks_the_overflow_post(gen):
    tb = Testbed(n_nodes=2)
    fns = gen.SERVICE_FUNCTIONS["MiniKV"]
    plan = pinned_plan("MiniKV", fns, "direct_writeimm", PollMode.BUSY,
                       max_msg=16384, window=2)
    HatRpcServer(tb.node(0), gen, "MiniKV", KVHandler(tb), plan=plan).start()

    def run():
        stub = yield from connect(tb, gen, plan=plan)
        caller = stub._hatrpc.async_caller()
        h1 = yield from caller.call_async("Slow", "a")   # slot 1
        h2 = yield from caller.call_async("Slow", "b")   # slot 2: window full
        t_blocked = tb.sim.now
        h3 = yield from caller.call_async("Slow", "c")   # must wait ~10ms
        t_admitted = tb.sim.now
        engine = stub._hatrpc.engine
        pipe = next(iter(engine._pipelines.values()))
        assert pipe.window == 2
        assert pipe.high_water == 2                      # never 3 in flight
        r1 = yield from h1.wait()
        r2 = yield from h2.wait()
        r3 = yield from h3.wait()
        return (r1, r2, r3), t_admitted - t_blocked, engine

    results, stall, engine = tb.sim.run(tb.sim.process(run()))
    assert results == ("a", "b", "c")
    assert stall >= 9 * ms            # admitted only once a response freed a slot
    assert engine.faults.timeouts == 0


# -- tentpole: out-of-order response correlation ------------------------------

class _FakeChan:
    supports_pipelining = True

    def __init__(self, sim):
        self.sim = sim
        self.posted = []
        self._q = deque()

    def post(self, message):
        self.posted.append(split_pip(message))
        return
        yield  # pragma: no cover - generator marker

    def recv(self):
        while not self._q:
            yield self.sim.timeout(1 * us)
        return self._q.popleft()


class _FakeEntry:
    def __init__(self, payload):
        self.payload = payload
        self.result = None
        self.error = None

    def wire(self, seq):
        return pack_pip(seq) + self.payload

    def complete(self, resp):
        self.result = resp

    def fail(self, exc):
        self.error = exc


def test_receiver_correlates_out_of_order_responses():
    sim = Simulator()
    chan = _FakeChan(sim)
    pipe = ChannelPipeline(sim, chan, window=4)
    e1, e2 = _FakeEntry(b"req1"), _FakeEntry(b"req2")

    def run():
        yield from pipe.submit(e1)
        yield from pipe.submit(e2)
        # deliver the responses REVERSED: seq 2 first, then seq 1
        chan._q.append(pack_pip(2) + b"resp2")
        chan._q.append(pack_pip(1) + b"resp1")
        yield sim.timeout(10 * us)

    sim.run(sim.process(run()))
    assert chan.posted == [(1, b"req1"), (2, b"req2")]
    assert e1.result == b"resp1"      # seq-correlated, not FIFO-paired
    assert e2.result == b"resp2"
    assert e1.error is None and e2.error is None
    assert pipe.inflight == {}
    assert pipe.completed == 2
    assert pipe._credits == pipe.window


# -- tentpole: abandonment leaves window neighbors untouched ------------------

def test_abandoned_wait_isolates_its_window_neighbors(gen):
    with obs.installed() as reg:
        tb = Testbed(n_nodes=2)
        fns = gen.SERVICE_FUNCTIONS["MiniKV"]
        plan = pinned_plan("MiniKV", fns, "direct_writeimm", PollMode.BUSY,
                           max_msg=16384, window=4)
        HatRpcServer(tb.node(0), gen, "MiniKV", KVHandler(tb),
                     plan=plan).start()

        def run():
            stub = yield from connect(tb, gen, plan=plan)
            caller = stub._hatrpc.async_caller()
            yield from stub.Put("k", "v")
            slow = yield from caller.call_async("Slow", "x")
            fast = yield from caller.call_async("Get", "k")
            with pytest.raises(TTransportException) as ei:
                yield from slow.wait(1 * ms)      # Slow takes 10ms
            assert ei.value.type == TTransportException.TIMED_OUT
            assert slow.handle.abandoned
            # the neighbor sharing the window is unaffected
            value = yield from fast.wait()
            assert value == "v"
            # ...and so is the channel: a fresh call still round-trips
            value2 = yield from stub.Get("k")
            assert value2 == "v"
            return stub._hatrpc.engine

        engine = tb.sim.run(tb.sim.process(run()))
        tb.sim.run()                  # drain the late Slow completion
        assert engine.faults.timeouts == 1
        assert engine.faults.channel_failures == 0
        assert_gauges_zero(reg, engine)
        pipe = next(iter(engine._pipelines.values()))
        assert pipe.inflight == {}    # the late response was swept
        assert not pipe.dead
