"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Interrupt, SimulationError, Simulator


def test_timeout_advances_clock():
    sim = Simulator()
    done = []

    def proc():
        yield sim.timeout(1.5)
        done.append(sim.now)
        yield sim.timeout(0.5)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [1.5, 2.0]


def test_timeout_value_passed_into_process():
    sim = Simulator()
    seen = []

    def proc():
        v = yield sim.timeout(1.0, value="hello")
        seen.append(v)

    sim.process(proc())
    sim.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for i in range(5):
        sim.process(proc(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_return_value():
    sim = Simulator()

    def inner():
        yield sim.timeout(1)
        return 42

    def outer():
        v = yield sim.process(inner())
        return v * 2

    p = sim.process(outer())
    assert sim.run(p) == 84


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise ValueError("boom")

    def waiter():
        with pytest.raises(ValueError, match="boom"):
            yield sim.process(bad())
        return "caught"

    p = sim.process(waiter())
    assert sim.run(p) == "caught"


def test_event_succeed_once_only():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError())


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_run_until_time():
    sim = Simulator()
    fired = []

    def proc():
        for _ in range(10):
            yield sim.timeout(1)
            fired.append(sim.now)

    sim.process(proc())
    sim.run(until=4.5)
    assert fired == [1, 2, 3, 4]
    assert sim.now == 4.5


def test_run_until_event_deadlock_detected():
    sim = Simulator()

    def proc():
        yield sim.event()  # nobody ever triggers this

    p = sim.process(proc())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run(p)


def test_yield_non_event_fails_process():
    sim = Simulator()

    def proc():
        yield 42  # type: ignore[misc]

    p = sim.process(proc())
    with pytest.raises(SimulationError, match="yielded 42"):
        sim.run(p)
    assert p.triggered and not p.ok


def test_unobserved_failure_surfaces_at_run():
    """A crashed process nobody waits on must not vanish silently."""
    sim = Simulator()

    def boom():
        yield sim.timeout(1)
        raise RuntimeError("unobserved")

    sim.process(boom())
    with pytest.raises(RuntimeError, match="unobserved"):
        sim.run()


def test_defused_failure_stays_quiet():
    sim = Simulator()

    def boom():
        yield sim.timeout(1)
        raise RuntimeError("defused")

    p = sim.process(boom())
    p.defuse()
    sim.run()
    assert p.triggered and not p.ok


def test_all_of_collects_values():
    sim = Simulator()

    def waiter():
        vals = yield AllOf(sim, [sim.timeout(3, "a"), sim.timeout(1, "b")])
        return (sim.now, vals)

    p = sim.process(waiter())
    assert sim.run(p) == (3, ["a", "b"])


def test_any_of_returns_first():
    sim = Simulator()

    def waiter():
        idx, val = yield AnyOf(sim, [sim.timeout(3, "slow"), sim.timeout(1, "fast")])
        return (sim.now, idx, val)

    p = sim.process(waiter())
    assert sim.run(p) == (1, 1, "fast")


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def waiter():
        vals = yield AllOf(sim, [])
        return vals

    p = sim.process(waiter())
    assert sim.run(p) == []


def test_interrupt_wakes_waiting_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100)
            log.append("slept")
        except Interrupt as i:
            log.append(("interrupted", sim.now, i.cause))

    def interrupter(p):
        yield sim.timeout(2)
        p.interrupt("wake up")

    p = sim.process(sleeper())
    sim.process(interrupter(p))
    sim.run()
    assert log == [("interrupted", 2, "wake up")]


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)
        return "ok"

    p = sim.process(quick())
    sim.run()
    p.interrupt()  # must not raise
    assert p.value == "ok"


def test_determinism_same_program_same_trace():
    def build():
        sim = Simulator()
        trace = []

        def worker(i):
            for k in range(3):
                yield sim.timeout(0.5 * (i + 1))
                trace.append((sim.now, i, k))

        for i in range(4):
            sim.process(worker(i))
        sim.run()
        return trace

    assert build() == build()
