"""Unit tests for Resource / Store / Gate."""

import pytest

from repro.sim import Gate, Resource, SimulationError, Simulator, Store


def test_resource_serializes_two_holders():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def user(tag):
        yield res.acquire()
        log.append((tag, "in", sim.now))
        yield sim.timeout(2)
        res.release()
        log.append((tag, "out", sim.now))

    sim.process(user("a"))
    sim.process(user("b"))
    sim.run()
    assert log == [("a", "in", 0), ("a", "out", 2), ("b", "in", 2), ("b", "out", 4)]


def test_resource_capacity_two_overlaps():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def user(tag):
        yield from res.use(2)
        done.append((tag, sim.now))

    for t in "abc":
        sim.process(user(t))
    sim.run()
    assert done == [("a", 2), ("b", 2), ("c", 4)]


def test_resource_release_without_acquire():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(tag):
        yield res.acquire()
        order.append(tag)
        yield sim.timeout(1)
        res.release()

    for t in range(6):
        sim.process(user(t))
    sim.run()
    assert order == list(range(6))


def test_store_put_then_get():
    sim = Simulator()
    st = Store(sim)
    st.put("x")

    def getter():
        v = yield st.get()
        return (v, sim.now)

    p = sim.process(getter())
    assert sim.run(p) == ("x", 0)


def test_store_get_blocks_until_put():
    sim = Simulator()
    st = Store(sim)

    def getter():
        v = yield st.get()
        return (v, sim.now)

    def putter():
        yield sim.timeout(5)
        st.put("late")

    p = sim.process(getter())
    sim.process(putter())
    assert sim.run(p) == ("late", 5)


def test_store_fifo_matching():
    sim = Simulator()
    st = Store(sim)
    got = []

    def getter(tag):
        v = yield st.get()
        got.append((tag, v))

    for t in range(3):
        sim.process(getter(t))

    def putter():
        yield sim.timeout(1)
        for v in "abc":
            st.put(v)

    sim.process(putter())
    sim.run()
    assert got == [(0, "a"), (1, "b"), (2, "c")]


def test_store_try_get():
    sim = Simulator()
    st = Store(sim)
    assert st.try_get() is None
    st.put(7)
    assert len(st) == 1
    assert st.try_get() == 7
    assert st.try_get() is None


def test_gate_releases_current_waiters_only():
    sim = Simulator()
    gate = Gate(sim)
    woke = []

    def waiter(tag, delay):
        yield sim.timeout(delay)
        yield gate.wait()
        woke.append((tag, sim.now))

    sim.process(waiter("early", 0))

    def firer():
        yield sim.timeout(2)
        n = gate.fire()
        assert n == 1
        yield sim.timeout(2)
        gate.fire()

    sim.process(waiter("late", 3))
    sim.process(firer())
    sim.run()
    assert woke == [("early", 2), ("late", 4)]


def test_gate_fire_with_no_waiters():
    sim = Simulator()
    gate = Gate(sim)
    assert gate.fire() == 0
    assert gate.n_waiting == 0
