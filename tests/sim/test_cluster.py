"""Node/cluster/testbed plumbing tests."""

import pytest

from repro.sim import Cluster, ClusterSpec, NodeSpec, Simulator
from repro.testbed import Testbed


def test_default_spec_matches_paper_testbed():
    spec = ClusterSpec()
    assert spec.n_nodes == 10
    assert spec.node.cores == 28           # Xeon Gold 6132 x2
    assert spec.node.numa_domains == 2
    assert spec.node.cores_per_numa == 14
    assert spec.node.ram_bytes == 192 * 1024**3


def test_cluster_indexing():
    sim = Simulator()
    c = Cluster(sim, ClusterSpec(n_nodes=3))
    assert len(c) == 3
    assert c[0].name == "node0"
    assert c["node2"] is c[2]
    assert [n.name for n in c] == ["node0", "node1", "node2"]


def test_node_compute_uses_scheduler():
    sim = Simulator()
    c = Cluster(sim, ClusterSpec(n_nodes=1, node=NodeSpec(cores=2)))
    done = {}

    def work():
        yield c[0].compute(1.0)
        done["t"] = sim.now

    sim.process(work())
    sim.run()
    assert done["t"] == pytest.approx(1.0)


def test_testbed_wires_nic_and_tcp():
    tb = Testbed(n_nodes=4)
    for node in tb.nodes:
        assert node.nic is not None
        assert node.tcp is not None
        assert tb.fabric.port_of(node) is node.nic.port
    assert tb.node(0) is tb.cluster[0]


def test_testbed_custom_sizes():
    tb = Testbed(n_nodes=2, node_spec=NodeSpec(cores=4))
    assert tb.node(0).cpu.cores == 4


def test_run_until_helper():
    tb = Testbed(n_nodes=1)

    def tick():
        yield tb.sim.timeout(5.0)

    tb.sim.process(tick())
    tb.run(until=2.0)
    assert tb.sim.now == 2.0
