"""Property-based tests for the GPS CPU scheduler and memory model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import CpuScheduler, Simulator
from repro.verbs.memory import Memory


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 8),
       st.lists(st.tuples(st.floats(0, 2), st.floats(0.01, 2)),
                min_size=1, max_size=25))
def test_work_conservation(cores, jobs):
    """Total useful core-seconds == total submitted work, always."""
    sim = Simulator()
    cpu = CpuScheduler(sim, cores)
    total = sum(w for _s, w in jobs)

    def job(start, work):
        yield sim.timeout(start)
        yield cpu.compute(work)

    for start, work in jobs:
        sim.process(job(start, work))
    sim.run()
    assert cpu.busy_core_seconds == pytest.approx(total, rel=1e-9)
    assert cpu.runnable == 0


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 8),
       st.lists(st.floats(0.01, 2), min_size=1, max_size=20))
def test_makespan_bounds(cores, works):
    """Makespan is bounded below by max(total/cores, longest job) and above
    by the fully serialized sum."""
    sim = Simulator()
    cpu = CpuScheduler(sim, cores)

    def job(work):
        yield cpu.compute(work)

    for w in works:
        sim.process(job(w))
    sim.run()
    makespan = sim.now
    lower = max(sum(works) / cores, max(works))
    assert makespan >= lower * (1 - 1e-9)
    assert makespan <= sum(works) * (1 + 1e-9)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 4), st.integers(0, 6), st.floats(0.1, 3))
def test_spinners_scale_completion_time(cores, n_spinners, work):
    """One finite job among N spinners finishes at work * max(1, (N+1)/C)."""
    sim = Simulator()
    cpu = CpuScheduler(sim, cores)
    tokens = [cpu.spin_begin() for _ in range(n_spinners)]
    done = {}

    def job():
        yield cpu.compute(work)
        done["t"] = sim.now

    sim.process(job())
    sim.run()
    expected = work * max(1.0, (n_spinners + 1) / cores)
    assert done["t"] == pytest.approx(expected, rel=1e-9)
    for tok in tokens:
        cpu.spin_end(tok)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 512),
                          st.binary(min_size=0, max_size=64)),
                min_size=1, max_size=30))
def test_memory_segments_independent(allocs):
    """Writes to one allocation never bleed into another."""
    mem = Memory()
    regions = []
    for size, data in allocs:
        addr = mem.alloc(size)
        payload = (data * (size // max(len(data), 1) + 1))[:size]
        mem.write(addr, payload)
        regions.append((addr, size, payload))
    for addr, size, payload in regions:
        # unwritten tails read back as zero-fill (fresh pages)
        assert mem.read(addr, size) == payload + bytes(size - len(payload))
    assert mem.live_bytes == sum(s for _a, s, _p in regions)
