"""Unit tests for the GPS CPU scheduler."""

import pytest

from repro.sim import CpuScheduler, SimulationError, Simulator


def run_jobs(cores, jobs):
    """Run (start_time, cpu_seconds) jobs; return completion times by index."""
    sim = Simulator()
    cpu = CpuScheduler(sim, cores)
    out = {}

    def job(i, start, work):
        yield sim.timeout(start)
        yield cpu.compute(work)
        out[i] = sim.now

    for i, (start, work) in enumerate(jobs):
        sim.process(job(i, start, work))
    sim.run()
    return out


def test_single_job_full_speed():
    assert run_jobs(1, [(0, 5.0)]) == {0: 5.0}


def test_two_jobs_two_cores_no_contention():
    assert run_jobs(2, [(0, 5.0), (0, 5.0)]) == {0: 5.0, 1: 5.0}


def test_two_jobs_one_core_share():
    # Two equal jobs time-share one core: both finish at 2x their work.
    assert run_jobs(1, [(0, 5.0), (0, 5.0)]) == {0: 10.0, 1: 10.0}


def test_unequal_jobs_one_core():
    # job0 = 1s work, job1 = 3s work on 1 core.
    # Shared until job0 done at t=2 (each got 1s of CPU);
    # job1 then runs alone, 2s left -> done at t=4.
    out = run_jobs(1, [(0, 1.0), (0, 3.0)])
    assert out[0] == pytest.approx(2.0)
    assert out[1] == pytest.approx(4.0)


def test_late_arrival_shares():
    # job0: 4s work from t=0 on 1 core. job1 arrives at t=2 with 1s work.
    # t in [0,2): job0 alone, 2s done. [2,4): shared, each +1s.
    # job1 done at t=4; job0 has 1s left, alone -> done at t=5.
    out = run_jobs(1, [(0, 4.0), (2, 1.0)])
    assert out[1] == pytest.approx(4.0)
    assert out[0] == pytest.approx(5.0)


def test_spinner_steals_time():
    sim = Simulator()
    cpu = CpuScheduler(sim, 1)
    out = {}

    def spinner():
        tok = cpu.spin_begin()
        yield sim.timeout(10)
        cpu.spin_end(tok)

    def job():
        yield cpu.compute(2.0)
        out["done"] = sim.now

    sim.process(spinner())
    sim.process(job())
    sim.run()
    # Job shares the single core with the spinner: 2s work at 1/2 speed.
    assert out["done"] == pytest.approx(4.0)


def test_spinner_on_spare_core_harmless():
    sim = Simulator()
    cpu = CpuScheduler(sim, 2)
    out = {}

    def spinner():
        tok = cpu.spin_begin()
        yield sim.timeout(10)
        cpu.spin_end(tok)

    def job():
        yield cpu.compute(2.0)
        out["done"] = sim.now

    sim.process(spinner())
    sim.process(job())
    sim.run()
    assert out["done"] == pytest.approx(2.0)


def test_spin_end_twice_rejected():
    sim = Simulator()
    cpu = CpuScheduler(sim, 1)
    tok = cpu.spin_begin()
    cpu.spin_end(tok)
    with pytest.raises(SimulationError):
        cpu.spin_end(tok)


def test_zero_work_completes_immediately():
    sim = Simulator()
    cpu = CpuScheduler(sim, 1)
    ev = cpu.compute(0.0)
    assert ev.triggered


def test_oversubscription_scales_linearly():
    # 8 equal jobs on 2 cores: each runs at 2/8 = 1/4 speed.
    out = run_jobs(2, [(0, 1.0)] * 8)
    for t in out.values():
        assert t == pytest.approx(4.0)


def test_busy_core_seconds_accounting():
    sim = Simulator()
    cpu = CpuScheduler(sim, 4)

    def job():
        yield cpu.compute(3.0)

    sim.process(job())
    sim.process(job())
    sim.run()
    assert cpu.busy_core_seconds == pytest.approx(6.0)
    assert cpu.utilization(3.0) == pytest.approx(6.0 / 12.0)


def test_many_staggered_jobs_conserve_work():
    # Work conservation: total busy core-seconds equals total submitted work.
    sim = Simulator()
    cpu = CpuScheduler(sim, 3)
    total = 0.0

    def job(start, work):
        yield sim.timeout(start)
        yield cpu.compute(work)

    for i in range(20):
        w = 0.1 + (i % 5) * 0.3
        total += w
        sim.process(job(i * 0.05, w))
    sim.run()
    assert cpu.busy_core_seconds == pytest.approx(total)
