"""HatKV integration tests."""

import pytest

from repro.hatkv import HatKVServer, connect_hatkv, load_hatkv_module
from repro.hatkv.server import SERVICE
from repro.lmdb import SyncMode
from repro.testbed import Testbed


@pytest.fixture
def tb():
    return Testbed(n_nodes=3)


def start(tb, variant="function", concurrency=4, **kw):
    gen = load_hatkv_module(variant=variant, concurrency=concurrency)
    server = HatKVServer(tb.node(0), gen, concurrency=concurrency, **kw)
    return gen, server.start()


def test_put_get_roundtrip(tb):
    gen, server = start(tb)
    out = {}

    def client():
        kv = yield from connect_hatkv(tb.node(1), tb.node(0), gen,
                                      concurrency=4)
        yield from kv.Put(b"key-1".ljust(24, b"0"), b"value-1" * 100)
        out["v"] = yield from kv.Get(b"key-1".ljust(24, b"0"))
        out["missing"] = yield from kv.Get(b"nothere".ljust(24, b"0"))

    tb.sim.run(tb.sim.process(client()))
    assert out["v"].found and out["v"].value == b"value-1" * 100
    assert not out["missing"].found and out["missing"].value == b""
    assert server.backend.reads == 2
    assert server.backend.writes == 1


def test_get_distinguishes_empty_value_from_missing(tb):
    # Regression: Get used to return bare bytes, so a stored-empty value
    # and an absent key were both b"" -- indistinguishable to callers.
    gen, server = start(tb)
    out = {}

    def client():
        kv = yield from connect_hatkv(tb.node(1), tb.node(0), gen,
                                      concurrency=4)
        yield from kv.Put(b"empty".ljust(24, b"0"), b"")
        out["empty"] = yield from kv.Get(b"empty".ljust(24, b"0"))
        out["absent"] = yield from kv.Get(b"absent".ljust(24, b"0"))

    tb.sim.run(tb.sim.process(client()))
    assert out["empty"].found and out["empty"].value == b""
    assert not out["absent"].found and out["absent"].value == b""


def test_multi_ops(tb):
    gen, server = start(tb)
    keys = [f"k{i}".encode().ljust(24, b"0") for i in range(10)]
    values = [f"v{i}".encode() * 50 for i in range(10)]
    out = {}

    def client():
        kv = yield from connect_hatkv(tb.node(1), tb.node(0), gen,
                                      concurrency=4)
        yield from kv.MultiPut(keys, values)
        out["vals"] = yield from kv.MultiGet(keys)
        out["mixed"] = yield from kv.MultiGet([keys[0], b"absent" * 4])

    tb.sim.run(tb.sim.process(client()))
    assert out["vals"] == values
    assert out["mixed"] == [values[0], b""]


def test_function_variant_splits_channels():
    gen = load_hatkv_module(variant="function", concurrency=128)
    from repro.core.runtime import service_plan_of
    plan = service_plan_of(gen, SERVICE, concurrency=128)
    # MultiGet (10KB payloads) and Get (1KB) get differently sized
    # channels at 128-way concurrency (buffer geometry + RFP slot sizing
    # are per-channel even when the wire protocol coincides).
    assert plan.channel_for("Get").protocol == "direct_writeimm"
    assert plan.channel_for("MultiGet").max_msg > plan.channel_for("Get").max_msg
    assert len(plan.channels) >= 2


def test_service_variant_single_channel():
    gen = load_hatkv_module(variant="service", concurrency=128)
    from repro.core.runtime import service_plan_of
    plan = service_plan_of(gen, SERVICE, concurrency=128)
    assert len(plan.channels) == 1


def test_backend_hint_tuning(tb):
    gen, server = start(tb, concurrency=64)
    # throughput goal -> group commit + NOSYNC; readers from concurrency.
    assert server.backend.env.max_readers == 64
    assert server.backend.env.sync_mode is SyncMode.NOSYNC
    assert server.backend._group_commit


def test_untuned_backend_for_comparators(tb):
    gen, server = start(tb, tune_backend=False)
    assert server.backend.env.max_readers == 126   # stock LMDB default
    assert not server.backend._group_commit


def test_concurrent_clients_consistency(tb):
    gen, server = start(tb, concurrency=8)
    results = []

    def client(i):
        kv = yield from connect_hatkv(tb.node(1 + i % 2), tb.node(0), gen,
                                      concurrency=8)
        key = f"client{i}".encode().ljust(24, b"0")
        yield from kv.Put(key, f"data-{i}".encode() * 100)
        got = yield from kv.Get(key)
        results.append(got.found and got.value == f"data-{i}".encode() * 100)

    for i in range(8):
        tb.sim.process(client(i))
    tb.sim.run()
    assert len(results) == 8 and all(results)
    # All writes landed in one LMDB (single-writer serialization worked).
    assert server.backend.env.stat().entries == 8
