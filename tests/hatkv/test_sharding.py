"""Sharded HatKV: ring, router, replication, and metrics tests."""

import pytest

from repro import obs
from repro.hatkv import HashRing, ShardedKVCluster
from repro.obs import trace as obstrace
from repro.testbed import Testbed
from repro.ycsb import WORKLOAD_B, run_ycsb
from repro.ycsb.workload import Workload

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.obs.ObsInstallOrderWarning")


def keys_of(n):
    return [Workload.key_of(i) for i in range(n)]


# -- the hash ring ------------------------------------------------------------

def test_ring_is_deterministic_and_total():
    a = HashRing(4, vnodes=64, seed=0)
    b = HashRing(4, vnodes=64, seed=0)
    for key in keys_of(200):
        shard = a.shard_of(key)
        assert shard == b.shard_of(key)
        assert 0 <= shard < 4


def test_ring_balances_with_vnodes():
    ring = HashRing(4, vnodes=64)
    counts = ring.distribution(keys_of(4000))
    assert sum(counts) == 4000
    for n in counts:
        assert 0.15 < n / 4000 < 0.40, counts


def test_ring_growth_remaps_only_a_fraction():
    # The consistent-hashing property: going 3 -> 4 shards moves roughly
    # 1/4 of the keys, not all of them (modulo hashing would move ~3/4).
    small = HashRing(3, vnodes=64)
    grown = HashRing(4, vnodes=64)
    keys = keys_of(3000)
    moved = sum(1 for k in keys if small.shard_of(k) != grown.shard_of(k))
    assert moved / 3000 < 0.45


def test_ring_rejects_bad_shape():
    with pytest.raises(ValueError):
        HashRing(0)


# -- cluster wiring -----------------------------------------------------------

def test_cluster_places_one_server_per_node():
    tb = Testbed(n_nodes=8)
    cluster = ShardedKVCluster(tb, 4)
    assert len(cluster.servers) == 4
    assert len({id(s.node) for s in cluster.servers}) == 4
    assert [s.shard for s in cluster.servers] == [0, 1, 2, 3]
    assert cluster.nodes == tb.nodes[:4]


def test_cluster_validates_replicas():
    tb = Testbed(n_nodes=8)
    with pytest.raises(ValueError):
        ShardedKVCluster(tb, 2, replicas=3)


def test_replica_shards_are_ring_successors():
    tb = Testbed(n_nodes=8)
    cluster = ShardedKVCluster(tb, 4, replicas=2)
    assert cluster.replica_shards(0) == (0, 1)
    assert cluster.replica_shards(3) == (3, 0)
    key = keys_of(1)[0]
    pref = cluster.preference(key)
    assert pref[0] == cluster.primary(key) and len(pref) == 2


def test_load_routes_keys_to_owning_shards_only():
    tb = Testbed(n_nodes=8)
    cluster = ShardedKVCluster(tb, 4, replicas=1)
    items = [(k, b"v" * 50) for k in keys_of(400)]
    cluster.load(items)
    per_shard = [s.backend.env.stat().entries for s in cluster.servers]
    assert sum(per_shard) == 400          # replicas=1: each key lives once
    expected = cluster.ring.distribution(k for k, _ in items)
    assert per_shard == expected


def test_load_replicates_to_successors():
    tb = Testbed(n_nodes=8)
    cluster = ShardedKVCluster(tb, 4, replicas=2)
    items = [(k, b"v" * 50) for k in keys_of(400)]
    cluster.load(items)
    per_shard = [s.backend.env.stat().entries for s in cluster.servers]
    assert sum(per_shard) == 800          # every key lives twice


def test_testbed_split_helper():
    tb = Testbed(n_nodes=10)
    servers, clients = tb.split(4, 4)
    assert servers == tb.nodes[:4] and clients == tb.nodes[4:8]
    assert tb.split(2) == (tb.nodes[:2], tb.nodes[2:])
    with pytest.raises(ValueError):
        tb.split(10)
    with pytest.raises(ValueError):
        tb.split(8, 5)


# -- routing ------------------------------------------------------------------

def test_router_roundtrip_and_empty_vs_missing():
    tb = Testbed(n_nodes=8)
    cluster = ShardedKVCluster(tb, 2).start()
    cluster.load((k, b"seed" * 25) for k in keys_of(50))
    out = {}

    def client():
        r = yield from cluster.connect(tb.node(4))
        key = Workload.key_of(3)
        yield from r.Put(key, b"fresh" * 20)
        got = yield from r.Get(key)
        out["roundtrip"] = got.found and got.value == b"fresh" * 20
        # GetResult keeps absent distinguishable from stored-empty even
        # through the router (the conflation was satellite bug #1).
        yield from r.Put(Workload.key_of(900), b"")
        out["empty"] = yield from r.Get(Workload.key_of(900))
        out["absent"] = yield from r.Get(Workload.key_of(901))
        r.close()

    tb.sim.run(tb.sim.process(client()))
    assert out["roundtrip"]
    assert out["empty"].found and out["empty"].value == b""
    assert not out["absent"].found


def test_router_writes_land_on_owning_shard():
    tb = Testbed(n_nodes=8)
    cluster = ShardedKVCluster(tb, 4, replicas=1).start()
    keys = keys_of(40)

    def client():
        r = yield from cluster.connect(tb.node(4))
        for k in keys:
            yield from r.Put(k, b"x" * 100)
        r.close()

    tb.sim.run(tb.sim.process(client()))
    per_shard = [s.backend.env.stat().entries for s in cluster.servers]
    assert per_shard == cluster.ring.distribution(keys)


def test_router_multiget_reassembles_request_order():
    tb = Testbed(n_nodes=8)
    cluster = ShardedKVCluster(tb, 4).start()
    items = [(Workload.key_of(i), f"v{i}".encode() * 20) for i in range(30)]
    cluster.load(items)
    out = {}

    def client():
        r = yield from cluster.connect(tb.node(4))
        keys = [k for k, _ in items] + [Workload.key_of(999)]
        out["server_side"] = yield from r.MultiGet(keys)
        out["pipelined"] = yield from r.multi_get(keys)
        r.close()

    tb.sim.run(tb.sim.process(client()))
    expected = [v for _, v in items] + [b""]
    assert out["server_side"] == expected
    assert out["pipelined"] == expected


def test_router_multiput_replicates_and_scan_merges():
    tb = Testbed(n_nodes=8)
    cluster = ShardedKVCluster(tb, 2, replicas=2).start()
    keys = keys_of(20)
    values = [f"val{i}".encode() * 10 for i in range(20)]
    out = {}

    def client():
        r = yield from cluster.connect(tb.node(4))
        yield from r.MultiPut(keys, values)
        flat = yield from r.Scan(keys[0], 10)
        out["scan"] = [(flat[i], flat[i + 1])
                       for i in range(0, len(flat), 2)]
        r.close()

    tb.sim.run(tb.sim.process(client()))
    # replicas=2 over 2 shards: every shard holds the full keyspace
    for s in cluster.servers:
        assert s.backend.env.stat().entries == 20
    assert out["scan"] == sorted(zip(keys, values))[:10]


def test_ycsb_runs_over_sharded_cluster():
    tb = Testbed(n_nodes=10)
    cluster = ShardedKVCluster(tb, 2).start()
    result = run_ycsb(cluster, cluster.connect, WORKLOAD_B, testbed=tb,
                      n_clients=4, ops_per_client=6, warmup_per_client=1)
    assert result.total_ops == 24
    assert result.throughput_ops > 0


# -- observability ------------------------------------------------------------

def test_per_shard_metrics_and_key_distribution_gauge():
    with obs.installed() as reg:
        tb = Testbed(n_nodes=8)
        cluster = ShardedKVCluster(tb, 2).start()
        items = [(k, b"v" * 50) for k in keys_of(100)]
        cluster.load(items)

        def client():
            r = yield from cluster.connect(tb.node(4))
            for k, _ in items[:10]:
                yield from r.Get(k)
            r.close()

        tb.sim.run(tb.sim.process(client()))
        dist = cluster.ring.distribution(k for k, _ in items)
        for i in range(2):
            assert reg.gauge(f"hatkv.router.keys.shard{i}").value == dist[i]
        shard_gets = [reg.counter(f"hatkv.shard{i}.get").value
                      for i in range(2)]
        router_ops = [reg.counter(f"hatkv.router.shard{i}.ops").value
                      for i in range(2)]
        assert sum(shard_gets) == 10      # handler-side per-shard counters
        assert sum(router_ops) == 10      # router-side routing counters
        assert shard_gets == router_ops


def test_trace_annotates_shard_on_hint_select():
    with obstrace.installed(sample_rate=1.0) as col:
        tb = Testbed(n_nodes=8)
        cluster = ShardedKVCluster(tb, 2, pipeline=False).start()
        cluster.load((k, b"v" * 50) for k in keys_of(20))

        def client():
            r = yield from cluster.connect(tb.node(4))
            for k in keys_of(6):
                yield from r.Get(k)
            r.close()

        tb.sim.run(tb.sim.process(client()))
        shards = set()
        for spans in col.traces().values():
            for s in spans:
                if s.name == "hint_select" and "shard" in s.attrs:
                    shards.add(s.attrs["shard"])
        assert shards == {0, 1}, \
            "hint_select stages must carry the routed shard id"


# -- scan correctness across replication and failover -------------------------

def test_scan_prefers_primary_row_over_stale_replica_copy():
    # Regression: Scan used to sort the merged (key, value) rows and keep
    # the first occurrence of each key -- i.e. the lexicographically
    # SMALLEST VALUE won the dedupe.  A replica lagging its primary (a
    # write applies primary-first) could therefore shadow the fresh value
    # whenever the stale bytes happened to sort lower.  The merge now
    # tracks which shard answered and prefers the key's ring owner.
    tb = Testbed(n_nodes=8)
    cluster = ShardedKVCluster(tb, 2, replicas=2).start()
    key = Workload.key_of(5)
    p = cluster.primary(key)
    r = cluster.replica_shards(p)[1]
    # Hand-place a replication lag: fresh value on the primary, stale on
    # the replica, with the stale bytes sorting strictly first.
    with cluster.servers[p].backend.env.begin(write=True) as txn:
        txn.put(key, b"z-fresh")
    with cluster.servers[r].backend.env.begin(write=True) as txn:
        txn.put(key, b"a-stale")
    out = {}

    def client():
        router = yield from cluster.connect(tb.node(4))
        out["flat"] = yield from router.Scan(b"", 10)
        router.close()

    tb.sim.run(tb.sim.process(client()))
    pairs = dict(zip(out["flat"][::2], out["flat"][1::2]))
    assert pairs[key] == b"z-fresh", \
        "scan must surface the primary's row, not a stale replica copy"


def test_scan_survives_mid_scan_failover_without_duplicates():
    with obs.installed() as reg:
        tb = Testbed(n_nodes=8)
        cluster = ShardedKVCluster(tb, 2, replicas=2).start()
        items = [(k, b"v" * 30) for k in keys_of(20)]
        cluster.load(items)
        # One shard is dark for the whole scan: its leg must fail over to
        # the replica, and the merged result must still be exact.
        cluster.servers[0].node.crash()
        out = {}

        def client():
            router = yield from cluster.connect(tb.node(4))
            out["flat"] = yield from router.Scan(b"", 20)
            router.close()

        tb.sim.run(tb.sim.process(client()))
        pairs = dict(zip(out["flat"][::2], out["flat"][1::2]))
        assert len(out["flat"]) == 2 * len(pairs), "duplicate keys in scan"
        assert pairs == dict(items)
        # Depending on when the transport notices the dead peer, the dark
        # leg either fails over in the router or is swept to the replica
        # engine by the takeover hook -- both are counted.
        assert (reg.counter("hatkv.router.read_failovers").value
                + reg.counter("hatkv.router.reroutes").value) >= 1
