"""LMDB backend adapter: cost accounting, tuning, writer serialization."""

import pytest

from repro.core.hints import ResolvedHints
from repro.hatkv.backend import BackendCosts, LmdbBackend
from repro.lmdb import SyncMode
from repro.testbed import Testbed


@pytest.fixture
def tb():
    return Testbed(n_nodes=1)


@pytest.fixture
def backend(tb):
    return LmdbBackend(tb.node(0))


def run(tb, gen):
    return tb.sim.run(tb.sim.process(gen))


def test_put_get_roundtrip_with_time(tb, backend):
    def flow():
        t0 = tb.sim.now
        yield from backend.put(b"k", b"v" * 100)
        t_put = tb.sim.now - t0
        value = yield from backend.get(b"k")
        return value, t_put

    value, t_put = run(tb, flow())
    assert value == b"v" * 100
    assert t_put > 0  # writes consume simulated time


def test_get_missing_returns_none(tb, backend):
    def flow():
        return (yield from backend.get(b"missing"))

    assert run(tb, flow()) is None


def test_multi_ops(tb, backend):
    keys = [f"k{i}".encode() for i in range(10)]
    values = [f"v{i}".encode() * 10 for i in range(10)]

    def flow():
        yield from backend.multi_put(keys, values)
        got = yield from backend.multi_get(keys + [b"nope"])
        return got

    got = run(tb, flow())
    assert got[:10] == values
    assert got[10] is None
    assert backend.writes == 10
    assert backend.reads == 11


def test_multi_put_length_mismatch(tb, backend):
    def flow():
        yield from backend.multi_put([b"a"], [b"x", b"y"])

    p = tb.sim.process(flow())
    with pytest.raises(ValueError):
        tb.sim.run(p)


def test_writer_serialization(tb, backend):
    """Concurrent writers queue on the single-writer mutex."""
    order = []

    def writer(i):
        yield from backend.put(f"w{i}".encode(), b"data" * 200)
        order.append((i, tb.sim.now))

    for i in range(4):
        tb.sim.process(writer(i))
    tb.sim.run()
    times = [t for _, t in order]
    assert times == sorted(times)
    assert len(set(times)) == 4  # strictly serialized, no two finish together


def test_deeper_tree_costs_more(tb):
    costs = BackendCosts()
    shallow = LmdbBackend(tb.node(0), costs=costs)
    deep = LmdbBackend(tb.node(0), costs=costs)
    with deep.env.begin(write=True) as txn:
        for i in range(3000):
            txn.put(f"{i:08d}".encode(), b"v")
    with shallow.env.begin(write=True) as txn:
        txn.put(b"only", b"v")

    def timed_get(b, key):
        t0 = tb.sim.now
        yield from b.get(key)
        return tb.sim.now - t0

    t_shallow = run(tb, timed_get(shallow, b"only"))
    t_deep = run(tb, timed_get(deep, b"00001500"))
    assert t_deep > t_shallow


def test_apply_hints_throughput(tb, backend):
    backend.apply_hints(ResolvedHints.from_mapping(
        {"perf_goal": "throughput", "concurrency": 96}))
    assert backend.env.max_readers == 96
    assert backend._group_commit
    assert backend.env.sync_mode is SyncMode.NOSYNC


def test_apply_hints_res_util_keeps_durability(tb, backend):
    backend.apply_hints(ResolvedHints.from_mapping(
        {"perf_goal": "res_util"}))
    assert backend.env.sync_mode is SyncMode.SYNC
    assert not backend._group_commit


def test_group_commit_cheaper_than_sync(tb):
    sync_b = LmdbBackend(tb.node(0))
    sync_b.env.sync_mode = SyncMode.SYNC
    group_b = LmdbBackend(tb.node(0))
    group_b.apply_hints(ResolvedHints.from_mapping(
        {"perf_goal": "throughput"}))
    assert group_b._commit_cost() < sync_b._commit_cost()


def test_reader_table_backoff(tb):
    """With a tiny reader table, readers wait instead of erroring."""
    backend = LmdbBackend(tb.node(0))
    backend.env.max_readers = 1
    with backend.env.begin(write=True) as txn:
        txn.put(b"k", b"v")
    done = []

    def reader(i):
        v = yield from backend.get(b"k")
        done.append(v)

    # Hold the single reader slot for a while.
    hog = backend.env.begin()

    def release_later():
        yield tb.sim.timeout(20e-6)
        hog.commit()

    tb.sim.process(reader(0))
    tb.sim.process(release_later())
    tb.sim.run()
    assert done == [b"v"]
