"""Hot-key cache + lease protocol tests: the ``cacheable`` hint end to end.

Covers the HotKeyCache unit behaviour, lease semantics under clock
advance and writes, invalidation across link-flap read failover, and the
cache-bypass guarantee (an uncached deployment's call flow -- down to the
reply bytes -- is untouched by the feature).
"""

import pytest

from repro import obs
from repro.core.hints import CacheableHint, cacheable_hint, resolve_hints
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, LinkFlap
from repro.hatkv import HatKVServer, ShardedKVCluster, load_hatkv_module
from repro.hatkv.cache import CacheEntry, HotKeyCache
from repro.hatkv.client import KVClient, cache_for, connect_hatkv
from repro.hatkv.server import SERVICE, LeaseTable
from repro.idl import load_idl
from repro.testbed import Testbed
from repro.thrift import TBinaryProtocol, TMemoryBuffer

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.obs.ObsInstallOrderWarning")

TTL = 200e-6
CACHEABLE = {"ttl": TTL, "hot_promote": 3}


class FakeSim:
    def __init__(self):
        self.now = 0.0


def k(i):
    return f"key-{i}".encode().ljust(24, b"0")


# -- hint plumbing ------------------------------------------------------------

def test_cacheable_hint_resolves_from_gen_module():
    gen = load_hatkv_module("function", cacheable=CACHEABLE)
    hint_map = gen.SERVICE_HINTS[SERVICE]
    for side in ("server", "client"):
        cc = cacheable_hint(resolve_hints(
            hint_map["service"], hint_map["functions"]["Get"], side))
        assert cc == CacheableHint(ttl=pytest.approx(TTL), hot_promote=3)
    # only Get is marked: a Put miss path must never consult the cache
    assert cacheable_hint(resolve_hints(
        hint_map["service"], hint_map["functions"]["Put"], "client")) is None


def test_uncached_module_resolves_no_hint():
    gen = load_hatkv_module("function")
    hint_map = gen.SERVICE_HINTS[SERVICE]
    assert cacheable_hint(resolve_hints(
        hint_map["service"], hint_map["functions"]["Get"], "client")) is None


# -- HotKeyCache unit behaviour ----------------------------------------------

class R:
    """A GetResult-shaped reply."""

    def __init__(self, found=True, value=b"v", version=1, lease=TTL):
        self.found = found
        self.value = value
        self.version = version
        self.lease = lease


def test_cache_admit_lookup_and_lease_expiry():
    sim = FakeSim()
    c = HotKeyCache(sim, ttl=TTL)
    assert c.lookup(b"a") is None
    c.admit(b"a", R())
    hit = c.lookup(b"a")
    assert hit is not None and hit.value == b"v" and hit.version == 1
    sim.now += TTL + 1e-9                 # the lease ages out on the clock
    assert c.lookup(b"a") is None
    assert len(c) == 0


def test_cache_refuses_unleased_and_versionless_replies():
    c = HotKeyCache(FakeSim(), ttl=TTL)
    c.admit(b"a", R(lease=0.0))           # writer in flight: no grant
    assert len(c) == 0
    c.admit(b"a", R(version=None, lease=None))   # uncached deployment
    assert len(c) == 0


def test_cache_admit_counts_lease_from_request_issue_time():
    # The server's write barrier ends at grant-time + lease; the reply's
    # flight time must NOT extend the entry past that horizon.
    sim = FakeSim()
    c = HotKeyCache(sim, ttl=TTL)
    issued = sim.now
    sim.now += TTL / 4                    # response flight
    c.admit(b"a", R(), issued=issued)
    sim.now = issued + TTL - 1e-9         # inside the issue-relative lease
    assert c.lookup(b"a") is not None
    sim.now = issued + TTL + 1e-9         # past it -- even though a
    assert c.lookup(b"a") is None         # reply-relative lease would hold
    # A reply older than its own lease is useless, not cached at all.
    issued = sim.now
    sim.now += TTL * 2
    c.admit(b"b", R(), issued=issued)
    assert len(c) == 0


def test_cache_newer_version_invalidates_even_without_lease():
    sim = FakeSim()
    c = HotKeyCache(sim, ttl=TTL)
    c.admit(b"a", R(version=1))
    # A v2 reply with no grant (write racing) must still kill the v1 entry.
    c.admit(b"a", R(value=b"v2", version=2, lease=0.0))
    assert c.lookup(b"a") is None


def test_cache_capacity_evicts_lru():
    sim = FakeSim()
    c = HotKeyCache(sim, ttl=TTL, capacity=2)
    c.admit(b"a", R())
    c.admit(b"b", R())
    assert c.lookup(b"a") is not None     # refresh a: b is now LRU
    c.admit(b"c", R())
    assert c.lookup(b"b") is None
    assert c.lookup(b"a") is not None and c.lookup(b"c") is not None


def test_cache_promotion_threshold_and_decay():
    c = HotKeyCache(FakeSim(), ttl=TTL, hot_promote=3, capacity=4)
    assert not c.promoted(b"hot")
    for _ in range(3):
        c.lookup(b"hot")
    assert c.promoted(b"hot")
    assert not c.promoted(b"cold")


def test_cache_invalidate_and_clear_count():
    with obs.installed() as reg:
        c = HotKeyCache(FakeSim(), ttl=TTL)
        c.admit(b"a", R())
        c.admit(b"b", R())
        c.invalidate(b"a")
        c.invalidate(b"a")                # second is a no-op
        c.clear()
        assert reg.counter("hatkv.cache.invalidations").value == 2
        assert len(c) == 0


# -- LeaseTable unit behaviour ------------------------------------------------

def test_lease_grant_refused_while_writer_in_flight_or_version_moved():
    sim = FakeSim()
    lt = LeaseTable(sim, ttl=TTL)
    assert lt.grant(b"a", 0) == TTL
    lt.begin_write(b"a")
    assert lt.grant(b"a", 0) == 0.0
    lt.bump(b"a")
    lt.end_write(b"a")
    assert lt.grant(b"a", 0) == 0.0       # read started before the bump
    assert lt.grant(b"a", 1) == 0.0       # write-rate suppression window
    sim.now += lt.suppress
    assert lt.grant(b"a", 1) == pytest.approx(TTL)


def test_lease_grants_share_one_epoch_not_a_sliding_horizon():
    sim = FakeSim()
    lt = LeaseTable(sim, ttl=TTL)
    assert lt.grant(b"a", 0) == TTL
    sim.now += TTL / 2
    # A grant mid-epoch gets only the epoch's remainder: a writer's
    # barrier is bounded by the FIRST grant's expiry, not re-extended.
    assert lt.grant(b"a", 0) == pytest.approx(TTL / 2)
    sim.now += TTL / 2
    assert lt.grant(b"a", 0) == TTL       # fresh epoch after expiry


def test_write_rate_suppression_skipped_for_short_leases():
    from repro.hatkv.server import LEASE_SUPPRESS_MIN_TTL
    sim = FakeSim()
    short = LeaseTable(sim, ttl=LEASE_SUPPRESS_MIN_TTL / 2)
    short.bump(b"a")
    # Short lease: a just-written key is immediately grantable again.
    assert short.grant(b"a", 1) > 0.0
    longl = LeaseTable(sim, ttl=LEASE_SUPPRESS_MIN_TTL * 4)
    longl.bump(b"a")
    assert longl.grant(b"a", 1) == 0.0
    sim.now += longl.suppress
    assert longl.grant(b"a", 1) > 0.0


# -- single-server end to end -------------------------------------------------

def _start_cached(tb, cacheable=CACHEABLE):
    gen = load_hatkv_module("function", concurrency=4, cacheable=cacheable)
    server = HatKVServer(tb.node(0), gen, concurrency=4).start()
    return gen, server


def _kv_client(tb, gen):
    stub = yield from connect_hatkv(tb.node(1), tb.node(0), gen,
                                    concurrency=4)
    return KVClient(stub, cache=cache_for(tb.node(1), gen))


def test_cached_get_hits_locally_and_write_invalidates():
    tb = Testbed(n_nodes=3)
    gen, server = _start_cached(tb)
    out = {}

    def client():
        kv = yield from _kv_client(tb, gen)
        yield from kv.Put(k(1), b"v1")
        yield tb.sim.timeout(2 * TTL)        # exit the write-suppression window
        r1 = yield from kv.Get(k(1))         # miss: fills the cache
        reads0 = server.backend.reads
        r2 = yield from kv.Get(k(1))         # hit: no backend read
        out["r1"], out["r2"] = r1, r2
        out["hit_local"] = server.backend.reads == reads0
        yield from kv.Put(k(1), b"v2")       # invalidates
        out["r3"] = yield from kv.Get(k(1))

    tb.sim.run(tb.sim.process(client()))
    assert out["r1"].value == b"v1" and out["r1"].lease == pytest.approx(TTL)
    assert out["r2"].value == b"v1" and out["r2"].lease == 0.0
    assert out["hit_local"]
    assert out["r3"].value == b"v2"


def test_lease_expiry_vs_clock_advance():
    tb = Testbed(n_nodes=3)
    gen, server = _start_cached(tb)
    out = {}

    def client():
        kv = yield from _kv_client(tb, gen)
        yield from kv.Put(k(2), b"v")
        yield tb.sim.timeout(2 * TTL)        # exit the write-suppression window
        yield from kv.Get(k(2))
        reads0 = server.backend.reads
        yield tb.sim.timeout(TTL / 2)        # still inside the lease
        yield from kv.Get(k(2))
        out["within"] = server.backend.reads == reads0
        yield tb.sim.timeout(TTL)            # now past it
        yield from kv.Get(k(2))
        out["after"] = server.backend.reads == reads0 + 1
        out["expiries"] = kv.cache._m_expiries

    tb.sim.run(tb.sim.process(client()))
    assert out["within"], "unexpired lease must serve locally"
    assert out["after"], "expired lease must go back to the server"


def test_put_stalls_until_outstanding_lease_expires():
    # The write barrier: a Put to a leased key cannot apply (and ack)
    # until the lease horizon passes -- that is what makes serving leased
    # entries safe.
    tb = Testbed(n_nodes=3)
    gen, server = _start_cached(tb)
    out = {}

    def client():
        kv = yield from _kv_client(tb, gen)
        yield from kv.Put(k(3), b"v1")
        yield tb.sim.timeout(2 * TTL)        # exit the write-suppression window
        yield from kv.Get(k(3))              # takes a lease
        t0 = tb.sim.now
        yield from kv.Put(k(3), b"v2")       # must wait out the lease
        out["stall"] = tb.sim.now - t0
        out["r"] = yield from kv.Get(k(3))

    tb.sim.run(tb.sim.process(client()))
    assert out["stall"] >= TTL * 0.9, out["stall"]
    assert out["r"].value == b"v2"


def test_no_stale_reads_across_put_burst():
    # Storm-cell shape: a leased hot key takes a burst of writes; every
    # post-ack read must observe the latest acknowledged value, and the
    # cache must converge within one lease of the final ack.
    tb = Testbed(n_nodes=3)
    gen, server = _start_cached(tb)
    out = {"stale": 0}

    def client():
        kv = yield from _kv_client(tb, gen)
        yield from kv.Put(k(4), b"v0")
        yield tb.sim.timeout(2 * TTL)        # exit the write-suppression window
        yield from kv.Get(k(4))
        for i in range(1, 6):
            yield from kv.Put(k(4), f"v{i}".encode())
            r = yield from kv.Get(k(4))
            if r.value != f"v{i}".encode():
                out["stale"] += 1
        yield tb.sim.timeout(TTL)            # one lease after the last ack
        out["final"] = yield from kv.Get(k(4))

    tb.sim.run(tb.sim.process(client()))
    assert out["stale"] == 0
    assert out["final"].value == b"v5"


def test_multi_get_serves_cached_keys_locally_and_admits_misses():
    tb = Testbed(n_nodes=3)
    gen, server = _start_cached(tb)
    keys = [k(i) for i in range(10, 16)]
    out = {}

    def client():
        kv = yield from _kv_client(tb, gen)
        yield from kv.multi_put(keys, [b"v-" + key for key in keys])
        yield tb.sim.timeout(2 * TTL)        # exit the write-suppression window
        yield from kv.Get(keys[0])           # warm one key
        reads0 = server.backend.reads
        out["vals"] = yield from kv.multi_get(keys)
        out["delta"] = server.backend.reads - reads0
        reads1 = server.backend.reads
        out["vals2"] = yield from kv.multi_get(keys)   # all admitted above
        out["delta2"] = server.backend.reads - reads1

    tb.sim.run(tb.sim.process(client()))
    assert out["vals"] == [b"v-" + key for key in keys]
    assert out["delta"] == len(keys) - 1     # the warm key never hit LMDB
    assert out["vals2"] == out["vals"]
    assert out["delta2"] == 0                # second sweep fully cached


def test_hot_promotion_steers_misses_one_sided_under_saturation():
    # Steering policy: a promoted miss rides the one-sided channel only
    # while the RPC window is saturated -- the one-sided read costs more
    # round trips, so it must buy queue relief, never add latency.  A
    # multi_get wider than the window saturates it, so the overflow keys
    # steer; a lone sequential Get never does.
    with obs.installed() as reg:
        tb = Testbed(n_nodes=3)
        gen, server = _start_cached(tb)
        keys = [k(i) for i in range(20, 30)]

        def client():
            kv = yield from _kv_client(tb, gen)
            yield from kv.multi_put(keys, [b"h" + key for key in keys])
            yield tb.sim.timeout(2 * TTL)    # exit write suppression
            for _ in range(3):               # lookups reach hot_promote=3
                yield from kv.multi_get(keys)
                yield tb.sim.timeout(TTL * 1.5)   # expire: force misses
            yield from kv.Get(k(20))         # sequential: window is idle
            yield from kv.multi_get(keys)

        tb.sim.run(tb.sim.process(client()))
        assert reg.counter("hatkv.cache.hot_reads").value >= 1
        assert reg.counter("hatkv.lease.grants").value >= 1


# -- cache bypass: the uncached deployment is untouched -----------------------

OLD_GETRESULT_IDL = """
struct GetResult {
    1: bool found,
    2: binary value,
}
"""


def test_uncached_reply_bytes_identical_to_two_field_struct():
    # The wire contract: fields 3 (version) and 4 (lease) are only ever
    # serialized when a lease table is wired.  An uncached server's reply
    # must stay byte-for-byte what the pre-cache struct produced.
    new = load_hatkv_module("function").GetResult(found=True, value=b"xy")
    old = load_idl(OLD_GETRESULT_IDL).GetResult(found=True, value=b"xy")
    bufs = []
    for struct in (new, old):
        buf = TMemoryBuffer()
        struct.write(TBinaryProtocol(buf))
        bufs.append(buf.getvalue())
    assert bufs[0] == bufs[1]


def test_uncached_flow_bypasses_cache_entirely():
    tb = Testbed(n_nodes=3)
    gen = load_hatkv_module("function", concurrency=4)
    server = HatKVServer(tb.node(0), gen, concurrency=4).start()
    assert server.leases is None
    assert cache_for(tb.node(1), gen) is None
    out = {}

    def client():
        stub = yield from connect_hatkv(tb.node(1), tb.node(0), gen,
                                        concurrency=4)
        kv = KVClient(stub, cache=cache_for(tb.node(1), gen))
        assert kv.cache is None
        yield from kv.Put(k(6), b"v")
        out["r1"] = yield from kv.Get(k(6))
        out["r2"] = yield from kv.Get(k(6))

    tb.sim.run(tb.sim.process(client()))
    for r in (out["r1"], out["r2"]):
        assert r.value == b"v"
        assert r.version is None and r.lease is None
    assert server.backend.reads == 2        # both Gets hit the server


def test_uncached_plan_has_no_hot_read_channel():
    gen_off = load_hatkv_module("function")
    gen_on = load_hatkv_module("function", cacheable=CACHEABLE)
    tb = Testbed(n_nodes=3)
    s_off = HatKVServer(tb.node(0), gen_off)
    s_on = HatKVServer(tb.node(1), gen_on)
    off = [ch for ch in s_off.rpc.plan.channels if ch.hot_read]
    on = [ch for ch in s_on.rpc.plan.channels if ch.hot_read]
    assert off == []
    assert len(on) == 1 and on[0].protocol == "pilaf"
    # and the hot channel is appended, never renumbering existing ones
    assert [c.index for c in s_on.rpc.plan.channels[:-1]] == \
        [c.index for c in s_off.rpc.plan.channels]


# -- failover invalidation ----------------------------------------------------

def test_link_flap_failover_invalidates_instead_of_serving_stale():
    with obs.installed() as reg:
        tb = Testbed(n_nodes=8)
        gen = load_hatkv_module("function", cacheable=CACHEABLE)
        cluster = ShardedKVCluster(tb, 2, gen_module=gen,
                                   replicas=2).start()
        key = k(7)
        p = cluster.primary(key)
        # The flap must outlast the engine's retry budget: a short blip is
        # ridden out with retries and the call still settles on the
        # primary (no failover, and caching that answer is fine).  It
        # also starts after the Put's write-suppression window (2 * TTL)
        # so the warm Get actually takes a lease.
        flap_at, flap_len = 800e-6, 20e-3
        FaultInjector(tb, FaultPlan(events=(
            LinkFlap(node=cluster.servers[p].node.name,
                     start=flap_at, duration=flap_len),))).arm()
        out = {}

        def client():
            r = yield from cluster.connect(tb.node(4))
            yield from r.Put(key, b"v1")
            yield tb.sim.timeout(2 * TTL)           # exit write suppression
            yield from r.Get(key)                   # warm the cache
            assert len(r.cache) == 1
            yield tb.sim.timeout(flap_at + 50e-6 - tb.sim.now)
            # Primary is dark: the read fails over to the replica.  The
            # answer must come back, but must NOT be admitted -- and the
            # stale warm entry must be gone.
            got = yield from r.Get(key)
            out["value"] = got.value
            out["cached_after"] = len(r.cache)
            yield tb.sim.timeout(flap_len)          # link back up
            out["recovered"] = yield from r.Get(key)
            r.close()

        tb.sim.run(tb.sim.process(client()))
        assert out["value"] == b"v1"
        assert out["cached_after"] == 0
        assert out["recovered"].value == b"v1"
        assert reg.counter("hatkv.router.read_failovers").value >= 1


def test_cache_metrics_streamed_names():
    with obs.installed() as reg:
        HotKeyCache(FakeSim(), ttl=TTL)
        for name in ("hits", "misses", "invalidations", "lease_expiries",
                     "hot_reads"):
            assert f"hatkv.cache.{name}" in reg.counters
