"""Elastic resharding: ring deltas, the migration protocol, and the
router/cache correctness sweep that rides along.

Covers the minimality property of ring resizes (only the remapped arcs
move), plan/ring ownership agreement at every range state, the cutover
fence and server-side handoff guard (a Put is never acknowledged by two
primaries), the dual-read forwarding window, live grow/shrink under
concurrent traffic with exact final state, the load-aware trigger, and
the three satellite regressions: scoped reroute invalidation, close
fencing against in-flight takeovers, and epoch-consistent scan dedup.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.hatkv import (ShardedKVCluster, load_hatkv_module,
                         RangeHandedOffError, ResizeTrigger)
from repro.hatkv.client import connect_hatkv
from repro.hatkv.migration import (HandoffGuard, MigrationPlan, RangeState,
                                   RING_SPACE, hash_key)
from repro.hatkv.sharding import HashRing
from repro.sim.core import Event
from repro.sim.units import ms, us
from repro.testbed import Testbed
from repro.thrift.errors import TTransportException
from repro.ycsb.workload import Workload

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.obs.ObsInstallOrderWarning")

CACHEABLE = {"ttl": 500e-6, "hot_promote": 3}


def keys_of(n):
    return [Workload.key_of(i) for i in range(n)]


def _moved_task_and_key(plan):
    """(task, key): a range whose primary moves plus a key it covers."""
    for key in keys_of(5000):
        task = plan.covering(hash_key(key))
        if task is not None and task.src[0] != task.dst[0]:
            return task, key
    raise AssertionError("no key landed in a primary-moving range")


# -- ring deltas: the minimality property -------------------------------------

@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 4), delta=st.integers(1, 3), seed=st.integers(0, 3))
def test_resize_remaps_exactly_the_moved_ranges(n, delta, seed):
    """A key changes owner across a resize iff its hash falls in one of
    ``moved_ranges`` -- both directions, so the plan's range set is
    exactly (no more, no less) the remapped key space."""
    old = HashRing(n, vnodes=16, seed=seed)
    new = old.resize(n + delta)
    moved = old.moved_ranges(new)
    for key in keys_of(150):
        h = hash_key(key)
        covered = any(r.contains(h) for r in moved)
        assert covered == (old.shard_of(key) != new.shard_of(key))
        for r in moved:
            if r.contains(h):
                assert old.shard_of(key) == r.src
                assert new.shard_of(key) == r.dst


def test_resize_moves_the_consistent_hashing_fraction():
    """Growing n -> m remaps ~ (m - n) / m of the hash space (the new
    shards' vnode share), nowhere near the ~ (m-1)/m modulo would move."""
    old = HashRing(2, vnodes=256)
    new = old.resize(4)
    frac = sum(r.measure for r in old.moved_ranges(new)) / RING_SPACE
    assert abs(frac - 0.5) < 0.1, frac
    shrunk = HashRing(4, vnodes=256)
    frac = sum(r.measure for r in
               shrunk.moved_ranges(shrunk.resize(3))) / RING_SPACE
    assert abs(frac - 0.25) < 0.1, frac


def test_plan_ownership_agrees_with_rings_at_every_state():
    """plan.preference walks src -> dst exactly at the DONE flip, and
    primary_at resolves against the epoch the caller snapshotted."""
    tb = Testbed(n_nodes=2)
    old = HashRing(2, vnodes=32)
    new = old.resize(3)
    plan = MigrationPlan(tb.sim, old, new, replicas=1)
    assert plan.tasks
    epoch = 0
    for task in plan.tasks:
        h = task.lo
        for state in (RangeState.PENDING, RangeState.MIGRATING,
                      RangeState.CUTOVER):
            task.state = state
            assert plan.preference(h) == task.src
            assert plan.primary_at(h, epoch) == task.src[0]
            assert old.owner_of_hash(h) == task.src[0]
        epoch += 1
        task.state = RangeState.DONE
        task.done_epoch = epoch
        assert plan.preference(h) == task.dst
        assert new.owner_of_hash(h) == task.dst[0]
        # the frozen view from before this flip still sees the old owner
        assert plan.primary_at(h, epoch - 1) == task.src[0]
        assert plan.primary_at(h, epoch) == task.dst[0]
    assert plan.complete
    # hashes no task covers agree under both rings at every epoch
    for key in keys_of(200):
        h = hash_key(key)
        if plan.covering(h) is None:
            assert old.owner_of_hash(h) == new.owner_of_hash(h) \
                == plan.primary_at(h, 0)


# -- the write fence ----------------------------------------------------------

def test_handoff_guard_refuses_only_post_cutover_writes():
    tb = Testbed(n_nodes=2)
    old = HashRing(2, vnodes=32)
    plan = MigrationPlan(tb.sim, old, old.resize(3), replicas=1)
    task, key = _moved_task_and_key(plan)
    src_guard = HandoffGuard(plan, task.src[0])
    dst_guard = HandoffGuard(plan, task.dst[0])
    for state in (RangeState.MIGRATING, RangeState.CUTOVER):
        task.state = state
        src_guard.check(key)            # pre-flip: old owner still writes
    task.state = RangeState.DONE
    with pytest.raises(RangeHandedOffError):
        src_guard.check(key)
    dst_guard.check(key)                # the new owner accepts


def test_server_handler_enforces_the_guard():
    """The guard is wired into the server's write path: a write that a
    buggy router routes to the old primary after the flip dies loudly
    instead of double-applying."""
    tb = Testbed(n_nodes=4)
    cluster = ShardedKVCluster(tb, 3).start()
    old = HashRing(2, vnodes=32)
    plan = MigrationPlan(tb.sim, old, cluster.ring, replicas=1)
    for srv in cluster.servers:
        srv.install_handoff(HandoffGuard(plan, srv.shard))
    task, key = _moved_task_and_key(plan)
    task.state = RangeState.DONE
    gen = cluster.servers[task.src[0]].handler.Put(key, b"late")
    with pytest.raises(RangeHandedOffError):
        next(gen)


def test_put_parks_on_the_cutover_fence_and_lands_on_the_new_owner():
    tb = Testbed(n_nodes=5)
    cluster = ShardedKVCluster(tb, 3).start()
    old = HashRing(2, vnodes=32)
    plan = MigrationPlan(tb.sim, old, cluster.ring, replicas=1)
    cluster.migration = plan
    for srv in cluster.servers:
        srv.install_handoff(HandoffGuard(plan, srv.shard))
    task, key = _moved_task_and_key(plan)
    task.state = RangeState.CUTOVER
    task.fence = Event(tb.sim)
    out = {}

    def writer():
        router = yield from cluster.connect(tb.node(3), cache=False)
        yield from router.Put(key, b"post-flip")
        out["acked_at"] = tb.sim.now
        router.close()

    def driver():
        yield tb.sim.timeout(50 * us)
        cluster.routing_epoch += 1
        task.done_epoch = cluster.routing_epoch
        task.done_at = tb.sim.now
        task.state = RangeState.DONE
        out["flipped_at"] = tb.sim.now
        task.fence.succeed()

    tb.sim.process(driver())
    tb.sim.run(tb.sim.process(writer()))
    # the write waited out the fence, then landed on the NEW primary only
    assert out["acked_at"] > out["flipped_at"]
    with cluster.servers[task.dst[0]].backend.env.begin() as txn:
        assert txn.get(key) == b"post-flip"
    with cluster.servers[task.src[0]].backend.env.begin() as txn:
        assert txn.get(key) is None
    cluster.migration = None


# -- live resize end to end ---------------------------------------------------

def _run_live_resize(tb, cluster, keys, target):
    out = {"ops": 0, "errors": [], "missing": 0}

    def client():
        router = yield from cluster.connect(tb.node(4), cache=False)
        done = cluster.start_resize(target)
        i = 0
        while not done.triggered:
            key = keys[i % len(keys)]
            val = b"w%d" % i * 8
            try:
                yield from router.Put(key, val)
                got = yield from router.Get(key)
                assert got.found and got.value == val, (key, i)
                out["ops"] += 1
            except Exception as exc:      # pragma: no cover - diagnostics
                out["errors"].append(repr(exc))
                break
            i += 1
        for key in keys:
            got = yield from router.Get(key)
            if not got.found:
                out["missing"] += 1
        router.close()

    tb.sim.run(tb.sim.process(client()))
    return out


def test_grow_under_live_traffic_loses_and_duplicates_nothing():
    tb = Testbed(n_nodes=8)
    cluster = ShardedKVCluster(tb, 2, vnodes=32,
                               reserve_nodes=tb.nodes[2:4]).start()
    keys = keys_of(150)
    cluster.load((k, b"seed" * 25) for k in keys)
    events = []
    cluster.on_migration.append(lambda kind, **a: events.append(kind))
    out = _run_live_resize(tb, cluster, keys, 4)
    assert out["errors"] == [] and out["missing"] == 0
    assert out["ops"] > 0, "no traffic overlapped the migration"
    assert cluster.n_shards == 4 and cluster.migration is None
    # post-cleanup: every key on exactly one shard, and on its ring owner
    totals = [s.backend.env.stat().entries for s in cluster.servers]
    assert sum(totals) == len(keys), totals
    assert totals == cluster.ring.distribution(keys)
    ranges = events.count("range_migrating")
    assert ranges and events.count("range_done") == ranges
    assert events[-1] == "resize_done" and "cleanup_done" in events


def test_shrink_retires_shards_and_keeps_replication():
    tb = Testbed(n_nodes=8)
    cluster = ShardedKVCluster(tb, 4, vnodes=32, replicas=2).start()
    keys = keys_of(120)
    cluster.load((k, b"seed" * 25) for k in keys)
    out = _run_live_resize(tb, cluster, keys, 2)
    assert out["errors"] == [] and out["missing"] == 0
    assert cluster.n_shards == 2 and len(cluster.servers) == 2
    assert len(cluster._spare_nodes) == 2      # retired nodes returned
    # replicas=2 over 2 shards: both survivors hold the full set
    for srv in cluster.servers:
        assert srv.backend.env.stat().entries == len(keys)
    cluster.stop()


def test_grow_preserves_client_visible_version_monotonicity():
    """A key's version never goes backwards across its handoff: the new
    owner adopts the old owner's version floor before the copy lands."""
    gen = load_hatkv_module("function", cacheable=CACHEABLE)
    tb = Testbed(n_nodes=8)
    cluster = ShardedKVCluster(tb, 2, vnodes=32, gen_module=gen,
                               reserve_nodes=tb.nodes[2:4]).start()
    keys = keys_of(60)
    cluster.load((k, b"seed" * 25) for k in keys)
    versions = {}
    out = {"regressions": []}

    def client():
        router = yield from cluster.connect(tb.node(4), cache=False)
        for key in keys:                       # bump every version a few times
            yield from router.Put(key, b"v1" * 10)
            yield from router.Put(key, b"v2" * 10)
        done = cluster.start_resize(4)
        while not done.triggered:
            for key in keys[:20]:
                got = yield from router.Get(key)
                if versions.get(key, 0) > got.version:
                    out["regressions"].append((key, versions[key],
                                               got.version))
                versions[key] = got.version
            yield tb.sim.timeout(20 * us)
        router.close()

    tb.sim.run(tb.sim.process(client()))
    assert out["regressions"] == []


def test_forwarding_window_backstops_a_post_cutover_miss():
    """Dual-read: inside the forwarding window a miss on the new owner
    retries the old holders, so a read can never lose a key the cleanup
    has not dropped yet (here the dst copy is hand-deleted to force the
    miss)."""
    with obs.installed() as reg:
        tb = Testbed(n_nodes=8)
        cluster = ShardedKVCluster(tb, 2, vnodes=32,
                                   reserve_nodes=tb.nodes[2:4]).start()
        keys = keys_of(120)
        cluster.load((k, b"seed" * 25) for k in keys)
        flag = {}
        cluster.on_migration.append(
            lambda kind, **a: flag.update(cutover=True)
            if kind == "resize_cutover_complete" else None)
        out = {}

        def client():
            router = yield from cluster.connect(tb.node(4), cache=False)
            cluster.start_resize(4)
            while "cutover" not in flag:
                yield tb.sim.timeout(5 * us)
            # A key whose range's per-range window is still open and whose
            # primary moved (the window runs from each range's own flip, so
            # early-flipped ranges may already be out of it): vandalize its
            # new copy, simulating a reader racing an incomplete handoff.
            plan = cluster.migration
            key = next(k for k in keys
                       if cluster.read_fallback(k)
                       and cluster.primary(k) not in cluster.read_fallback(k))
            task = plan.covering(hash_key(key))
            with cluster.servers[task.dst[0]].backend.env.begin(
                    write=True) as txn:
                txn.delete(key)
            got = yield from router.Get(key)
            out["found"] = got.found
            out["value"] = got.value
            router.close()

        tb.sim.run(tb.sim.process(client()))
        assert out["found"] and out["value"] == b"seed" * 25
        assert reg.counter("hatkv.router.forward_reads").value >= 1


def test_migration_progress_probe_tracks_range_flips():
    tb = Testbed(n_nodes=8)
    cluster = ShardedKVCluster(tb, 2, vnodes=16,
                               reserve_nodes=[tb.nodes[2]]).start()
    cluster.load((k, b"x" * 40) for k in keys_of(80))
    snaps = []
    cluster.on_migration.append(
        lambda kind, **a: snaps.append(dict(cluster._migration_progress()))
        if kind == "range_done" else None)
    tb.sim.run(tb.sim.process(cluster.resize(3)))
    assert snaps, "no per-range progress was observable"
    done = [s["ranges_done"] for s in snaps]
    assert done == sorted(done) and done[-1] == snaps[-1]["ranges_total"]
    final = cluster._migration_progress()
    assert final["pct_done"] == 100.0 and final["keys_moved"] > 0


def test_resize_trigger_fires_once_from_key_balance():
    tb = Testbed(n_nodes=8)
    cluster = ShardedKVCluster(tb, 2).start()
    fired = []
    trig = ResizeTrigger(cluster, 4, keys_per_shard=100.0,
                         phase="measurement", fire=fired.append)
    cool = {"hatkv.keys.shard0": 10.0, "hatkv.keys.shard1": 10.0}
    hot = {"hatkv.keys.shard0": 150.0, "hatkv.keys.shard1": 90.0}
    trig._on_sample(1.0, hot, {"phase": "warmup"})      # wrong phase
    trig._on_sample(2.0, cool, {"phase": "measurement"})  # under threshold
    assert fired == []
    trig._on_sample(3.0, hot, {"phase": "measurement"})
    trig._on_sample(4.0, hot, {"phase": "measurement"})  # latched: once only
    assert fired == [4] and trig.fired_at == 3.0


def test_engine_drain_close_waits_for_pipelined_tails():
    tb = Testbed(n_nodes=2)
    cluster = ShardedKVCluster(tb, 1).start()
    cluster.load((k, b"v" * 40) for k in keys_of(10))
    out = {}

    def client():
        stub = yield from connect_hatkv(tb.node(1), tb.node(0), cluster.gen,
                                        pipeline=True)
        engine = stub._hatrpc.engine
        caller = stub._hatrpc.async_caller()
        handles = []
        for k in keys_of(10):
            handles.append((yield from caller.call_async("Get", k)))
        yield from engine.drain_close()
        out["settled"] = all(h.done for h in handles)
        out["closed"] = not engine.is_open()

    tb.sim.run(tb.sim.process(client()))
    assert out == {"settled": True, "closed": True}


# -- satellite 1: reroute invalidation is shard-scoped ------------------------

def test_reroute_invalidates_only_the_flapped_shards_keys():
    """A single shard's takeover must not nuke the node-shared hot-key
    cache: entries primaried on other shards keep serving (the pre-fix
    hook called ``cache.clear()``)."""
    gen = load_hatkv_module("function", cacheable=CACHEABLE)
    with obs.installed() as reg:
        tb = Testbed(n_nodes=8)
        cluster = ShardedKVCluster(tb, 2, replicas=2, gen_module=gen).start()
        keys = keys_of(40)
        cluster.load((k, b"warm" * 20) for k in keys)
        shard0 = [k for k in keys if cluster.primary(k) == 0]
        shard1 = [k for k in keys if cluster.primary(k) == 1]
        assert shard0 and shard1
        out = {}

        class _Handle:
            done = False

            def _fail(self, exc):
                self.done = True

        class _Entry:
            fn = "Get"
            seqid = 424242
            oneway = False
            message = b"\x00"
            handle = _Handle()

        def _swallow_takeover(entry, replicas):
            # The satellite under test is the hook's cache scoping, not
            # takeover delivery (covered by tests/faults) -- swallow the
            # re-post so the fabricated entry never hits a real server.
            out["takeover_spawned"] = (entry, list(replicas))
            return
            yield

        def client():
            router = yield from cluster.connect(tb.node(4))
            router._reroute_entry = _swallow_takeover
            for k in keys:                     # warm the cache (leased Gets)
                yield from router.Get(k)
            assert len(router.cache) > 0
            # deliver a swept entry to shard 0's engine, exactly as the
            # pipeline sweep would on a link flap
            accepted = router._engines[0].sweep_reroute(
                _Entry, TTransportException(TTransportException.NOT_OPEN,
                                            "flap"))
            out["accepted"] = accepted
            out["s0_cached"] = sum(1 for k in shard0
                                   if k in router.cache._entries)
            out["s1_cached"] = sum(1 for k in shard1
                                   if k in router.cache._entries)
            hits0 = reg.counter("hatkv.cache.hits").value
            got = yield from router.Get(shard1[0])    # still a cache hit
            out["hit_survived"] = \
                reg.counter("hatkv.cache.hits").value == hits0 + 1
            out["value_ok"] = got.value == b"warm" * 20
            yield tb.sim.timeout(1 * ms)       # let the fake takeover settle
            router.close()

        tb.sim.run(tb.sim.process(client()))
        assert out["accepted"], "the sweep hook refused the takeover"
        assert out["s0_cached"] == 0, "flapped shard's entries must drop"
        assert out["s1_cached"] == len(shard1), \
            "other shards' hot entries must survive the flap"
        assert out["hit_survived"] and out["value_ok"]


# -- satellite 2: close fences in-flight takeovers ----------------------------

def test_close_during_reroute_fails_the_takeover_typed():
    """close() racing an in-flight takeover: the takeover must observe
    the fence and fail its entry with a typed NOT_OPEN instead of
    resolving it against the dead router (or hanging forever)."""
    tb = Testbed(n_nodes=8)
    cluster = ShardedKVCluster(tb, 2, replicas=2).start()
    cluster.load((k, b"v" * 20) for k in keys_of(20))
    out = {}

    class _Handle:
        done = False
        failure = None
        resolved = None

        def _fail(self, exc):
            self.done = True
            self.failure = exc

        def _resolve(self, resp):
            self.done = True
            self.resolved = resp

    class _Entry:
        fn = "Get"
        seqid = 77
        oneway = False
        message = b"\x00"
        handle = _Handle()

    def client():
        router = yield from cluster.connect(tb.node(4), cache=False)
        hook = router._engines[0].sweep_reroute
        accepted = hook(_Entry, TTransportException(
            TTransportException.NOT_OPEN, "x"))
        router.close()          # the takeover process has not run yet
        out["accepted"] = accepted
        out["hook_detached"] = router._engines[0].sweep_reroute is None
        out["hook_refuses_now"] = not hook(_Entry, RuntimeError("late"))
        yield tb.sim.timeout(1 * ms)

    tb.sim.run(tb.sim.process(client()))
    assert out["accepted"] and out["hook_detached"]
    assert out["hook_refuses_now"]
    assert _Entry.handle.resolved is None, \
        "a takeover must never resolve against a closed router"
    assert isinstance(_Entry.handle.failure, TTransportException)
    assert "router closed" in str(_Entry.handle.failure)


# -- satellite 3: scan dedup is epoch-consistent ------------------------------

def test_routing_view_is_frozen_across_range_flips():
    tb = Testbed(n_nodes=4)
    cluster = ShardedKVCluster(tb, 3).start()
    old = HashRing(2, vnodes=32)
    plan = MigrationPlan(tb.sim, old, cluster.ring, replicas=1)
    cluster.migration = plan
    task, key = _moved_task_and_key(plan)
    view = cluster.routing_view()
    assert view.primary(key) == task.src[0]
    # the range flips AFTER the snapshot ...
    cluster.routing_epoch += 1
    task.done_epoch = cluster.routing_epoch
    task.state = RangeState.DONE
    # ... live routing follows, the frozen view does not
    assert cluster.primary(key) == task.dst[0]
    assert view.primary(key) == task.src[0]
    assert cluster.routing_view().primary(key) == task.dst[0]
    cluster.migration = None


def test_scan_dedup_survives_a_mid_merge_ring_flip():
    """Pre-fix, Scan resolved each key's primary LIVE while merging leg
    results, so a ring flip between two legs' merges re-ranked a stale
    replica row above the fresh primary row.  The frozen RoutingView
    pins the whole merge to one epoch.

    Setup: the fresh value lives on the key's primary (shard 1), a stale
    value on its replica (shard 0).  Shard 1's leg is made slow (extra
    rows), and the ring flips while it is still scanning -- after the
    flip the live primary is shard 0, so the pre-fix merge kept the
    stale row."""
    tb = Testbed(n_nodes=8)
    cluster = ShardedKVCluster(tb, 2, replicas=2).start()
    keys = keys_of(10)
    cluster.load((k, b"v" * 20) for k in keys)
    key = next(k for k in keys if cluster.ring.shard_of(k) == 1)
    with cluster.servers[1].backend.env.begin(write=True) as txn:
        txn.put(key, b"fresh")
    with cluster.servers[0].backend.env.begin(write=True) as txn:
        txn.put(key, b"stale")
    # slow down shard 1's leg so the flip lands between the two merges
    with cluster.servers[1].backend.env.begin(write=True) as txn:
        for i in range(3000):
            txn.put(b"zz-pad-%06d" % i, b"p" * 8)
    # a ring under which the key's owner flips to shard 0
    flipped = next(HashRing(2, vnodes=32, seed=s) for s in range(1, 50)
                   if HashRing(2, vnodes=32, seed=s).shard_of(key) == 0)
    out = {}

    def flipper():
        yield tb.sim.timeout(30 * us)
        cluster.ring = flipped

    def client():
        router = yield from cluster.connect(tb.node(4), cache=False)
        flat = yield from router.Scan(b"", 5000)
        out["pairs"] = dict(zip(flat[::2], flat[1::2]))
        router.close()

    tb.sim.process(flipper())
    tb.sim.run(tb.sim.process(client()))
    assert out["pairs"][key] == b"fresh", \
        "scan dedup must rank rows against one frozen routing view"


def test_cluster_nodes_property_covers_reserved_spares():
    tb = Testbed(n_nodes=6)
    cluster = ShardedKVCluster(tb, 2, reserve_nodes=tb.nodes[2:4])
    assert cluster.nodes == tb.nodes[:4]
    assert tb.nodes[4] not in cluster.nodes
