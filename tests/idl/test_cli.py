"""Tests for the hatrpc-gen command line."""

import subprocess
import sys

import pytest

from repro.idl.__main__ import main

IDL = """
service Calc {
    hint: perf_goal = latency;
    i32 add(1: i32 a, 2: i32 b),
    binary bulk(1: binary blob) [ hint: perf_goal = throughput,
                                        payload_size = 128KB,
                                        concurrency = 64; ]
}
"""

BAD_HINT = "service S { hint: perf_goal = warp; void f(), }"
BAD_SYNTAX = "service S { void f( }"


@pytest.fixture
def idl_file(tmp_path):
    p = tmp_path / "calc.thrift"
    p.write_text(IDL)
    return p


def test_compile_to_default_output(idl_file, capsys):
    assert main([str(idl_file)]) == 0
    out_path = idl_file.with_name("calc_gen.py")
    assert out_path.exists()
    assert "class CalcClient" in out_path.read_text()
    assert "wrote" in capsys.readouterr().out


def test_compile_to_explicit_output(idl_file, tmp_path):
    out = tmp_path / "sub"
    out.mkdir()
    target = out / "calc.py"
    assert main([str(idl_file), "-o", str(target)]) == 0
    assert "SERVICE_HINTS" in target.read_text()


def test_print_to_stdout(idl_file, capsys):
    assert main([str(idl_file), "--print"]) == 0
    src = capsys.readouterr().out
    assert "class CalcProcessor" in src
    compile(src, "calc_gen.py", "exec")  # must be valid python


def test_check_mode(idl_file, capsys):
    assert main([str(idl_file), "--check"]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "2 function(s)" in out


def test_plan_mode(idl_file, capsys):
    assert main([str(idl_file), "--plan"]) == 0
    out = capsys.readouterr().out
    assert "service Calc:" in out
    assert "direct_writeimm" in out
    assert "rfp" in out  # bulk: 128KB @ 64 clients


def test_bad_hint_strict_fails(tmp_path, capsys):
    p = tmp_path / "bad.thrift"
    p.write_text(BAD_HINT)
    assert main([str(p)]) == 1
    assert "unsupported value" in capsys.readouterr().err


def test_bad_hint_lenient_warns(tmp_path, capsys):
    p = tmp_path / "bad.thrift"
    p.write_text(BAD_HINT)
    assert main([str(p), "--check", "--lenient"]) == 0
    assert "dropped hint" in capsys.readouterr().err


def test_syntax_error_reported(tmp_path, capsys):
    p = tmp_path / "broken.thrift"
    p.write_text(BAD_SYNTAX)
    assert main([str(p)]) == 1
    assert "error:" in capsys.readouterr().err


def test_missing_file(capsys):
    assert main(["/does/not/exist.thrift"]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_module_invocation(idl_file):
    """python -m repro.idl works as a subprocess entry point."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.idl", str(idl_file), "--check"],
        capture_output=True, text=True, timeout=60)
    assert proc.returncode == 0
    assert "OK" in proc.stdout


def test_generated_module_importable(idl_file, tmp_path):
    target = tmp_path / "calc_gen_mod.py"
    assert main([str(idl_file), "-o", str(target)]) == 0
    import importlib.util
    spec = importlib.util.spec_from_file_location("calc_gen_mod", target)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    assert mod.SERVICE_FUNCTIONS["Calc"] == ["add", "bulk"]
