"""Lexer tests."""

import pytest

from repro.idl.lexer import LexError, TokenKind, tokenize


def kinds_values(src):
    return [(t.kind, t.value) for t in tokenize(src) if t.kind != TokenKind.EOF]


def test_keywords_vs_identifiers():
    toks = kinds_values("service MyService hint s_hint c_hint myhint")
    assert toks == [
        (TokenKind.KEYWORD, "service"),
        (TokenKind.IDENT, "MyService"),
        (TokenKind.KEYWORD, "hint"),
        (TokenKind.KEYWORD, "s_hint"),
        (TokenKind.KEYWORD, "c_hint"),
        (TokenKind.IDENT, "myhint"),
    ]


def test_numbers():
    toks = kinds_values("42 -7 3.14 1e9 -2.5e-3 0x1F")
    assert toks == [
        (TokenKind.INT, "42"),
        (TokenKind.INT, "-7"),
        (TokenKind.DOUBLE, "3.14"),
        (TokenKind.DOUBLE, "1e9"),
        (TokenKind.DOUBLE, "-2.5e-3"),
        (TokenKind.INT, "0x1F"),
    ]


def test_size_suffix_splits_into_int_and_ident():
    toks = kinds_values("payload_size = 128KB")
    assert toks == [
        (TokenKind.IDENT, "payload_size"),
        (TokenKind.SYMBOL, "="),
        (TokenKind.INT, "128"),
        (TokenKind.IDENT, "KB"),
    ]


def test_strings_with_escapes():
    toks = kinds_values(r'"hello \"world\"" ' + r"'single\n'")
    assert toks == [
        (TokenKind.STRING, 'hello "world"'),
        (TokenKind.STRING, "single\n"),
    ]


@pytest.mark.parametrize("src", [
    "// line comment\nservice",
    "# hash comment\nservice",
    "/* block\ncomment */ service",
])
def test_comments_skipped(src):
    assert kinds_values(src) == [(TokenKind.KEYWORD, "service")]


def test_unterminated_block_comment():
    with pytest.raises(LexError, match="unterminated block"):
        tokenize("/* never ends")


def test_unterminated_string():
    with pytest.raises(LexError, match="unterminated string"):
        tokenize('"never ends')


def test_unexpected_character():
    with pytest.raises(LexError, match="unexpected character"):
        tokenize("service @bad")


def test_line_and_column_tracking():
    toks = tokenize("a\n  bb\n   ccc")
    assert [(t.value, t.line, t.col) for t in toks[:3]] == [
        ("a", 1, 1), ("bb", 2, 3), ("ccc", 3, 4)]


def test_symbols():
    toks = kinds_values("{ } ( ) [ ] < > , ; : = *")
    assert all(k == TokenKind.SYMBOL for k, _ in toks)
    assert [v for _, v in toks] == list("{}()[]<>,;:=*")
