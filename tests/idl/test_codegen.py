"""Code generator tests: generated modules must be importable and correct."""

import pytest

from repro.idl import compile_idl, load_idl
from repro.idl.validator import HintValidationError
from repro.thrift import TBinaryProtocol, TCompactProtocol, TMemoryBuffer

KV_IDL = """
enum Status { OK = 0, MISSING = 1 }

const i32 DEFAULT_TTL = 300

typedef binary Blob

exception KVError {
    1: string message,
    2: i32 code,
}

struct Entry {
    1: required string key,
    2: optional Blob value,
    3: optional map<string, string> tags,
    4: optional list<i64> versions,
    5: optional Status status = 0,
}

service KVStore {
    hint: perf_goal = throughput, concurrency = 64;

    Entry Get(1: string key) throws (1: KVError notfound) [
        hint: payload_size = 1KB;
    ]
    void Put(1: Entry entry),
    map<string, Entry> MultiGet(1: list<string> keys) [
        hint: payload_size = 16KB;
        c_hint: numa_binding = true;
    ]
    oneway void Touch(1: string key),
}
"""


@pytest.fixture(scope="module")
def gen():
    return load_idl(KV_IDL, "kv_gen")


def test_module_has_expected_symbols(gen):
    for sym in ["Status", "DEFAULT_TTL", "KVError", "Entry",
                "KVStoreIface", "KVStoreClient", "KVStoreProcessor",
                "Get_args", "Get_result", "Put_args", "Put_result",
                "MultiGet_args", "MultiGet_result", "Touch_args",
                "SERVICE_HINTS", "SERVICE_FUNCTIONS", "SERVICE_ONEWAY"]:
        assert hasattr(gen, sym), sym


def test_enum_and_const(gen):
    assert gen.Status.OK == 0
    assert gen.Status.MISSING == 1
    assert gen.Status._VALUES_TO_NAMES[1] == "MISSING"
    assert gen.DEFAULT_TTL == 300


def test_struct_roundtrip_binary_and_compact(gen):
    entry = gen.Entry(key="k1", value=b"\x01\x02", tags={"a": "b"},
                      versions=[1, 2, 3], status=gen.Status.MISSING)
    for proto_cls in (TBinaryProtocol, TCompactProtocol):
        buf = TMemoryBuffer()
        entry.write(proto_cls(buf))
        out = gen.Entry()
        out.read(proto_cls(TMemoryBuffer(buf.getvalue())))
        assert out == entry


def test_struct_skips_unknown_fields(gen):
    """An Entry writer vs a reader struct lacking some fields."""
    slim = load_idl("""
    struct Entry { 1: required string key }
    """, "slim_gen")
    entry = gen.Entry(key="k", value=b"v" * 100, versions=[9])
    buf = TMemoryBuffer()
    entry.write(TBinaryProtocol(buf))
    out = slim.Entry()
    out.read(TBinaryProtocol(TMemoryBuffer(buf.getvalue())))
    assert out.key == "k"


def test_required_field_enforced_on_write(gen):
    from repro.thrift import TProtocolException
    entry = gen.Entry(key=None)
    with pytest.raises(TProtocolException, match="required"):
        entry.write(TBinaryProtocol(TMemoryBuffer()))


def test_exception_is_raisable(gen):
    with pytest.raises(gen.KVError):
        raise gen.KVError(message="gone", code=404)


def test_service_hints_map(gen):
    hints = gen.SERVICE_HINTS["KVStore"]
    assert hints["service"]["shared"] == {"perf_goal": "throughput",
                                          "concurrency": 64}
    assert hints["functions"]["Get"]["shared"]["payload_size"] == 1024
    assert hints["functions"]["MultiGet"]["client"]["numa_binding"] is True
    assert "Put" not in hints["functions"]  # no function-level hints


def test_service_functions_and_oneway(gen):
    assert gen.SERVICE_FUNCTIONS["KVStore"] == ["Get", "Put", "MultiGet",
                                                "Touch"]
    assert gen.SERVICE_ONEWAY["KVStore"] == ["Touch"]


def test_invalid_hint_strict_raises():
    bad = "service S { hint: perf_goal = warp_speed; void f(), }"
    with pytest.raises(HintValidationError):
        load_idl(bad, "bad_gen")


def test_invalid_hint_nonstrict_filters():
    bad = "service S { hint: perf_goal = warp_speed, concurrency = 8; void f(), }"
    mod = load_idl(bad, "filtered_gen", strict_hints=False)
    assert mod.SERVICE_HINTS["S"]["service"]["shared"] == {"concurrency": 8}
    assert "warp_speed" in mod.__hatrpc_source__  # warning comment survives


def test_generated_source_is_stable():
    assert compile_idl(KV_IDL) == compile_idl(KV_IDL)


def test_service_extends_inherits_methods():
    mod = load_idl("""
    service Base { i32 ping(1: i32 x), }
    service Child extends Base { i32 pong(1: i32 y), }
    """, "ext_gen")
    assert issubclass(mod.ChildClient, mod.BaseClient)
    assert issubclass(mod.ChildProcessor, mod.BaseProcessor)
    assert gen_has_method(mod.ChildClient, "ping")
    assert gen_has_method(mod.ChildClient, "pong")
    assert mod.SERVICE_FUNCTIONS["Child"] == ["ping", "pong"]


def gen_has_method(cls, name):
    return callable(getattr(cls, name, None))


def test_default_values_applied(gen):
    e = gen.Entry(key="x")
    assert e.status == 0
    assert e.value is None
