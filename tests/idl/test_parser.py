"""Parser tests, including the full Figure 7 hint grammar."""

import pytest

from repro.idl import ParseError, parse
from repro.idl.nodes import TypeRef

ECHO_IDL = """
// The Figure 1 example service.
service Echo {
    hint: perf_goal = latency;
    s_hint: concurrency = 16;
    c_hint: numa_binding = true;

    string Ping(1: string msg),
    void Post(1: binary payload) [
        hint: perf_goal = throughput, payload_size = 128KB;
        s_hint: polling = event;
    ]
    oneway void Deliver(1: i64 token);
}
"""


def test_service_level_hints():
    doc = parse(ECHO_IDL)
    svc = doc.service("Echo")
    assert [g.side for g in svc.hint_groups] == ["shared", "server", "client"]
    shared = svc.hint_groups[0]
    assert shared.hints[0].key == "perf_goal"
    assert shared.hints[0].value == "latency"
    assert svc.hint_groups[1].hints[0].value == 16
    assert svc.hint_groups[2].hints[0].value is True


def test_function_level_hints_and_size_suffix():
    doc = parse(ECHO_IDL)
    post = doc.service("Echo").functions[1]
    assert post.name == "Post"
    groups = {g.side: {h.key: h.value for h in g.hints}
              for g in post.hint_groups}
    assert groups["shared"] == {"perf_goal": "throughput",
                                "payload_size": 128 * 1024}
    assert groups["server"] == {"polling": "event"}


def test_function_shapes():
    doc = parse(ECHO_IDL)
    ping, post, deliver = doc.service("Echo").functions
    assert ping.return_type == TypeRef("string")
    assert ping.args[0].name == "msg" and ping.args[0].fid == 1
    assert post.return_type == TypeRef("void")
    assert deliver.oneway and deliver.return_type == TypeRef("void")
    assert deliver.args[0].type == TypeRef("i64")


def test_struct_enum_const_typedef():
    doc = parse("""
    typedef i64 Timestamp
    const i32 MAX_RETRIES = 5
    const string GREETING = "hi"
    const list<i32> FIBS = [1, 1, 2, 3, 5]
    const map<string, i32> AGES = {"bob": 30, "eve": 25}

    enum Color { RED, GREEN = 5, BLUE }

    struct Point {
        1: required double x,
        2: required double y,
        3: optional string label = "origin",
    }

    exception NotFound {
        1: string key,
    }
    """)
    assert doc.typedefs[0].name == "Timestamp"
    assert doc.typedefs[0].type == TypeRef("i64")
    consts = {c.name: c.value for c in doc.consts}
    assert consts == {"MAX_RETRIES": 5, "GREETING": "hi",
                      "FIBS": [1, 1, 2, 3, 5],
                      "AGES": {"bob": 30, "eve": 25}}
    assert doc.enums[0].members == [("RED", 0), ("GREEN", 5), ("BLUE", 6)]
    pt = doc.struct("Point")
    assert pt.fields[0].required == "required"
    assert pt.fields[2].default == "origin"
    assert doc.struct("NotFound").kind == "exception"


def test_nested_container_types():
    doc = parse("""
    struct Deep {
        1: map<string, list<map<i32, set<string>>>> payload,
    }
    """)
    t = doc.struct("Deep").fields[0].type
    assert t.name == "map"
    assert t.args[1].name == "list"
    assert t.args[1].args[0].name == "map"
    assert t.args[1].args[0].args[1] == TypeRef("set", (TypeRef("string"),))


def test_service_extends_and_throws():
    doc = parse("""
    exception Oops { 1: string why }
    service Base { void ping() }
    service Derived extends Base {
        i32 risky(1: i32 x) throws (1: Oops ouch),
    }
    """)
    derived = doc.service("Derived")
    assert derived.extends == "Base"
    assert derived.functions[0].throws[0].type == TypeRef("Oops")


def test_namespaces_and_includes():
    doc = parse("""
    include "shared.thrift"
    namespace py hat.gen
    namespace cpp hat
    """)
    assert doc.includes == ["shared.thrift"]
    assert doc.namespaces == {"py": "hat.gen", "cpp": "hat"}


def test_hints_must_precede_functions():
    """Fig. 7: service body is HintGroup* Function* -- hints after a
    function are a parse error."""
    with pytest.raises(ParseError):
        parse("""
        service Bad {
            void f(),
            hint: perf_goal = latency;
        }
        """)


def test_hint_list_comma_separated_semicolon_terminated():
    doc = parse("""
    service S {
        hint: perf_goal = throughput, concurrency = 32, payload_size = 512;
        void f(),
    }
    """)
    hints = doc.service("S").hint_groups[0].hints
    assert [h.key for h in hints] == ["perf_goal", "concurrency",
                                      "payload_size"]


def test_missing_semicolon_after_hint_list():
    with pytest.raises(ParseError):
        parse("service S { hint: perf_goal = latency void f() }")


def test_plain_thrift_file_still_parses():
    """HatRPC is fully backward compatible with hint-free Thrift IDL."""
    doc = parse("""
    struct Req { 1: string q }
    service Search {
        list<string> query(1: Req req),
        void warmup(),
    }
    """)
    assert len(doc.service("Search").functions) == 2
    assert doc.service("Search").hint_groups == []


def test_error_reports_location():
    with pytest.raises(ParseError, match=r"<idl>:3:\d+"):
        parse("\n\nstruct {")


# -- parameterized hints (the cacheable extension) ----------------------------

CACHED_IDL = """
service KV {
    hint: perf_goal = latency;

    binary Get(1: binary key) [
        hint: cacheable(ttl = 200us, hot_promote = 8);
    ]
    void Put(1: binary key, 2: binary value)
}
"""


def test_parameterized_hint_parses_to_dict():
    doc = parse(CACHED_IDL)
    get = doc.service("KV").functions[0]
    hint = get.hint_groups[0].hints[0]
    assert hint.key == "cacheable"
    assert hint.value == {"ttl": pytest.approx(200e-6), "hot_promote": 8}


def test_time_unit_suffixes():
    idl = """
    service S {
        void F() [ hint: cacheable(ttl = 2ms); ]
        void G() [ hint: cacheable(ttl = 0.5s); ]
        void H() [ hint: cacheable(ttl = 750ns); ]
    }
    """
    fns = parse(idl).service("S").functions
    ttls = [fn.hint_groups[0].hints[0].value["ttl"] for fn in fns]
    assert ttls == [pytest.approx(2e-3), pytest.approx(0.5),
                    pytest.approx(750e-9)]


def test_parameterized_hint_allows_trailing_comma():
    idl = "service S { void F() [ hint: cacheable(ttl = 1ms,); ] }"
    hint = parse(idl).service("S").functions[0].hint_groups[0].hints[0]
    assert hint.value == {"ttl": pytest.approx(1e-3)}


def test_parameterized_hint_rejects_missing_equals():
    with pytest.raises(ParseError):
        parse("service S { void F() [ hint: cacheable(ttl 1ms); ] }")


def test_parameterized_hint_mixes_with_plain_hints():
    idl = """
    service S {
        void F() [ hint: payload_size = 1KB, cacheable(ttl = 1ms); ]
    }
    """
    hints = {h.key: h.value
             for h in parse(idl).service("S").functions[0]
             .hint_groups[0].hints}
    assert hints["payload_size"] == 1024
    assert hints["cacheable"]["ttl"] == pytest.approx(1e-3)
