"""Property-based IDL pipeline tests: generated structs round-trip for
arbitrary schemas and values."""

import keyword

from hypothesis import given, settings, strategies as st

from repro.idl import compile_idl, load_idl
from repro.thrift import TBinaryProtocol, TCompactProtocol, TMemoryBuffer

_MODULE_N = [0]

_FIELD_TYPES = {
    "bool": st.booleans(),
    "i16": st.integers(-2**15, 2**15 - 1),
    "i32": st.integers(-2**31, 2**31 - 1),
    "i64": st.integers(-2**63, 2**63 - 1),
    "double": st.floats(allow_nan=False, allow_infinity=False),
    "string": st.text(max_size=20),
    "binary": st.binary(max_size=30),
    "list<i32>": st.lists(st.integers(-1000, 1000), max_size=5),
    "map<string, i64>": st.dictionaries(st.text(max_size=5),
                                        st.integers(-10, 10), max_size=4),
}

_ident = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: not keyword.iskeyword(s) and s not in ("hint",))


@st.composite
def _schemas(draw):
    n = draw(st.integers(1, 6))
    names = draw(st.lists(_ident, min_size=n, max_size=n, unique=True))
    types = [draw(st.sampled_from(sorted(_FIELD_TYPES))) for _ in range(n)]
    return list(zip(names, types))


@settings(max_examples=40, deadline=None)
@given(_schemas(), st.data())
def test_generated_struct_roundtrips(schema, data):
    fields = "\n".join(f"    {i + 1}: {t} {name},"
                       for i, (name, t) in enumerate(schema))
    idl = f"struct Fuzz {{\n{fields}\n}}\n"
    _MODULE_N[0] += 1
    mod = load_idl(idl, f"fuzz_gen_{_MODULE_N[0]}")
    values = {name: data.draw(_FIELD_TYPES[t], label=name)
              for name, t in schema}
    original = mod.Fuzz(**values)
    for proto_cls in (TBinaryProtocol, TCompactProtocol):
        buf = TMemoryBuffer()
        original.write(proto_cls(buf))
        out = mod.Fuzz()
        out.read(proto_cls(TMemoryBuffer(buf.getvalue())))
        assert out == original, proto_cls.__name__


@settings(max_examples=40, deadline=None)
@given(_schemas())
def test_codegen_deterministic_and_valid(schema):
    fields = "\n".join(f"    {i + 1}: {t} {name},"
                       for i, (name, t) in enumerate(schema))
    idl = f"struct Fuzz {{\n{fields}\n}}\n"
    a = compile_idl(idl)
    b = compile_idl(idl)
    assert a == b
    compile(a, "<gen>", "exec")


@settings(max_examples=30, deadline=None)
@given(st.lists(_ident, min_size=1, max_size=5, unique=True),
       st.sampled_from(["latency", "throughput", "res_util"]),
       st.integers(1, 512))
def test_hinted_service_always_plans(fn_names, goal, conc):
    """Any combination of functions/goals yields a valid channel plan."""
    fns = "\n".join(f"    void {name}()," for name in fn_names)
    idl = (f"service S {{\n"
           f"    hint: perf_goal = {goal}, concurrency = {conc};\n"
           f"{fns}\n}}\n")
    _MODULE_N[0] += 1
    mod = load_idl(idl, f"plan_fuzz_{_MODULE_N[0]}")
    from repro.core.runtime import service_plan_of
    plan = service_plan_of(mod, "S")
    assert set().union(*(ch.functions for ch in plan.channels)) == \
        set(fn_names)
    for name in fn_names:
        assert plan.channel_for(name).protocol in (
            "direct_writeimm", "eager_sendrecv", "write_rndv", "rfp")
