"""Tests for the per-node memory model."""

import pytest

from repro.verbs import Memory, MemoryAccessError


def test_alloc_distinct_regions():
    mem = Memory()
    a = mem.alloc(100)
    b = mem.alloc(100)
    assert a != b
    mem.write(a, b"A" * 100)
    mem.write(b, b"B" * 100)
    assert mem.read(a, 100) == b"A" * 100
    assert mem.read(b, 100) == b"B" * 100


def test_address_zero_never_allocated():
    mem = Memory()
    assert mem.alloc(16) != 0


def test_auto_grow_beyond_initial():
    mem = Memory(initial=1024)
    addr = mem.alloc(1 << 20)
    mem.write(addr + (1 << 20) - 4, b"tail")
    assert mem.read(addr + (1 << 20) - 4, 4) == b"tail"


def test_out_of_bounds_read_rejected():
    mem = Memory()
    addr = mem.alloc(64)
    with pytest.raises(MemoryAccessError):
        mem.read(addr + 1 << 22, 10)


def test_zero_alloc_rejected():
    with pytest.raises(ValueError):
        Memory().alloc(0)


def test_free_accounting():
    mem = Memory()
    a = mem.alloc(100)
    mem.alloc(50)
    assert mem.live_bytes == 150
    mem.free(a)
    assert mem.live_bytes == 50
    with pytest.raises(MemoryAccessError):
        mem.free(a)


def test_fill():
    mem = Memory()
    a = mem.alloc(10)
    mem.fill(a, 10, 0xAB)
    assert mem.read(a, 10) == b"\xab" * 10
