"""Shared fixtures for verbs tests: a two-node testbed with a connected QP pair."""

import pytest

from repro.testbed import Testbed
from repro.verbs import RecvWR, Sge
from repro.verbs.qp import connect_pair


@pytest.fixture
def tb():
    return Testbed(n_nodes=2)


class Pair:
    """A connected client/server QP pair with one CQ each side."""

    def __init__(self, tb, srq=False):
        self.tb = tb
        self.cdev = tb.node(0).nic
        self.sdev = tb.node(1).nic
        self.cpd = self.cdev.alloc_pd()
        self.spd = self.sdev.alloc_pd()
        self.c_scq = self.cdev.create_cq()
        self.c_rcq = self.cdev.create_cq()
        self.s_scq = self.sdev.create_cq()
        self.s_rcq = self.sdev.create_cq()
        self.srq = self.sdev.create_srq() if srq else None
        self.cqp = self.cdev.create_qp(self.cpd, self.c_scq, self.c_rcq)
        self.sqp = self.sdev.create_qp(self.spd, self.s_scq, self.s_rcq,
                                       srq=self.srq)
        connect_pair(self.cqp, self.sqp)

    def server_recv_buf(self, size):
        """Register and post one recv buffer server-side; returns the MR."""
        mr = self.spd.reg_mr(size)

        def post():
            yield from self.sqp.post_recv(RecvWR(Sge(mr.addr, size, mr.lkey)))

        self.tb.sim.run(self.tb.sim.process(post()))
        return mr


@pytest.fixture
def pair(tb):
    return Pair(tb)


@pytest.fixture
def srq_pair(tb):
    return Pair(tb, srq=True)
