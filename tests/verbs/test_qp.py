"""Datapath tests: SEND/RECV, RDMA WRITE/READ, WRITE_WITH_IMM, chaining, errors."""

import pytest

from repro.sim.units import us
from repro.verbs import (
    Opcode,
    QPState,
    QPStateError,
    RecvWR,
    SendWR,
    Sge,
    WCOpcode,
    WCStatus,
)
from repro.verbs.qp import connect_pair


def run(tb, gen):
    return tb.sim.run(tb.sim.process(gen))


def test_send_recv_delivers_payload(tb, pair):
    rmr = pair.server_recv_buf(256)
    smr = pair.cpd.reg_mr(256)
    smr.write(b"ping" * 8)

    def client():
        yield from pair.cqp.post_send(
            SendWR(Opcode.SEND, Sge(smr.addr, 32, smr.lkey), wr_id=7))
        wcs = yield from pair.c_scq.wait_busy()
        return wcs

    def server():
        wcs = yield from pair.s_rcq.wait_busy()
        return wcs

    sp = tb.sim.process(server())
    cwcs = run(tb, client())
    swcs = tb.sim.run(sp)
    assert cwcs[0].ok and cwcs[0].opcode is WCOpcode.SEND and cwcs[0].wr_id == 7
    assert swcs[0].ok and swcs[0].opcode is WCOpcode.RECV
    assert swcs[0].byte_len == 32
    assert rmr.read(32) == b"ping" * 8


def test_small_send_latency_in_microsecond_range(tb, pair):
    pair.server_recv_buf(256)
    smr = pair.cpd.reg_mr(64)

    def client():
        t0 = tb.sim.now
        yield from pair.cqp.post_send(
            SendWR(Opcode.SEND, Sge(smr.addr, 64, smr.lkey)))
        yield from pair.c_scq.wait_busy()
        return tb.sim.now - t0

    elapsed = run(tb, client())
    # One-way delivery + ack: a few microseconds on EDR.
    assert 1 * us < elapsed < 10 * us


def test_rdma_write_no_remote_completion(tb, pair):
    rmr = pair.spd.reg_mr(128)
    smr = pair.cpd.reg_mr(128)
    smr.write(b"W" * 128)

    def client():
        yield from pair.cqp.post_send(SendWR(
            Opcode.RDMA_WRITE, Sge(smr.addr, 128, smr.lkey),
            remote_addr=rmr.addr, rkey=rmr.rkey))
        wcs = yield from pair.c_scq.wait_busy()
        return wcs

    wcs = run(tb, client())
    assert wcs[0].ok and wcs[0].opcode is WCOpcode.RDMA_WRITE
    assert rmr.read(128) == b"W" * 128
    assert len(pair.s_rcq) == 0  # one-sided: server saw nothing


def test_write_with_imm_consumes_recv_and_carries_imm(tb, pair):
    rmr = pair.spd.reg_mr(128)
    pair.server_recv_buf(0x40)  # WQE present; its buffer is unused for IMM
    smr = pair.cpd.reg_mr(128)
    smr.write(b"I" * 100)

    def client():
        yield from pair.cqp.post_send(SendWR(
            Opcode.RDMA_WRITE_WITH_IMM, Sge(smr.addr, 100, smr.lkey),
            remote_addr=rmr.addr, rkey=rmr.rkey, imm=0xBEEF))
        yield from pair.c_scq.wait_busy()

    def server():
        wcs = yield from pair.s_rcq.wait_busy()
        return wcs

    sp = tb.sim.process(server())
    run(tb, client())
    wcs = tb.sim.run(sp)
    assert wcs[0].opcode is WCOpcode.RECV_RDMA_WITH_IMM
    assert wcs[0].imm == 0xBEEF
    assert wcs[0].byte_len == 100
    assert wcs[0].addr == rmr.addr
    assert rmr.read(100) == b"I" * 100


def test_rdma_read_fetches_remote_payload(tb, pair):
    rmr = pair.spd.reg_mr(4096)
    rmr.write(b"R" * 4096)
    lmr = pair.cpd.reg_mr(4096)

    def client():
        yield from pair.cqp.post_send(SendWR(
            Opcode.RDMA_READ, Sge(lmr.addr, 4096, lmr.lkey),
            remote_addr=rmr.addr, rkey=rmr.rkey))
        wcs = yield from pair.c_scq.wait_busy()
        return wcs

    wcs = run(tb, client())
    assert wcs[0].ok and wcs[0].opcode is WCOpcode.RDMA_READ
    assert lmr.read(4096) == b"R" * 4096


def test_chained_wrs_single_doorbell(tb, pair):
    rmr = pair.spd.reg_mr(1024)
    pair.server_recv_buf(64)
    smr = pair.cpd.reg_mr(1024)
    smr.write(b"C" * 1024)
    before = pair.cdev.doorbells

    def client():
        notify = SendWR(Opcode.SEND, Sge(smr.addr, 16, smr.lkey), wr_id=2)
        write = SendWR(Opcode.RDMA_WRITE, Sge(smr.addr, 512, smr.lkey),
                       remote_addr=rmr.addr, rkey=rmr.rkey, wr_id=1,
                       signaled=False, next=notify)
        yield from pair.cqp.post_send(write)
        wcs = yield from pair.c_scq.wait_busy()
        return wcs

    wcs = run(tb, client())
    assert pair.cdev.doorbells == before + 1
    assert pair.cdev.wrs_posted == 2
    # Only the signaled (second) WR completed.
    assert [w.wr_id for w in wcs] == [2]
    assert rmr.read(512) == b"C" * 512


def test_chain_preserves_order_write_before_notify(tb, pair):
    """The notify SEND must arrive after the chained WRITE's data is visible."""
    rmr = pair.spd.reg_mr(1024)
    pair.server_recv_buf(64)
    smr = pair.cpd.reg_mr(1024)
    smr.write(b"D" * 1024)

    def client():
        notify = SendWR(Opcode.SEND, Sge(smr.addr, 8, smr.lkey))
        write = SendWR(Opcode.RDMA_WRITE, Sge(smr.addr, 1024, smr.lkey),
                       remote_addr=rmr.addr, rkey=rmr.rkey,
                       signaled=False, next=notify)
        yield from pair.cqp.post_send(write)

    def server():
        yield from pair.s_rcq.wait_busy()
        return rmr.read(1024)  # read at the moment the notify lands

    sp = tb.sim.process(server())
    run(tb, client())
    assert tb.sim.run(sp) == b"D" * 1024


def test_post_send_requires_rts(tb, pair):
    qp = pair.cdev.create_qp(pair.cpd, pair.c_scq, pair.c_rcq)
    smr = pair.cpd.reg_mr(64)

    def client():
        yield from qp.post_send(SendWR(Opcode.SEND, Sge(smr.addr, 8, smr.lkey)))

    p = tb.sim.process(client())
    with pytest.raises(QPStateError):
        tb.sim.run(p)


def test_bad_rkey_errors_both_qps(tb, pair):
    smr = pair.cpd.reg_mr(64)

    def client():
        yield from pair.cqp.post_send(SendWR(
            Opcode.RDMA_WRITE, Sge(smr.addr, 64, smr.lkey),
            remote_addr=0x40, rkey=0xDEAD))
        wcs = yield from pair.c_scq.wait_busy()
        return wcs

    wcs = run(tb, client())
    assert wcs[0].status is WCStatus.REM_ACCESS_ERR
    assert pair.cqp.state is QPState.ERROR
    assert pair.sqp.state is QPState.ERROR


def test_rnr_retry_succeeds_after_late_post_recv(tb, pair):
    smr = pair.cpd.reg_mr(64)
    rmr = pair.spd.reg_mr(64)

    def client():
        yield from pair.cqp.post_send(
            SendWR(Opcode.SEND, Sge(smr.addr, 16, smr.lkey)))
        wcs = yield from pair.c_scq.wait_busy()
        return wcs

    def late_server():
        yield tb.sim.timeout(30 * us)  # a few RNR timer periods
        yield from pair.sqp.post_recv(RecvWR(Sge(rmr.addr, 64, rmr.lkey)))

    tb.sim.process(late_server())
    wcs = run(tb, client())
    assert wcs[0].ok


def test_rnr_retries_exhausted_is_error(tb, pair):
    smr = pair.cpd.reg_mr(64)

    def client():
        yield from pair.cqp.post_send(
            SendWR(Opcode.SEND, Sge(smr.addr, 16, smr.lkey)))
        wcs = yield from pair.c_scq.wait_busy()
        return wcs

    wcs = run(tb, client())
    assert wcs[0].status is WCStatus.RNR_RETRY_EXC_ERR
    assert pair.cqp.state is QPState.ERROR


def test_send_larger_than_recv_buffer_loc_len_err(tb, pair):
    pair.server_recv_buf(16)
    smr = pair.cpd.reg_mr(256)

    def client():
        yield from pair.cqp.post_send(
            SendWR(Opcode.SEND, Sge(smr.addr, 256, smr.lkey)))
        wcs = yield from pair.c_scq.wait_busy()
        return wcs

    def server():
        wcs = yield from pair.s_rcq.wait_busy()
        return wcs

    sp = tb.sim.process(server())
    cwcs = run(tb, client())
    swcs = tb.sim.run(sp)
    assert swcs[0].status is WCStatus.LOC_LEN_ERR
    assert cwcs[0].status is WCStatus.REM_ACCESS_ERR


def test_qp_error_flushes_pending_recvs(tb, pair):
    pair.server_recv_buf(64)
    pair.server_recv_buf(64)
    pair.sqp.to_error()
    wcs = pair.s_rcq.poll()
    assert len(wcs) == 2
    assert all(w.status is WCStatus.WR_FLUSH_ERR for w in wcs)


def test_srq_shared_between_qps(tb, srq_pair):
    p = srq_pair
    bufs = [p.spd.reg_mr(64) for _ in range(2)]

    def setup():
        for mr in bufs:
            yield from p.srq.post_recv(RecvWR(Sge(mr.addr, 64, mr.lkey)))

    run(tb, setup())
    smr = p.cpd.reg_mr(64)
    smr.write(b"S" * 64)

    def client():
        for _ in range(2):
            yield from p.cqp.post_send(
                SendWR(Opcode.SEND, Sge(smr.addr, 64, smr.lkey)))
            yield from p.c_scq.wait_busy()

    run(tb, client())
    assert len(p.srq) == 0
    assert len(p.s_rcq.poll(8)) == 2


def test_post_recv_on_srq_qp_rejected(tb, srq_pair):
    mr = srq_pair.spd.reg_mr(64)

    def post():
        yield from srq_pair.sqp.post_recv(RecvWR(Sge(mr.addr, 64, mr.lkey)))

    p = tb.sim.process(post())
    with pytest.raises(Exception):
        tb.sim.run(p)


def test_registered_bytes_accounting(tb, pair):
    before = pair.cdev.registered_bytes
    mr = pair.cpd.reg_mr(4096)
    assert pair.cdev.registered_bytes == before + 4096
    mr.deregister()
    assert pair.cdev.registered_bytes == before


def test_event_polling_slower_than_busy_but_wakes(tb, pair):
    pair.server_recv_buf(64)
    smr = pair.cpd.reg_mr(64)
    lat = {}

    def bench(mode_name, waiter):
        def client():
            t0 = tb.sim.now
            yield from pair.cqp.post_send(
                SendWR(Opcode.SEND, Sge(smr.addr, 8, smr.lkey)))
            yield from waiter()
            lat[mode_name] = tb.sim.now - t0
        return client

    run(tb, bench("busy", pair.c_scq.wait_busy)())
    pair.server_recv_buf(64)
    run(tb, bench("event", pair.c_scq.wait_event)())
    assert lat["event"] > lat["busy"]
    # Event polling pays roughly the interrupt latency extra.
    assert lat["event"] - lat["busy"] > 2 * us
