"""Direct SRQ unit tests: the shared recv-WQE pool behind the SRQ server path.

The end-to-end SRQ tests live in test_qp.py (shared delivery) and
tests/protocols (the SrqEagerServer); these pin the SRQ object's own
contract -- the invariants the server path builds on.
"""

import pytest

from repro.sim.units import us
from repro.verbs import (
    MemoryAccessError,
    Opcode,
    QPStateError,
    RecvWR,
    SendWR,
    Sge,
)
from repro.verbs.qp import connect_pair


def run(tb, gen):
    return tb.sim.run(tb.sim.process(gen))


def test_post_recv_on_srq_qp_raises_qp_state_error(tb, srq_pair):
    """A QP created over an SRQ must refuse per-QP recv postings -- the
    whole point is that the pool, not the QP, owns recv WQEs."""
    mr = srq_pair.spd.reg_mr(64)

    def post():
        yield from srq_pair.sqp.post_recv(RecvWR(Sge(mr.addr, 64, mr.lkey)))

    p = tb.sim.process(post())
    with pytest.raises(QPStateError):
        tb.sim.run(p)


def test_take_on_empty_srq_returns_none(tb, srq_pair):
    assert len(srq_pair.srq) == 0
    assert srq_pair.srq._take() is None
    # And stays empty -- _take on empty must not corrupt the queue.
    assert len(srq_pair.srq) == 0


def test_post_recv_validates_lkey(tb, srq_pair):
    mr = srq_pair.spd.reg_mr(64)

    def bad_key():
        yield from srq_pair.srq.post_recv(
            RecvWR(Sge(mr.addr, 64, 0xBADBAD)))

    p = tb.sim.process(bad_key())
    with pytest.raises(MemoryAccessError):
        tb.sim.run(p)

    def out_of_bounds():
        yield from srq_pair.srq.post_recv(
            RecvWR(Sge(mr.addr, 4096, mr.lkey)))

    p = tb.sim.process(out_of_bounds())
    with pytest.raises(MemoryAccessError):
        tb.sim.run(p)
    assert len(srq_pair.srq) == 0  # nothing enqueued on either failure


def test_srq_drains_fifo_across_multiple_qps(tb, srq_pair):
    """WQEs come off the shared pool in posting order regardless of which
    QP consumes them -- the property that makes one pool serve N clients."""
    p = srq_pair
    # A second client QP on the same SRQ-backed server.
    c_scq2 = p.cdev.create_cq()
    c_rcq2 = p.cdev.create_cq()
    cqp2 = p.cdev.create_qp(p.cpd, c_scq2, c_rcq2)
    s_scq2 = p.sdev.create_cq()
    sqp2 = p.sdev.create_qp(p.spd, s_scq2, p.s_rcq, srq=p.srq)
    connect_pair(cqp2, sqp2)

    bufs = [p.spd.reg_mr(64) for _ in range(4)]

    def setup():
        for i, mr in enumerate(bufs):
            yield from p.srq.post_recv(
                RecvWR(Sge(mr.addr, 64, mr.lkey), wr_id=i))

    run(tb, setup())
    assert len(p.srq) == 4

    smr = p.cpd.reg_mr(64)

    def send_via(qp, scq, payload):
        smr.write(payload)
        yield from qp.post_send(
            SendWR(Opcode.SEND, Sge(smr.addr, 64, smr.lkey)))
        yield from scq.wait_busy()

    # Alternate senders; each send fully completes before the next posts,
    # so arrival order (and thus WQE consumption order) is deterministic.
    run(tb, send_via(p.cqp, p.c_scq, b"A" * 64))
    run(tb, send_via(cqp2, c_scq2, b"B" * 64))
    run(tb, send_via(p.cqp, p.c_scq, b"C" * 64))
    run(tb, send_via(cqp2, c_scq2, b"D" * 64))

    assert len(p.srq) == 0
    wcs = p.s_rcq.poll(8)
    assert [w.wr_id for w in wcs] == [0, 1, 2, 3]  # FIFO pool order
    # Each WC names its consuming QP, and buffers were filled in pool order.
    assert [w.qp_num for w in wcs] == \
        [p.sqp.qp_num, sqp2.qp_num, p.sqp.qp_num, sqp2.qp_num]
    assert [bufs[i].read(1) for i in range(4)] == [b"A", b"B", b"C", b"D"]


def test_srq_exhaustion_rnr_recovers_after_repost(tb, srq_pair):
    """An empty pool behaves like RNR on a plain QP: the sender retries and
    lands once anyone reposts to the shared pool."""
    p = srq_pair
    smr = p.cpd.reg_mr(64)
    rmr = p.spd.reg_mr(64)

    def client():
        yield from p.cqp.post_send(
            SendWR(Opcode.SEND, Sge(smr.addr, 16, smr.lkey)))
        wcs = yield from p.c_scq.wait_busy()
        return wcs

    def late_repost():
        yield tb.sim.timeout(30 * us)
        yield from p.srq.post_recv(RecvWR(Sge(rmr.addr, 64, rmr.lkey)))

    tb.sim.process(late_repost())
    wcs = run(tb, client())
    assert wcs[0].ok
