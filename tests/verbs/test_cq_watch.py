"""Completion-queue mechanics + memory-watch tests."""

import pytest

from repro.sim.units import us
from repro.verbs import Opcode, SendWR, Sge, WC, WCOpcode, WCStatus
from repro.verbs.cq import PollMode


def wc(i=0):
    return WC(wr_id=i, opcode=WCOpcode.SEND)


def test_poll_batches_and_preserves_order(tb):
    cq = tb.node(0).nic.create_cq()
    for i in range(5):
        cq.push(wc(i))
    first = cq.poll(max_wc=2)
    assert [w.wr_id for w in first] == [0, 1]
    rest = cq.poll(max_wc=16)
    assert [w.wr_id for w in rest] == [2, 3, 4]
    assert cq.poll() == []
    assert cq.completions_total == 5


def test_wait_busy_returns_immediately_when_ready(tb):
    cq = tb.node(0).nic.create_cq()
    cq.push(wc())

    def waiter():
        t0 = tb.sim.now
        wcs = yield from cq.wait_busy()
        return len(wcs), tb.sim.now - t0

    n, dt = tb.sim.run(tb.sim.process(waiter()))
    assert n == 1
    assert dt < 1 * us  # just the poll cost


def test_wait_event_pays_interrupt_latency(tb):
    dev = tb.node(0).nic
    cq = dev.create_cq()
    out = {}

    def waiter():
        t0 = tb.sim.now
        wcs = yield from cq.wait_event()
        out["dt"] = tb.sim.now - t0
        out["n"] = len(wcs)

    def producer():
        yield tb.sim.timeout(5 * us)
        cq.push(wc())

    tb.sim.process(waiter())
    tb.sim.process(producer())
    tb.sim.run()
    assert out["n"] == 1
    assert out["dt"] >= 5 * us + dev.cost.interrupt_latency * 0.99


def test_wait_event_skips_interrupt_if_already_ready(tb):
    cq = tb.node(0).nic.create_cq()
    cq.push(wc())

    def waiter():
        t0 = tb.sim.now
        yield from cq.wait_event()
        return tb.sim.now - t0

    dt = tb.sim.run(tb.sim.process(waiter()))
    assert dt < tb.node(0).nic.cost.interrupt_latency


def test_wait_dispatch_by_mode(tb):
    cq = tb.node(0).nic.create_cq()
    cq.push(wc())
    cq.push(wc())

    def flow():
        a = yield from cq.wait(PollMode.BUSY, max_wc=1)
        b = yield from cq.wait(PollMode.EVENT, max_wc=1)
        return len(a), len(b)

    assert tb.sim.run(tb.sim.process(flow())) == (1, 1)


def test_mem_watch_fires_on_overlapping_write(tb, pair):
    rdev = pair.sdev
    rmr = pair.spd.reg_mr(256)
    watch = rdev.watch_memory(rmr.addr, 128)
    hits = []

    def watcher():
        yield watch.gate.wait()
        hits.append(tb.sim.now)

    tb.sim.process(watcher())
    smr = pair.cpd.reg_mr(64)
    smr.write(b"W" * 64)

    def client():
        yield from pair.cqp.post_send(SendWR(
            Opcode.RDMA_WRITE, Sge(smr.addr, 64, smr.lkey),
            remote_addr=rmr.addr, rkey=rmr.rkey, signaled=False))
        yield tb.sim.timeout(20 * us)

    tb.sim.run(tb.sim.process(client()))
    assert len(hits) == 1


def test_mem_watch_ignores_disjoint_write(tb, pair):
    rdev = pair.sdev
    rmr = pair.spd.reg_mr(256)
    watch = rdev.watch_memory(rmr.addr, 16)  # watch only the first 16 bytes
    woke = []

    def watcher():
        yield watch.gate.wait()
        woke.append(1)

    proc = tb.sim.process(watcher())
    smr = pair.cpd.reg_mr(64)

    def client():
        yield from pair.cqp.post_send(SendWR(
            Opcode.RDMA_WRITE, Sge(smr.addr, 32, smr.lkey),
            remote_addr=rmr.addr + 128, rkey=rmr.rkey, signaled=False))
        yield tb.sim.timeout(20 * us)

    tb.sim.run(tb.sim.process(client()))
    assert woke == []
    proc.defuse()


def test_mem_watch_cancel(tb):
    dev = tb.node(0).nic
    pd = dev.alloc_pd()
    mr = pd.reg_mr(64)
    watch = dev.watch_memory(mr.addr, 64)
    watch.cancel()
    dev._notify_write(mr.addr, 8)  # must not fire anything
    assert watch.gate.n_waiting == 0
    watch.cancel()  # idempotent
