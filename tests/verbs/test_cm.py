"""Connection-manager handshake tests."""

import pytest

from repro.verbs import Opcode, QPState, SendWR, Sge
from repro.verbs import cm


def test_connect_accept_exchanges_private_data(tb):
    cdev, sdev = tb.node(0).nic, tb.node(1).nic
    lst = cm.listen(sdev, 42)
    spd = sdev.alloc_pd()
    cpd = cdev.alloc_pd()
    got = {}

    def server():
        req = yield lst.accept()
        got["client_data"] = req.private_data
        scq, rcq = sdev.create_cq(), sdev.create_cq()
        qp = sdev.create_qp(spd, scq, rcq)
        yield from req.accept(qp, private_data=b"server-info")
        got["sqp"] = qp

    def client():
        scq, rcq = cdev.create_cq(), cdev.create_cq()
        qp = cdev.create_qp(cpd, scq, rcq)
        data = yield from cm.connect(qp, tb.node(1), 42, private_data=b"hello-cm")
        got["server_data"] = data
        got["cqp"] = qp

    tb.sim.process(server())
    tb.sim.process(client())
    tb.sim.run()
    assert got["client_data"] == b"hello-cm"
    assert got["server_data"] == b"server-info"
    assert got["cqp"].state is QPState.RTS
    assert got["cqp"].peer is got["sqp"]
    assert got["sqp"].peer is got["cqp"]


def test_connect_without_listener_refused(tb):
    cdev = tb.node(0).nic
    pd = cdev.alloc_pd()
    qp = cdev.create_qp(pd, cdev.create_cq(), cdev.create_cq())

    def client():
        yield from cm.connect(qp, tb.node(1), 99)

    p = tb.sim.process(client())
    with pytest.raises(ConnectionRefusedError):
        tb.sim.run(p)


def test_reject_propagates_to_client(tb):
    sdev = tb.node(1).nic
    lst = cm.listen(sdev, 7)

    def server():
        req = yield lst.accept()
        yield from req.reject("full")

    cdev = tb.node(0).nic
    qp = cdev.create_qp(cdev.alloc_pd(), cdev.create_cq(), cdev.create_cq())

    def client():
        yield from cm.connect(qp, tb.node(1), 7)

    tb.sim.process(server())
    p = tb.sim.process(client())
    with pytest.raises(ConnectionRefusedError):
        tb.sim.run(p)
    assert not p.ok


def test_connected_pair_passes_traffic(tb):
    cdev, sdev = tb.node(0).nic, tb.node(1).nic
    lst = cm.listen(sdev, 1)
    result = {}

    def server():
        req = yield lst.accept()
        pd = sdev.alloc_pd()
        rcq = sdev.create_cq()
        qp = sdev.create_qp(pd, sdev.create_cq(), rcq)
        mr = pd.reg_mr(128)
        from repro.verbs import RecvWR
        yield from qp.post_recv(RecvWR(Sge(mr.addr, 128, mr.lkey)))
        yield from req.accept(qp)
        wcs = yield from rcq.wait_busy()
        result["payload"] = mr.read(wcs[0].byte_len)

    def client():
        pd = cdev.alloc_pd()
        scq = cdev.create_cq()
        qp = cdev.create_qp(pd, scq, cdev.create_cq())
        yield from cm.connect(qp, tb.node(1), 1)
        mr = pd.reg_mr(64)
        mr.write(b"via-cm!!")
        yield from qp.post_send(SendWR(Opcode.SEND, Sge(mr.addr, 8, mr.lkey)))
        yield from scq.wait_busy()

    tb.sim.process(server())
    tb.sim.process(client())
    tb.sim.run()
    assert result["payload"] == b"via-cm!!"


def test_double_listen_rejected(tb):
    sdev = tb.node(1).nic
    cm.listen(sdev, 5)
    with pytest.raises(Exception):
        cm.listen(sdev, 5)
