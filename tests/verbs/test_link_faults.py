"""Link faults on the verbs datapath: transport retry, exhaustion, mapping.

The RC transport retries sends across link-down windows and packet loss
(:meth:`QP._transport_guard`); when the retry budget runs out the WR
completes with ``WCStatus.RETRY_EXC_ERR`` -- errors are *returned* as
completions, never raised from NIC context.  The thrift layer then maps
retry-exhaustion statuses onto ``TTransportException(TIMED_OUT)``.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan, LinkFlap
from repro.sim.units import us
from repro.thrift.errors import (TTransportException,
                                 transport_exception_from_wc)
from repro.verbs import Opcode, QPState, SendWR, Sge, WCStatus


def run(tb, gen):
    return tb.sim.run(tb.sim.process(gen))


def flap(tb, node_name, start, duration):
    plan = FaultPlan(events=(LinkFlap(node_name, start, duration),))
    FaultInjector(tb, plan).arm()


def retry_budget(tb):
    cost = tb.cost_model
    return cost.transport_retry_limit * cost.transport_retry_timeout


def test_send_through_long_link_down_retry_exc_err(tb, pair):
    pair.server_recv_buf(64)
    smr = pair.cpd.reg_mr(64)
    flap(tb, "node1", start=0.0, duration=10 * retry_budget(tb))

    def client():
        yield from pair.cqp.post_send(
            SendWR(Opcode.SEND, Sge(smr.addr, 16, smr.lkey)))
        wcs = yield from pair.c_scq.wait_busy()
        return wcs

    wcs = run(tb, client())
    assert wcs[0].status is WCStatus.RETRY_EXC_ERR
    assert wcs[0].status.retryable        # safe for an idempotent re-send
    assert pair.cqp.state is QPState.ERROR
    assert tb.fabric.ports["node0"].faults_seen >= 1


def test_send_rides_out_short_flap(tb, pair):
    pair.server_recv_buf(64)
    smr = pair.cpd.reg_mr(64)
    window = retry_budget(tb) / 3
    flap(tb, "node1", start=0.0, duration=window)

    def client():
        yield from pair.cqp.post_send(
            SendWR(Opcode.SEND, Sge(smr.addr, 16, smr.lkey)))
        wcs = yield from pair.c_scq.wait_busy()
        return wcs, tb.sim.now

    wcs, elapsed = run(tb, client())
    assert wcs[0].ok
    assert elapsed > window               # the flap showed up as latency


def test_rdma_read_hits_transport_guard_too(tb, pair):
    rmr = pair.spd.reg_mr(64)
    lmr = pair.cpd.reg_mr(64)
    flap(tb, "node1", start=0.0, duration=10 * retry_budget(tb))

    def client():
        yield from pair.cqp.post_send(
            SendWR(Opcode.RDMA_READ, Sge(lmr.addr, 64, lmr.lkey),
                   remote_addr=rmr.addr, rkey=rmr.rkey))
        wcs = yield from pair.c_scq.wait_busy()
        return wcs

    wcs = run(tb, client())
    assert wcs[0].status is WCStatus.RETRY_EXC_ERR


@pytest.mark.parametrize("status", [WCStatus.RNR_RETRY_EXC_ERR,
                                    WCStatus.RETRY_EXC_ERR])
def test_retry_exhaustion_maps_to_timed_out(status):
    exc = transport_exception_from_wc(status)
    assert isinstance(exc, TTransportException)
    assert exc.type == TTransportException.TIMED_OUT


def test_rnr_exhaustion_surfaces_to_caller_as_timeout(tb, pair):
    # No recv posted, ever: the sender exhausts its RNR retry budget and the
    # caller sees a typed TIMED_OUT transport exception built from the WC.
    smr = pair.cpd.reg_mr(64)

    def client():
        yield from pair.cqp.post_send(
            SendWR(Opcode.SEND, Sge(smr.addr, 16, smr.lkey)))
        wcs = yield from pair.c_scq.wait_busy()
        if wcs[0].status.is_error:
            raise transport_exception_from_wc(wcs[0].status)
        return wcs

    with pytest.raises(TTransportException) as ei:
        run(tb, client())
    assert ei.value.type == TTransportException.TIMED_OUT
    assert "rnr" in str(ei.value).lower()
