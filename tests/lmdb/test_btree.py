"""B+Tree unit and property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lmdb.btree import BTree, ORDER


def test_empty_tree():
    t = BTree()
    assert t.get(b"x") is None
    assert t.size == 0
    assert list(t.items()) == []


def test_put_get_single():
    t = BTree().put(b"k", b"v")
    assert t.get(b"k") == b"v"
    assert t.size == 1


def test_put_overwrites():
    t = BTree().put(b"k", b"v1").put(b"k", b"v2")
    assert t.get(b"k") == b"v2"
    assert t.size == 1


def test_persistence_old_versions_unchanged():
    t1 = BTree().put(b"a", b"1")
    t2 = t1.put(b"b", b"2")
    t3 = t2.put(b"a", b"changed")
    assert t1.get(b"b") is None
    assert t2.get(b"a") == b"1"
    assert t3.get(b"a") == b"changed"


def test_many_inserts_splits_and_order():
    t = BTree()
    n = ORDER * ORDER  # force at least two levels of splits
    for i in range(n):
        t = t.put(f"{i:08d}".encode(), str(i * i).encode())
    assert t.size == n
    assert t.depth >= 3
    keys = [k for k, _ in t.items()]
    assert keys == sorted(keys)
    assert len(keys) == n
    for i in (0, 1, n // 2, n - 1):
        assert t.get(f"{i:08d}".encode()) == str(i * i).encode()


def test_delete():
    t = BTree()
    for i in range(100):
        t = t.put(f"{i:04d}".encode(), b"v")
    t2 = t.delete(b"0050")
    assert t2.get(b"0050") is None
    assert t.get(b"0050") == b"v"  # old version intact
    assert t2.size == 99
    assert t2.delete(b"missing") is t2


def test_delete_everything():
    t = BTree()
    keys = [f"{i:04d}".encode() for i in range(200)]
    for k in keys:
        t = t.put(k, k)
    for k in keys:
        t = t.delete(k)
    assert t.size == 0
    assert list(t.items()) == []


def test_range_iteration():
    t = BTree()
    for i in range(100):
        t = t.put(f"{i:04d}".encode(), b"v")
    got = [k for k, _ in t.items(lo=b"0010", hi=b"0020")]
    assert got == [f"{i:04d}".encode() for i in range(10, 20)]


def test_type_errors():
    with pytest.raises(TypeError):
        BTree().put("notbytes", b"v")  # type: ignore[arg-type]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["put", "del"]),
                          st.binary(min_size=1, max_size=8),
                          st.binary(max_size=16)), max_size=300))
def test_matches_dict_model(ops):
    t = BTree()
    model = {}
    for op, k, v in ops:
        if op == "put":
            t = t.put(k, v)
            model[k] = v
        else:
            t = t.delete(k)
            model.pop(k, None)
    assert t.size == len(model)
    assert dict(t.items()) == model
    for k in model:
        assert t.get(k) == model[k]
    # ordering invariant
    keys = [k for k, _ in t.items()]
    assert keys == sorted(model)


@settings(max_examples=30, deadline=None)
@given(st.sets(st.binary(min_size=1, max_size=6), max_size=200),
       st.binary(max_size=6), st.binary(max_size=6))
def test_range_query_matches_model(keys, lo, hi):
    if lo > hi:
        lo, hi = hi, lo
    t = BTree()
    for k in keys:
        t = t.put(k, k)
    got = [k for k, _ in t.items(lo=lo, hi=hi)]
    assert got == sorted(k for k in keys if lo <= k < hi)
