"""Environment / transaction / cursor semantics."""

import pytest

from repro.lmdb import (
    Environment,
    MapFullError,
    ReadersFullError,
    SyncMode,
    TxnError,
)


@pytest.fixture
def env():
    e = Environment(map_size=1 << 20, max_readers=4)
    e.open_db("main")
    return e


def test_put_commit_get(env):
    with env.begin(write=True) as txn:
        txn.put(b"k", b"v")
    with env.begin() as txn:
        assert txn.get(b"k") == b"v"


def test_abort_discards(env):
    txn = env.begin(write=True)
    txn.put(b"k", b"v")
    txn.abort()
    with env.begin() as r:
        assert r.get(b"k") is None


def test_exception_in_with_block_aborts(env):
    with pytest.raises(RuntimeError, match="boom"):
        with env.begin(write=True) as txn:
            txn.put(b"k", b"v")
            raise RuntimeError("boom")
    with env.begin() as r:
        assert r.get(b"k") is None


def test_single_writer_enforced(env):
    t1 = env.begin(write=True)
    with pytest.raises(TxnError, match="single-writer"):
        env.begin(write=True)
    t1.commit()
    env.begin(write=True).commit()


def test_snapshot_isolation(env):
    with env.begin(write=True) as w:
        w.put(b"k", b"old")
    reader = env.begin()
    with env.begin(write=True) as w:
        w.put(b"k", b"new")
    # The reader still sees its snapshot...
    assert reader.get(b"k") == b"old"
    reader.commit()
    # ...and a fresh reader sees the commit.
    with env.begin() as r:
        assert r.get(b"k") == b"new"


def test_reader_table_bounded(env):
    readers = [env.begin() for _ in range(4)]
    with pytest.raises(ReadersFullError):
        env.begin()
    readers[0].commit()
    env.begin().commit()
    for r in readers[1:]:
        r.commit()


def test_write_in_read_txn_rejected(env):
    with env.begin() as r:
        with pytest.raises(TxnError):
            r.put(b"k", b"v")


def test_use_after_commit_rejected(env):
    txn = env.begin(write=True)
    txn.put(b"k", b"v")
    txn.commit()
    with pytest.raises(TxnError):
        txn.get(b"k")


def test_map_full(env):
    small = Environment(map_size=100)
    small.open_db("main")
    with pytest.raises(MapFullError):
        with small.begin(write=True) as txn:
            txn.put(b"k", b"v" * 200)
    # the failed charge must not leak into accounting
    assert small.stat().data_bytes == 0


def test_map_accounting_updates_and_deletes(env):
    with env.begin(write=True) as txn:
        txn.put(b"key1", b"x" * 100)
    assert env.stat().data_bytes == 104
    with env.begin(write=True) as txn:
        txn.put(b"key1", b"y" * 50)  # overwrite shrinks
    assert env.stat().data_bytes == 54
    with env.begin(write=True) as txn:
        assert txn.delete(b"key1") is True
        assert txn.delete(b"nope") is False
    assert env.stat().data_bytes == 0


def test_named_databases_isolated(env):
    env.open_db("users")
    env.open_db("orders")
    with env.begin(write=True) as txn:
        txn.put(b"k", b"user-data", db="users")
        txn.put(b"k", b"order-data", db="orders")
    with env.begin() as r:
        assert r.get(b"k", db="users") == b"user-data"
        assert r.get(b"k", db="orders") == b"order-data"
        assert r.get(b"k") is None  # main untouched


def test_sync_mode_counts(env):
    nosync = Environment(sync_mode=SyncMode.NOSYNC)
    nosync.open_db("main")
    with nosync.begin(write=True) as txn:
        txn.put(b"k", b"v")
    assert nosync.commits == 1 and nosync.syncs == 0
    with env.begin(write=True) as txn:  # default SYNC
        txn.put(b"k", b"v")
    assert env.syncs == 1


def test_cursor_scan_and_seek(env):
    with env.begin(write=True) as txn:
        for i in range(20):
            txn.put(f"{i:03d}".encode(), str(i).encode())
    with env.begin() as r:
        cur = r.cursor()
        assert cur.first() == (b"000", b"0")
        assert cur.next() == (b"001", b"1")
        assert cur.seek(b"010") == (b"010", b"10")
        batch = cur.scan(lo=b"005", limit=3)
        assert [k for k, _ in batch] == [b"005", b"006", b"007"]


def test_cursor_pinned_to_snapshot(env):
    with env.begin(write=True) as txn:
        txn.put(b"a", b"1")
    r = env.begin()
    cur = r.cursor()
    with env.begin(write=True) as txn:
        txn.put(b"b", b"2")
    assert [k for k, _ in cur.scan()] == [b"a"]
    r.commit()


def test_stat(env):
    with env.begin(write=True) as txn:
        for i in range(100):
            txn.put(f"{i:04d}".encode(), b"v" * 10)
    s = env.stat()
    assert s.entries == 100
    assert s.depth >= 2
    assert s.max_readers == 4
