"""Property-based cursor tests against a sorted-dict model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lmdb import Environment

keys = st.binary(min_size=1, max_size=6)


def build_env(mapping):
    env = Environment()
    env.open_db("main")
    with env.begin(write=True) as txn:
        for k, v in mapping.items():
            txn.put(k, v)
    return env


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(keys, st.binary(max_size=8), max_size=60),
       keys)
def test_seek_positions_at_first_ge(mapping, probe):
    env = build_env(mapping)
    with env.begin() as txn:
        hit = txn.cursor().seek(probe)
    expected = sorted(k for k in mapping if k >= probe)
    if expected:
        assert hit == (expected[0], mapping[expected[0]])
    else:
        assert hit is None


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(keys, st.binary(max_size=8), max_size=60),
       st.integers(0, 20))
def test_scan_limit_and_order(mapping, limit):
    env = build_env(mapping)
    with env.begin() as txn:
        rows = txn.cursor().scan(limit=limit)
    expected = sorted(mapping.items())[:limit]
    assert rows == expected


@settings(max_examples=30, deadline=None)
@given(st.dictionaries(keys, st.binary(max_size=8), min_size=1,
                       max_size=40))
def test_full_iteration_matches_sorted_model(mapping):
    env = build_env(mapping)
    with env.begin() as txn:
        cur = txn.cursor()
        walked = []
        item = cur.first()
        while item is not None:
            walked.append(item)
            item = cur.next()
    assert walked == sorted(mapping.items())


@settings(max_examples=30, deadline=None)
@given(st.dictionaries(keys, st.binary(max_size=8), max_size=40),
       keys, keys)
def test_bounded_scan(mapping, a, b):
    lo, hi = min(a, b), max(a, b)
    env = build_env(mapping)
    with env.begin() as txn:
        rows = txn.cursor().scan(lo=lo, hi=hi)
    assert rows == sorted((k, v) for k, v in mapping.items()
                          if lo <= k < hi)
