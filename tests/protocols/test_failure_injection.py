"""Failure injection at the protocol layer.

The RPC protocols must fail loudly and locally -- a broken connection or a
misbehaving peer surfaces as an exception on the affected call, never as a
hang or silent corruption, and never damages other connections.
"""

import pytest

from repro.protocols import ProtoConfig, ProtocolError, get_protocol
from repro.protocols.base import HDR_BYTES, pack_ctrl
from repro.sim.units import KiB, us
from repro.testbed import Testbed
from repro.verbs import Opcode, QPState, SendWR, Sge, WCStatus
from repro.verbs.errors import CQOverflowError

from tests.protocols.conftest import make_pair


@pytest.fixture
def tb():
    return Testbed(n_nodes=3)


@pytest.mark.parametrize("proto", ["direct_writeimm", "eager_sendrecv",
                                   "rfp"])
def test_qp_error_fails_inflight_call(tb, proto):
    """Forcing the QP to ERROR mid-call raises at the caller."""
    server, connect = make_pair(tb, proto)
    outcome = {}

    def client():
        c = yield from connect()
        yield from c.call(b"warm", resp_hint=64)
        # Sabotage the connection, then call again.
        c.qp.to_error()
        try:
            yield from c.call(b"after-error", resp_hint=64)
        except Exception as e:
            outcome["err"] = type(e).__name__

    tb.sim.run(tb.sim.process(client()))
    tb.sim.run()
    assert "err" in outcome


def test_concurrent_connections_survive_one_failure(tb):
    """Optimization isolation extends to faults: killing one client's QP
    must not disturb its neighbors."""
    server, connect = make_pair(tb, "direct_writeimm")
    results = {"ok": 0, "failed": 0}

    def victim():
        c = yield from connect()
        yield from c.call(b"v", resp_hint=64)
        c.qp.to_error()
        try:
            yield from c.call(b"boom", resp_hint=64)
        except Exception:
            results["failed"] += 1

    def bystander(i):
        from repro.protocols import get_protocol
        cls, _ = get_protocol("direct_writeimm")
        c = cls(tb.node(2).nic, ProtoConfig())
        yield from c.connect(tb.node(1), 100)
        for _ in range(5):
            resp = yield from c.call(b"fine", resp_hint=64)
            assert resp == b"fine"
        results["ok"] += 1

    tb.sim.process(victim())
    for i in range(3):
        tb.sim.process(bystander(i))
    tb.sim.run()
    assert results == {"ok": 3, "failed": 1}


def test_reentrant_call_rejected(tb):
    server, connect = make_pair(tb, "direct_writeimm")

    def client():
        c = yield from connect()
        gen = c.call(b"outer")
        ev = next(gen)  # start the outer call, leave it outstanding
        with pytest.raises(ProtocolError, match="outstanding"):
            inner = c.call(b"inner")
            next(inner)
        return True

    p = tb.sim.process(client())
    tb.sim.run()
    assert p.ok or isinstance(p._exc, StopIteration)


def test_corrupt_control_kind_detected(tb):
    """A garbage control header must raise ProtocolError, not misparse."""
    server, connect = make_pair(tb, "direct_writeimm")
    outcome = {}

    def client():
        c = yield from connect()
        yield from c.call(b"ok", resp_hint=64)
        # Write a bogus kind directly into the peer-advertised buffer and
        # notify -- emulating a corrupted producer.
        ep = c.ep
        ep._staging.write(pack_ctrl(0x7F, 99, 4) + b"zzzz")
        yield from c.qp.post_send(SendWR(
            Opcode.RDMA_WRITE_WITH_IMM,
            Sge(ep._staging.addr, HDR_BYTES + 4, ep._staging.lkey),
            remote_addr=ep.peer_addr, rkey=ep.peer_rkey, imm=99,
            signaled=False))
        yield tb.sim.timeout(50 * us)

    tb.sim.process(client())
    tb.sim.run()
    # The server's serve loop died on the corrupt frame; the server object
    # stays alive and accepts new connections.
    def second_client():
        cls, _ = get_protocol("direct_writeimm")
        c = cls(tb.node(0).nic, ProtoConfig())
        yield from c.connect(tb.node(1), 100)
        return (yield from c.call(b"fresh", resp_hint=64))

    p = tb.sim.process(second_client())
    assert tb.sim.run(p) == b"fresh"


def test_cq_overflow_guard(tb):
    """A CQ sized too small overflows loudly instead of dropping CQEs."""
    dev = tb.node(0).nic
    pd = dev.alloc_pd()
    scq = dev.create_cq(capacity=2)
    rcq = dev.create_cq()
    qp = dev.create_qp(pd, scq, rcq)
    rdev = tb.node(1).nic
    rpd = rdev.alloc_pd()
    rqp = rdev.create_qp(rpd, rdev.create_cq(), rdev.create_cq())
    from repro.verbs.qp import connect_pair
    connect_pair(qp, rqp)
    mr = pd.reg_mr(64)
    rmr = rpd.reg_mr(64)

    def flood():
        for _ in range(4):  # 4 signaled sends into a 2-slot CQ
            yield from qp.post_send(SendWR(
                Opcode.RDMA_WRITE, Sge(mr.addr, 8, mr.lkey),
                remote_addr=rmr.addr, rkey=rmr.rkey, signaled=True))
        yield tb.sim.timeout(100 * us)

    tb.sim.process(flood())
    with pytest.raises(CQOverflowError):
        tb.sim.run()


def test_eager_ring_exhaustion_rnr_recovers(tb):
    """Overrunning the pre-posted ring triggers RNR retries, not loss."""
    cfg = ProtoConfig(ring_slots=2)
    server, connect = make_pair(tb, "eager_sendrecv", cfg)

    def client():
        c = yield from connect()
        out = []
        for i in range(8):
            resp = yield from c.call(f"m{i}".encode(), resp_hint=64)
            out.append(resp == f"m{i}".encode())
        return out

    p = tb.sim.process(client())
    assert all(tb.sim.run(p))


def test_oversize_response_detected(tb):
    """A handler returning more than max_msg fails the server loop visibly
    rather than silently truncating."""
    cfg = ProtoConfig(max_msg=4 * KiB)

    def big_handler(req):
        return b"x" * (16 * KiB)

    server, connect = make_pair(tb, "direct_writeimm", cfg,
                                handler=big_handler)

    def client():
        c = yield from connect()
        yield from c.call(b"gimme", resp_hint=64)

    p = tb.sim.process(client())
    p.defuse()  # the client hangs or fails; either way the call never lands
    with pytest.raises(Exception):
        tb.sim.run()  # the server-side failure surfaces at the event loop
    assert not (p.triggered and p.ok)
