"""Fixtures: spin up an echo server + client for any protocol by name."""

import pytest

from repro.protocols import ProtoConfig, get_protocol
from repro.testbed import Testbed

SERVICE = 100


def echo_handler(request: bytes) -> bytes:
    return request


def reverse_handler(request: bytes) -> bytes:
    return request[::-1]


def make_pair(tb: Testbed, proto: str, cfg: ProtoConfig = None,
              handler=echo_handler, server_node=1, client_node=0,
              service=SERVICE):
    """Start a server and return a connect-coroutine for a client."""
    cfg = cfg or ProtoConfig()
    client_cls, server_cls = get_protocol(proto)
    server = server_cls(tb.node(server_node).nic, service, handler, cfg).start()

    def connect():
        client = client_cls(tb.node(client_node).nic, cfg)
        yield from client.connect(tb.node(server_node), service)
        return client

    return server, connect


@pytest.fixture
def tb():
    return Testbed(n_nodes=3)
