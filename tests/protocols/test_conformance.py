"""Conformance suite run against every registered protocol.

Each protocol must deliver arbitrary payloads intact, in order, under both
polling disciplines, from multiple concurrent client connections.
"""

import pytest

from repro.protocols import ProtoConfig, ProtocolError, protocol_names
from repro.sim.units import KiB
from repro.verbs.cq import PollMode

from tests.protocols.conftest import make_pair, reverse_handler

ALL = protocol_names()


def test_registry_complete():
    assert ALL == sorted([
        # the nine protocols of Fig. 3 + the hybrid baseline...
        "eager_sendrecv", "direct_write_send", "chained_write_send",
        "write_rndv", "read_rndv", "direct_writeimm",
        "pilaf", "farm", "rfp", "hybrid_eager_rndv",
        # ...plus the YCSB comparator schemes (S5.4)
        "herd", "hybrid_eager_readrndv",
    ])


@pytest.mark.parametrize("proto", ALL)
@pytest.mark.parametrize("size", [0, 1, 13, 512, 4096, 64 * KiB])
def test_echo_roundtrip(tb, proto, size):
    server, connect = make_pair(tb, proto, ProtoConfig(max_msg=128 * KiB))
    payload = bytes(i % 251 for i in range(size))

    def client():
        c = yield from connect()
        resp = yield from c.call(payload, resp_hint=size)
        return resp

    p = tb.sim.process(client())
    assert tb.sim.run(p) == payload
    tb.sim.run()  # drain trailing acks/FINs so server counters settle
    assert server.requests == 1


@pytest.mark.parametrize("proto", ALL)
def test_payload_transformed_not_copied_back(tb, proto):
    """Guards against protocols accidentally echoing the request buffer."""
    server, connect = make_pair(tb, proto, handler=reverse_handler)
    payload = b"abcdefgh" * 100

    def client():
        c = yield from connect()
        return (yield from c.call(payload, resp_hint=len(payload)))

    p = tb.sim.process(client())
    assert tb.sim.run(p) == payload[::-1]


@pytest.mark.parametrize("proto", ALL)
def test_sequential_calls_in_order(tb, proto):
    server, connect = make_pair(tb, proto)

    def client():
        c = yield from connect()
        out = []
        for i in range(10):
            req = f"request-{i}".encode() * (i + 1)
            resp = yield from c.call(req, resp_hint=len(req))
            out.append(resp == req)
        return out

    p = tb.sim.process(client())
    assert all(tb.sim.run(p))


@pytest.mark.parametrize("proto", ALL)
def test_event_polling_mode(tb, proto):
    cfg = ProtoConfig(poll_mode=PollMode.EVENT)
    server, connect = make_pair(tb, proto, cfg)

    def client():
        c = yield from connect()
        return (yield from c.call(b"event-mode", resp_hint=64))

    p = tb.sim.process(client())
    assert tb.sim.run(p) == b"event-mode"


@pytest.mark.parametrize("proto", ALL)
def test_multiple_concurrent_clients(tb, proto):
    server, connect = make_pair(tb, proto)
    results = {}

    def client(i, node):
        cfg = ProtoConfig()
        from repro.protocols import get_protocol
        client_cls, _ = get_protocol(proto)
        c = client_cls(tb.node(node).nic, cfg)
        yield from c.connect(tb.node(1), 100)
        for k in range(3):
            req = f"c{i}k{k}".encode()
            resp = yield from c.call(req, resp_hint=16)
            results[(i, k)] = resp == req

    for i in range(4):
        tb.sim.process(client(i, node=0 if i % 2 == 0 else 2))
    tb.sim.run()
    assert len(results) == 12 and all(results.values())
    assert server.connections == 4
    assert server.requests == 12


@pytest.mark.parametrize("proto", ALL)
def test_oversize_request_rejected(tb, proto):
    cfg = ProtoConfig(max_msg=4 * KiB)
    server, connect = make_pair(tb, proto, cfg)

    def client():
        c = yield from connect()
        yield from c.call(b"x" * (8 * KiB))

    p = tb.sim.process(client())
    with pytest.raises(ProtocolError):
        tb.sim.run(p)


@pytest.mark.parametrize("proto", ALL)
def test_generator_handler_with_server_work(tb, proto):
    """Handlers may be coroutines that consume simulated server CPU time."""
    work = {"t": 0.0}

    def handler(req):
        node = tb.node(1)
        t0 = tb.sim.now
        yield node.compute(5e-6)
        work["t"] += tb.sim.now - t0
        return req + b"!"

    server, connect = make_pair(tb, proto, handler=handler)

    def client():
        c = yield from connect()
        return (yield from c.call(b"compute", resp_hint=64))

    p = tb.sim.process(client())
    assert tb.sim.run(p) == b"compute!"
    assert work["t"] == pytest.approx(5e-6, rel=1e-6)
