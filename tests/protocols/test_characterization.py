"""Characterization tests: the Section 3.2 findings must hold in the model.

These assertions are the calibration contract for the simulator -- each one
encodes a qualitative claim of the paper (Figs. 4-5) that the higher layers
(hint selector, HatRPC engine) rely on.  If a cost-model change breaks one
of these, the reproduction is no longer faithful.
"""

import pytest

from repro.bench import ProtoBenchSpec, run_protocol_bench
from repro.sim.units import KiB
from repro.verbs.cq import PollMode


def lat(proto, payload, mode=PollMode.BUSY, **kw):
    spec = ProtoBenchSpec(proto, payload=payload, poll_mode=mode,
                          iters=10, warmup=3, **kw)
    return run_protocol_bench(spec).mean_latency


def tput(proto, payload, n_clients, mode, iters=15, **kw):
    spec = ProtoBenchSpec(proto, payload=payload, n_clients=n_clients,
                          poll_mode=mode, iters=iters, warmup=4, **kw)
    return run_protocol_bench(spec).throughput_ops


# -- Figure 4: latency -------------------------------------------------------

def test_direct_writeimm_best_small_latency():
    """'Direct-WriteIMM is the best choice for transferring small messages.'"""
    dwi = lat("direct_writeimm", 512)
    for other in ["direct_write_send", "chained_write_send", "rfp",
                  "pilaf", "farm", "write_rndv", "read_rndv"]:
        assert dwi < lat(other, 512), other


def test_chained_write_send_not_slower_than_separate():
    """Chaining saves one MMIO doorbell (Fig. 3c)."""
    assert lat("chained_write_send", 64) < lat("direct_write_send", 64)


def test_rfp_suitable_below_1kb_only():
    """'RFP protocol is suitable for message sizes less than 1KB.'"""
    # Near Direct-WriteIMM for small payloads...
    assert lat("rfp", 512) < lat("direct_writeimm", 512) * 1.25
    # ...but clearly behind for large ones (extra READ round trip + slab READ).
    assert lat("rfp", 128 * KiB) > lat("direct_writeimm", 128 * KiB) * 1.04


def test_server_bypass_read_count_ordering():
    """Pilaf (3 READs) > FaRM (2 READs) > RFP (1 READ) in latency."""
    assert lat("pilaf", 512) > lat("farm", 512) > lat("rfp", 512)


@pytest.mark.parametrize("proto", ["direct_writeimm", "eager_sendrecv", "rfp"])
def test_busy_polling_latency_beats_event(proto):
    """'RDMA protocols with busy polling deliver better latency.'"""
    assert lat(proto, 512) < lat(proto, 512, mode=PollMode.EVENT)


def test_eager_memcpy_penalty_for_large_messages():
    """Eager copies payloads twice; rendezvous wins for large messages."""
    assert lat("eager_sendrecv", 128 * KiB) > lat("write_rndv", 128 * KiB)


def test_eager_fine_for_small_messages():
    """...while below the threshold eager avoids the rendezvous handshake."""
    assert lat("eager_sendrecv", 512) < lat("write_rndv", 512)


def test_hybrid_tracks_eager_small_and_rndv_large():
    assert lat("hybrid_eager_rndv", 512) == pytest.approx(
        lat("eager_sendrecv", 512), rel=0.02)
    assert lat("hybrid_eager_rndv", 128 * KiB) == pytest.approx(
        lat("write_rndv", 128 * KiB), rel=0.02)


# -- Figure 5: throughput and concurrency -------------------------------------

def test_busy_polling_collapses_under_oversubscription():
    """512B, 128 clients vs a 28-core server: event polling scales, busy dies."""
    busy = tput("direct_writeimm", 512, 128, PollMode.BUSY)
    event = tput("direct_writeimm", 512, 128, PollMode.EVENT)
    assert event > 1.5 * busy


def test_busy_polling_wins_under_subscription():
    busy = tput("direct_writeimm", 512, 4, PollMode.BUSY)
    event = tput("direct_writeimm", 512, 4, PollMode.EVENT)
    assert busy > event


def test_dwi_beats_rfp_small_messages_at_scale():
    """'For small message sizes such as 512B, Direct-WriteIMM with event
    polling delivers the best performance' across subscription levels."""
    dwi = tput("direct_writeimm", 512, 64, PollMode.EVENT)
    rfp = tput("rfp", 512, 64, PollMode.EVENT)
    assert dwi > rfp


def test_rfp_beats_dwi_large_messages_at_scale():
    """'For large message sizes like 128KB ... RFP delivers considerable
    performance advantage' beyond the concurrency threshold."""
    dwi = tput("direct_writeimm", 128 * KiB, 64, PollMode.EVENT, iters=10)
    rfp = tput("rfp", 128 * KiB, 64, PollMode.EVENT, iters=10)
    assert rfp > dwi * 1.02


def test_dwi_beats_rfp_large_messages_small_scale():
    """...but below the threshold Direct-WriteIMM still wins (S5.2)."""
    dwi = tput("direct_writeimm", 128 * KiB, 8, PollMode.BUSY, iters=10)
    rfp = tput("rfp", 128 * KiB, 8, PollMode.BUSY, iters=10)
    assert dwi > rfp


# -- resource utilization (Fig. 6's res_util column) ---------------------------

def test_eager_ring_registers_far_more_memory_than_rndv():
    """Pure eager pins max-size ring slots; rendezvous pins a shared pool."""
    from repro.bench.proto_runner import run_protocol_bench as run

    eager = run(ProtoBenchSpec("eager_sendrecv", payload=512,
                               max_msg=512 * KiB, iters=5, warmup=1))
    rndv = run(ProtoBenchSpec("write_rndv", payload=512,
                              max_msg=512 * KiB, iters=5, warmup=1))
    assert eager.server_registered_bytes > 5 * rndv.server_registered_bytes


def test_event_polling_uses_less_server_cpu():
    busy = run_protocol_bench(ProtoBenchSpec(
        "direct_writeimm", payload=512, n_clients=8, poll_mode=PollMode.BUSY,
        iters=15, warmup=4))
    event = run_protocol_bench(ProtoBenchSpec(
        "direct_writeimm", payload=512, n_clients=8, poll_mode=PollMode.EVENT,
        iters=15, warmup=4))
    # Busy pollers burn cores; with the GPS model that shows up as runnable
    # spinners, which we observe through wall-clock inflation per op instead.
    # CPU utilization of *useful* work must not be higher under event mode.
    assert event.server_cpu_utilization <= busy.server_cpu_utilization * 1.5
