"""SrqEagerServer: one SRQ + one CQ + one dispatcher serving every client.

The stock ``eager_sendrecv`` client must work unchanged against it -- the
SRQ is a server-side resource decision, invisible on the wire.
"""

import pytest

from repro.protocols import ProtoConfig, SRQ_SERVERS, SrqEagerServer, get_protocol
from repro.sim.units import KiB, ms
from repro.testbed import Testbed

SERVICE = 140


def echo(request: bytes) -> bytes:
    return request


@pytest.fixture
def tb():
    return Testbed(n_nodes=3)


def make_srq_server(tb, cfg=None, handler=echo, srq_slots=None, node=1):
    cfg = cfg or ProtoConfig()
    return SrqEagerServer(tb.node(node).nic, SERVICE, handler, cfg,
                          srq_slots=srq_slots).start()


def connect_stock_client(tb, node=0, cfg=None):
    client_cls, _ = get_protocol("eager_sendrecv")
    client = client_cls(tb.node(node).nic, cfg or ProtoConfig())
    yield from client.connect(tb.node(1), SERVICE)
    return client


def test_registry_maps_eager_to_srq_server():
    assert SRQ_SERVERS["eager_sendrecv"] is SrqEagerServer


def test_stock_eager_client_roundtrips(tb):
    server = make_srq_server(tb)

    def client():
        c = yield from connect_stock_client(tb)
        out = []
        for i in range(5):
            req = f"request-{i}".encode() * (i + 1)
            resp = yield from c.call(req, resp_hint=len(req))
            out.append(resp == req)
        return out

    assert all(tb.sim.run(tb.sim.process(client())))
    tb.sim.run()
    assert server.requests == 5
    assert server.connections == 1


def test_many_clients_share_one_pool_and_one_cq(tb):
    server = make_srq_server(tb)
    results = {}

    def client(i, node):
        c = yield from connect_stock_client(tb, node=node)
        req = f"payload-{i}".encode() * 20
        resp = yield from c.call(req, resp_hint=len(req))
        results[i] = resp == req

    procs = [tb.sim.process(client(i, i % 2 * 2))  # nodes 0 and 2
             for i in range(8)]
    for p in procs:
        tb.sim.run(p)
    tb.sim.run()
    assert results == {i: True for i in range(8)}
    assert server.connections == 8
    assert server.requests == 8
    # The receive path is genuinely shared: every accepted QP rides the
    # server's single SRQ and single recv CQ.
    assert all(conn.qp.srq is server.srq for conn in server._conns.values())
    assert all(conn.qp.recv_cq is server.rcq
               for conn in server._conns.values())
    assert len(server._slots) == server.srq_slots


def test_burst_beyond_srq_slots_absorbed_by_rnr(tb):
    """More concurrent arrivals than pool slots: the RC transport's RNR
    retry absorbs the overflow; nothing is lost."""
    server = make_srq_server(tb, srq_slots=2)
    results = []

    def client(i):
        c = yield from connect_stock_client(tb)
        resp = yield from c.call(b"x" * 64, resp_hint=64)
        results.append(resp == b"x" * 64)

    procs = [tb.sim.process(client(i)) for i in range(6)]
    for p in procs:
        tb.sim.run(p)
    assert results == [True] * 6
    assert server.requests == 6
    assert len(server._slots) == 2


def test_one_dead_connection_leaves_neighbors_serving(tb):
    server = make_srq_server(tb)

    def setup():
        a = yield from connect_stock_client(tb)
        b = yield from connect_stock_client(tb, node=2)
        resp = yield from a.call(b"warm", resp_hint=16)
        assert resp == b"warm"
        return a, b

    a, b = tb.sim.run(tb.sim.process(setup()))
    a.abort()                                 # hard-kill client A's QP

    def survivor():
        yield tb.sim.timeout(1 * ms)          # let the error WC surface
        return (yield from b.call(b"still-alive", resp_hint=16))

    assert tb.sim.run(tb.sim.process(survivor())) == b"still-alive"
    tb.sim.run()
    assert server.teardowns == 1              # only A was dropped
    assert len(server._conns) == 1
    assert server.requests == 2


def test_slow_handler_does_not_block_the_receive_path(tb):
    """Per-request workers: a stalled handler on one connection must not
    head-of-line-block another connection's request."""
    sim_holder = {}

    def handler(request: bytes):
        if request.startswith(b"slow"):
            yield sim_holder["sim"].timeout(5 * ms)
        return request

    server = make_srq_server(tb, handler=handler)
    sim_holder["sim"] = tb.sim
    order = []

    def slow_client():
        c = yield from connect_stock_client(tb)
        yield from c.call(b"slow" + b"x" * 60, resp_hint=64)
        order.append("slow")

    def fast_client():
        c = yield from connect_stock_client(tb, node=2)
        yield from c.call(b"fast", resp_hint=16)
        order.append("fast")

    ps = tb.sim.process(slow_client())
    pf = tb.sim.process(fast_client())
    tb.sim.run(ps)
    tb.sim.run(pf)
    assert order == ["fast", "slow"]          # fast overtook the stall


def test_oversize_response_raises_protocol_error(tb):
    from repro.protocols import ProtocolError
    cfg = ProtoConfig(max_msg=1 * KiB)
    make_srq_server(tb, cfg=cfg, handler=lambda r: b"y" * 4096)

    def client():
        c = yield from connect_stock_client(tb, cfg=cfg)
        # Local misuse stays loud: the worker process dies with the typed
        # error server-side instead of reading as a dead peer.
        yield from c.call(b"q", resp_hint=64)

    tb.sim.process(client())
    with pytest.raises(ProtocolError, match="exceeds max_msg"):
        tb.sim.run()
