"""Serialization unit tests for all three protocols."""

import math

import pytest

from repro.thrift import (
    TBinaryProtocol,
    TCompactProtocol,
    TJSONProtocol,
    TMemoryBuffer,
    TMessageType,
    TProtocolException,
    TType,
)

from tests.thrift.dynvalue import read_value, write_value

PROTOS = [TBinaryProtocol, TCompactProtocol, TJSONProtocol]


def roundtrip(proto_cls, ttype, value, binary=False):
    buf = TMemoryBuffer()
    prot = proto_cls(buf)
    prot.write_struct_begin("S")
    prot.write_field_begin("f", ttype, 1)
    write_value(prot, ttype, value)
    prot.write_field_end()
    prot.write_field_stop()
    prot.write_struct_end()

    rbuf = TMemoryBuffer(buf.getvalue())
    rprot = proto_cls(rbuf)
    rprot.read_struct_begin()
    _n, rttype, fid = rprot.read_field_begin()
    assert rttype == ttype and fid == 1
    out = read_value(rprot, ttype, binary)
    rprot.read_field_end()
    _n, stop, _f = rprot.read_field_begin()
    assert stop == TType.STOP
    rprot.read_struct_end()
    return out


@pytest.mark.parametrize("proto_cls", PROTOS)
@pytest.mark.parametrize("value", [True, False])
def test_bool(proto_cls, value):
    assert roundtrip(proto_cls, TType.BOOL, value) is value


@pytest.mark.parametrize("proto_cls", PROTOS)
@pytest.mark.parametrize("ttype,value", [
    (TType.BYTE, -128), (TType.BYTE, 127),
    (TType.I16, -32768), (TType.I16, 32767),
    (TType.I32, -2**31), (TType.I32, 2**31 - 1),
    (TType.I64, -2**63), (TType.I64, 2**63 - 1),
    (TType.I32, 0), (TType.I64, -1),
])
def test_integers(proto_cls, ttype, value):
    assert roundtrip(proto_cls, ttype, value) == value


@pytest.mark.parametrize("proto_cls", PROTOS)
@pytest.mark.parametrize("value", [0.0, -1.5, 3.141592653589793, 1e300,
                                   float("inf"), float("-inf")])
def test_double(proto_cls, value):
    assert roundtrip(proto_cls, TType.DOUBLE, value) == value


@pytest.mark.parametrize("proto_cls", PROTOS)
def test_double_nan(proto_cls):
    assert math.isnan(roundtrip(proto_cls, TType.DOUBLE, float("nan")))


@pytest.mark.parametrize("proto_cls", PROTOS)
@pytest.mark.parametrize("value", ["", "hello", "uñïcødé \N{SNOWMAN}",
                                   "x" * 10000])
def test_string(proto_cls, value):
    assert roundtrip(proto_cls, TType.STRING, value) == value


@pytest.mark.parametrize("proto_cls", PROTOS)
@pytest.mark.parametrize("value", [b"", b"\x00\xff\xfe", bytes(range(256))])
def test_binary(proto_cls, value):
    assert roundtrip(proto_cls, TType.STRING, value, binary=True) == value


@pytest.mark.parametrize("proto_cls", PROTOS)
def test_list_of_i32(proto_cls):
    v = (TType.I32, [1, -2, 3, 40000])
    assert roundtrip(proto_cls, TType.LIST, v) == v


@pytest.mark.parametrize("proto_cls", PROTOS)
def test_long_list_exceeds_compact_short_form(proto_cls):
    v = (TType.I32, list(range(100)))  # compact switches to varint size
    assert roundtrip(proto_cls, TType.LIST, v) == v


@pytest.mark.parametrize("proto_cls", PROTOS)
def test_empty_list_and_map(proto_cls):
    assert roundtrip(proto_cls, TType.LIST, (TType.STRING, [])) == \
        (TType.STRING, [])
    got = roundtrip(proto_cls, TType.MAP, (TType.I32, TType.STRING, {}))
    assert got[2] == {}


@pytest.mark.parametrize("proto_cls", PROTOS)
def test_map_str_to_i64(proto_cls):
    v = (TType.STRING, TType.I64, {"a": 1, "b": -2**40})
    assert roundtrip(proto_cls, TType.MAP, v) == v


@pytest.mark.parametrize("proto_cls", PROTOS)
def test_nested_struct(proto_cls):
    inner = {1: (TType.STRING, "in"), 2: (TType.I32, 9)}
    outer = {1: (TType.STRUCT, inner), 3: (TType.BOOL, True)}
    assert roundtrip(proto_cls, TType.STRUCT, outer) == outer


@pytest.mark.parametrize("proto_cls", PROTOS)
def test_list_of_structs(proto_cls):
    s1 = {1: (TType.I32, 1)}
    s2 = {1: (TType.I32, 2), 2: (TType.STRING, "two")}
    v = (TType.STRUCT, [s1, s2])
    assert roundtrip(proto_cls, TType.LIST, v) == v


@pytest.mark.parametrize("proto_cls", PROTOS)
def test_message_header_roundtrip(proto_cls):
    buf = TMemoryBuffer()
    prot = proto_cls(buf)
    prot.write_message_begin("doWork", TMessageType.CALL, 42)
    prot.write_struct_begin("args")
    prot.write_field_stop()
    prot.write_struct_end()
    prot.write_message_end()

    rprot = proto_cls(TMemoryBuffer(buf.getvalue()))
    name, mtype, seqid = rprot.read_message_begin()
    assert (name, mtype, seqid) == ("doWork", TMessageType.CALL, 42)


@pytest.mark.parametrize("proto_cls", PROTOS)
def test_skip_unknown_fields(proto_cls):
    """A reader that recognizes no fields must still traverse the struct."""
    buf = TMemoryBuffer()
    prot = proto_cls(buf)
    complex_struct = {
        1: (TType.LIST, (TType.I32, [1, 2, 3])),
        2: (TType.MAP, (TType.STRING, TType.DOUBLE, {"pi": 3.14})),
        3: (TType.STRUCT, {1: (TType.STRING, "deep")}),
        4: (TType.I64, 77),
    }
    write_value(prot, TType.STRUCT, complex_struct)

    rprot = proto_cls(TMemoryBuffer(buf.getvalue()))
    rprot.read_struct_begin()
    seen = 0
    while True:
        _n, ftype, _fid = rprot.read_field_begin()
        if ftype == TType.STOP:
            break
        rprot.skip(ftype)
        rprot.read_field_end()
        seen += 1
    rprot.read_struct_end()
    assert seen == 4


def test_binary_rejects_bad_version():
    buf = TMemoryBuffer(b"\x00\x00\x00\x05hello")
    with pytest.raises(TProtocolException):
        TBinaryProtocol(buf).read_message_begin()


def test_compact_rejects_bad_protocol_id():
    buf = TMemoryBuffer(b"\x00\x00")
    with pytest.raises(TProtocolException):
        TCompactProtocol(buf).read_message_begin()


def test_compact_smaller_than_binary_for_small_ints():
    def encode(proto_cls):
        buf = TMemoryBuffer()
        prot = proto_cls(buf)
        struct = {i: (TType.I32, i) for i in range(1, 11)}
        write_value(prot, TType.STRUCT, struct)
        return len(buf.getvalue())

    assert encode(TCompactProtocol) < encode(TBinaryProtocol)


def test_compact_field_id_delta_large_gap():
    v = {1: (TType.I32, 1), 200: (TType.I32, 2), 32000: (TType.I32, 3)}
    assert roundtrip(TCompactProtocol, TType.STRUCT, v) == v
