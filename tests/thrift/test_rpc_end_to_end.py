"""End-to-end Thrift RPC over the simulated IPoIB TCP stack.

Uses a hand-rolled service (what the IDL compiler will later generate) to
validate transports, processors, servers, and exception paths.
"""

import pytest

from repro.testbed import Testbed
from repro.thrift import (
    TApplicationException,
    TBinaryProtocol,
    TClient,
    TCompactProtocol,
    TFramedTransport,
    TMessageType,
    TMultiplexedProcessor,
    TProcessor,
    TServerSocket,
    TSimpleServer,
    TSocket,
    TThreadPoolServer,
    TThreadedServer,
    TType,
)
from repro.thrift.processor import TMultiplexedProtocol


# -- a hand-rolled "Calc" service --------------------------------------------

class AddArgs:
    def __init__(self, a=0, b=0):
        self.a, self.b = a, b

    def write(self, oprot):
        oprot.write_struct_begin("add_args")
        oprot.write_field_begin("a", TType.I32, 1)
        oprot.write_i32(self.a)
        oprot.write_field_end()
        oprot.write_field_begin("b", TType.I32, 2)
        oprot.write_i32(self.b)
        oprot.write_field_end()
        oprot.write_field_stop()
        oprot.write_struct_end()

    def read(self, iprot):
        iprot.read_struct_begin()
        while True:
            _n, ftype, fid = iprot.read_field_begin()
            if ftype == TType.STOP:
                break
            if fid == 1:
                self.a = iprot.read_i32()
            elif fid == 2:
                self.b = iprot.read_i32()
            else:
                iprot.skip(ftype)
            iprot.read_field_end()
        iprot.read_struct_end()


class AddResult:
    def __init__(self, success=None):
        self.success = success

    def write(self, oprot):
        oprot.write_struct_begin("add_result")
        if self.success is not None:
            oprot.write_field_begin("success", TType.I32, 0)
            oprot.write_i32(self.success)
            oprot.write_field_end()
        oprot.write_field_stop()
        oprot.write_struct_end()

    def read(self, iprot):
        iprot.read_struct_begin()
        while True:
            _n, ftype, fid = iprot.read_field_begin()
            if ftype == TType.STOP:
                break
            if fid == 0:
                self.success = iprot.read_i32()
            else:
                iprot.skip(ftype)
            iprot.read_field_end()
        iprot.read_struct_end()


class CalcProcessor(TProcessor):
    def __init__(self, handler):
        super().__init__(handler)
        self._process_map["add"] = self._process_add

    def _process_add(self, seqid, iprot, oprot):
        args = AddArgs()
        args.read(iprot)
        iprot.read_message_end()
        try:
            value = yield from self._invoke("add", args.a, args.b)
            result = AddResult(success=value)
            oprot.write_message_begin("add", TMessageType.REPLY, seqid)
            result.write(oprot)
            oprot.write_message_end()
        except Exception as e:  # noqa: BLE001 - mapped to wire exception
            exc = TApplicationException(
                TApplicationException.INTERNAL_ERROR, str(e))
            oprot.write_message_begin("add", TMessageType.EXCEPTION, seqid)
            exc.write(oprot)
            oprot.write_message_end()
        return True


class CalcClient(TClient):
    def add(self, a, b):
        yield from self._send("add", AddArgs(a, b))
        result = yield from self._recv("add", AddResult())
        return result.success


class CalcHandler:
    def add(self, a, b):
        if a == 666:
            raise ValueError("unlucky operand")
        return a + b


class SlowCalcHandler:
    """Generator handler charging simulated CPU per call."""

    def __init__(self, node, work=1e-5):
        self.node = node
        self.work = work

    def add(self, a, b):
        yield self.node.compute(self.work)
        return a + b


def start_server(tb, server_cls, handler=None, port=9090, **kw):
    handler = handler or CalcHandler()
    server = server_cls(CalcProcessor(handler),
                        TServerSocket(tb.node(1), port), **kw)
    server.serve()
    return server


def connect_client(tb, port=9090, proto_cls=TBinaryProtocol, node=0):
    trans = TFramedTransport(TSocket(tb.node(node), tb.node(1), port))
    yield from trans.open()
    return CalcClient(proto_cls(trans)), trans


@pytest.fixture
def tb():
    return Testbed(n_nodes=3)


@pytest.mark.parametrize("server_cls", [TSimpleServer, TThreadedServer,
                                        TThreadPoolServer])
def test_add_roundtrip(tb, server_cls):
    start_server(tb, server_cls)

    def client():
        c, trans = yield from connect_client(tb)
        total = 0
        for i in range(5):
            total += yield from c.add(i, 10 * i)
        trans.close()
        return total

    p = tb.sim.process(client())
    assert tb.sim.run(p) == sum(i + 10 * i for i in range(5))


def test_server_exception_propagates(tb):
    start_server(tb, TThreadedServer)

    def client():
        c, _ = yield from connect_client(tb)
        with pytest.raises(TApplicationException, match="unlucky"):
            yield from c.add(666, 1)
        # Connection still usable afterwards.
        return (yield from c.add(2, 3))

    p = tb.sim.process(client())
    assert tb.sim.run(p) == 5


def test_unknown_method_returns_application_exception(tb):
    start_server(tb, TThreadedServer)

    class BadClient(CalcClient):
        def bogus(self):
            yield from self._send("bogus", AddArgs(0, 0))
            yield from self._recv("bogus", AddResult())

    def client():
        trans = TFramedTransport(TSocket(tb.node(0), tb.node(1), 9090))
        yield from trans.open()
        c = BadClient(TBinaryProtocol(trans))
        try:
            yield from c.bogus()
        except TApplicationException as e:
            return e.type

    p = tb.sim.process(client())
    assert tb.sim.run(p) == TApplicationException.UNKNOWN_METHOD


def test_compact_protocol_end_to_end(tb):
    start_server(tb, TThreadedServer, protocol_factory=TCompactProtocol)

    def client():
        c, _ = yield from connect_client(tb, proto_cls=TCompactProtocol)
        return (yield from c.add(7, 35))

    p = tb.sim.process(client())
    assert tb.sim.run(p) == 42


def test_threaded_server_concurrent_clients(tb):
    server = start_server(tb, TThreadedServer,
                          handler=SlowCalcHandler(tb.node(1)))
    results = []

    def client(i, node):
        c, _ = yield from connect_client(tb, node=node)
        for k in range(4):
            r = yield from c.add(i, k)
            results.append(r == i + k)

    for i in range(6):
        tb.sim.process(client(i, node=0 if i % 2 else 2))
    tb.sim.run()
    assert len(results) == 24 and all(results)
    assert server.connections == 6


def test_thread_pool_limits_concurrency(tb):
    """With 1 worker, connections are served strictly one after another."""
    server = start_server(tb, TThreadPoolServer,
                          handler=SlowCalcHandler(tb.node(1), work=1e-3),
                          workers=1)
    finish_times = []

    def client(i):
        c, trans = yield from connect_client(tb)
        yield from c.add(i, i)
        trans.close()
        finish_times.append(tb.sim.now)

    for i in range(3):
        tb.sim.process(client(i))
    tb.sim.run()
    # Each call costs 1ms of server CPU; serialized service means later
    # clients finish >= 1ms after the previous one.
    assert finish_times[1] - finish_times[0] >= 1e-3
    assert finish_times[2] - finish_times[1] >= 1e-3


def test_multiplexed_services(tb):
    mux = TMultiplexedProcessor()
    mux.register("calc", CalcProcessor(CalcHandler()))

    class DoubleHandler:
        def add(self, a, b):
            return 2 * (a + b)

    mux.register("double", CalcProcessor(DoubleHandler()))
    server = TThreadedServer(mux, TServerSocket(tb.node(1), 9191))
    server.serve()

    def client():
        trans = TFramedTransport(TSocket(tb.node(0), tb.node(1), 9191))
        yield from trans.open()
        plain = CalcClient(TMultiplexedProtocol(TBinaryProtocol(trans), "calc"))
        doubled = CalcClient(TMultiplexedProtocol(TBinaryProtocol(trans),
                                                  "double"))
        a = yield from plain.add(3, 4)
        # seqid continuity across two client objects on one connection:
        doubled._seqid = plain._seqid
        b = yield from doubled.add(3, 4)
        return a, b

    p = tb.sim.process(client())
    assert tb.sim.run(p) == (7, 14)


def test_rpc_latency_is_ipoib_scale(tb):
    """Vanilla Thrift over IPoIB: tens of microseconds per small RPC."""
    start_server(tb, TThreadedServer)

    def client():
        c, _ = yield from connect_client(tb)
        yield from c.add(1, 1)  # warmup
        t0 = tb.sim.now
        yield from c.add(2, 2)
        return tb.sim.now - t0

    p = tb.sim.process(client())
    rtt = tb.sim.run(p)
    assert 20e-6 < rtt < 300e-6
