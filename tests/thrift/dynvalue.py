"""Dynamic Thrift value writer/reader used by serialization tests.

Values are represented as (ttype, payload) pairs:
  (TType.I32, 5), (TType.LIST, (TType.STRING, ["a", "b"])),
  (TType.MAP, (TType.I32, TType.BOOL, {1: True})),
  (TType.STRUCT, {fid: (ttype, payload), ...})
"""

from repro.thrift import TType


def write_value(prot, ttype, value):
    if ttype == TType.BOOL:
        prot.write_bool(value)
    elif ttype == TType.BYTE:
        prot.write_byte(value)
    elif ttype == TType.I16:
        prot.write_i16(value)
    elif ttype == TType.I32:
        prot.write_i32(value)
    elif ttype == TType.I64:
        prot.write_i64(value)
    elif ttype == TType.DOUBLE:
        prot.write_double(value)
    elif ttype == TType.STRING:
        if isinstance(value, bytes):
            prot.write_binary(value)
        else:
            prot.write_string(value)
    elif ttype == TType.LIST:
        etype, items = value
        prot.write_list_begin(etype, len(items))
        for item in items:
            write_value(prot, etype, item)
        prot.write_list_end()
    elif ttype == TType.SET:
        etype, items = value
        prot.write_set_begin(etype, len(items))
        for item in items:
            write_value(prot, etype, item)
        prot.write_set_end()
    elif ttype == TType.MAP:
        ktype, vtype, mapping = value
        prot.write_map_begin(ktype, vtype, len(mapping))
        for k, v in mapping.items():
            write_value(prot, ktype, k)
            write_value(prot, vtype, v)
        prot.write_map_end()
    elif ttype == TType.STRUCT:
        prot.write_struct_begin("Dyn")
        for fid, (fttype, fvalue) in value.items():
            prot.write_field_begin(f"f{fid}", fttype, fid)
            write_value(prot, fttype, fvalue)
            prot.write_field_end()
        prot.write_field_stop()
        prot.write_struct_end()
    else:
        raise AssertionError(f"unsupported ttype {ttype}")


def read_value(prot, ttype, binary=False):
    if ttype == TType.BOOL:
        return prot.read_bool()
    if ttype == TType.BYTE:
        return prot.read_byte()
    if ttype == TType.I16:
        return prot.read_i16()
    if ttype == TType.I32:
        return prot.read_i32()
    if ttype == TType.I64:
        return prot.read_i64()
    if ttype == TType.DOUBLE:
        return prot.read_double()
    if ttype == TType.STRING:
        return prot.read_binary() if binary else prot.read_string()
    if ttype == TType.LIST:
        etype, size = prot.read_list_begin()
        items = [read_value(prot, etype, binary) for _ in range(size)]
        prot.read_list_end()
        return etype, items
    if ttype == TType.SET:
        etype, size = prot.read_set_begin()
        items = [read_value(prot, etype, binary) for _ in range(size)]
        prot.read_set_end()
        return etype, items
    if ttype == TType.MAP:
        ktype, vtype, size = prot.read_map_begin()
        mapping = {}
        for _ in range(size):
            k = read_value(prot, ktype, binary)
            mapping[k] = read_value(prot, vtype, binary)
        prot.read_map_end()
        return ktype, vtype, mapping
    if ttype == TType.STRUCT:
        out = {}
        prot.read_struct_begin()
        while True:
            _name, fttype, fid = prot.read_field_begin()
            if fttype == TType.STOP:
                break
            out[fid] = (fttype, read_value(prot, fttype, binary))
            prot.read_field_end()
        prot.read_struct_end()
        return out
    raise AssertionError(f"unsupported ttype {ttype}")
