"""Thrift server lifecycle and processor edge cases."""

import pytest

from repro.testbed import Testbed
from repro.thrift import (
    TApplicationException,
    TBinaryProtocol,
    TFramedTransport,
    TMemoryBuffer,
    TMessageType,
    TMultiplexedProcessor,
    TProcessor,
    TServerSocket,
    TSocket,
    TThreadedServer,
    TType,
)
from repro.thrift.processor import TClient, TMultiplexedProtocol

from tests.thrift.test_rpc_end_to_end import (
    CalcClient,
    CalcHandler,
    CalcProcessor,
    connect_client,
    start_server,
)


@pytest.fixture
def tb():
    return Testbed(n_nodes=2)


def test_server_stop_refuses_new_connections(tb):
    server = start_server(tb, TThreadedServer)
    done = {}

    def first_client():
        c, trans = yield from connect_client(tb)
        done["before"] = yield from c.add(1, 2)
        trans.close()
        server.stop()

    def late_client():
        yield tb.sim.timeout(1.0)
        try:
            yield from connect_client(tb)
        except Exception as e:
            done["late"] = type(e).__name__

    tb.sim.process(first_client())
    tb.sim.process(late_client())
    tb.sim.run()
    assert done["before"] == 3
    assert "late" in done


def test_requests_counter(tb):
    server = start_server(tb, TThreadedServer)

    def client():
        c, _ = yield from connect_client(tb)
        for i in range(7):
            yield from c.add(i, i)

    tb.sim.run(tb.sim.process(client()))
    assert server.requests == 7


def test_multiplexed_unknown_service(tb):
    mux = TMultiplexedProcessor()
    mux.register("calc", CalcProcessor(CalcHandler()))
    TThreadedServer(mux, TServerSocket(tb.node(1), 9292)).serve()

    def client():
        trans = TFramedTransport(TSocket(tb.node(0), tb.node(1), 9292))
        yield from trans.open()
        c = CalcClient(TMultiplexedProtocol(TBinaryProtocol(trans), "wrong"))
        try:
            yield from c.add(1, 1)
        except TApplicationException as e:
            return e.type

    p = tb.sim.process(client())
    assert tb.sim.run(p) == TApplicationException.UNKNOWN_METHOD


def test_multiplexed_requires_prefix(tb):
    mux = TMultiplexedProcessor()
    mux.register("calc", CalcProcessor(CalcHandler()))
    TThreadedServer(mux, TServerSocket(tb.node(1), 9393)).serve()

    def client():
        trans = TFramedTransport(TSocket(tb.node(0), tb.node(1), 9393))
        yield from trans.open()
        c = CalcClient(TBinaryProtocol(trans))  # no service prefix
        try:
            yield from c.add(1, 1)
        except TApplicationException as e:
            return e.type

    p = tb.sim.process(client())
    assert tb.sim.run(p) == TApplicationException.INVALID_MESSAGE_TYPE


def test_multiplexed_double_register_rejected():
    mux = TMultiplexedProcessor()
    mux.register("calc", CalcProcessor(CalcHandler()))
    with pytest.raises(ValueError):
        mux.register("calc", CalcProcessor(CalcHandler()))


def test_bad_seqid_detected(tb):
    start_server(tb, TThreadedServer, port=9494)

    def client():
        c, _ = yield from connect_client(tb, port=9494)
        yield from c.add(1, 1)
        c._seqid = 99  # desynchronize on purpose
        try:
            # _recv checks the reply's seqid against ours
            yield from c._send("add", __import__(
                "tests.thrift.test_rpc_end_to_end",
                fromlist=["AddArgs"]).AddArgs(2, 2))
            c._seqid = 1234
            from tests.thrift.test_rpc_end_to_end import AddResult
            yield from c._recv("add", AddResult())
        except TApplicationException as e:
            return e.type

    p = tb.sim.process(client())
    assert tb.sim.run(p) == TApplicationException.BAD_SEQUENCE_ID


def test_thread_pool_validation(tb):
    from repro.thrift import TThreadPoolServer
    with pytest.raises(ValueError):
        TThreadPoolServer(CalcProcessor(CalcHandler()),
                          TServerSocket(tb.node(1), 9), workers=0)
