"""Property-based serialization tests: arbitrary nested values round-trip."""

from hypothesis import given, settings, strategies as st

from repro.thrift import (
    TBinaryProtocol,
    TCompactProtocol,
    TJSONProtocol,
    TMemoryBuffer,
    TType,
)

from tests.thrift.dynvalue import read_value, write_value

# Scalar strategies per ttype.  Text for JSON excludes surrogates (invalid
# UTF-8); doubles exclude NaN for ==-comparability.
_SCALARS = [
    (TType.BOOL, st.booleans()),
    (TType.BYTE, st.integers(-128, 127)),
    (TType.I16, st.integers(-2**15, 2**15 - 1)),
    (TType.I32, st.integers(-2**31, 2**31 - 1)),
    (TType.I64, st.integers(-2**63, 2**63 - 1)),
    (TType.DOUBLE, st.floats(allow_nan=False)),
    (TType.STRING, st.text(max_size=50)),
]


def _scalar_typed():
    return st.sampled_from(range(len(_SCALARS))).flatmap(
        lambda i: st.tuples(st.just(_SCALARS[i][0]), _SCALARS[i][1]))


def _typed_value(max_depth=2):
    """Strategy producing (ttype, value) trees in dynvalue representation."""
    base = _scalar_typed()
    if max_depth == 0:
        return base
    sub = _typed_value(max_depth - 1)

    def make_list(children):
        # homogeneous element type is required by the wire format
        if not children:
            return (TType.LIST, (TType.I32, []))
        etype = children[0][0]
        same = [v for t, v in children if t == etype]
        return (TType.LIST, (etype, same))

    def make_map(pairs):
        if not pairs:
            return (TType.MAP, (TType.I32, TType.STRING, {}))
        ktype = TType.I32
        vtype = pairs[0][0]
        mapping = {}
        for i, (t, v) in enumerate(pairs):
            if t == vtype:
                mapping[i] = v
        return (TType.MAP, (ktype, vtype, mapping))

    def make_struct(children):
        return (TType.STRUCT,
                {i + 1: tv for i, tv in enumerate(children)})

    return st.one_of(
        base,
        st.lists(sub, max_size=4).map(make_list),
        st.lists(sub, max_size=4).map(make_map),
        st.lists(sub, max_size=4).map(make_struct),
    )


def _normalize(ttype, value):
    """Canonical form for comparison: empty maps lose their element types
    (the compact protocol legitimately omits them on the wire)."""
    if ttype == TType.MAP:
        ktype, vtype, mapping = value
        if not mapping:
            return (-1, -1, {})
        return (ktype, vtype,
                {k: _normalize(vtype, v) for k, v in mapping.items()})
    if ttype in (TType.LIST, TType.SET):
        etype, items = value
        return (etype, [_normalize(etype, v) for v in items])
    if ttype == TType.STRUCT:
        return {fid: (t, _normalize(t, v)) for fid, (t, v) in value.items()}
    return value


def _roundtrip(proto_cls, ttype, value):
    buf = TMemoryBuffer()
    prot = proto_cls(buf)
    prot.write_struct_begin("S")
    prot.write_field_begin("f", ttype, 1)
    write_value(prot, ttype, value)
    prot.write_field_end()
    prot.write_field_stop()
    prot.write_struct_end()
    rprot = proto_cls(TMemoryBuffer(buf.getvalue()))
    rprot.read_struct_begin()
    _n, rttype, _fid = rprot.read_field_begin()
    assert rttype == ttype
    out = read_value(rprot, ttype)
    rprot.read_field_end()
    rprot.read_struct_end()
    return out


@settings(max_examples=150, deadline=None)
@given(_typed_value())
def test_binary_roundtrip(tv):
    ttype, value = tv
    assert _normalize(ttype, _roundtrip(TBinaryProtocol, ttype, value)) == _normalize(ttype, value)


@settings(max_examples=150, deadline=None)
@given(_typed_value())
def test_compact_roundtrip(tv):
    ttype, value = tv
    assert _normalize(ttype, _roundtrip(TCompactProtocol, ttype, value)) == _normalize(ttype, value)


@settings(max_examples=100, deadline=None)
@given(_typed_value())
def test_json_roundtrip(tv):
    ttype, value = tv
    assert _normalize(ttype, _roundtrip(TJSONProtocol, ttype, value)) == _normalize(ttype, value)


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=200))
def test_binary_bytes_roundtrip_all_protocols(data):
    for proto_cls in (TBinaryProtocol, TCompactProtocol, TJSONProtocol):
        buf = TMemoryBuffer()
        prot = proto_cls(buf)
        prot.write_struct_begin("S")
        prot.write_field_begin("b", TType.STRING, 1)
        prot.write_binary(data)
        prot.write_field_end()
        prot.write_field_stop()
        prot.write_struct_end()
        rprot = proto_cls(TMemoryBuffer(buf.getvalue()))
        rprot.read_struct_begin()
        rprot.read_field_begin()
        assert rprot.read_binary() == data


@settings(max_examples=100, deadline=None)
@given(st.integers(-2**63, 2**63 - 1))
def test_compact_zigzag_identity(v):
    from repro.thrift.protocol.compact import unzigzag, zigzag
    assert unzigzag(zigzag(v, 64)) == v
    z = zigzag(v, 64)
    assert z >= 0  # varint-encodable
