"""Transport-layer edge cases."""

import pytest

from repro.testbed import Testbed
from repro.thrift import (
    TBufferedTransport,
    TFramedTransport,
    TMemoryBuffer,
    TServerSocket,
    TSocket,
    TTransportException,
)


@pytest.fixture
def tb():
    return Testbed(n_nodes=2)


def connected_pair(tb, port=7):
    """A framed client/server transport pair over TCP."""
    lst = TServerSocket(tb.node(1), port).listen()
    out = {}

    def server():
        sock = yield from lst.accept()
        out["server"] = TFramedTransport(sock)

    def client():
        trans = TFramedTransport(TSocket(tb.node(0), tb.node(1), port))
        yield from trans.open()
        out["client"] = trans

    tb.sim.process(server())
    tb.sim.process(client())
    tb.sim.run()
    return out["client"], out["server"]


def test_memory_buffer_read_write():
    buf = TMemoryBuffer()
    buf.write(b"hello ")
    buf.write(b"world")
    assert buf.getvalue() == b"hello world"
    rd = TMemoryBuffer(b"abcdef")
    assert rd.read(3) == b"abc"
    assert rd.read(10) == b"def"
    assert rd.read(1) == b""


def test_memory_buffer_read_all_underflow():
    rd = TMemoryBuffer(b"ab")
    with pytest.raises(TTransportException):
        rd.read_all(5)


def test_framed_roundtrip_preserves_message_boundaries(tb):
    client, server = connected_pair(tb)
    got = []

    def exchange():
        client.write(b"first")
        yield from client.flush()
        client.write(b"second message")
        yield from client.flush()
        for _ in range(2):
            yield from server.ready()
            got.append(server.read(1 << 20))

    tb.sim.run(tb.sim.process(exchange()))
    assert got == [b"first", b"second message"]


def test_framed_empty_message(tb):
    client, server = connected_pair(tb)
    got = {}

    def exchange():
        yield from client.flush()  # zero-length frame
        yield from server.ready()
        got["data"] = server.read(100)

    tb.sim.run(tb.sim.process(exchange()))
    assert got["data"] == b""


def test_framed_oversize_frame_rejected(tb):
    client, server = connected_pair(tb)

    def exchange():
        # Hand-craft a frame header advertising an absurd length.
        import struct
        yield from client.inner.send(struct.pack("!I", 1 << 30))
        yield from server.ready()

    p = tb.sim.process(exchange())
    with pytest.raises(TTransportException, match="exceeds limit"):
        tb.sim.run(p)


def test_double_open_rejected(tb):
    tb.node(1).tcp.listen(9)

    def flow():
        trans = TFramedTransport(TSocket(tb.node(0), tb.node(1), 9))
        yield from trans.open()
        yield from trans.open()

    p = tb.sim.process(flow())
    with pytest.raises(TTransportException):
        tb.sim.run(p)


def test_send_after_close_rejected(tb):
    client, server = connected_pair(tb)

    def flow():
        client.close()
        client.write(b"late")
        yield from client.flush()

    p = tb.sim.process(flow())
    with pytest.raises(TTransportException):
        tb.sim.run(p)


def test_peer_close_surfaces_as_eof(tb):
    client, server = connected_pair(tb)
    outcome = {}

    def flow():
        client.close()
        try:
            yield from server.ready()
        except TTransportException as e:
            outcome["type"] = e.type

    tb.sim.run(tb.sim.process(flow()))
    # NOT_OPEN when the close is observed before the read starts,
    # END_OF_FILE when it lands mid-read.
    assert outcome["type"] in (TTransportException.END_OF_FILE,
                               TTransportException.NOT_OPEN)


def test_buffered_transport_roundtrip(tb):
    lst = TServerSocket(tb.node(1), 11).listen()
    got = {}

    def server():
        sock = yield from lst.accept()
        trans = TBufferedTransport(sock)
        yield from trans.ready()
        got["data"] = trans.read(1 << 20)

    def client():
        trans = TBufferedTransport(TSocket(tb.node(0), tb.node(1), 11))
        yield from trans.open()
        trans.write(b"coalesced ")
        trans.write(b"writes")
        yield from trans.flush()

    tb.sim.process(server())
    tb.sim.process(client())
    tb.sim.run()
    assert got["data"] == b"coalesced writes"


def test_server_socket_requires_listen(tb):
    srv = TServerSocket(tb.node(1), 13)

    def flow():
        yield from srv.accept()

    p = tb.sim.process(flow())
    with pytest.raises(TTransportException, match="not listening"):
        tb.sim.run(p)
