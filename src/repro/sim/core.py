"""Discrete-event simulator core: events, processes, and the event loop.

The design follows the classic process-interaction style (as in SimPy): a
*process* is a generator that yields :class:`Event` objects; the simulator
resumes the generator when the yielded event fires, sending the event's value
back into the generator (or throwing its exception).

Determinism: events scheduled for the same timestamp fire in schedule order
(a monotonically increasing sequence number breaks ties), so repeated runs of
the same program produce byte-identical traces.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (double-trigger, etc.)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence with a value or an exception.

    An event starts *pending*; exactly one of :meth:`succeed` or :meth:`fail`
    moves it to *triggered*, after which the simulator runs its callbacks at
    the scheduled time.  Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered", "_ok",
                 "defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._ok = False
        #: set True (or call defuse()) to let a failure pass unobserved
        self.defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is in the past)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has not been triggered yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = False
        self._exc = exc
        self.sim._schedule(self, delay)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for cb in callbacks:
            cb(self)
        if self._exc is not None and not callbacks and not self.defused:
            # A failure nobody is waiting on must not vanish: surface it at
            # the event loop (defuse() opts out for intentional crashes).
            raise self._exc

    def defuse(self) -> "Event":
        self.defused = True
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Run ``cb(event)`` when the event is processed (immediately if past)."""
        if self.callbacks is None:
            cb(self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._triggered = True
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """A running generator coroutine; also an event that fires on return.

    The process's value is the generator's return value; an uncaught
    exception inside the generator fails the process event (and propagates
    to :meth:`Simulator.run` if nothing is waiting on it).
    """

    __slots__ = ("gen", "name", "_waiting_on", "trace_ctx")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Distributed-trace context rides on the process; spawned processes
        # inherit the spawner's so detached work (NIC chains, server loops)
        # stays attributed to the RPC that caused it.  None when tracing is
        # off -- instrumented sites pay exactly this one attribute check.
        ap = sim.active_process
        self.trace_ctx = ap.trace_ctx if ap is not None else None
        # Kick off at the current time, but via the event queue so that the
        # creator finishes its own time step first.
        boot = Event(sim)
        boot.add_callback(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        if self._waiting_on is not None:
            # Detach from the event we were waiting on; it may still fire
            # later but must not resume us twice.
            target = self._waiting_on
            self._waiting_on = None
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        kick = Event(self.sim)
        kick.add_callback(lambda _ev: self._throw(Interrupt(cause)))
        kick.succeed()

    # -- internal stepping --------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        if event._exc is not None:
            self._throw(event._exc)
        else:
            self._step(lambda: self.gen.send(event._value))

    def _throw(self, exc: BaseException) -> None:
        self._step(lambda: self.gen.throw(exc))

    def _step(self, advance: Callable[[], Any]) -> None:
        sim = self.sim
        prev = sim.active_process
        sim.active_process = self
        try:
            target = advance()
        except StopIteration as stop:
            sim.active_process = prev
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim.active_process = prev
            self.fail(exc)
            return
        sim.active_process = prev
        if not isinstance(target, Event):
            self._throw(SimulationError(
                f"process {self.name!r} yielded {target!r}, not an Event"))
            return
        if target.sim is not sim:
            self._throw(SimulationError(
                f"process {self.name!r} yielded an event from another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._n_done = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired; value = list of values.

    If any constituent fails, AllOf fails with that exception.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Fires when the first constituent fires; value = (index, value)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self.succeed((self.events.index(event), event._value))


class Simulator:
    """The event loop: a time-ordered heap of triggered events."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self.active_process: Optional[Process] = None
        self._heap: list[tuple[float, int, Event]] = []
        self._eid = 0
        self._nevents = 0

    # -- factory helpers ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Spawn a new process from a generator."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._eid += 1
        heapq.heappush(self._heap, (self.now + delay, self._eid, event))

    def step(self) -> None:
        when, _eid, event = heapq.heappop(self._heap)
        self.now = when
        self._nevents += 1
        event._run_callbacks()

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        ``until`` may be a timestamp (run to that simulated time), an Event
        (run until it is processed; returns/raises its value), or None
        (run to exhaustion).
        """
        if isinstance(until, Event):
            target = until
            while not target.processed:
                if not self._heap:
                    raise SimulationError(
                        "event queue drained before the awaited event fired "
                        "(deadlock: a process is waiting on an event nobody "
                        "will trigger)")
                self.step()
            return target.value
        deadline = float("inf") if until is None else float(until)
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        if until is not None and self.now < deadline:
            self.now = deadline
        return None

    @property
    def events_executed(self) -> int:
        return self._nevents
