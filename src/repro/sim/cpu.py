"""Fair-share CPU model for a multi-core node.

The model is generalized processor sharing (GPS): a node has ``cores`` cores
and a set of *runnable* threads.  While the number of runnable threads R is
at most the core count C every thread runs at full speed; beyond that each
runs at C/R of a core.  This is what produces the paper's key concurrency
effect (Section 3.2, Figure 5): busy-polling threads are always runnable, so
over-subscribing a node with busy pollers collapses throughput, while
event-polling threads block (not runnable) and scale.

Two kinds of runnable load are tracked:

* **finite jobs** -- ``compute(cpu_seconds)`` consumes that much CPU work and
  completes (handler execution, memcpy, serialization);
* **spinners** -- ``spin_begin()``/``spin_end()`` bracket a busy-poll loop:
  the thread is runnable (consuming a core's worth of schedulable time, thus
  slowing everyone else) but never "finishes".

The implementation keeps one pending wake-up for the earliest-finishing job
and re-evaluates on every state change, so cost is O(jobs) bookkeeping per
change with O(1) outstanding events.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.core import Event, SimulationError, Simulator

__all__ = ["CpuScheduler", "SpinToken"]

_EPS = 1e-15


@dataclass
class SpinToken:
    """Handle returned by :meth:`CpuScheduler.spin_begin`."""

    scheduler: "CpuScheduler"
    sid: int
    active: bool = True


class _Job:
    __slots__ = ("remaining", "event")

    def __init__(self, remaining: float, event: Event):
        self.remaining = remaining
        self.event = event


class CpuScheduler:
    """GPS scheduler over ``cores`` identical cores."""

    def __init__(self, sim: Simulator, cores: int):
        if cores < 1:
            raise ValueError("cores must be >= 1")
        self.sim = sim
        self.cores = cores
        self._jobs: Dict[int, _Job] = {}
        self._spinners: set[int] = set()
        self._ids = itertools.count(1)
        self._last_update = 0.0
        self._version = 0
        self._busy_time = 0.0  # integrated core-seconds of useful work

    # -- public API ---------------------------------------------------------
    @property
    def runnable(self) -> int:
        return len(self._jobs) + len(self._spinners)

    @property
    def job_rate(self) -> float:
        """Fraction of one core each runnable thread currently receives."""
        r = self.runnable
        return 1.0 if r <= self.cores else self.cores / r

    @property
    def busy_core_seconds(self) -> float:
        """Total useful (finite-job) work completed so far, in core-seconds."""
        self._advance()
        return self._busy_time

    def utilization(self, elapsed: float) -> float:
        """Mean fraction of the node's cores doing useful work over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return self.busy_core_seconds / (elapsed * self.cores)

    def compute(self, cpu_seconds: float) -> Event:
        """Consume ``cpu_seconds`` of CPU work; the event fires when done."""
        ev = Event(self.sim)
        if cpu_seconds <= 0:
            ev.succeed()
            return ev
        self._advance()
        self._jobs[next(self._ids)] = _Job(cpu_seconds, ev)
        self._reschedule()
        return ev

    def spin_begin(self) -> SpinToken:
        """Mark the calling thread as a busy-polling (always runnable) thread."""
        self._advance()
        sid = next(self._ids)
        self._spinners.add(sid)
        self._reschedule()
        return SpinToken(self, sid)

    def spin_end(self, token: SpinToken) -> None:
        if not token.active:
            raise SimulationError("spin_end() on an inactive token")
        token.active = False
        self._advance()
        self._spinners.discard(token.sid)
        self._reschedule()

    # -- internals ------------------------------------------------------------
    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_update
        if dt <= 0:
            self._last_update = now
            return
        if self._jobs:
            rate = self.job_rate
            done = rate * dt
            self._busy_time += done * len(self._jobs)
            for job in self._jobs.values():
                job.remaining -= done
        self._last_update = now

    def _reschedule(self) -> None:
        self._version += 1
        while True:
            # Complete any jobs that just hit zero.
            finished = [jid for jid, j in self._jobs.items()
                        if j.remaining <= _EPS]
            for jid in finished:
                self._jobs.pop(jid).event.succeed()
            if not self._jobs:
                return
            rate = self.job_rate
            min_rem = min(j.remaining for j in self._jobs.values())
            delay = min_rem / rate
            if self.sim.now + delay > self.sim.now:
                break
            # Leftover work below the clock's float resolution can never be
            # drained by advancing time (now + delay == now would loop
            # forever); round it to done.
            for j in self._jobs.values():
                if j.remaining <= min_rem + _EPS:
                    j.remaining = 0.0
        version = self._version
        wake = self.sim.timeout(delay)
        wake.add_callback(lambda _ev: self._tick(version))

    def _tick(self, version: int) -> None:
        if version != self._version:
            return  # state changed since this wake-up was scheduled
        self._advance()
        self._reschedule()
