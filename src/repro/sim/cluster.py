"""Nodes and clusters.

A :class:`Node` models one machine of the paper's testbed: a CPU complex
(cores under a fair-share scheduler, split across NUMA domains) to which a
NIC (:class:`repro.verbs.device.Device`) and a kernel TCP stack
(:class:`repro.netfab.tcp.TcpStack`) attach themselves.

The default :class:`ClusterSpec` mirrors Section 5.1: 10 nodes, each a
28-core Xeon Gold 6132 (2 NUMA domains of 14 cores), 192 GB RAM, connected
by 100 Gbps InfiniBand EDR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.sim.core import Simulator
from repro.sim.cpu import CpuScheduler

__all__ = ["Cluster", "ClusterSpec", "Node", "NodeSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one machine."""

    cores: int = 28
    numa_domains: int = 2
    ram_bytes: int = 192 * 1024**3

    @property
    def cores_per_numa(self) -> int:
        return self.cores // self.numa_domains


class Node:
    """One machine: a named CPU complex with attachment points."""

    def __init__(self, sim: Simulator, name: str, spec: NodeSpec):
        self.sim = sim
        self.name = name
        self.spec = spec
        self.cpu = CpuScheduler(sim, spec.cores)
        # Attachment points, filled in by the owning subsystems.
        self.nic: Any = None          # repro.verbs.device.Device
        self.tcp: Any = None          # repro.netfab.tcp.TcpStack
        self.props: Dict[str, Any] = {}
        # Liveness (fault injection): subsystems register hooks so a crash
        # fails their live state (QPs, TCP connections) and a restore lets
        # servers re-listen.
        self.up = True
        self.crashes = 0
        self._crash_hooks: List[Callable[[], None]] = []
        self._restore_hooks: List[Callable[[], None]] = []

    def compute(self, cpu_seconds: float):
        """Event that fires after ``cpu_seconds`` of fair-shared CPU work."""
        return self.cpu.compute(cpu_seconds)

    # -- liveness ----------------------------------------------------------
    def on_crash(self, hook: Callable[[], None]) -> None:
        self._crash_hooks.append(hook)

    def on_restore(self, hook: Callable[[], None]) -> None:
        self._restore_hooks.append(hook)

    def crash(self) -> None:
        """Fail-stop: kill the node's live connection state.

        In-flight operations targeting this node complete with transport
        errors; nothing here touches durable state (HatKV's LMDB survives,
        as a real machine's disk would).  Idempotent.
        """
        if not self.up:
            return
        self.up = False
        self.crashes += 1
        for hook in self._crash_hooks:
            hook()

    def restore(self) -> None:
        """Bring the node back up (fresh connection state, durable data intact)."""
        if self.up:
            return
        self.up = True
        for hook in self._restore_hooks:
            hook()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.name}: {self.spec.cores} cores>"


@dataclass(frozen=True)
class ClusterSpec:
    """Topology of the testbed (Section 5.1 defaults)."""

    n_nodes: int = 10
    node: NodeSpec = field(default_factory=NodeSpec)


class Cluster:
    """A set of nodes sharing one simulator.

    The network fabric (:class:`repro.netfab.fabric.Fabric`) is built on top
    of a cluster by the netfab package; keeping it out of this class avoids a
    sim -> netfab dependency.
    """

    def __init__(self, sim: Simulator, spec: Optional[ClusterSpec] = None):
        self.sim = sim
        self.spec = spec or ClusterSpec()
        self.nodes: List[Node] = [
            Node(sim, f"node{i}", self.spec.node)
            for i in range(self.spec.n_nodes)
        ]
        self._by_name = {n.name: n for n in self.nodes}

    def __getitem__(self, key: int | str) -> Node:
        if isinstance(key, str):
            return self._by_name[key]
        return self.nodes[key]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)
