"""Deterministic discrete-event simulation kernel.

This package is the substrate that replaces the paper's physical testbed
(10-node InfiniBand EDR cluster).  Everything above it -- the simulated verbs
layer, the RDMA protocols, the Thrift transports, the benchmarks -- runs as
coroutine processes inside a :class:`~repro.sim.core.Simulator`.

Blocking convention
-------------------
Any operation that can block simulated time is a *generator coroutine* and
must be driven with ``yield from`` (or ``yield`` for a bare event).  Plain
function calls never advance simulated time.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.cpu import CpuScheduler, SpinToken
from repro.sim.sync import Gate, Resource, Store
from repro.sim.cluster import Cluster, ClusterSpec, Node, NodeSpec
from repro.sim.units import GiB, KiB, MiB, Gbps, ms, ns, us

__all__ = [
    "AllOf",
    "AnyOf",
    "Cluster",
    "ClusterSpec",
    "CpuScheduler",
    "Event",
    "Gate",
    "GiB",
    "Gbps",
    "Interrupt",
    "KiB",
    "MiB",
    "Node",
    "NodeSpec",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "SpinToken",
    "Store",
    "Timeout",
    "ms",
    "ns",
    "us",
]
