"""Unit helpers.

Simulated time is measured in seconds (float).  Data sizes are measured in
bytes (int).  These constants keep call sites legible: ``3 * us`` reads as
three microseconds, ``100 * Gbps`` as a link rate in bytes/second.
"""

# Time units (seconds).
ns = 1e-9
us = 1e-6
ms = 1e-3

# Size units (bytes).
KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024

# Rate units (bytes per second).  Network rates are quoted in bits/s, hence
# the /8: ``100 * Gbps`` is the payload byte rate of a 100 Gb/s link.
Gbps = 1e9 / 8
GBps = 1e9


def fmt_size(nbytes: int) -> str:
    """Human-readable size, e.g. ``4096 -> '4KB'`` (for bench row labels)."""
    if nbytes >= MiB and nbytes % MiB == 0:
        return f"{nbytes // MiB}MB"
    if nbytes >= KiB and nbytes % KiB == 0:
        return f"{nbytes // KiB}KB"
    return f"{nbytes}B"


def fmt_time(seconds: float) -> str:
    """Human-readable duration, e.g. ``1.5e-6 -> '1.50us'``."""
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= ms:
        return f"{seconds / ms:.2f}ms"
    if seconds >= us:
        return f"{seconds / us:.2f}us"
    return f"{seconds / ns:.0f}ns"
