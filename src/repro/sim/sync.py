"""Synchronization primitives built on the event kernel.

All acquire/get style operations return an :class:`~repro.sim.core.Event`
that the caller must yield; releases are plain calls.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.core import Event, SimulationError, Simulator

__all__ = ["Gate", "Resource", "Store"]


class Resource:
    """A counted resource (semaphore) with FIFO waiters.

    Used for, e.g., NIC execution engines and link serialization.
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def acquire(self) -> Event:
        ev = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        while self._waiters:
            ev = self._waiters.popleft()
            # Skip waiters whose process was interrupted (e.g. a deadline
            # cancellation): interrupt() detached their callback, so handing
            # them the slot would leak it forever.  A live waiter always has
            # a registered callback here because acquire()->yield happens
            # without an intervening event-loop step.
            if not ev.triggered and ev.callbacks:
                # Hand the slot directly to the waiter; in_use is unchanged.
                ev.succeed()
                return
        self.in_use -= 1

    def use(self, duration: float):
        """Generator helper: hold the resource for ``duration`` seconds."""
        yield self.acquire()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()

    @property
    def queued(self) -> int:
        return len(self._waiters)


class Store:
    """An unbounded FIFO queue of items with blocking ``get``.

    ``put`` is non-blocking (queues the item); ``get`` returns an event that
    fires with the next item.  Items are matched to getters FIFO/FIFO, which
    keeps multi-consumer servers deterministic.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking pop; None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def __len__(self) -> int:
        return len(self._items)


class Gate:
    """A repeatable broadcast signal.

    ``wait()`` returns an event that fires at the next ``fire()``.  Unlike a
    bare Event, a Gate can be fired many times; each ``fire`` releases the
    waiters registered since the previous one.  Used for completion-queue
    arming and connection-ready notifications.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._waiters: list[Event] = []

    def wait(self) -> Event:
        ev = Event(self.sim)
        self._waiters.append(ev)
        return ev

    def fire(self, value: Any = None) -> int:
        """Release all current waiters; returns how many were released."""
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)
        return len(waiters)

    @property
    def n_waiting(self) -> int:
        return len(self._waiters)
