"""Verbs-layer exceptions."""

__all__ = [
    "CQOverflowError",
    "MemoryAccessError",
    "QPStateError",
    "VerbsError",
]


class VerbsError(RuntimeError):
    """Base class for simulated-verbs failures."""


class MemoryAccessError(VerbsError):
    """Out-of-bounds access or bad lkey/rkey (maps to IBV_WC_REM_ACCESS_ERR)."""


class QPStateError(VerbsError):
    """Operation posted on a QP not in the required state."""


class CQOverflowError(VerbsError):
    """More completions generated than the CQ has capacity for."""
