"""Verbs-layer exceptions."""

__all__ = [
    "CQOverflowError",
    "MemoryAccessError",
    "QPStateError",
    "VerbsError",
    "WCError",
]


class VerbsError(RuntimeError):
    """Base class for simulated-verbs failures."""


class MemoryAccessError(VerbsError):
    """Out-of-bounds access or bad lkey/rkey (maps to IBV_WC_REM_ACCESS_ERR)."""


class QPStateError(VerbsError):
    """Operation posted on a QP not in the required state."""


class CQOverflowError(VerbsError):
    """More completions generated than the CQ has capacity for."""


class WCError(VerbsError):
    """An error work completion, surfaced as an exception.

    Carries the :class:`~repro.verbs.types.WCStatus` so upper layers can map
    it onto their own error taxonomy (the thrift transport exceptions do).
    """

    def __init__(self, status, message: str = ""):
        super().__init__(message
                         or f"work completion failed: {status.value}")
        self.status = status
