"""The simulated RNIC: device context, protection domains, memory regions."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, Optional

from repro import obs
from repro.netfab.fabric import Fabric, Port
from repro.sim.cluster import Node
from repro.sim.core import Simulator
from repro.verbs.costmodel import CostModel
from repro.verbs.cq import CQ, CompChannel
from repro.verbs.errors import MemoryAccessError, VerbsError
from repro.verbs.memory import Memory

if TYPE_CHECKING:  # pragma: no cover
    from repro.verbs.qp import QP, SRQ

__all__ = ["Device", "MR", "PD"]


class MR:
    """A registered memory region: an rkey/lkey window over node memory."""

    __slots__ = ("pd", "addr", "length", "lkey", "rkey")

    def __init__(self, pd: "PD", addr: int, length: int, key: int):
        self.pd = pd
        self.addr = addr
        self.length = length
        # Real verbs issues distinct lkey/rkey; sharing one integer keeps
        # bookkeeping simple while preserving the access-check semantics.
        self.lkey = key
        self.rkey = key

    def contains(self, addr: int, length: int) -> bool:
        return self.addr <= addr and addr + length <= self.addr + self.length

    def write(self, data: bytes, offset: int = 0) -> None:
        """Host-side store into the region (no simulated cost)."""
        if offset < 0 or offset + len(data) > self.length:
            raise MemoryAccessError("MR host write out of bounds")
        self.pd.device.mem.write(self.addr + offset, data)

    def read(self, length: int, offset: int = 0) -> bytes:
        """Host-side load from the region (no simulated cost)."""
        if offset < 0 or offset + length > self.length:
            raise MemoryAccessError("MR host read out of bounds")
        return self.pd.device.mem.read(self.addr + offset, length)

    def charge_registration(self):
        """Coroutine: pay the one-time pinning cost (used at engine setup)."""
        yield self.pd.device.node.cpu.compute(
            self.pd.device.cost.reg_mr_time(self.length))

    def deregister(self) -> None:
        self.pd.device._dereg_mr(self)


class PD:
    """Protection domain: the registration scope for MRs and QPs."""

    def __init__(self, device: "Device", handle: int):
        self.device = device
        self.handle = handle

    def reg_mr(self, length: int, addr: Optional[int] = None) -> MR:
        """Register ``length`` bytes (freshly allocated unless ``addr`` given).

        Registration is free of simulated time here because every protocol in
        this codebase registers at setup; use :meth:`MR.charge_registration`
        where setup cost matters.
        """
        dev = self.device
        if addr is None:
            addr = dev.mem.alloc(length)
        key = next(dev._keys)
        mr = MR(self, addr, length, key)
        dev._mrs[key] = mr
        dev.registered_bytes += length
        return mr


class Device:
    """One node's RDMA NIC (an ibv_context equivalent)."""

    def __init__(self, sim: Simulator, node: Node, fabric: Fabric,
                 cost: Optional[CostModel] = None):
        self.sim = sim
        self.node = node
        self.fabric = fabric
        self.cost = cost or CostModel()
        self.port: Port = fabric.port_of(node)
        self.mem = Memory()
        self._mrs: Dict[int, MR] = {}
        self._qps: Dict[int, "QP"] = {}
        self._keys = itertools.count(0x1000)
        self._qpn = itertools.count(1)
        self._pdn = itertools.count(1)
        self._listeners: Dict[int, "object"] = {}  # cm.Listener
        self._watches: list["MemWatch"] = []
        # -- instrumentation (read by ablation benches) --
        self.registered_bytes = 0
        self.doorbells = 0
        self.wrs_posted = 0
        # Metrics instruments, captured once (None = metrics disabled).
        reg = obs.current()
        if reg is not None:
            self._m_doorbells = reg.counter("verbs.doorbells")
            self._m_wrs = reg.counter("verbs.wrs_posted")
        else:
            self._m_doorbells = None
            self._m_wrs = None
        node.nic = self
        node.on_crash(self.fail)

    def fail(self) -> None:
        """Node crash: error every QP (flushing both sides) and drop listeners.

        Registered memory and its contents are *not* cleared -- a crashed
        node's RAM is gone in reality, but nothing can reach it while the
        node is down, and restore() semantics here are "process restarted",
        which re-registers anyway.  Idempotent.
        """
        for qp in list(self._qps.values()):
            qp.to_error()
            if qp.peer is not None:
                qp.peer.to_error()
        self._listeners.clear()

    # -- factories ------------------------------------------------------------
    def alloc_pd(self) -> PD:
        return PD(self, next(self._pdn))

    def create_cq(self, capacity: int = 4096,
                  channel: Optional[CompChannel] = None) -> CQ:
        return CQ(self.sim, self, capacity, channel)

    def create_comp_channel(self) -> CompChannel:
        return CompChannel(self.sim)

    def create_qp(self, pd: PD, send_cq: CQ, recv_cq: CQ,
                  srq: Optional["SRQ"] = None) -> "QP":
        from repro.verbs.qp import QP  # local import breaks the cycle
        qp = QP(self, pd, next(self._qpn), send_cq, recv_cq, srq)
        self._qps[qp.qp_num] = qp
        return qp

    def create_srq(self) -> "SRQ":
        from repro.verbs.qp import SRQ
        return SRQ(self)

    # -- lookup helpers used by the datapath ----------------------------------
    def mr_for_rkey(self, rkey: int, addr: int, length: int) -> MR:
        mr = self._mrs.get(rkey)
        if mr is None:
            raise MemoryAccessError(f"unknown rkey {rkey:#x}")
        if not mr.contains(addr, length):
            raise MemoryAccessError(
                f"remote access [{addr:#x},+{length}) outside MR "
                f"[{mr.addr:#x},+{mr.length})")
        return mr

    def check_lkey(self, lkey: int, addr: int, length: int) -> MR:
        mr = self._mrs.get(lkey)
        if mr is None:
            raise MemoryAccessError(f"unknown lkey {lkey:#x}")
        if not mr.contains(addr, length):
            raise MemoryAccessError("local sge outside MR bounds")
        return mr

    def _dereg_mr(self, mr: MR) -> None:
        if self._mrs.pop(mr.rkey, None) is not None:
            self.registered_bytes -= mr.length

    # -- cost helpers -----------------------------------------------------------
    def cpu_time(self, base: float, numa_local: bool = True) -> float:
        """Scale a CPU-side NIC interaction by the NUMA penalty if remote."""
        return base if numa_local else base * self.cost.numa_remote_penalty

    def memcpy(self, nbytes: int, numa_local: bool = True):
        """Coroutine: charge a CPU-side copy of ``nbytes``."""
        yield self.node.cpu.compute(
            self.cpu_time(self.cost.memcpy_time(nbytes), numa_local))

    # -- memory polling support -------------------------------------------------
    def watch_memory(self, addr: int, length: int) -> "MemWatch":
        """Register interest in inbound RDMA WRITEs touching a range.

        This models *memory polling* (HERD/FaRM/RFP servers spin on the tail
        byte of a request slot): the watch's gate fires the instant an inbound
        WRITE lands in the range -- the moment a real polling loop would see
        the data.  The watcher is responsible for holding a CPU spin token
        while it "polls"; the gate is only the simulation's wakeup channel.
        """
        w = MemWatch(self, addr, length)
        self._watches.append(w)
        return w

    def _notify_write(self, addr: int, length: int) -> None:
        for w in self._watches:
            if addr < w.addr + w.length and w.addr < addr + length:
                w.gate.fire()


class MemWatch:
    """Handle for a registered memory watch (see Device.watch_memory)."""

    def __init__(self, device: "Device", addr: int, length: int):
        from repro.sim.sync import Gate
        self.device = device
        self.addr = addr
        self.length = length
        self.gate = Gate(device.sim)

    def cancel(self) -> None:
        try:
            self.device._watches.remove(self)
        except ValueError:
            pass
