"""Simulated RDMA verbs.

This package substitutes for libibverbs + a ConnectX-5 HCA (the hardware the
paper's testbed uses, which is unavailable here).  It exposes the verbs
programming model -- protection domains, memory regions with lkey/rkey,
queue pairs, completion queues with busy/event polling, work requests
(SEND / RDMA WRITE / RDMA READ / WRITE_WITH_IMM, chained WR lists) -- and
charges each operation its cost on the simulated CPU, PCIe, NIC, and wire,
per :class:`~repro.verbs.costmodel.CostModel`.

The protocols of the paper's Section 3 (Figure 3) are written against this
API exactly as they would be against real verbs.
"""

from repro.verbs.costmodel import CostModel
from repro.verbs.errors import (
    CQOverflowError,
    MemoryAccessError,
    QPStateError,
    VerbsError,
    WCError,
)
from repro.verbs.memory import Memory
from repro.verbs.types import (
    Opcode,
    QPState,
    RecvWR,
    SendWR,
    Sge,
    WC,
    WCOpcode,
    WCStatus,
)
from repro.verbs.device import Device, MR, PD
from repro.verbs.cq import CQ, CompChannel
from repro.verbs.qp import QP, SRQ
from repro.verbs.cm import ConnectionRequest, Listener

__all__ = [
    "CQ",
    "CQOverflowError",
    "CompChannel",
    "ConnectionRequest",
    "CostModel",
    "Device",
    "Listener",
    "MR",
    "Memory",
    "MemoryAccessError",
    "Opcode",
    "PD",
    "QP",
    "QPState",
    "QPStateError",
    "RecvWR",
    "SRQ",
    "SendWR",
    "Sge",
    "VerbsError",
    "WC",
    "WCError",
    "WCOpcode",
    "WCStatus",
]
