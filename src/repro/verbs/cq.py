"""Completion queues and the two polling disciplines.

The paper's protocol analysis (Section 3.2) hinges on the busy-vs-event
polling tradeoff:

* **busy polling** (:meth:`CQ.wait_busy`) -- the thread stays runnable the
  whole time (a *spinner* on the node's CPU scheduler), sees completions
  with zero notification latency, but burns a core: with more pollers than
  cores, everyone slows down (Figure 5's over-subscription collapse);
* **event polling** (:meth:`CQ.wait_event`) -- the thread blocks on a
  completion channel, pays interrupt + wakeup latency (~3 us) plus re-arm
  CPU, but consumes no CPU while idle, so it scales.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Deque, List

from repro import obs
from repro.sim.core import Simulator
from repro.sim.sync import Gate
from repro.verbs.errors import CQOverflowError
from repro.verbs.types import WC

if TYPE_CHECKING:  # pragma: no cover
    from repro.verbs.device import Device

__all__ = ["CQ", "CompChannel", "PollMode"]


class PollMode(enum.Enum):
    BUSY = "busy"
    EVENT = "event"


class CompChannel:
    """Completion event channel (ibv_comp_channel): a wakeup broadcast."""

    def __init__(self, sim: Simulator):
        self.gate = Gate(sim)

    def wait(self):
        return self.gate.wait()

    def fire(self) -> None:
        self.gate.fire()


class CQ:
    """A completion queue bound to one device (and thus one node's CPU)."""

    def __init__(self, sim: Simulator, device: "Device", capacity: int = 4096,
                 channel: CompChannel | None = None):
        self.sim = sim
        self.device = device
        self.capacity = capacity
        self.channel = channel or CompChannel(sim)
        self._q: Deque[WC] = deque()
        self._gate = Gate(sim)  # fires on every push; used by busy pollers
        self._armed = False
        self.completions_total = 0
        # Instruments captured once at construction (None = metrics off:
        # the push/wait hot paths pay a single attribute check).
        reg = obs.current()
        if reg is not None:
            self._m_completions = reg.counter("cq.completions")
            self._m_wait = {PollMode.BUSY: reg.counter("cq.wait_busy"),
                            PollMode.EVENT: reg.counter("cq.wait_event")}
            self._m_occupancy = {
                PollMode.BUSY: reg.histogram("cq.busy.occupancy",
                                             lowest=1.0),
                PollMode.EVENT: reg.histogram("cq.event.occupancy",
                                              lowest=1.0)}
        else:
            self._m_completions = None
            self._m_wait = None
            self._m_occupancy = None

    # -- NIC side -----------------------------------------------------------
    def push(self, wc: WC) -> None:
        if len(self._q) >= self.capacity:
            raise CQOverflowError(
                f"CQ overflow (capacity {self.capacity}); the protocol is "
                "generating completions faster than it polls them")
        self._q.append(wc)
        self.completions_total += 1
        if self._m_completions is not None:
            self._m_completions.inc()
        self._gate.fire()
        if self._armed:
            self._armed = False
            self.channel.fire()

    # -- host side ------------------------------------------------------------
    def poll(self, max_wc: int = 16) -> List[WC]:
        """Non-blocking poll: pop up to ``max_wc`` completions (no sim time)."""
        out = []
        while self._q and len(out) < max_wc:
            out.append(self._q.popleft())
        return out

    def req_notify(self) -> None:
        """Arm the completion channel for the next completion."""
        self._armed = True

    def wait_busy(self, max_wc: int = 16):
        """Coroutine: busy-poll until at least one completion is available."""
        cost = self.device.cost
        cpu = self.device.node.cpu
        wcs = self.poll(max_wc)
        if not wcs:
            tok = cpu.spin_begin()
            try:
                while True:
                    yield self._gate.wait()
                    wcs = self.poll(max_wc)
                    if wcs:
                        break
            finally:
                cpu.spin_end(tok)
        yield cpu.compute(cost.poll_cpu)
        return wcs

    def wait_event(self, max_wc: int = 16):
        """Coroutine: block on the completion channel until completions arrive."""
        cost = self.device.cost
        cpu = self.device.node.cpu
        while True:
            wcs = self.poll(max_wc)
            if wcs:
                yield cpu.compute(cost.poll_cpu + cost.rearm_cpu)
                return wcs
            self.req_notify()
            yield self.channel.wait()
            yield self.sim.timeout(cost.interrupt_latency)

    def wait(self, mode: PollMode, max_wc: int = 16):
        """Coroutine: poll under the given discipline."""
        if self._m_wait is not None:
            # Poll-mode occupancy: how deep the CQ already is when a
            # poller arrives (0 = it will block/spin for the completion).
            self._m_wait[mode].inc()
            self._m_occupancy[mode].record(float(len(self._q)))
        ap = self.sim.active_process
        ctx = ap.trace_ctx if ap is not None else None
        t0 = self.sim.now
        if mode is PollMode.BUSY:
            wcs = yield from self.wait_busy(max_wc)
        else:
            wcs = yield from self.wait_event(max_wc)
        if ctx is not None:
            ctx.stage("cq_wait", t0, self.sim.now, mode=mode.value,
                      wcs=len(wcs))
        return wcs

    def __len__(self) -> int:
        return len(self._q)
