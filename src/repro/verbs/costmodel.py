"""NIC / PCIe / CPU cost constants for the simulated RDMA device.

Every constant has a documented provenance; together they are calibrated so
that the protocol characterization of the paper's Section 3 (Figures 4-5)
reproduces in *shape*: small-message one-sided latency ~2 us, chained WRs
saving one MMIO, event polling costing ~3 us extra latency but scaling past
core over-subscription, and outbound one-sided issuance costing the
initiator more than serving an inbound op costs the responder (the RFP
asymmetry [Su et al., EuroSys'17]).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import us, ns

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """All tunable device constants, in seconds / bytes-per-second."""

    # -- CPU-side verbs costs --------------------------------------------
    #: MMIO doorbell write for one ibv_post_send call (one per *call*, not
    #: per WR -- this is exactly the saving of Chained-Write-Send, Fig. 3c;
    #: ~200-400 ns is the well-known cost of a posted MMIO write over PCIe
    #: [Kalia et al., ATC'16].
    doorbell_cpu: float = 250 * ns
    #: Building one WQE in host memory (descriptor setup) per WR.
    wqe_build_cpu: float = 80 * ns
    #: ibv_post_recv is cheaper: no MMIO on modern HCAs (owned-bit update).
    post_recv_cpu: float = 60 * ns
    #: One ibv_poll_cq call that returns >=1 completion.
    poll_cpu: float = 100 * ns
    #: Re-arming the completion channel (ibv_req_notify_cq + ack).
    rearm_cpu: float = 300 * ns
    #: Interrupt + scheduler wakeup latency for event-based polling; [51]
    #: (Roediger et al., VLDB'15) reports event polling trading ~ us-scale
    #: latency for ~4% CPU.  1.8 us assumes a tuned kernel (no C-states,
    #: pinned IRQ affinity), which the paper's testbed setup implies.
    interrupt_latency: float = 1.8 * us

    # -- NIC engine occupancy ---------------------------------------------
    #: NIC processing (WQE fetch via DMA, doorbell decode) per send WR.
    wqe_nic: float = 150 * ns
    #: NIC-side handling of one inbound SEND/WRITE (receive pipeline).
    rx_nic: float = 100 * ns
    #: Responder-side NIC service of an inbound RDMA READ request (DMA read
    #: of local memory + response injection).  Pure hardware, no CPU.
    read_service_nic: float = 200 * ns
    #: Size of the wire request message for an RDMA READ.
    read_request_bytes: int = 16

    # -- memory ------------------------------------------------------------
    #: CPU copy rate (user buffer <-> registered slot), single core.
    memcpy_rate: float = 12e9
    #: Fixed cost per memcpy call.
    memcpy_base: float = 40 * ns
    #: Memory registration: page-table pinning is expensive; ~2 us base +
    #: per-4KiB-page cost (why protocols pre-register pools).
    reg_mr_base: float = 2.0 * us
    reg_mr_per_page: float = 200 * ns

    # -- NUMA --------------------------------------------------------------
    #: Multiplier on CPU-side NIC interaction (doorbells, memcpy) when the
    #: acting thread is NOT bound to the NIC's NUMA node.
    numa_remote_penalty: float = 1.35

    # -- reliability / flow control ----------------------------------------
    #: Receiver-not-ready retry timer (SEND arriving with no recv WQE).
    rnr_timer: float = 10 * us
    rnr_retry_limit: int = 7
    #: RC transport retry timer: how long the requester NIC waits before
    #: retransmitting an unacknowledged packet (the local-ACK timeout; real
    #: HCAs use 4.096us * 2^timeout, scaled down here so a link flap costs
    #: hundreds of microseconds of sim time, not hundreds of milliseconds).
    transport_retry_timeout: float = 50 * us
    #: How many transport retries before the WR completes with
    #: IBV_WC_RETRY_EXC_ERR and the QP moves to ERROR (ibv retry_cnt).
    transport_retry_limit: int = 7

    def memcpy_time(self, nbytes: int) -> float:
        return self.memcpy_base + nbytes / self.memcpy_rate

    def reg_mr_time(self, nbytes: int) -> float:
        pages = (nbytes + 4095) // 4096
        return self.reg_mr_base + pages * self.reg_mr_per_page
