"""Work requests, completions, and state enums -- the verbs vocabulary."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "Opcode",
    "QPState",
    "RecvWR",
    "SendWR",
    "Sge",
    "WC",
    "WCOpcode",
    "WCStatus",
]


class Opcode(enum.Enum):
    """Send-side work request opcodes (ibv_wr_opcode subset used by RPC)."""

    SEND = "send"
    RDMA_WRITE = "rdma_write"
    RDMA_WRITE_WITH_IMM = "rdma_write_with_imm"
    RDMA_READ = "rdma_read"


class WCOpcode(enum.Enum):
    """Completion opcodes (ibv_wc_opcode subset)."""

    SEND = "send"
    RDMA_WRITE = "rdma_write"
    RDMA_READ = "rdma_read"
    RECV = "recv"
    RECV_RDMA_WITH_IMM = "recv_rdma_with_imm"


class WCStatus(enum.Enum):
    SUCCESS = "success"
    LOC_LEN_ERR = "loc_len_err"          # recv buffer too small for SEND
    REM_ACCESS_ERR = "rem_access_err"    # bad rkey / out-of-bounds remote op
    RNR_RETRY_EXC_ERR = "rnr_retry_exc"  # receiver-not-ready retries exhausted
    RETRY_EXC_ERR = "retry_exc"          # transport retries exhausted (link/peer dead)
    WR_FLUSH_ERR = "wr_flush_err"        # QP moved to error state

    @property
    def is_error(self) -> bool:
        return self is not WCStatus.SUCCESS

    @property
    def retryable(self) -> bool:
        """Whether a fresh connection could plausibly clear this status.

        RNR exhaustion and transport-retry exhaustion are congestion/link
        conditions that pass; flushes mean the QP died and a reconnect is
        required but sensible.  Access and length errors are programming
        bugs -- retrying cannot fix them.
        """
        return self in (WCStatus.RNR_RETRY_EXC_ERR, WCStatus.RETRY_EXC_ERR,
                        WCStatus.WR_FLUSH_ERR)


class QPState(enum.Enum):
    RESET = "reset"
    INIT = "init"
    RTR = "rtr"    # ready to receive
    RTS = "rts"    # ready to send
    ERROR = "error"


@dataclass(frozen=True)
class Sge:
    """Scatter/gather element: a slice of a registered memory region."""

    addr: int
    length: int
    lkey: int


@dataclass
class SendWR:
    """Send-side work request.

    ``next`` chains WRs into one doorbell (Chained-Write-Send, Fig. 3c).
    ``remote_addr``/``rkey`` are required for RDMA_{WRITE,READ}* opcodes.
    """

    opcode: Opcode
    sge: Sge
    wr_id: int = 0
    remote_addr: int = 0
    rkey: int = 0
    imm: int = 0
    signaled: bool = True
    next: Optional["SendWR"] = None

    def chain_length(self) -> int:
        n, wr = 0, self
        while wr is not None:
            n += 1
            wr = wr.next
        return n


@dataclass
class RecvWR:
    """Receive-side work request: a buffer a SEND/WRITE_WITH_IMM may land in."""

    sge: Sge
    wr_id: int = 0


@dataclass(frozen=True)
class WC:
    """Work completion."""

    wr_id: int
    opcode: WCOpcode
    status: WCStatus = WCStatus.SUCCESS
    byte_len: int = 0
    imm: int = 0
    qp_num: int = 0
    #: For RECV completions: the address the payload landed at.
    addr: int = 0

    @property
    def ok(self) -> bool:
        return self.status is WCStatus.SUCCESS
