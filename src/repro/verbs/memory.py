"""Flat per-node virtual memory with a segment allocator.

Memory regions (MRs) are windows over this space; RDMA ops move real bytes
between nodes' Memory objects, so payload contents survive end-to-end --
which lets the upper layers (Thrift serialization, HatKV) be tested for
actual data correctness, not just timing.

Each allocation is a *segment* whose backing bytearray grows on first write
(reads beyond the written extent return zeros, like freshly mapped pages).
This keeps large pre-registered-but-idle buffer pools -- e.g. 512
connections x 512 KiB eager rings in the throughput benchmarks -- at near
zero host RAM.
"""

from __future__ import annotations

import bisect
from typing import Dict, List

from repro.verbs.errors import MemoryAccessError

__all__ = ["Memory"]

_ALIGN = 64  # cache-line alignment for all allocations


class _Segment:
    __slots__ = ("base", "size", "data")

    def __init__(self, base: int, size: int):
        self.base = base
        self.size = size
        self.data = bytearray()  # grows to the high-water written offset

    def write(self, off: int, payload: bytes) -> None:
        end = off + len(payload)
        if end > len(self.data):
            self.data.extend(bytearray(end - len(self.data)))
        self.data[off:end] = payload

    def read(self, off: int, length: int) -> bytes:
        end = off + length
        have = self.data[off:min(end, len(self.data))]
        if len(have) < length:
            return bytes(have) + bytes(length - len(have))
        return bytes(have)


class Memory:
    """Auto-growing byte store; allocations are bounds-checked segments."""

    def __init__(self, initial: int = 0):
        # ``initial`` is accepted for API compatibility; segments are lazy.
        self._brk = _ALIGN  # keep address 0 invalid, like NULL
        self._bases: List[int] = []
        self._segs: Dict[int, _Segment] = {}

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the base address."""
        if size <= 0:
            raise ValueError(f"alloc size must be positive, got {size}")
        addr = self._brk
        self._brk += (size + _ALIGN - 1) // _ALIGN * _ALIGN
        seg = _Segment(addr, size)
        bisect.insort(self._bases, addr)
        self._segs[addr] = seg
        return addr

    def free(self, addr: int) -> None:
        if addr not in self._segs:
            raise MemoryAccessError(f"free of unallocated address {addr:#x}")
        del self._segs[addr]
        self._bases.remove(addr)

    @property
    def live_bytes(self) -> int:
        return sum(s.size for s in self._segs.values())

    @property
    def resident_bytes(self) -> int:
        """Actually materialized (written) bytes -- a host-RAM gauge."""
        return sum(len(s.data) for s in self._segs.values())

    def _segment(self, addr: int, length: int) -> _Segment:
        if length < 0:
            raise MemoryAccessError("negative access length")
        i = bisect.bisect_right(self._bases, addr) - 1
        if i >= 0:
            seg = self._segs.get(self._bases[i])
            if seg is not None and addr + length <= seg.base + seg.size:
                return seg
        raise MemoryAccessError(
            f"access [{addr:#x}, {addr + length:#x}) outside any allocation")

    def write(self, addr: int, data: bytes) -> None:
        seg = self._segment(addr, len(data))
        seg.write(addr - seg.base, data)

    def read(self, addr: int, length: int) -> bytes:
        seg = self._segment(addr, length)
        return seg.read(addr - seg.base, length)

    def fill(self, addr: int, length: int, byte: int = 0) -> None:
        seg = self._segment(addr, length)
        seg.write(addr - seg.base, bytes([byte]) * length)
