"""Queue pairs (RC) and the NIC datapath.

Timing model per work request (all constants from
:class:`~repro.verbs.costmodel.CostModel`):

* ``post_send`` charges the calling thread CPU for WQE construction per WR
  plus **one** MMIO doorbell per call -- chained WRs (``wr.next``) share the
  doorbell, which is Chained-Write-Send's whole advantage (Fig. 3c);
* the NIC then occupies the sender's TX port for WQE processing + wire
  serialization, the wire for the propagation latency, and the receiver's RX
  port for arrival serialization -- so a busy server NIC is a real bottleneck
  under incast;
* RDMA READ runs entirely on the two NICs: a small request message, the
  responder's NIC service time (no responder CPU), and the data on the
  reverse path.  This is what makes server-bypass designs (Pilaf/FaRM/RFP)
  cheap for the server and is the asymmetry the RFP paper exploits;
* send-side completions are delivered after the ACK propagation, receive-side
  completions when the last byte has landed.

Error semantics follow RC: remote access faults and exhausted RNR retries
complete the offending WR with an error status and move both QPs to ERROR,
flushing pending receive WQEs.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional

from repro.verbs.errors import MemoryAccessError, QPStateError, VerbsError
from repro.verbs.types import (
    Opcode,
    QPState,
    RecvWR,
    SendWR,
    WC,
    WCOpcode,
    WCStatus,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.verbs.cq import CQ
    from repro.verbs.device import Device, PD

__all__ = ["QP", "SRQ", "connect_pair"]

_SEND_WC = {
    Opcode.SEND: WCOpcode.SEND,
    Opcode.RDMA_WRITE: WCOpcode.RDMA_WRITE,
    Opcode.RDMA_WRITE_WITH_IMM: WCOpcode.RDMA_WRITE,
    Opcode.RDMA_READ: WCOpcode.RDMA_READ,
}


class SRQ:
    """Shared receive queue: one recv-WQE pool serving many QPs."""

    def __init__(self, device: "Device"):
        self.device = device
        self._queue: Deque[RecvWR] = deque()

    def post_recv(self, rwr: RecvWR):
        """Coroutine: post a receive buffer to the shared queue."""
        self.device.check_lkey(rwr.sge.lkey, rwr.sge.addr, rwr.sge.length)
        yield self.device.node.cpu.compute(self.device.cost.post_recv_cpu)
        self._queue.append(rwr)

    def _take(self) -> Optional[RecvWR]:
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class QP:
    """A reliable-connected queue pair."""

    def __init__(self, device: "Device", pd: "PD", qp_num: int,
                 send_cq: "CQ", recv_cq: "CQ", srq: Optional[SRQ] = None):
        self.device = device
        self.pd = pd
        self.qp_num = qp_num
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.srq = srq
        self.state = QPState.RESET
        self.peer: Optional["QP"] = None
        self._recv_queue: Deque[RecvWR] = deque()
        #: doorbells rung by THIS QP -- lets a protocol endpoint attribute
        #: device-global doorbell counts to itself (per-protocol metrics)
        self.doorbells = 0

    # -- verbs calls (host side) ---------------------------------------------
    def post_recv(self, rwr: RecvWR):
        """Coroutine: post one receive WQE."""
        if self.state is QPState.ERROR:
            raise QPStateError("post_recv on QP in ERROR state")
        if self.srq is not None:
            raise QPStateError("QP uses an SRQ; post to the SRQ instead")
        self.device.check_lkey(rwr.sge.lkey, rwr.sge.addr, rwr.sge.length)
        yield self.device.node.cpu.compute(self.device.cost.post_recv_cpu)
        self._recv_queue.append(rwr)

    def post_send(self, wr: SendWR, numa_local: bool = True):
        """Coroutine: post a WR chain; one doorbell regardless of length."""
        if self.state is not QPState.RTS:
            raise QPStateError(f"post_send on QP in state {self.state.value}")
        if self.peer is None:
            raise QPStateError("QP has no connected peer")
        chain: List[SendWR] = []
        cursor: Optional[SendWR] = wr
        while cursor is not None:
            self._validate(cursor)
            chain.append(cursor)
            cursor = cursor.next
        cost = self.device.cost
        cpu_cost = self.device.cpu_time(
            cost.wqe_build_cpu * len(chain) + cost.doorbell_cpu, numa_local)
        yield self.device.node.cpu.compute(cpu_cost)
        self.device.doorbells += 1
        self.device.wrs_posted += len(chain)
        self.doorbells += 1
        if self.device._m_doorbells is not None:
            self.device._m_doorbells.inc()
            self.device._m_wrs.inc(len(chain))
        self.device.sim.process(self._nic_chain(chain),
                                name=f"nic-qp{self.qp_num}")

    def _validate(self, wr: SendWR) -> None:
        self.device.check_lkey(wr.sge.lkey, wr.sge.addr, wr.sge.length)
        if wr.opcode in (Opcode.RDMA_WRITE, Opcode.RDMA_WRITE_WITH_IMM,
                         Opcode.RDMA_READ) and wr.rkey == 0:
            raise VerbsError(f"{wr.opcode.value} WR requires an rkey")

    # -- state management -------------------------------------------------------
    def to_error(self) -> None:
        """Move to ERROR, flushing posted receive WQEs."""
        if self.state is QPState.ERROR:
            return
        self.state = QPState.ERROR
        while self._recv_queue:
            rwr = self._recv_queue.popleft()
            self.recv_cq.push(WC(rwr.wr_id, WCOpcode.RECV,
                                 WCStatus.WR_FLUSH_ERR, qp_num=self.qp_num))
        if self.srq is not None:
            # SRQ WQEs belong to the pool, not this QP, so there is nothing
            # of ours to flush -- but the owner of the shared CQ still needs
            # to learn this connection died.  Real HCAs raise the
            # "last WQE reached" async event; the simulator models it as a
            # single flush WC carrying our qp_num on the shared recv CQ.
            self.recv_cq.push(WC(0, WCOpcode.RECV, WCStatus.WR_FLUSH_ERR,
                                 qp_num=self.qp_num))

    def _take_recv(self) -> Optional[RecvWR]:
        if self.srq is not None:
            return self.srq._take()
        return self._recv_queue.popleft() if self._recv_queue else None

    @property
    def recv_depth(self) -> int:
        return len(self.srq) if self.srq is not None else len(self._recv_queue)

    # -- NIC datapath -------------------------------------------------------------
    def _transport_guard(self):
        """Coroutine: RC transport retries against link faults.

        Models the requester NIC's local-ACK-timeout retransmission: while
        the path is inside a down window (or the packet is lost in a drop
        window, or the peer node has crashed), wait ``transport_retry_timeout``
        and try again, up to ``transport_retry_limit`` times.  Returns
        ``WCStatus.SUCCESS`` once the wire accepts the packet, or
        ``RETRY_EXC_ERR`` when the budget is exhausted.  Runs inside detached
        NIC processes, so faults are *returned* as statuses, never raised.
        """
        dev = self.device
        peer = self.peer
        assert peer is not None
        rnode = peer.device.node
        fabric = dev.fabric
        cost = dev.cost
        retries = 0
        while (not getattr(rnode, "up", True)
               or fabric.link_down(dev.node, rnode)
               or fabric.roll_drop(dev.node, rnode)):
            if retries >= cost.transport_retry_limit:
                dev.port.faults_seen += 1
                return WCStatus.RETRY_EXC_ERR
            retries += 1
            yield dev.sim.timeout(cost.transport_retry_timeout)
        return WCStatus.SUCCESS

    def _nic_chain(self, chain: List[SendWR]):
        """Process a WR chain.

        WRs *pipeline*: each WR's TX (wire serialization) happens in posting
        order on this process, but its remote phase (propagation, receiver
        processing, ACK) runs concurrently with the next WR's TX -- exactly
        how a real HCA streams a chain.  Receiver-side ordering is still
        guaranteed because the peer's RX port is a FIFO and propagation
        latency is constant.  Completions are reaped (and pushed) in posting
        order.
        """
        sim = self.device.sim
        # This process inherited the posting RPC's trace context; record one
        # "network" stage per WR, from TX start to ACK/last-byte completion
        # -- the real wire time, measured at the NIC.
        ap = sim.active_process
        ctx = ap.trace_ctx if ap is not None else None
        pending: List[tuple[SendWR, float, object]] = []
        for wr in chain:
            t_tx = sim.now
            if wr.opcode is Opcode.RDMA_READ:
                phase = self._nic_read(wr)
            else:
                payload = self.device.mem.read(wr.sge.addr, wr.sge.length)
                yield from self.device.port.tx.use(
                    self.device.cost.wqe_nic
                    + self.device.port.wire_time(wr.sge.length))
                self.device.port.bytes_sent += wr.sge.length
                self.device.port.messages_sent += 1
                phase = self._remote_phase(wr, payload)
            pending.append((wr, t_tx, self.device.sim.process(
                phase, name=f"wr-qp{self.qp_num}")))
        for wr, t_tx, proc in pending:
            status = yield proc
            if ctx is not None:
                ctx.stage("network", t_tx, sim.now,
                          opcode=wr.opcode.value, nbytes=wr.sge.length,
                          wc=status.name.lower())
            if status is not WCStatus.SUCCESS:
                # Errors always generate a completion, signaled or not.
                self.send_cq.push(WC(wr.wr_id, _SEND_WC[wr.opcode], status,
                                     qp_num=self.qp_num))
                self.to_error()
                if self.peer is not None:
                    self.peer.to_error()
                return
            if wr.signaled:
                self.send_cq.push(WC(wr.wr_id, _SEND_WC[wr.opcode],
                                     WCStatus.SUCCESS, byte_len=wr.sge.length,
                                     qp_num=self.qp_num))

    def _remote_phase(self, wr: SendWR, payload: bytes):
        dev = self.device
        cost = dev.cost
        peer = self.peer
        assert peer is not None
        rdev = peer.device
        sim = dev.sim
        n = wr.sge.length
        wire_latency = dev.fabric.params.wire_latency

        status = yield from self._transport_guard()
        if status is not WCStatus.SUCCESS:
            return status
        yield sim.timeout(wire_latency)
        yield from rdev.port.rx.use(rdev.port.wire_time(n) + cost.rx_nic)
        rdev.port.bytes_received += n

        if wr.opcode in (Opcode.RDMA_WRITE, Opcode.RDMA_WRITE_WITH_IMM):
            try:
                rdev.mr_for_rkey(wr.rkey, wr.remote_addr, n)
            except MemoryAccessError:
                return WCStatus.REM_ACCESS_ERR
            rdev.mem.write(wr.remote_addr, payload)
            rdev._notify_write(wr.remote_addr, n)

        if wr.opcode in (Opcode.SEND, Opcode.RDMA_WRITE_WITH_IMM):
            rwr, status = yield from self._claim_remote_recv()
            if status is not WCStatus.SUCCESS:
                return status
            assert rwr is not None
            if wr.opcode is Opcode.SEND:
                if n > rwr.sge.length:
                    peer.recv_cq.push(WC(rwr.wr_id, WCOpcode.RECV,
                                         WCStatus.LOC_LEN_ERR,
                                         qp_num=peer.qp_num))
                    return WCStatus.REM_ACCESS_ERR
                rdev.mem.write(rwr.sge.addr, payload)
                peer.recv_cq.push(WC(rwr.wr_id, WCOpcode.RECV,
                                     WCStatus.SUCCESS, byte_len=n,
                                     qp_num=peer.qp_num, addr=rwr.sge.addr))
            else:
                peer.recv_cq.push(WC(rwr.wr_id, WCOpcode.RECV_RDMA_WITH_IMM,
                                     WCStatus.SUCCESS, byte_len=n, imm=wr.imm,
                                     qp_num=peer.qp_num, addr=wr.remote_addr))

        # ACK propagation back to the sender NIC.
        yield sim.timeout(wire_latency)
        return WCStatus.SUCCESS

    def _claim_remote_recv(self):
        """Coroutine: take a recv WQE at the peer, honoring RNR retries."""
        peer = self.peer
        assert peer is not None
        cost = self.device.cost
        retries = 0
        while True:
            rwr = peer._take_recv()
            if rwr is not None:
                return rwr, WCStatus.SUCCESS
            if retries >= cost.rnr_retry_limit:
                return None, WCStatus.RNR_RETRY_EXC_ERR
            retries += 1
            yield self.device.sim.timeout(cost.rnr_timer)

    def _nic_read(self, wr: SendWR):
        dev = self.device
        cost = dev.cost
        peer = self.peer
        assert peer is not None
        rdev = peer.device
        sim = dev.sim
        n = wr.sge.length
        wire_latency = dev.fabric.params.wire_latency
        req = cost.read_request_bytes

        status = yield from self._transport_guard()
        if status is not WCStatus.SUCCESS:
            return status
        # Request message to the responder NIC.
        yield from dev.port.tx.use(cost.wqe_nic + dev.port.wire_time(req))
        yield sim.timeout(wire_latency)
        # Responder NIC services the READ in hardware: validate, DMA-read
        # local memory, inject the response.  No responder CPU involvement.
        yield from rdev.port.rx.use(rdev.port.wire_time(req) + cost.read_service_nic)
        try:
            rdev.mr_for_rkey(wr.rkey, wr.remote_addr, n)
        except MemoryAccessError:
            yield sim.timeout(wire_latency)  # NAK comes back
            return WCStatus.REM_ACCESS_ERR
        payload = rdev.mem.read(wr.remote_addr, n)
        yield from rdev.port.tx.use(rdev.port.wire_time(n))
        rdev.port.bytes_sent += n
        rdev.port.messages_sent += 1
        yield sim.timeout(wire_latency)
        yield from dev.port.rx.use(dev.port.wire_time(n))
        dev.port.bytes_received += n
        dev.mem.write(wr.sge.addr, payload)
        return WCStatus.SUCCESS


def connect_pair(a: QP, b: QP) -> None:
    """Directly wire two QPs RTS<->RTS (test/bench helper; production code
    goes through :mod:`repro.verbs.cm`)."""
    if a.peer is not None or b.peer is not None:
        raise QPStateError("QP already connected")
    a.peer = b
    b.peer = a
    a.state = QPState.RTS
    b.state = QPState.RTS
