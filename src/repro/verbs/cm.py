"""Connection management: the rdma_cm equivalent.

Connection establishment exchanges QP numbers and user ``private_data``
(protocols use it to ship pre-registered buffer addresses and rkeys, exactly
as real systems piggyback setup metadata on rdma_cm events).

Timing: a fixed setup cost plus three wire round trips (REQ/REP/RTU), which
is irrelevant to the steady-state benchmarks but keeps connection-heavy
tests honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.cluster import Node
from repro.sim.core import Event
from repro.sim.sync import Store
from repro.sim.units import us
from repro.verbs.device import Device
from repro.verbs.errors import VerbsError
from repro.verbs.qp import QP
from repro.verbs.types import QPState

__all__ = ["ConnectionRequest", "Listener", "connect", "listen"]

#: CM processing cost outside the wire trips (context setup, QP transitions).
_CM_SETUP = 25 * us


@dataclass
class ConnectionRequest:
    """A pending inbound connection seen by the passive side."""

    listener: "Listener"
    client_qp: QP
    private_data: bytes
    _reply: Event = field(repr=False, default=None)  # type: ignore[assignment]

    def accept(self, server_qp: QP, private_data: bytes = b""):
        """Coroutine: complete the handshake with our QP and response data."""
        if server_qp.peer is not None:
            raise VerbsError("accept with an already-connected QP")
        sim = server_qp.device.sim
        wire = server_qp.device.fabric.params.wire_latency
        server_qp.peer = self.client_qp
        server_qp.state = QPState.RTS
        # REP + RTU trips.
        yield sim.timeout(2 * wire)
        self.client_qp.peer = server_qp
        self.client_qp.state = QPState.RTS
        self._reply.succeed(private_data)

    def reject(self, reason: str = "rejected"):
        """Coroutine: refuse the connection."""
        sim = self.listener.device.sim
        yield sim.timeout(self.listener.device.fabric.params.wire_latency)
        self._reply.fail(ConnectionRefusedError(reason))


class Listener:
    """A passive-side CM endpoint bound to (node, service_id)."""

    def __init__(self, device: Device, service_id: int):
        self.device = device
        self.service_id = service_id
        self._backlog: Store = Store(device.sim)

    def accept(self):
        """Event: fires with the next :class:`ConnectionRequest`."""
        return self._backlog.get()

    def close(self) -> None:
        self.device._listeners.pop(self.service_id, None)


def listen(device: Device, service_id: int) -> Listener:
    if service_id in device._listeners:
        raise VerbsError(
            f"service_id {service_id} already bound on {device.node.name}")
    lst = Listener(device, service_id)
    device._listeners[service_id] = lst
    return lst


def connect(qp: QP, remote: Node, service_id: int, private_data: bytes = b""):
    """Coroutine: active-side connect.

    Returns the passive side's private_data once the handshake completes.
    """
    if qp.peer is not None:
        raise VerbsError("connect with an already-connected QP")
    if not getattr(remote, "up", True):
        raise ConnectionRefusedError(f"{remote.name} is down")
    rdev: Optional[Device] = remote.nic
    if rdev is None:
        raise VerbsError(f"no RDMA device on {remote.name}")
    lst: Optional[Listener] = rdev._listeners.get(service_id)
    if lst is None:
        raise ConnectionRefusedError(
            f"no listener for service_id {service_id} on {remote.name}")
    sim = qp.device.sim
    yield sim.timeout(_CM_SETUP + qp.device.fabric.params.wire_latency)  # REQ
    reply = Event(sim)
    lst._backlog.put(ConnectionRequest(lst, qp, private_data, reply))
    return (yield reply)
