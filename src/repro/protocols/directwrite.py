"""Direct-write protocols: pre-known remote buffers (Fig. 3b, 3c, 3f).

All three variants WRITE the payload (with a 32-byte in-buffer header)
directly into a per-connection buffer the peer registered and advertised at
connection time; they differ only in how the peer learns the data is there:

* **Direct-Write-Send** -- a separate SEND notify: two ibv_post_send calls,
  hence two MMIO doorbells per message;
* **Chained-Write-Send** -- WRITE and SEND chained into one post call: one
  doorbell (the optimization of [25, 36, 37]);
* **Direct-WriteIMM** -- a single RDMA WRITE_WITH_IMM: one WR carrying both
  data and notification (the paper's best small-message protocol).

The cost of the family (Section 4.3): the remote buffer is pinned for the
lifetime of the connection and sized for the largest message, so registered
memory grows with connection count -- visible in ``device.registered_bytes``
and penalized by the ``res_util`` hint.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.protocols.base import (
    HDR_BYTES,
    K_NOTIFY,
    ProtoConfig,
    ProtocolError,
    RpcClient,
    RpcServer,
    check_wc,
    pack_ctrl,
    register_protocol,
    unpack_ctrl,
)
from repro.verbs.device import Device, MR, PD
from repro.verbs.qp import QP
from repro.verbs.types import Opcode, RecvWR, SendWR, Sge, WCOpcode

__all__ = ["DirectWriteEndpoint"]

#: blob exchanged via CM private_data: inbuf addr + rkey.
_BLOB = struct.Struct("<QI")

# Notify flavors.
F_SEPARATE = "separate"   # WRITE, then SEND (two doorbells)
F_CHAINED = "chained"     # WRITE -> SEND chained (one doorbell)
F_IMM = "imm"             # WRITE_WITH_IMM (one WR, imm carries the length)


class DirectWriteEndpoint:
    """One side of a direct-write connection."""

    def __init__(self, device: Device, pd: PD, qp: QP, cfg: ProtoConfig,
                 flavor: str):
        if flavor not in (F_SEPARATE, F_CHAINED, F_IMM):
            raise ValueError(f"unknown direct-write flavor {flavor!r}")
        self.device = device
        self.pd = pd
        self.qp = qp
        self.cfg = cfg
        self.flavor = flavor
        self._seq = 0
        self._rseq = 0
        # One wire slot per in-flight message: slot k serves sequence
        # numbers k (mod slots), so a window of cfg.window messages never
        # overlaps in either peer's buffers.  window=1 (the default)
        # collapses to the classic single-slot geometry, byte for byte.
        self.slots = max(1, cfg.window)
        self._stride = HDR_BYTES + cfg.max_msg
        # Inbound message buffer, advertised to the peer.
        self.inbuf = pd.reg_mr(self.slots * self._stride)
        # Staging for outbound WRITE sources + the tiny notify messages.
        self._staging = pd.reg_mr(self.slots * self._stride)
        self._notify = pd.reg_mr(self.slots * HDR_BYTES)
        self.peer_addr = 0
        self.peer_rkey = 0

    def blob(self) -> bytes:
        return _BLOB.pack(self.inbuf.addr, self.inbuf.rkey)

    def set_peer(self, blob: bytes) -> None:
        self.peer_addr, self.peer_rkey = _BLOB.unpack_from(blob)

    def setup(self):
        """Coroutine: pre-post the notify receive ring.

        For the IMM flavor the ring WQEs are zero-length placeholders (the
        payload never touches them); for SEND flavors they carry the 32-byte
        notify message.
        """
        self._ring = [self.pd.reg_mr(HDR_BYTES)
                      for _ in range(self.cfg.ring_slots)]
        for i, mr in enumerate(self._ring):
            yield from self.qp.post_recv(
                RecvWR(Sge(mr.addr, mr.length, mr.lkey), wr_id=i))

    # -- send ---------------------------------------------------------------
    def send_msg(self, data: bytes):
        """Coroutine: WRITE header+payload to the peer's inbuf, then notify."""
        self._seq += 1
        seq = self._seq
        off = ((seq - 1) % self.slots) * self._stride
        n = len(data)
        yield from self.device.memcpy(n, self.cfg.numa_local)
        self._staging.write(pack_ctrl(K_NOTIFY, seq, n) + data, offset=off)
        total = HDR_BYTES + n
        if self.flavor == F_IMM:
            yield from self.qp.post_send(
                SendWR(Opcode.RDMA_WRITE_WITH_IMM,
                       Sge(self._staging.addr + off, total,
                           self._staging.lkey),
                       remote_addr=self.peer_addr + off, rkey=self.peer_rkey,
                       imm=seq, signaled=False),
                numa_local=self.cfg.numa_local)
            return
        write = SendWR(Opcode.RDMA_WRITE,
                       Sge(self._staging.addr + off, total,
                           self._staging.lkey),
                       remote_addr=self.peer_addr + off, rkey=self.peer_rkey,
                       signaled=False)
        noff = ((seq - 1) % self.slots) * HDR_BYTES
        self._notify.write(pack_ctrl(K_NOTIFY, seq, n), offset=noff)
        notify = SendWR(Opcode.SEND,
                        Sge(self._notify.addr + noff, HDR_BYTES,
                            self._notify.lkey),
                        signaled=False)
        if self.flavor == F_CHAINED:
            write.next = notify                      # one doorbell
            yield from self.qp.post_send(write, numa_local=self.cfg.numa_local)
        else:
            yield from self.qp.post_send(write, numa_local=self.cfg.numa_local)
            yield from self.qp.post_send(notify, numa_local=self.cfg.numa_local)

    # -- receive --------------------------------------------------------------
    def recv_msg(self):
        """Coroutine: next inbound message (read in place from inbuf)."""
        wcs = yield from self.qp.recv_cq.wait(self.cfg.poll_mode, max_wc=1)
        wc = check_wc(wcs[0])
        self._rseq += 1
        if wc.opcode is WCOpcode.RECV_RDMA_WITH_IMM:
            # The IMM carries the sender's seq -> our slot (RC delivery is
            # in-order, so the local counter agrees; the IMM is the
            # authoritative copy).
            seq = wc.imm or self._rseq
            off = ((seq - 1) % self.slots) * self._stride
            kind, seq, length, _a, _k = unpack_ctrl(
                self.inbuf.read(HDR_BYTES, offset=off))
        else:
            kind, seq, length, _a, _k = unpack_ctrl(
                self._ring[wc.wr_id].read(HDR_BYTES))
            off = ((seq - 1) % self.slots) * self._stride
        if kind != K_NOTIFY:
            raise ProtocolError(f"unexpected control kind {kind}")
        yield from self._repost(wc.wr_id)
        # Payload is already in our inbuf -- read in place, no copy charged.
        return self.inbuf.read(length, offset=off + HDR_BYTES)

    def _repost(self, slot_idx: int):
        mr = self._ring[slot_idx]
        yield from self.qp.post_recv(
            RecvWR(Sge(mr.addr, mr.length, mr.lkey), wr_id=slot_idx))


class _DWClient(RpcClient):
    flavor = F_SEPARATE

    # Per-call wire slots are stateless between calls (slot = seq mod
    # window on both peers), so send and receive halves overlap freely.
    supports_pipelining = True

    def _setup_blob(self) -> bytes:
        self.ep = DirectWriteEndpoint(self.device, self.pd, self.qp,
                                      self.cfg, self.flavor)
        return self.ep.blob()

    def _finish_setup(self, peer_blob: bytes) -> None:
        self.ep.set_peer(peer_blob)

    def _post_setup(self):
        yield from self.ep.setup()

    def _call(self, request: bytes, resp_hint: int):
        yield from self._staged("post", self.ep.send_msg(request),
                                nbytes=len(request))
        return (yield from self._staged("complete", self.ep.recv_msg()))

    def _post(self, request: bytes):
        yield from self.ep.send_msg(request)

    def _recv_one(self):
        return (yield from self.ep.recv_msg())


class _DWServer(RpcServer):
    flavor = F_SEPARATE

    def _make_endpoint(self, conn_req):
        scq = self.device.create_cq()
        rcq = self.device.create_cq()
        qp = self.device.create_qp(self.pd, scq, rcq)
        ep = DirectWriteEndpoint(self.device, self.pd, qp, self.cfg,
                                 self.flavor)
        ep.set_peer(conn_req.private_data)
        return ep

    def _accept(self, conn_req, endpoint):
        yield from endpoint.setup()
        yield from conn_req.accept(endpoint.qp, private_data=endpoint.blob())

    def _recv(self, endpoint):
        return (yield from endpoint.recv_msg())

    def _reply(self, endpoint, resp: bytes):
        yield from endpoint.send_msg(resp)


class DirectWriteSendClient(_DWClient):
    flavor = F_SEPARATE


class DirectWriteSendServer(_DWServer):
    flavor = F_SEPARATE


class ChainedWriteSendClient(_DWClient):
    flavor = F_CHAINED


class ChainedWriteSendServer(_DWServer):
    flavor = F_CHAINED


class DirectWriteImmClient(_DWClient):
    flavor = F_IMM


class DirectWriteImmServer(_DWServer):
    flavor = F_IMM


register_protocol("direct_write_send", DirectWriteSendClient, DirectWriteSendServer)
register_protocol("chained_write_send", ChainedWriteSendClient, ChainedWriteSendServer)
register_protocol("direct_writeimm", DirectWriteImmClient, DirectWriteImmServer)
