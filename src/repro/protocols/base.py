"""Shared machinery for the RDMA RPC protocols.

Every protocol is a pair of classes:

* a client: ``Client(device, cfg)`` with coroutines ``connect(node,
  service_id)`` and ``call(request, resp_hint=...) -> bytes``;
* a server: ``Server(device, service_id, handler, cfg)`` whose ``start()``
  spawns the accept loop; one serve-loop process runs per connection (the
  per-connection server threads of a threaded Thrift server).

Connections are *single-outstanding-call*: exactly the contract of a
synchronous Thrift client.  Concurrency comes from many connections, as in
the paper's throughput benchmarks.

Control messages use one fixed 32-byte wire format (kind, seq, length,
addr, rkey) -- large enough for rendezvous metadata, small enough to ride in
any eager slot.
"""

from __future__ import annotations

import inspect
import struct
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Type

from repro import obs
from repro.obs import trace as obstrace
from repro.sim.units import KiB
from repro.verbs.cq import CQ, PollMode
from repro.verbs.device import Device
from repro.verbs.errors import QPStateError, WCError
from repro.verbs import cm
from repro.verbs.types import WC, WCStatus

__all__ = [
    "CTRL",
    "HDR_BYTES",
    "ProtoConfig",
    "ProtocolError",
    "RpcClient",
    "RpcServer",
    "get_protocol",
    "protocol_names",
    "register_protocol",
]


class ProtocolError(RuntimeError):
    """Protocol-level misuse or wire-state corruption."""


#: kind(u8) seq(u32) length(u32) addr(u64) rkey(u32) -> padded to 32 bytes.
CTRL = struct.Struct("<BIIQI")
HDR_BYTES = 32

# Control-message kinds.
K_EAGER = 1       # payload follows the header in the same slot
K_RTS = 2         # rendezvous request-to-send
K_CTS = 3         # rendezvous clear-to-send (addr/rkey of the target buffer)
K_FIN = 4         # rendezvous (read flavor) transfer finished
K_NOTIFY = 5      # direct-write notify (payload already WRITTEN)


def pack_ctrl(kind: int, seq: int, length: int, addr: int = 0,
              rkey: int = 0) -> bytes:
    return CTRL.pack(kind, seq, length, addr, rkey).ljust(HDR_BYTES, b"\0")


def unpack_ctrl(data: bytes):
    return CTRL.unpack_from(data)


@dataclass(frozen=True)
class ProtoConfig:
    """Knobs common to all protocols."""

    #: completion-polling discipline for every CQ wait on this endpoint
    poll_mode: PollMode = PollMode.BUSY
    #: largest message the connection must carry
    max_msg: int = 512 * KiB
    #: pre-posted receive-ring depth
    ring_slots: int = 64
    #: eager/rendezvous switch (Hybrid-EagerRNDV threshold, Section 4.3)
    eager_threshold: int = 4 * KiB
    #: whether the calling threads are bound to the NIC's NUMA node
    numa_local: bool = True
    #: first-READ size for RFP's speculative response fetch
    rfp_first_read: int = 4 * KiB
    #: in-flight window the connection is provisioned for: protocols with
    #: per-call wire slots (direct-write staging/inbuf, eager send slots)
    #: allocate ``window`` of them so overlapped requests never share a
    #: slot.  1 = classic single-outstanding geometry (the default; both
    #: peers must agree on the value).
    window: int = 1

    def with_(self, **kw) -> "ProtoConfig":
        return replace(self, **kw)


def check_wc(wc: WC) -> WC:
    if wc.status is not WCStatus.SUCCESS:
        raise WCError(wc.status)
    return wc


class RpcClient:
    """Base class for protocol clients."""

    #: wire-protocol name, stamped by :func:`register_protocol`
    proto_name = "?"

    #: True for protocols whose send/receive halves are independent enough
    #: to overlap multiple calls on one connection (stateless per-call wire
    #: slots, no single-valued rendezvous handshake).  The engine's
    #: pipelined path only splits post/recv on these; everything else runs
    #: call-at-a-time under the classic single-outstanding contract.
    supports_pipelining = False

    def __init__(self, device: Device, cfg: Optional[ProtoConfig] = None):
        self.device = device
        self.sim = device.sim
        self.cfg = cfg or ProtoConfig()
        self.pd = device.alloc_pd()
        self._in_call = False
        self._act = None        # ActiveCall of the in-flight traced RPC
        self.calls = 0
        # Per-protocol instruments, captured once (None = metrics disabled;
        # the call() hot path then pays a single attribute check).
        reg = obs.current()
        if reg is not None:
            name = self.proto_name
            self._m_ops = reg.counter(f"proto.{name}.ops")
            self._m_req_bytes = reg.counter(f"proto.{name}.req_bytes")
            self._m_resp_bytes = reg.counter(f"proto.{name}.resp_bytes")
            self._m_doorbells = reg.counter(f"proto.{name}.doorbells")
            self._m_latency = reg.histogram(f"proto.{name}.latency")
        else:
            self._m_ops = None
            self._m_req_bytes = None
            self._m_resp_bytes = None
            self._m_doorbells = None
            self._m_latency = None

    # subclasses implement:
    def _setup_blob(self) -> bytes:
        """Local resources to advertise during the CM handshake."""
        raise NotImplementedError

    def _finish_setup(self, peer_blob: bytes) -> None:
        raise NotImplementedError

    def _call(self, request: bytes, resp_hint: int):
        raise NotImplementedError

    # pipelining-capable subclasses implement (split halves of _call):
    def _post(self, request: bytes):
        raise ProtocolError(
            f"{self.proto_name} cannot pipeline (no split post/recv)")
        yield  # pragma: no cover

    def _recv_one(self):
        raise ProtocolError(
            f"{self.proto_name} cannot pipeline (no split post/recv)")
        yield  # pragma: no cover

    # common paths:
    def connect(self, remote_node, service_id: int):
        """Coroutine: establish the connection and exchange buffer metadata."""
        self.scq = self.device.create_cq()
        self.rcq = self.device.create_cq()
        self.qp = self.device.create_qp(self.pd, self.scq, self.rcq)
        blob = self._setup_blob()
        peer_blob = yield from cm.connect(self.qp, remote_node, service_id,
                                          private_data=blob)
        self._finish_setup(peer_blob)
        yield from self._post_setup()
        return self

    def _post_setup(self):
        """Coroutine hook: pre-post receive rings etc. after the handshake."""
        return
        yield  # pragma: no cover

    def call(self, request: bytes, resp_hint: int = 4 * KiB, trace=None):
        """Coroutine: one RPC; returns the response bytes.

        ``trace`` is the engine's in-flight
        :class:`~repro.obs.trace.ActiveCall` (or None): the protocol
        brackets its send/receive halves into "post"/"complete" stage
        spans on it.
        """
        if self._in_call:
            raise ProtocolError(
                "connection already has an outstanding call (protocol "
                "connections are single-outstanding; use more connections "
                "for concurrency)")
        if len(request) > self.cfg.max_msg:
            raise ProtocolError(
                f"request of {len(request)} bytes exceeds max_msg "
                f"{self.cfg.max_msg}")
        self._in_call = True
        self._act = trace
        if self._m_ops is not None:
            t_start = self.sim.now
            qp = getattr(self, "qp", None)
            db_start = qp.doorbells if qp is not None else 0
        try:
            resp = yield from self._call(request, resp_hint)
        finally:
            self._in_call = False
            self._act = None
        self.calls += 1
        if self._m_ops is not None:
            self._m_ops.inc()
            self._m_req_bytes.inc(len(request))
            self._m_resp_bytes.inc(len(resp))
            self._m_latency.record(self.sim.now - t_start)
            if qp is not None:
                self._m_doorbells.inc(qp.doorbells - db_start)
        return resp

    def post(self, request: bytes):
        """Coroutine: put one request on the wire without waiting for its
        response (the pipelined send half; pair with :meth:`recv`)."""
        if len(request) > self.cfg.max_msg:
            raise ProtocolError(
                f"request of {len(request)} bytes exceeds max_msg "
                f"{self.cfg.max_msg}")
        yield from self._post(request)
        self.calls += 1
        if self._m_ops is not None:
            self._m_ops.inc()
            self._m_req_bytes.inc(len(request))

    def recv(self):
        """Coroutine: the next response off the wire, in arrival order --
        the caller correlates it (the pipelined receive half)."""
        resp = yield from self._recv_one()
        if self._m_resp_bytes is not None:
            self._m_resp_bytes.inc(len(resp))
        return resp

    def _wait(self, cq: CQ, max_wc: int = 16):
        return (yield from cq.wait(self.cfg.poll_mode, max_wc))

    def _staged(self, name: str, gen, **attrs):
        """Coroutine: run ``gen``, bracketing it into a trace stage span
        when a traced call is in flight (no-op otherwise)."""
        act = self._act
        if act is None:
            return (yield from gen)
        t0 = self.sim.now
        result = yield from gen
        act.stage(name, t0, self.sim.now, **attrs)
        return result

    def abort(self) -> None:
        """Hard-close the connection: error the QP (and the peer's).

        The peer-side flush unblocks the server's serve loop, which then
        tears the connection down -- the RST of this transport.  Safe to
        call repeatedly or on a never-connected client.
        """
        qp = getattr(self, "qp", None)
        if qp is not None:
            qp.to_error()
            if qp.peer is not None:
                qp.peer.to_error()


class RpcServer:
    """Base class for protocol servers.

    ``handler`` is either a plain callable ``bytes -> bytes`` or a generator
    function (coroutine) for handlers that consume simulated time (e.g. the
    checksum work of the ATB mix benchmark, or HatKV's LMDB calls).
    """

    endpoint_cls: Type = None  # type: ignore[assignment]

    #: wire-protocol name, stamped by :func:`register_protocol`
    proto_name = "?"

    def __init__(self, device: Device, service_id: int,
                 handler: Callable, cfg: Optional[ProtoConfig] = None):
        self.device = device
        self.sim = device.sim
        self.service_id = service_id
        self.handler = handler
        self._handler_is_gen = inspect.isgeneratorfunction(handler)
        self.cfg = cfg or ProtoConfig()
        self.pd = device.alloc_pd()
        self.listener = None
        self.connections = 0
        self.requests = 0
        self.teardowns = 0
        self._stopped = False
        reg = obs.current()
        self._m_requests = (reg.counter(f"proto.{self.proto_name}.server_requests")
                            if reg is not None else None)
        self._trc = obstrace.current()

    def start(self) -> "RpcServer":
        self.listener = cm.listen(self.device, self.service_id)
        self.sim.process(self._accept_loop(), name=f"accept-{self.service_id}")
        return self

    def stop(self) -> None:
        self._stopped = True
        if self.listener is not None:
            self.listener.close()

    def _accept_loop(self):
        while not self._stopped:
            req = yield self.listener.accept()
            endpoint = self._make_endpoint(req)
            yield from self._accept(req, endpoint)
            self.connections += 1
            self.sim.process(self._serve_loop(endpoint),
                             name=f"serve-{self.service_id}-{self.connections}")

    # subclasses implement:
    def _make_endpoint(self, conn_req):
        raise NotImplementedError

    def _accept(self, conn_req, endpoint):
        raise NotImplementedError

    def _recv(self, endpoint):
        raise NotImplementedError

    def _reply(self, endpoint, resp: bytes):
        raise NotImplementedError

    #: "the connection is dead" -- an error completion or an operation on an
    #: already-flushed QP.  Local misuse (MemoryAccessError, oversize
    #: responses) deliberately stays loud instead of reading as a dead peer.
    _DEAD_CONN = (WCError, QPStateError)

    def _serve_loop(self, endpoint):
        while True:
            t_poll = self.sim.now
            try:
                request = yield from self._recv(endpoint)
            except (ProtocolError, *self._DEAD_CONN):
                # Tear it down server-side so a client reconnect starts clean.
                self.teardowns += 1
                self._teardown(endpoint)
                return
            # A traced request leads with the context envelope; strip it and
            # open the server span as a child of the client's attempt span.
            srv = None
            proc = prev_ctx = None
            if self._trc is not None:
                ctx, request = obstrace.split_envelope(request)
                if ctx is not None:
                    srv = self._trc.server_call(
                        ctx, "server", self.device.node.name,
                        lambda: self.sim.now, start=t_poll,
                        attrs={"protocol": self.proto_name})
                    srv.stage("poll", t_poll, self.sim.now)
                    proc = self.sim.active_process
                    if proc is not None:
                        prev_ctx = proc.trace_ctx
                        proc.trace_ctx = srv
            try:
                try:
                    if srv is not None:
                        srv.open_stage("dispatch", self.sim.now)
                    resp = yield from self._dispatch(request)
                    if srv is not None:
                        srv.close_stage(self.sim.now)
                    t_reply = self.sim.now
                    yield from self._reply(endpoint, resp)
                    if srv is not None:
                        srv.stage("reply", t_reply, self.sim.now,
                                  nbytes=len(resp))
                except self._DEAD_CONN:
                    self.teardowns += 1
                    self._teardown(endpoint)
                    if srv is not None:
                        srv.finish(self.sim.now, status="dead_conn")
                    return
            finally:
                if proc is not None:
                    proc.trace_ctx = prev_ctx
            if srv is not None:
                srv.finish(self.sim.now)
            self.requests += 1
            if self._m_requests is not None:
                self._m_requests.inc()

    def _teardown(self, endpoint) -> None:
        """Release a dead connection's QP (idempotent)."""
        qp = getattr(endpoint, "qp", None)
        if qp is not None:
            qp.to_error()
            if qp.peer is not None:
                qp.peer.to_error()

    def _dispatch(self, request: bytes):
        if self._handler_is_gen:
            resp = yield from self.handler(request)
        else:
            resp = self.handler(request)
        return resp

    def _wait(self, cq: CQ, max_wc: int = 16):
        return (yield from cq.wait(self.cfg.poll_mode, max_wc))


_REGISTRY: Dict[str, tuple[Type[RpcClient], Type[RpcServer]]] = {}


def register_protocol(name: str, client_cls: Type[RpcClient],
                      server_cls: Type[RpcServer]) -> None:
    if name in _REGISTRY:
        raise ValueError(f"protocol {name!r} already registered")
    client_cls.proto_name = name
    server_cls.proto_name = name
    _REGISTRY[name] = (client_cls, server_cls)


def get_protocol(name: str) -> tuple[Type[RpcClient], Type[RpcServer]]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; known: {sorted(_REGISTRY)}") from None


def protocol_names() -> list[str]:
    return sorted(_REGISTRY)
