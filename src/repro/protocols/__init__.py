"""The RDMA RPC protocols of the paper's Section 3 (Figure 3).

Nine representative protocols plus the Hybrid-EagerRNDV baseline, all built
on :mod:`repro.verbs` and exposing one uniform request/response interface
(:class:`~repro.protocols.base.RpcClient` /
:class:`~repro.protocols.base.RpcServer`):

================== ===========================================================
name               scheme (Figure 3)
================== ===========================================================
eager_sendrecv     (a) SEND into pre-posted ring slots; memcpy both sides
direct_write_send  (b) RDMA WRITE to pre-known buffer + separate SEND notify
chained_write_send (c) same, WRITE+SEND chained into one doorbell
write_rndv         (d) RTS/CTS handshake, payload via RDMA WRITE(+IMM)
read_rndv          (e) RTS with source rkey, target RDMA READs, FIN
direct_writeimm    (f) single RDMA WRITE_WITH_IMM to pre-known buffer
pilaf              (g) request via SEND; response fetched with 3 RDMA READs
farm               (h) request WRITE + server memory polling; 2-READ response
rfp                (i) request WRITE + memory polling; 1-READ response
hybrid_eager_rndv  eager below 4 KB, Write-RNDV above (vanilla RDMA baseline)
================== ===========================================================
"""

from repro.protocols.base import (
    HDR_BYTES,
    ProtoConfig,
    ProtocolError,
    RpcClient,
    RpcServer,
    get_protocol,
    protocol_names,
)
from repro.protocols import directwrite, serverbypass, twosided  # registers
from repro.protocols.srq import SRQ_SERVERS, SrqEagerServer

__all__ = [
    "HDR_BYTES",
    "ProtoConfig",
    "ProtocolError",
    "RpcClient",
    "RpcServer",
    "SRQ_SERVERS",
    "SrqEagerServer",
    "get_protocol",
    "protocol_names",
]
