"""Two-sided protocols: Eager-SendRecv, Write-RNDV, Read-RNDV, Hybrid.

One engine (:class:`TwoSidedEndpoint`) implements message delivery over a QP
with two mechanisms and a size threshold:

* **eager** -- the payload rides in the control SEND itself, landing in a
  pre-posted ring slot; a memcpy is charged on each side (into the send
  slot, out of the ring slot) -- the exact tradeoff of Fig. 3a;
* **rendezvous** -- metadata handshake then a zero-copy bulk transfer:
  *write* flavor (Fig. 3d): RTS -> CTS(addr,rkey) -> RDMA WRITE_WITH_IMM;
  *read* flavor (Fig. 3e): RTS(addr,rkey) -> target RDMA READs -> FIN.

The pure protocols are the engine pinned at one end of the threshold
(Eager-SendRecv: everything eager, with max-size ring slots -- the memory
footprint the paper's Section 4.3 warns about; Write/Read-RNDV: everything
rendezvous), and Hybrid-EagerRNDV is the 4 KB-threshold mix that HatRPC's
generated code uses as its general-purpose baseline.
"""

from __future__ import annotations

from typing import List, Optional

from repro.protocols.base import (
    HDR_BYTES,
    K_CTS,
    K_EAGER,
    K_FIN,
    K_RTS,
    ProtoConfig,
    ProtocolError,
    RpcClient,
    RpcServer,
    check_wc,
    pack_ctrl,
    register_protocol,
    unpack_ctrl,
)
from repro.verbs.device import Device, MR, PD
from repro.verbs.qp import QP
from repro.verbs.types import Opcode, RecvWR, SendWR, Sge, WC, WCOpcode, WCStatus

__all__ = ["TwoSidedEndpoint"]


class TwoSidedEndpoint:
    """Eager + rendezvous messaging over one QP (single outstanding each way)."""

    def __init__(self, device: Device, pd: PD, qp: QP, cfg: ProtoConfig,
                 slot_payload: int, threshold: int, flavor: str):
        if flavor not in ("write", "read"):
            raise ValueError(f"unknown rendezvous flavor {flavor!r}")
        self.device = device
        self.pd = pd
        self.qp = qp
        self.cfg = cfg
        self.slot_payload = slot_payload
        self.threshold = threshold
        self.flavor = flavor
        self._inbox: List[bytes] = []
        self._cts: Optional[tuple] = None
        self._fin: Optional[int] = None
        self._seq = 0
        self._slots: List[MR] = []

    def setup(self):
        """Coroutine: register buffers and pre-post the receive ring."""
        slot_size = HDR_BYTES + self.slot_payload
        self._slots = [self.pd.reg_mr(slot_size)
                       for _ in range(self.cfg.ring_slots)]
        # One send slot per in-flight message (seq picks the slot), so a
        # pipelined window never rewrites a slot whose SEND is still being
        # sourced.  window=1 keeps the classic single-slot geometry.
        self._send_slots = [self.pd.reg_mr(slot_size)
                            for _ in range(max(1, self.cfg.window))]
        self._staging = self.pd.reg_mr(self.cfg.max_msg)   # rendezvous source
        self._landing = self.pd.reg_mr(self.cfg.max_msg)   # rendezvous sink
        for i, mr in enumerate(self._slots):
            yield from self.qp.post_recv(
                RecvWR(Sge(mr.addr, mr.length, mr.lkey), wr_id=i))

    # -- send path ---------------------------------------------------------
    def send_msg(self, data: bytes):
        """Coroutine: deliver one message to the peer."""
        self._seq += 1
        if len(data) <= self.threshold and len(data) <= self.slot_payload:
            yield from self._send_eager(data)
        else:
            yield from self._send_rndv(data)

    def _send_eager(self, data: bytes):
        hdr = pack_ctrl(K_EAGER, self._seq, len(data))
        slot = self._send_slots[(self._seq - 1) % len(self._send_slots)]
        # Copy into the registered slot (the eager cost).
        yield from self.device.memcpy(len(data), self.cfg.numa_local)
        slot.write(hdr + data)
        yield from self.qp.post_send(
            SendWR(Opcode.SEND,
                   Sge(slot.addr, HDR_BYTES + len(data), slot.lkey),
                   signaled=False),
            numa_local=self.cfg.numa_local)

    def _send_rndv(self, data: bytes):
        seq = self._seq
        yield from self.device.memcpy(len(data), self.cfg.numa_local)
        self._staging.write(data)
        if self.flavor == "write":
            yield from self._send_ctrl(K_RTS, seq, len(data))
            addr, rkey = yield from self._await_cts(seq)
            yield from self.qp.post_send(
                SendWR(Opcode.RDMA_WRITE_WITH_IMM,
                       Sge(self._staging.addr, len(data), self._staging.lkey),
                       remote_addr=addr, rkey=rkey, imm=seq, signaled=False),
                numa_local=self.cfg.numa_local)
        else:
            yield from self._send_ctrl(K_RTS, seq, len(data),
                                       addr=self._staging.addr,
                                       rkey=self._staging.rkey)
            yield from self._await_fin(seq)

    def _send_ctrl(self, kind: int, seq: int, length: int,
                   addr: int = 0, rkey: int = 0):
        slot = self._send_slots[(seq - 1) % len(self._send_slots)]
        slot.write(pack_ctrl(kind, seq, length, addr, rkey))
        yield from self.qp.post_send(
            SendWR(Opcode.SEND,
                   Sge(slot.addr, HDR_BYTES, slot.lkey),
                   signaled=False),
            numa_local=self.cfg.numa_local)

    # -- receive path --------------------------------------------------------
    def recv_msg(self):
        """Coroutine: the next application message from the peer."""
        while not self._inbox:
            yield from self._pump()
        return self._inbox.pop(0)

    def _await_cts(self, seq: int):
        while self._cts is None or self._cts[0] != seq:
            yield from self._pump()
        addr, rkey = self._cts[1], self._cts[2]
        self._cts = None
        return addr, rkey

    def _await_fin(self, seq: int):
        while self._fin != seq:
            yield from self._pump()
        self._fin = None

    def _pump(self):
        wcs = yield from self.qp.recv_cq.wait(self.cfg.poll_mode)
        for wc in wcs:
            yield from self._handle(check_wc(wc))

    def _handle(self, wc: WC):
        if wc.opcode is WCOpcode.RECV_RDMA_WITH_IMM:
            # Rendezvous (write flavor) payload landed in our landing buffer.
            self._inbox.append(self._landing.read(wc.byte_len))
            yield from self._repost(wc.wr_id)
            return
        slot = self._slots[wc.wr_id]
        kind, seq, length, addr, rkey = unpack_ctrl(slot.read(HDR_BYTES))
        if kind == K_EAGER:
            # Copy out so the slot can be re-posted (the eager cost).
            yield from self.device.memcpy(length, self.cfg.numa_local)
            self._inbox.append(slot.read(length, offset=HDR_BYTES))
        elif kind == K_RTS and self.flavor == "write":
            yield from self._repost(wc.wr_id)
            yield from self._send_ctrl(K_CTS, seq, length,
                                       addr=self._landing.addr,
                                       rkey=self._landing.rkey)
            return
        elif kind == K_RTS and self.flavor == "read":
            yield from self._read_payload(seq, length, addr, rkey)
        elif kind == K_CTS:
            self._cts = (seq, addr, rkey)
        elif kind == K_FIN:
            self._fin = seq
        else:
            raise ProtocolError(f"unexpected control kind {kind}")
        yield from self._repost(wc.wr_id)

    def _read_payload(self, seq: int, length: int, addr: int, rkey: int):
        yield from self.qp.post_send(
            SendWR(Opcode.RDMA_READ,
                   Sge(self._landing.addr, length, self._landing.lkey),
                   remote_addr=addr, rkey=rkey, wr_id=seq),
            numa_local=self.cfg.numa_local)
        wcs = yield from self.qp.send_cq.wait(self.cfg.poll_mode)
        for wc in wcs:
            check_wc(wc)
        self._inbox.append(self._landing.read(length))
        yield from self._send_ctrl(K_FIN, seq, length)

    def _repost(self, slot_idx: int):
        mr = self._slots[slot_idx]
        yield from self.qp.post_recv(
            RecvWR(Sge(mr.addr, mr.length, mr.lkey), wr_id=slot_idx))


# ---------------------------------------------------------------------------
# Protocol classes built on the endpoint engine.
# ---------------------------------------------------------------------------

class _TwoSidedClient(RpcClient):
    flavor = "write"

    def _slot_payload(self) -> int:
        raise NotImplementedError

    def _threshold(self) -> int:
        raise NotImplementedError

    def _setup_blob(self) -> bytes:
        return b""

    def _finish_setup(self, peer_blob: bytes) -> None:
        self.ep = TwoSidedEndpoint(self.device, self.pd, self.qp, self.cfg,
                                   self._slot_payload(), self._threshold(),
                                   self.flavor)

    def _post_setup(self):
        yield from self.ep.setup()

    def _call(self, request: bytes, resp_hint: int):
        yield from self._staged("post", self.ep.send_msg(request),
                                nbytes=len(request))
        return (yield from self._staged("complete", self.ep.recv_msg()))

    def _post(self, request: bytes):
        yield from self.ep.send_msg(request)

    def _recv_one(self):
        return (yield from self.ep.recv_msg())


class _TwoSidedServer(RpcServer):
    flavor = "write"
    client_cls: type = None  # set below; used to share slot sizing logic

    def _slot_payload(self) -> int:
        raise NotImplementedError

    def _threshold(self) -> int:
        raise NotImplementedError

    def _make_endpoint(self, conn_req):
        scq = self.device.create_cq()
        rcq = self.device.create_cq()
        qp = self.device.create_qp(self.pd, scq, rcq)
        return TwoSidedEndpoint(self.device, self.pd, qp, self.cfg,
                                self._slot_payload(), self._threshold(),
                                self.flavor)

    def _accept(self, conn_req, endpoint):
        yield from endpoint.setup()
        yield from conn_req.accept(endpoint.qp)

    def _recv(self, endpoint):
        return (yield from endpoint.recv_msg())

    def _reply(self, endpoint, resp: bytes):
        yield from endpoint.send_msg(resp)


class EagerClient(_TwoSidedClient):
    # Pure eager has no per-call rendezvous state (the single-valued
    # _cts/_fin latches make the rndv/hybrid flavors pipeline-unsafe),
    # so overlapped sends are fine once send slots rotate per seq.
    supports_pipelining = True

    def _slot_payload(self): return self.cfg.max_msg
    def _threshold(self): return self.cfg.max_msg


class EagerServer(_TwoSidedServer):
    def _slot_payload(self): return self.cfg.max_msg
    def _threshold(self): return self.cfg.max_msg


class WriteRndvClient(_TwoSidedClient):
    def _slot_payload(self): return 0
    def _threshold(self): return -1


class WriteRndvServer(_TwoSidedServer):
    def _slot_payload(self): return 0
    def _threshold(self): return -1


class ReadRndvClient(_TwoSidedClient):
    flavor = "read"
    def _slot_payload(self): return 0
    def _threshold(self): return -1


class ReadRndvServer(_TwoSidedServer):
    flavor = "read"
    def _slot_payload(self): return 0
    def _threshold(self): return -1


class HybridClient(_TwoSidedClient):
    def _slot_payload(self): return self.cfg.eager_threshold
    def _threshold(self): return self.cfg.eager_threshold


class HybridServer(_TwoSidedServer):
    def _slot_payload(self): return self.cfg.eager_threshold
    def _threshold(self): return self.cfg.eager_threshold


class HybridReadClient(HybridClient):
    """Eager below the threshold, Read-RNDV above: AR-gRPC's adaptive
    scheme [18] ('AR-gRPC only provides eager or read rendezvous')."""

    flavor = "read"


class HybridReadServer(HybridServer):
    flavor = "read"


register_protocol("eager_sendrecv", EagerClient, EagerServer)
register_protocol("write_rndv", WriteRndvClient, WriteRndvServer)
register_protocol("read_rndv", ReadRndvClient, ReadRndvServer)
register_protocol("hybrid_eager_rndv", HybridClient, HybridServer)
register_protocol("hybrid_eager_readrndv", HybridReadClient, HybridReadServer)
