"""Server-bypass protocols: Pilaf, FaRM, RFP (Fig. 3g-3i).

The family's signature move is fetching the *response* with one-sided RDMA
READs, so the server CPU never posts a send -- the paper's Section 3.2 notes
that serving an inbound RDMA op is much cheaper than issuing an outbound one,
which is why RFP wins the high-concurrency large-message regime (Fig. 5).

* **Pilaf** [46]: requests travel by SEND; responses cost ~3 READs (two
  metadata lookups + one payload fetch, after [59]'s measurement of ~3.2
  READs/GET);
* **FaRM** [23]: requests are WRITTEN into a server ring that the server CPU
  *memory-polls*; responses cost >=2 READs (index entry + value);
* **RFP** [59]: requests are WRITTEN and memory-polled; the response is
  speculatively fetched with a single READ of a fixed-size slot, with a
  follow-up READ only when the response overflows the slot.

Memory polling is modeled by :meth:`repro.verbs.device.Device.watch_memory`:
the poller holds a CPU spin token (busy discipline) or sleeps between
wake-ups (event discipline) and is woken the instant an inbound WRITE lands.
"""

from __future__ import annotations

import struct

from repro.protocols.base import (
    HDR_BYTES,
    K_EAGER,
    K_NOTIFY,
    ProtoConfig,
    ProtocolError,
    RpcClient,
    RpcServer,
    check_wc,
    pack_ctrl,
    register_protocol,
    unpack_ctrl,
)
from repro.verbs.cq import PollMode
from repro.verbs.device import Device, PD
from repro.verbs.qp import QP
from repro.verbs.types import Opcode, RecvWR, SendWR, Sge

__all__ = ["MemPoller"]

#: server blob: reqbuf addr/rkey + respbuf addr/rkey.
_BLOB = struct.Struct("<QIQI")

REQ_SEND = "send"     # Pilaf: eager SEND
REQ_WRITE = "write"   # FaRM/RFP: RDMA WRITE + memory polling


class MemPoller:
    """CPU-side polling of a memory range for inbound WRITEs."""

    def __init__(self, device: Device, addr: int, length: int,
                 mode: PollMode):
        self.device = device
        self.mode = mode
        self.watch = device.watch_memory(addr, length)

    def wait(self, ready) -> "generator":
        """Coroutine: return once ``ready()`` is true.

        Busy mode holds a spin token (a core burned while waiting); event
        mode sleeps between wake-ups, paying the wakeup latency instead.
        """
        cost = self.device.cost
        cpu = self.device.node.cpu
        if ready():
            yield cpu.compute(cost.poll_cpu)
            return
        if self.mode is PollMode.BUSY:
            tok = cpu.spin_begin()
            try:
                while not ready():
                    yield self.watch.gate.wait()
            finally:
                cpu.spin_end(tok)
        else:
            while not ready():
                yield self.watch.gate.wait()
                yield self.device.sim.timeout(cost.interrupt_latency)
        yield cpu.compute(cost.poll_cpu)


class BypassEndpoint:
    """Server-side state: request sink, response slab, polling machinery."""

    def __init__(self, device: Device, pd: PD, qp: QP, cfg: ProtoConfig,
                 request_path: str):
        self.device = device
        self.pd = pd
        self.qp = qp
        self.cfg = cfg
        self.request_path = request_path
        self.reqbuf = pd.reg_mr(HDR_BYTES + cfg.max_msg)
        self.respbuf = pd.reg_mr(HDR_BYTES + cfg.max_msg)
        self._last_seq = 0
        self._poller = None
        if request_path == REQ_WRITE:
            self._poller = MemPoller(device, self.reqbuf.addr,
                                     self.reqbuf.length, cfg.poll_mode)

    def blob(self) -> bytes:
        return _BLOB.pack(self.reqbuf.addr, self.reqbuf.rkey,
                          self.respbuf.addr, self.respbuf.rkey)

    def setup(self):
        """Coroutine: pre-post the SEND request ring (Pilaf only)."""
        self._ring = []
        if self.request_path == REQ_SEND:
            self._ring = [self.pd.reg_mr(HDR_BYTES + self.cfg.max_msg)
                          for _ in range(self.cfg.ring_slots)]
            for i, mr in enumerate(self._ring):
                yield from self.qp.post_recv(
                    RecvWR(Sge(mr.addr, mr.length, mr.lkey), wr_id=i))

    # -- server receive ------------------------------------------------------
    def recv_request(self):
        """Coroutine: next request bytes."""
        if self.request_path == REQ_SEND:
            wcs = yield from self.qp.recv_cq.wait(self.cfg.poll_mode, max_wc=1)
            wc = check_wc(wcs[0])
            slot = self._ring[wc.wr_id]
            kind, seq, length, _a, _k = unpack_ctrl(slot.read(HDR_BYTES))
            if kind != K_EAGER:
                raise ProtocolError(f"unexpected control kind {kind}")
            # Copy out so the ring slot can be re-posted.
            yield from self.device.memcpy(length, self.cfg.numa_local)
            data = slot.read(length, offset=HDR_BYTES)
            mr = self._ring[wc.wr_id]
            yield from self.qp.post_recv(
                RecvWR(Sge(mr.addr, mr.length, mr.lkey), wr_id=wc.wr_id))
            self._last_seq = seq
            return data

        def ready() -> bool:
            kind, seq, _l, _a, _k = unpack_ctrl(self.reqbuf.read(HDR_BYTES))
            return kind == K_NOTIFY and seq > self._last_seq

        yield from self._poller.wait(ready)
        kind, seq, length, _a, _k = unpack_ctrl(self.reqbuf.read(HDR_BYTES))
        self._last_seq = seq
        # Request is consumed in place (no copy) -- the WRITE-path advantage.
        return self.reqbuf.read(length, offset=HDR_BYTES)

    def publish_response(self, resp: bytes):
        """Coroutine: place the response where the client will READ it.

        Pure CPU work (one copy into the registered slab, header last);
        no NIC operation is issued -- that is the whole point of the family.
        """
        yield from self.device.memcpy(len(resp), self.cfg.numa_local)
        self.respbuf.write(resp, offset=HDR_BYTES)
        self.respbuf.write(pack_ctrl(K_NOTIFY, self._last_seq, len(resp)))


class _BypassClient(RpcClient):
    request_path = REQ_WRITE
    #: READs used to locate the response before the payload fetch.
    metadata_reads = 1

    def _setup_blob(self) -> bytes:
        return b""

    def _finish_setup(self, peer_blob: bytes) -> None:
        (self._req_addr, self._req_rkey,
         self._resp_addr, self._resp_rkey) = _BLOB.unpack_from(peer_blob)
        self._staging = self.pd.reg_mr(HDR_BYTES + self.cfg.max_msg)
        self._fetch = self.pd.reg_mr(HDR_BYTES + self.cfg.max_msg)
        self._seq = 0

    # -- request delivery ------------------------------------------------------
    def _send_request(self, request: bytes):
        self._seq += 1
        yield from self.device.memcpy(len(request), self.cfg.numa_local)
        self._staging.write(pack_ctrl(K_NOTIFY, self._seq, len(request))
                            + request)
        total = HDR_BYTES + len(request)
        if self.request_path == REQ_WRITE:
            yield from self.qp.post_send(
                SendWR(Opcode.RDMA_WRITE,
                       Sge(self._staging.addr, total, self._staging.lkey),
                       remote_addr=self._req_addr, rkey=self._req_rkey,
                       signaled=False),
                numa_local=self.cfg.numa_local)
        else:
            # Pilaf: plain eager SEND; rewrite the header kind.
            self._staging.write(pack_ctrl(K_EAGER, self._seq, len(request)))
            yield from self.qp.post_send(
                SendWR(Opcode.SEND,
                       Sge(self._staging.addr, total, self._staging.lkey),
                       signaled=False),
                numa_local=self.cfg.numa_local)

    # -- one-sided response fetch -------------------------------------------------
    def _read(self, length: int, remote_off: int = 0, local_off: int = 0):
        yield from self.qp.post_send(
            SendWR(Opcode.RDMA_READ,
                   Sge(self._fetch.addr + local_off, length, self._fetch.lkey),
                   remote_addr=self._resp_addr + remote_off,
                   rkey=self._resp_rkey),
            numa_local=self.cfg.numa_local)
        wcs = yield from self.scq.wait(self.cfg.poll_mode, max_wc=1)
        check_wc(wcs[0])

    def _fetch_response(self, resp_hint: int):
        # Metadata READ(s), retried until the server has published our seq;
        # failed polls back off so retry traffic cannot melt the server NIC.
        backoff = 1e-6
        while True:
            for _ in range(self.metadata_reads):
                yield from self._read(16)
            kind, seq, length, _a, _k = unpack_ctrl(
                self._fetch.read(HDR_BYTES))
            if kind == K_NOTIFY and seq == self._seq:
                break
            yield self.device.sim.timeout(backoff)
            backoff = min(backoff * 2, 16e-6)
        yield from self._read(length, remote_off=HDR_BYTES,
                              local_off=HDR_BYTES)
        return self._fetch.read(length, offset=HDR_BYTES)

    def _call(self, request: bytes, resp_hint: int):
        yield from self._staged("post", self._send_request(request),
                                nbytes=len(request))
        return (yield from self._staged("complete",
                                        self._fetch_response(resp_hint)))


class _BypassServer(RpcServer):
    request_path = REQ_WRITE

    def _make_endpoint(self, conn_req):
        scq = self.device.create_cq()
        rcq = self.device.create_cq()
        qp = self.device.create_qp(self.pd, scq, rcq)
        return BypassEndpoint(self.device, self.pd, qp, self.cfg,
                              self.request_path)

    def _accept(self, conn_req, endpoint):
        yield from endpoint.setup()
        yield from conn_req.accept(endpoint.qp, private_data=endpoint.blob())

    def _recv(self, endpoint):
        return (yield from endpoint.recv_request())

    def _reply(self, endpoint, resp: bytes):
        yield from endpoint.publish_response(resp)


class PilafClient(_BypassClient):
    request_path = REQ_SEND
    metadata_reads = 2  # hash bucket + entry validation


class PilafServer(_BypassServer):
    request_path = REQ_SEND


class FarmClient(_BypassClient):
    request_path = REQ_WRITE
    metadata_reads = 1  # index entry


class FarmServer(_BypassServer):
    request_path = REQ_WRITE


class RfpClient(_BypassClient):
    """RFP: speculative single-READ fetch of header+payload together.

    Failed speculations (server not done yet) back off exponentially --
    RFP's own design throttles clients that poll too eagerly ("falls back"
    per [59]); without this, many clients re-READing full slots melt the
    server's NIC with retry traffic.
    """

    request_path = REQ_WRITE

    def _fetch_response(self, resp_hint: int):
        slot = max(self.cfg.rfp_first_read, 16)
        backoff = 1e-6
        while True:
            first = min(HDR_BYTES + slot, self._fetch.length)
            yield from self._read(first)
            kind, seq, length, _a, _k = unpack_ctrl(
                self._fetch.read(HDR_BYTES))
            if kind == K_NOTIFY and seq == self._seq:
                break
            yield self.device.sim.timeout(backoff)
            backoff = min(backoff * 2, 16e-6)
        if length > slot:
            # Fallback READ for the overflow tail.
            yield from self._read(length - slot,
                                  remote_off=HDR_BYTES + slot,
                                  local_off=HDR_BYTES + slot)
        return self._fetch.read(length, offset=HDR_BYTES)


class RfpServer(_BypassServer):
    request_path = REQ_WRITE


class HerdClient(_BypassClient):
    """HERD [36]: requests WRITTEN into a memory-polled server region,
    responses pushed back with (small) SENDs.

    HERD's responses ride unreliable-datagram SENDs sized for small
    messages; large responses are chunked at ``HERD_RESP_SLOT`` bytes, each
    chunk costing the server a post_send and the client a ring-slot copy --
    which is exactly why HERD struggles on GET/MultiGET in the paper's YCSB
    evaluation (Section 5.4).
    """

    request_path = REQ_WRITE

    def _post_setup(self):
        self._ring = [self.pd.reg_mr(HDR_BYTES + HERD_RESP_SLOT)
                      for _ in range(self.cfg.ring_slots)]
        for i, mr in enumerate(self._ring):
            yield from self.qp.post_recv(
                RecvWR(Sge(mr.addr, mr.length, mr.lkey), wr_id=i))

    def _fetch_response(self, resp_hint: int):
        chunks = {}
        total = None
        got = 0
        while total is None or got < total:
            wcs = yield from self.rcq.wait(self.cfg.poll_mode, max_wc=4)
            for wc in wcs:
                check_wc(wc)
                slot = self._ring[wc.wr_id]
                kind, seq, length, offset, _k = unpack_ctrl(
                    slot.read(HDR_BYTES))
                if kind != K_NOTIFY or seq != self._seq:
                    raise ProtocolError("unexpected HERD response chunk")
                payload_len = wc.byte_len - HDR_BYTES
                yield from self.device.memcpy(payload_len,
                                              self.cfg.numa_local)
                chunks[offset] = slot.read(payload_len, offset=HDR_BYTES)
                total = length
                got += payload_len
                yield from self.qp.post_recv(
                    RecvWR(Sge(slot.addr, slot.length, slot.lkey),
                           wr_id=wc.wr_id))
        return b"".join(chunks[off] for off in sorted(chunks))


class HerdServer(_BypassServer):
    request_path = REQ_WRITE

    def _reply(self, endpoint, resp: bytes):
        # Chunked SEND response: one post per HERD_RESP_SLOT bytes.
        seq = endpoint._last_seq
        dev = endpoint.device
        staging = getattr(endpoint, "_herd_staging", None)
        if staging is None:
            staging = endpoint.pd.reg_mr(HDR_BYTES + HERD_RESP_SLOT)
            endpoint._herd_staging = staging
        off = 0
        sent_any = False
        while off < len(resp) or not sent_any:
            chunk = resp[off:off + HERD_RESP_SLOT]
            yield from dev.memcpy(len(chunk), self.cfg.numa_local)
            # header 'addr' field doubles as the chunk offset
            staging.write(pack_ctrl(K_NOTIFY, seq, len(resp), addr=off)
                          + chunk)
            yield from endpoint.qp.post_send(
                SendWR(Opcode.SEND,
                       Sge(staging.addr, HDR_BYTES + len(chunk),
                           staging.lkey), signaled=True),
                numa_local=self.cfg.numa_local)
            # Reuse of the staging slot requires the previous SEND done.
            wcs = yield from endpoint.qp.send_cq.wait(self.cfg.poll_mode,
                                                      max_wc=1)
            check_wc(wcs[0])
            off += len(chunk)
            sent_any = True


#: HERD's response-slot size (its design targets small messages).  Real
#: HERD ships bare values, so its slots need only fit the KV unit (1 KB
#: under YCSB); the emulation routes Thrift-framed messages through the
#: same transport, so the slot carries ~40 B of RPC framing on top.  Size
#: it to hold one value plus that framing -- otherwise a single GET pays
#: a two-chunk penalty real HERD never would, while MultiGET responses
#: (~10 KB) still chunk ~10x, which is the collapse the paper reports.
HERD_RESP_SLOT = 1088


register_protocol("pilaf", PilafClient, PilafServer)
register_protocol("farm", FarmClient, FarmServer)
register_protocol("rfp", RfpClient, RfpServer)
register_protocol("herd", HerdClient, HerdServer)
