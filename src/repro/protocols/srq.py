"""SRQ server receive path for the eager two-sided protocol.

The classic :class:`~repro.protocols.twosided.EagerServer` runs one serve
loop -- and one pre-posted receive ring -- per connection.  Past a handful
of busy-polled connections the per-loop spinners oversubscribe the server's
cores (the GPS scheduler shares them fairly, so *everything* slows down),
and past a few hundred connections the per-ring slot memory dominates.
That is exactly the degradation mode this module removes:

* **one SRQ** (:class:`~repro.verbs.qp.SRQ`) holds a single recv-WQE pool
  serving every client QP -- slot memory scales with the in-flight window
  of the whole server, not with connection count;
* **one shared recv CQ** collects all inbound completions, demuxed by the
  ``qp_num`` each WC carries;
* **one dispatcher process** polls that CQ -- a single spinner whatever the
  client count -- copies each eager payload out, re-posts the slot to the
  SRQ, and spawns a short-lived worker per request (handler + reply), so
  slow handlers never head-of-line-block the receive path.

Only the receive half is shared: replies go out on the *per-connection* QP
the request arrived on, using the same rotating send-slot geometry as
:class:`~repro.protocols.twosided.TwoSidedEndpoint`, so the stock
``eager_sendrecv`` client is wire-compatible and unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs import trace as obstrace
from repro.protocols.base import (
    HDR_BYTES,
    K_EAGER,
    ProtoConfig,
    ProtocolError,
    RpcServer,
    pack_ctrl,
    unpack_ctrl,
)
from repro.verbs import cm
from repro.verbs.device import Device, MR, PD
from repro.verbs.qp import QP
from repro.verbs.types import Opcode, RecvWR, SendWR, Sge, WCStatus

__all__ = ["SRQ_SERVERS", "SrqEagerServer"]


class _SrqConn:
    """The reply half of one accepted connection (the receive half lives
    on the server's shared SRQ)."""

    def __init__(self, device: Device, pd: PD, qp: QP, cfg: ProtoConfig):
        self.device = device
        self.qp = qp
        self.cfg = cfg
        slot_size = HDR_BYTES + cfg.max_msg
        # Rotating send slots, one per in-flight reply (seq picks the
        # slot) -- same geometry as TwoSidedEndpoint, so a pipelined
        # window of replies never rewrites a slot still being sourced.
        self._send_slots: List[MR] = [pd.reg_mr(slot_size)
                                      for _ in range(max(1, cfg.window))]
        self._seq = 0

    def send_msg(self, data: bytes):
        """Coroutine: one eager reply on this connection's QP."""
        if len(data) > self.cfg.max_msg:
            raise ProtocolError(
                f"response of {len(data)} bytes exceeds max_msg "
                f"{self.cfg.max_msg}")
        self._seq += 1
        hdr = pack_ctrl(K_EAGER, self._seq, len(data))
        slot = self._send_slots[(self._seq - 1) % len(self._send_slots)]
        yield from self.device.memcpy(len(data), self.cfg.numa_local)
        slot.write(hdr + data)
        yield from self.qp.post_send(
            SendWR(Opcode.SEND,
                   Sge(slot.addr, HDR_BYTES + len(data), slot.lkey),
                   signaled=False),
            numa_local=self.cfg.numa_local)


class SrqEagerServer(RpcServer):
    """Eager-SendRecv server whose receive path is one SRQ + one CQ +
    one dispatcher, shared by every connection.

    ``srq_slots`` sizes the shared recv-WQE pool (default: the config's
    ``ring_slots``).  It bounds the server's total in-flight *arrivals*
    across all clients; bursts beyond it are absorbed by the RC transport's
    RNR retry, not dropped.
    """

    proto_name = "eager_srq"

    def __init__(self, device: Device, service_id: int, handler,
                 cfg: Optional[ProtoConfig] = None,
                 srq_slots: Optional[int] = None):
        super().__init__(device, service_id, handler, cfg)
        self.srq_slots = srq_slots if srq_slots is not None \
            else self.cfg.ring_slots
        self.srq = None
        self.rcq = None
        self.scq = None
        self._slots: List[MR] = []
        self._conns: Dict[int, _SrqConn] = {}   # qp_num -> conn

    def start(self) -> "SrqEagerServer":
        self.listener = cm.listen(self.device, self.service_id)
        self.srq = self.device.create_srq()
        self.rcq = self.device.create_cq(
            capacity=max(4096, 2 * self.srq_slots))
        self.scq = self.device.create_cq()
        self.sim.process(self._run(),
                         name=f"srq-dispatch-{self.service_id}")
        self.sim.process(self._accept_loop(),
                         name=f"accept-{self.service_id}")
        return self

    # -- receive path --------------------------------------------------------
    def _run(self):
        """Coroutine: post the shared slot pool, then dispatch forever."""
        slot_size = HDR_BYTES + self.cfg.max_msg
        for i in range(self.srq_slots):
            mr = self.pd.reg_mr(slot_size)
            self._slots.append(mr)
            yield from self.srq.post_recv(
                RecvWR(Sge(mr.addr, mr.length, mr.lkey), wr_id=i))
        while not self._stopped:
            t_poll = self.sim.now
            wcs = yield from self.rcq.wait(self.cfg.poll_mode)
            for wc in wcs:
                yield from self._one_wc(wc, t_poll)

    def _one_wc(self, wc, t_poll: float):
        if wc.status is not WCStatus.SUCCESS:
            # An error completion names its connection via qp_num; only
            # that connection dies -- the pool and its neighbors carry on.
            self._drop_conn(wc.qp_num)
            return
        slot = self._slots[wc.wr_id]
        kind, _seq, length, _addr, _rkey = unpack_ctrl(slot.read(HDR_BYTES))
        if kind != K_EAGER:
            raise ProtocolError(
                f"SRQ server got non-eager control kind {kind}")
        # Copy out, then immediately re-post: the slot is back in the pool
        # before the handler runs, so slow handlers cost RNR pressure on
        # *admitted* work only, never on the shared receive ring.
        yield from self.device.memcpy(length, self.cfg.numa_local)
        request = slot.read(length, offset=HDR_BYTES)
        yield from self.srq.post_recv(
            RecvWR(Sge(slot.addr, slot.length, slot.lkey), wr_id=wc.wr_id))
        conn = self._conns.get(wc.qp_num)
        if conn is None:
            return   # raced with a teardown; the late request is dropped
        self.sim.process(self._serve_one(conn, request, t_poll),
                         name=f"srq-serve-{self.service_id}-{wc.qp_num}")

    def _serve_one(self, conn: _SrqConn, request: bytes, t_poll: float):
        """Coroutine: handler + reply for one request (own process, so
        requests from all connections execute concurrently)."""
        srv = None
        proc = prev_ctx = None
        if self._trc is not None:
            ctx, request = obstrace.split_envelope(request)
            if ctx is not None:
                srv = self._trc.server_call(
                    ctx, "server", self.device.node.name,
                    lambda: self.sim.now, start=t_poll,
                    attrs={"protocol": self.proto_name})
                srv.stage("poll", t_poll, self.sim.now)
                proc = self.sim.active_process
                if proc is not None:
                    prev_ctx = proc.trace_ctx
                    proc.trace_ctx = srv
        try:
            try:
                if srv is not None:
                    srv.open_stage("dispatch", self.sim.now)
                resp = yield from self._dispatch(request)
                if srv is not None:
                    srv.close_stage(self.sim.now)
                t_reply = self.sim.now
                yield from conn.send_msg(resp)
                if srv is not None:
                    srv.stage("reply", t_reply, self.sim.now,
                              nbytes=len(resp))
            except self._DEAD_CONN:
                self._drop_conn(conn.qp.qp_num)
                if srv is not None:
                    srv.finish(self.sim.now, status="dead_conn")
                return
        finally:
            if proc is not None:
                proc.trace_ctx = prev_ctx
        if srv is not None:
            srv.finish(self.sim.now)
        self.requests += 1
        if self._m_requests is not None:
            self._m_requests.inc()

    # -- connection management -----------------------------------------------
    def _accept_loop(self):
        while not self._stopped:
            req = yield self.listener.accept()
            qp = self.device.create_qp(self.pd, self.scq, self.rcq,
                                       srq=self.srq)
            conn = _SrqConn(self.device, self.pd, qp, self.cfg)
            yield from req.accept(qp)
            self._conns[qp.qp_num] = conn
            self.connections += 1

    def _drop_conn(self, qp_num: int) -> None:
        conn = self._conns.pop(qp_num, None)
        if conn is not None:
            self.teardowns += 1
            self._teardown(conn)

    # The base per-connection serve loop is never used here.
    def _make_endpoint(self, conn_req):  # pragma: no cover
        raise NotImplementedError("SrqEagerServer has no per-conn endpoint")

    def _accept(self, conn_req, endpoint):  # pragma: no cover
        raise NotImplementedError

    def _recv(self, endpoint):  # pragma: no cover
        raise NotImplementedError

    def _reply(self, endpoint, resp):  # pragma: no cover
        raise NotImplementedError


#: protocol name -> SRQ-backed server class, for runtimes that opt in
#: (``HatRpcServer(srq=True)``).  The matching *client* class is unchanged:
#: the SRQ is invisible on the wire.
SRQ_SERVERS = {"eager_sendrecv": SrqEagerServer}
