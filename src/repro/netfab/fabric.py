"""The switched fabric: per-node full-duplex ports and wire timing.

Model
-----
Every node has one port with independent TX and RX sides.  Sending ``n``
bytes from A to B:

1. occupies A's TX side for ``n / rate`` (serialization onto the wire),
2. propagates for ``wire_latency`` (cables + one switch hop),
3. occupies B's RX side for ``n / rate`` (arrival serialization -- this is
   what produces incast queueing when many clients target one server).

Steady-state pipelined throughput of a flow is the full link ``rate``
(successive messages overlap stages); single-message latency is
``2*n/rate + wire_latency``, which slightly over-counts serialization for a
store-and-forward switch -- absorbed into calibration, since only relative
protocol behaviour matters for the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.core import Simulator
from repro.sim.cluster import Cluster, Node
from repro.sim.sync import Resource
from repro.sim.units import Gbps, us

__all__ = ["Fabric", "FabricParams", "Port"]


@dataclass(frozen=True)
class FabricParams:
    """Physical-layer constants (InfiniBand EDR, Section 5.1)."""

    link_rate: float = 100 * Gbps   # bytes/second payload rate
    wire_latency: float = 1.0 * us  # one-way propagation incl. switch hop
    per_message_wire_overhead: int = 30  # headers/CRC bytes per message


class Port:
    """One node's full-duplex attachment to the switch."""

    def __init__(self, sim: Simulator, node: Node, params: FabricParams):
        self.sim = sim
        self.node = node
        self.params = params
        self.tx = Resource(sim, 1)
        self.rx = Resource(sim, 1)
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0

    def wire_time(self, nbytes: int) -> float:
        return (nbytes + self.params.per_message_wire_overhead) / self.params.link_rate


class Fabric:
    """A single-switch network over a cluster's nodes."""

    def __init__(self, sim: Simulator, cluster: Cluster,
                 params: FabricParams | None = None):
        self.sim = sim
        self.cluster = cluster
        self.params = params or FabricParams()
        self.ports: Dict[str, Port] = {
            node.name: Port(sim, node, self.params) for node in cluster
        }

    def port_of(self, node: Node) -> Port:
        return self.ports[node.name]

    def transmit(self, src: Node, dst: Node, nbytes: int,
                 rate_cap: float | None = None):
        """Coroutine: move ``nbytes`` from src's NIC to dst's NIC.

        Returns (via StopIteration) the simulated arrival time.  ``rate_cap``
        lets a slower upper layer (IPoIB TCP) bound its achievable rate below
        the raw link rate.
        """
        if nbytes < 0:
            raise ValueError("negative transmit size")
        sp = self.ports[src.name]
        dp = self.ports[dst.name]
        ser = sp.wire_time(nbytes)
        if rate_cap is not None:
            ser = max(ser, nbytes / rate_cap)
        # Loopback still costs serialization through the NIC but skips the
        # wire; real IB HCAs loop back internally.
        yield from sp.tx.use(ser)
        sp.bytes_sent += nbytes
        sp.messages_sent += 1
        if src is not dst:
            yield self.sim.timeout(self.params.wire_latency)
            yield from dp.rx.use(ser)
        dp.bytes_received += nbytes
        return self.sim.now
