"""The switched fabric: per-node full-duplex ports and wire timing.

Model
-----
Every node has one port with independent TX and RX sides.  Sending ``n``
bytes from A to B:

1. occupies A's TX side for ``n / rate`` (serialization onto the wire),
2. propagates for ``wire_latency`` (cables + one switch hop),
3. occupies B's RX side for ``n / rate`` (arrival serialization -- this is
   what produces incast queueing when many clients target one server).

Steady-state pipelined throughput of a flow is the full link ``rate``
(successive messages overlap stages); single-message latency is
``2*n/rate + wire_latency``, which slightly over-counts serialization for a
store-and-forward switch -- absorbed into calibration, since only relative
protocol behaviour matters for the reproduction.

Fault model
-----------
Ports carry scheduled *fault windows* (installed by
:mod:`repro.faults.injector`), evaluated purely against the simulated clock
so replays are deterministic:

* a **down window** takes the port hard-down: TCP transmissions raise
  :class:`LinkDownError` in the sender, and the verbs datapath turns it into
  transport-retry exhaustion (``WCStatus.RETRY_EXC_ERR``);
* a **drop window** loses individual messages with a seeded probability --
  RC and TCP both recover by retransmission, so drops surface as latency,
  not errors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro import obs
from repro.sim.core import Simulator
from repro.sim.cluster import Cluster, Node
from repro.sim.sync import Resource
from repro.sim.units import Gbps, us

__all__ = ["Fabric", "FabricParams", "LinkDownError", "Port"]


class LinkDownError(ConnectionError):
    """Transmission attempted while the link is in a down window."""


@dataclass(frozen=True)
class FabricParams:
    """Physical-layer constants (InfiniBand EDR, Section 5.1)."""

    link_rate: float = 100 * Gbps   # bytes/second payload rate
    wire_latency: float = 1.0 * us  # one-way propagation incl. switch hop
    per_message_wire_overhead: int = 30  # headers/CRC bytes per message
    #: retransmission delay charged per message lost in a drop window
    retransmit_timeout: float = 200 * us


class Port:
    """One node's full-duplex attachment to the switch."""

    def __init__(self, sim: Simulator, node: Node, params: FabricParams):
        self.sim = sim
        self.node = node
        self.params = params
        self.tx = Resource(sim, 1)
        self.rx = Resource(sim, 1)
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        # Fault windows, evaluated against sim.now (see module docstring).
        self._down_windows: List[Tuple[float, float]] = []
        self._drop_windows: List[Tuple[float, float, float, random.Random]] = []
        self.faults_seen = 0     # messages refused by a down window
        self.drops = 0           # messages lost in a drop window

    def wire_time(self, nbytes: int) -> float:
        return (nbytes + self.params.per_message_wire_overhead) / self.params.link_rate

    # -- fault windows -------------------------------------------------------
    def schedule_down(self, start: float, end: float) -> None:
        """Mark the port hard-down for ``[start, end)`` of simulated time."""
        if end <= start:
            raise ValueError("down window must have positive duration")
        self._down_windows.append((start, end))

    def schedule_drops(self, start: float, end: float, drop_prob: float,
                       seed: int = 0) -> None:
        """Lose messages with probability ``drop_prob`` during the window.

        Each window owns its seeded RNG, so the drop pattern is a pure
        function of (seed, sequence of transmissions) -- deterministic under
        the deterministic event loop.
        """
        if not 0.0 <= drop_prob < 1.0:
            raise ValueError("drop_prob must be in [0, 1)")
        if end <= start:
            raise ValueError("drop window must have positive duration")
        self._drop_windows.append((start, end, drop_prob,
                                   random.Random(seed)))

    def is_down(self, at: float) -> bool:
        return any(s <= at < e for s, e in self._down_windows)

    def roll_drop(self, at: float) -> bool:
        """One drop decision for a message crossing this port at ``at``."""
        for s, e, p, rng in self._drop_windows:
            if s <= at < e and rng.random() < p:
                self.drops += 1
                return True
        return False


class Fabric:
    """A single-switch network over a cluster's nodes."""

    def __init__(self, sim: Simulator, cluster: Cluster,
                 params: FabricParams | None = None):
        self.sim = sim
        self.cluster = cluster
        self.params = params or FabricParams()
        self.ports: Dict[str, Port] = {
            node.name: Port(sim, node, self.params) for node in cluster
        }
        reg = obs.current()
        if reg is not None:
            reg.probe("netfab", self._probe_totals)

    def _probe_totals(self) -> Dict[str, int]:
        """Fabric-wide port counter totals (read lazily at snapshot time)."""
        totals = {"bytes_sent": 0, "bytes_received": 0, "messages_sent": 0,
                  "drops": 0, "faults_seen": 0}
        for port in self.ports.values():
            totals["bytes_sent"] += port.bytes_sent
            totals["bytes_received"] += port.bytes_received
            totals["messages_sent"] += port.messages_sent
            totals["drops"] += port.drops
            totals["faults_seen"] += port.faults_seen
        return totals

    def port_of(self, node: Node) -> Port:
        return self.ports[node.name]

    # -- fault interface (used by the verbs datapath and the injector) -------
    def link_down(self, a: Node, b: Node) -> bool:
        """True when the path a<->b is inside a down window right now."""
        now = self.sim.now
        return (self.ports[a.name].is_down(now)
                or self.ports[b.name].is_down(now))

    def roll_drop(self, src: Node, dst: Node) -> bool:
        """One seeded drop decision for a message src->dst at sim.now."""
        now = self.sim.now
        # Either endpoint's drop window can lose the message; short-circuit
        # keeps at most one RNG draw per port per message (deterministic).
        if self.ports[src.name].roll_drop(now):
            return True
        return src is not dst and self.ports[dst.name].roll_drop(now)

    def transmit(self, src: Node, dst: Node, nbytes: int,
                 rate_cap: float | None = None):
        """Coroutine: move ``nbytes`` from src's NIC to dst's NIC.

        Returns (via StopIteration) the simulated arrival time.  ``rate_cap``
        lets a slower upper layer (IPoIB TCP) bound its achievable rate below
        the raw link rate.  Raises :class:`LinkDownError` in the *sender's*
        process when the path is inside a down window; messages in drop
        windows are retransmitted after a timeout (loss shows up as latency).
        """
        if nbytes < 0:
            raise ValueError("negative transmit size")
        sp = self.ports[src.name]
        dp = self.ports[dst.name]
        # transmit() runs inline in the sender's process (TcpConn.send
        # delegates here per segment), so a traced RPC's context is on the
        # active process -- record the wire time as a "network" stage.
        ap = self.sim.active_process
        ctx = ap.trace_ctx if ap is not None else None
        t0 = self.sim.now
        if self.link_down(src, dst):
            sp.faults_seen += 1
            raise LinkDownError(
                f"link {src.name}->{dst.name} is down at t={self.sim.now}")
        while self.roll_drop(src, dst):
            # Lost on the wire: the reliable layer above (TCP / RC) waits a
            # retransmission timeout and tries again.
            yield self.sim.timeout(self.params.retransmit_timeout)
            if self.link_down(src, dst):
                sp.faults_seen += 1
                raise LinkDownError(
                    f"link {src.name}->{dst.name} went down during "
                    f"retransmission at t={self.sim.now}")
        ser = sp.wire_time(nbytes)
        if rate_cap is not None:
            ser = max(ser, nbytes / rate_cap)
        # Loopback still costs serialization through the NIC but skips the
        # wire; real IB HCAs loop back internally.
        yield from sp.tx.use(ser)
        sp.bytes_sent += nbytes
        sp.messages_sent += 1
        if src is not dst:
            yield self.sim.timeout(self.params.wire_latency)
            yield from dp.rx.use(ser)
        dp.bytes_received += nbytes
        if ctx is not None:
            ctx.stage("network", t0, self.sim.now, nbytes=nbytes,
                      transport="tcp")
        return self.sim.now
