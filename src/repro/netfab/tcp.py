"""Kernel TCP over IPoIB: the byte-stream transport under vanilla Thrift.

This is the baseline of the paper's evaluations ("Thrift over IPoIB").
IPoIB runs the whole kernel network stack over the InfiniBand link, so
compared with verbs it pays:

* two user/kernel data copies per message (charged as CPU memcpy work),
* a syscall per send/recv (CPU),
* softirq + wakeup latency on the receive path,
* a reduced effective rate (IPoIB on EDR typically achieves well under half
  of line rate; we default to 40 Gbps out of 100).

The API is deliberately socket-shaped (connect/listen/accept, send/recv of
byte strings) because Thrift's ``TSocket`` wraps it directly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.netfab.fabric import Fabric, LinkDownError
from repro.sim.cluster import Node
from repro.sim.core import Simulator
from repro.sim.sync import Gate, Store
from repro.sim.units import Gbps, us

__all__ = ["TcpConn", "TcpListener", "TcpParams", "TcpStack"]


class TcpError(ConnectionError):
    """Connection-level failure (refused port, closed peer)."""


@dataclass(frozen=True)
class TcpParams:
    """IPoIB kernel-stack cost constants.

    Calibrated against published IPoIB-vs-native comparisons (e.g. the
    Hadoop-RPC-over-IB study [Lu et al., ICPP'13] and the paper's own Fig. 17
    baseline): tens-of-microsecond small-message RPC latency and <50% of
    link bandwidth.
    """

    effective_rate: float = 40 * Gbps   # achievable IPoIB goodput
    mtu: int = 65520                    # IPoIB connected-mode MTU
    syscall_cpu: float = 1.5 * us       # per send()/recv() syscall
    stack_cpu_per_seg: float = 2.0 * us # TCP/IP + IPoIB processing per segment
    copy_rate: float = 8e9              # user<->kernel copy, bytes/s of CPU
    rx_wakeup_latency: float = 8.0 * us # softirq + scheduler wakeup
    connect_setup: float = 60 * us      # 3-way handshake + socket setup


class TcpConn:
    """One direction-pair endpoint of an established connection."""

    def __init__(self, stack: "TcpStack", peer_stack: "TcpStack"):
        self.stack = stack
        self.peer_stack = peer_stack
        self.sim = stack.sim
        self._rx = bytearray()
        self._rx_gate = Gate(self.sim)
        self._closed = False
        self.peer: "TcpConn" = None  # type: ignore[assignment]
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- data path ----------------------------------------------------------
    def send(self, data: bytes):
        """Coroutine: blocking send of the whole buffer."""
        if self._closed:
            raise TcpError("send on closed connection")
        p = self.stack.params
        cpu = self.stack.node.cpu
        sim = self.sim
        # Syscall + copy into kernel buffers.
        yield cpu.compute(p.syscall_cpu + len(data) / p.copy_rate)
        view = memoryview(bytes(data))
        off = 0
        while off < len(view):
            seg = view[off:off + p.mtu]
            yield cpu.compute(p.stack_cpu_per_seg)
            try:
                yield from self.stack.fabric.transmit(
                    self.stack.node, self.peer_stack.node, len(seg),
                    rate_cap=p.effective_rate)
            except LinkDownError as e:
                # The kernel gives up after its retry budget: the connection
                # resets on both ends.
                self.close()
                raise TcpError(f"connection reset: {e}") from e
            self.peer._deliver(bytes(seg))
            off += len(seg)
        self.bytes_sent += len(data)

    def _deliver(self, segment: bytes) -> None:
        if self._closed:
            return
        self._rx += segment
        self.bytes_received += len(segment)
        self._rx_gate.fire()

    def recv(self, max_bytes: int):
        """Coroutine: blocking read of up to ``max_bytes`` (at least 1 byte).

        Returns ``b''`` when the peer has closed and the buffer is drained.
        """
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        p = self.stack.params
        cpu = self.stack.node.cpu
        while not self._rx:
            if self._closed:
                return b""
            yield self._rx_gate.wait()
            # Woken out of a blocking read: softirq -> scheduler latency.
            yield self.sim.timeout(p.rx_wakeup_latency)
        data = bytes(self._rx[:max_bytes])
        del self._rx[:len(data)]
        # Syscall + kernel->user copy.
        yield cpu.compute(p.syscall_cpu + len(data) / p.copy_rate)
        return data

    def recv_exact(self, nbytes: int):
        """Coroutine: read exactly ``nbytes`` (raises TcpError on EOF)."""
        chunks = []
        got = 0
        while got < nbytes:
            chunk = yield from self.recv(nbytes - got)
            if not chunk:
                raise TcpError(f"peer closed after {got}/{nbytes} bytes")
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._drop_from_registry()
        if self.peer is not None and not self.peer._closed:
            self.peer._closed = True
            self.peer._drop_from_registry()
            self.peer._rx_gate.fire()

    def _drop_from_registry(self) -> None:
        try:
            self.stack._conns.remove(self)
        except ValueError:
            pass

    @property
    def closed(self) -> bool:
        return self._closed


class TcpListener:
    """Accept queue for one listening port."""

    def __init__(self, stack: "TcpStack", port: int):
        self.stack = stack
        self.port = port
        self._backlog: Store = Store(stack.sim)

    def accept(self):
        """Event: fires with the server-side :class:`TcpConn`."""
        return self._backlog.get()

    def close(self) -> None:
        self.stack._listeners.pop(self.port, None)


class TcpStack:
    """Per-node kernel TCP/IPoIB stack."""

    def __init__(self, sim: Simulator, node: Node, fabric: Fabric,
                 params: Optional[TcpParams] = None):
        self.sim = sim
        self.node = node
        self.fabric = fabric
        self.params = params or TcpParams()
        self._listeners: Dict[int, TcpListener] = {}
        self._conns: list[TcpConn] = []
        node.tcp = self
        node.on_crash(self.fail)

    def fail(self) -> None:
        """Node crash: reset every live connection and stop listening.

        Peers see EOF (recv returns ``b""``), which the Thrift transport
        surfaces as END_OF_FILE -- exactly what a fail-stop peer looks like
        over real TCP once the retry budget lapses.  Idempotent.
        """
        for conn in list(self._conns):
            conn.close()
        self._conns.clear()
        self._listeners.clear()

    def listen(self, port: int) -> TcpListener:
        if port in self._listeners:
            raise TcpError(f"port {port} already listening on {self.node.name}")
        lst = TcpListener(self, port)
        self._listeners[port] = lst
        return lst

    def connect(self, remote: Node, port: int):
        """Coroutine: establish a connection; returns the client TcpConn."""
        peer_stack: TcpStack = remote.tcp
        if peer_stack is None:
            raise TcpError(f"no TCP stack on {remote.name}")
        if not getattr(remote, "up", True):
            raise TcpError(f"no route to host: {remote.name} is down")
        lst = peer_stack._listeners.get(port)
        if lst is None:
            raise TcpError(f"connection refused: {remote.name}:{port}")
        yield self.sim.timeout(self.params.connect_setup)
        client = TcpConn(self, peer_stack)
        server = TcpConn(peer_stack, self)
        client.peer = server
        server.peer = client
        self._conns.append(client)
        peer_stack._conns.append(server)
        lst._backlog.put(server)
        return client
