"""Network fabric: links, ports, and a kernel-TCP (IPoIB) byte-stream stack.

The fabric models the physical InfiniBand EDR network of the testbed: each
node owns one full-duplex 100 Gbps port into a central switch.  Two users sit
on top of it:

* :mod:`repro.verbs` -- the simulated RDMA NIC, which adds NIC-level costs
  (WQE processing, doorbells, DMA) on top of raw wire time; and
* :mod:`repro.netfab.tcp` -- a kernel TCP stack over IPoIB, which adds
  syscall/memcpy/interrupt costs and a reduced effective rate, used by the
  vanilla Thrift ``TSocket`` baseline.
"""

from repro.netfab.fabric import Fabric, FabricParams, Port
from repro.netfab.tcp import TcpConn, TcpListener, TcpParams, TcpStack

__all__ = [
    "Fabric",
    "FabricParams",
    "Port",
    "TcpConn",
    "TcpListener",
    "TcpParams",
    "TcpStack",
]
