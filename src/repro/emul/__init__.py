"""Emulated comparator RPC systems for the YCSB evaluation (Section 5.4).

The paper: "Since the four systems design their own backends and have
different data layouts, it is hard to unify them.  Therefore, we only study
their communication protocols and emulate them in this evaluation.  We make
all six candidates share the same backend implementation to avoid unfair
comparison."  This package does exactly that: each comparator is the same
generated KVService + LMDB backend, pinned to that system's communication
scheme, with the hint machinery and backend tuning disabled.
"""

from repro.emul.systems import SYSTEMS, YcsbSystem, start_system

__all__ = ["SYSTEMS", "YcsbSystem", "start_system"]
