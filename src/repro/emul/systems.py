"""The six YCSB candidates: HatKV (x2 variants) + four emulated systems."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.engine import ServicePlan, pinned_plan
from repro.hatkv.client import connect_hatkv
from repro.hatkv.idl import load_hatkv_module
from repro.hatkv.server import BASE_SID, SERVICE, HatKVServer
from repro.sim.units import KiB
from repro.testbed import Testbed
from repro.verbs.cq import PollMode

__all__ = ["SYSTEMS", "YcsbSystem", "start_system"]

#: generous bound: MultiPUT ships ~10 KB of values + keys + Thrift framing.
_KV_MAX_MSG = 24 * KiB


@dataclass(frozen=True)
class YcsbSystem:
    """One candidate of Figures 15-16."""

    name: str
    #: None -> hint-driven HatRPC; else the pinned comparator protocol.
    protocol: Optional[str]
    #: 'service' or 'function' IDL variant (HatKV only).
    variant: str = "service"
    tuned_backend: bool = False


SYSTEMS = {
    "hatkv_service": YcsbSystem("HatRPC-Service", None, variant="service",
                                tuned_backend=True),
    "hatkv_function": YcsbSystem("HatRPC-Function", None, variant="function",
                                 tuned_backend=True),
    "ar_grpc": YcsbSystem("AR-gRPC", "hybrid_eager_readrndv"),
    "herd": YcsbSystem("HERD", "herd"),
    "pilaf": YcsbSystem("Pilaf", "pilaf"),
    "rfp": YcsbSystem("RFP", "rfp"),
}


def _comparator_poll(n_clients: int) -> PollMode:
    # Comparators poll the way their papers deploy them: dedicated cores
    # while they fit, events beyond (matching the ATB baseline policy).
    return PollMode.BUSY if n_clients <= 16 else PollMode.EVENT


def start_system(tb: Testbed, system: str, n_clients: int,
                 server_node: int = 0
                 ) -> Tuple[HatKVServer, Callable]:
    """Start one candidate's server; returns (server, connect coroutine).

    ``connect(node)`` yields a KVService stub for one client connection.
    """
    try:
        spec = SYSTEMS[system]
    except KeyError:
        raise KeyError(f"unknown system {system!r}; "
                       f"known: {sorted(SYSTEMS)}") from None
    gen = load_hatkv_module(variant=spec.variant, concurrency=n_clients)
    if spec.protocol is None:
        plan = None
    else:
        plan = pinned_plan(SERVICE, gen.SERVICE_FUNCTIONS[SERVICE],
                           spec.protocol, _comparator_poll(n_clients),
                           _KV_MAX_MSG, numa_local=n_clients <= 16,
                           resp_hint=12 * KiB)
    server = HatKVServer(tb.node(server_node), gen,
                         concurrency=n_clients, plan=plan,
                         tune_backend=spec.tuned_backend).start()

    def connect(node):
        stub = yield from connect_hatkv(node, tb.node(server_node), gen,
                                        concurrency=n_clients, plan=plan)
        return stub

    return server, connect
