"""Per-call RPC tracing.

A :class:`Tracer` attached to a :class:`~repro.core.engine.HatRpcEngine`
records one span per routed call -- function, channel, protocol, request /
response sizes, and simulated start/end times -- and summarizes them per
function.  Useful for verifying what the hint machinery actually did in an
application (see ``examples/quickstart.py``-style plan inspection for the
static view; spans are the dynamic one).

Zero overhead when not attached: the engine only calls into a tracer when
one is installed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

__all__ = ["CallSpan", "FaultCounters", "FunctionSummary", "Tracer",
           "TunerDecision", "attach_tracer"]


@dataclass
class FaultCounters:
    """Recovery-path instrumentation, owned by the engine.

    Every recovery mechanism bumps exactly one counter per decision, so a
    scenario's counters are as replayable as its fault trace.
    """

    retries: int = 0                  # backoff-then-resend decisions
    timeouts: int = 0                 # per-call deadlines that fired
    reconnects: int = 0               # channels discarded for reopening
    failovers: int = 0                # calls routed off their primary channel
    failbacks: int = 0                # calls returned to a recovered primary
    breaker_opens: int = 0            # circuit-breaker CLOSED/HALF_OPEN -> OPEN
    blind_retries_prevented: int = 0  # non-idempotent resends refused
    channel_failures: int = 0         # transport errors observed on channels
    reroutes: int = 0                 # swept calls handed to another engine
    rejections: int = 0               # typed REJECTED responses received
    rejected_retries: int = 0         # rejection retries taken (post-backoff)
    budget_exhausted: int = 0         # retries refused by the retry budget

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)

    def summary_line(self) -> str:
        return ("retries={retries} timeouts={timeouts} "
                "reconnects={reconnects} failovers={failovers} "
                "failbacks={failbacks} breaker_opens={breaker_opens} "
                "blind_retries_prevented={blind_retries_prevented} "
                "channel_failures={channel_failures}"
                .format(**self.as_dict()))


@dataclass(frozen=True)
class TunerDecision:
    """One online-tuner re-plan: the replayable record of a switch/revert.

    The tuner appends one per acted-on decision (holds are counted, not
    recorded) and mirrors it into the engine's fault trace / distributed
    trace as a ``tuner_switch`` / ``tuner_revert`` event, so a converged
    run's decision sequence is as inspectable as its fault sequence.
    """

    time: float                 # sim time of the decision
    function: str
    kind: str                   # 'switch' | 'revert'
    from_choice: str            # 'protocol/poll' labels
    to_choice: str
    channel: int                # target ChannelPlan.index
    epoch: int                  # plan epoch AFTER the decision
    reason: str

    def label(self) -> str:
        return (f"[{self.kind}] {self.function}: {self.from_choice} -> "
                f"{self.to_choice} (ch{self.channel}, epoch {self.epoch}; "
                f"{self.reason})")


@dataclass(frozen=True)
class CallSpan:
    """One routed RPC call."""

    function: str
    channel: int
    protocol: str
    transport: str
    request_bytes: int
    response_bytes: int
    start: float
    end: float

    @property
    def latency(self) -> float:
        return self.end - self.start


@dataclass
class FunctionSummary:
    function: str
    calls: int = 0
    total_latency: float = 0.0
    request_bytes: int = 0
    response_bytes: int = 0
    protocols: set = field(default_factory=set)

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.calls if self.calls else 0.0


class Tracer:
    """Collects spans; attach with :func:`attach_tracer`.

    ``faults`` is bound by :func:`attach_tracer` to the *engine's*
    :class:`FaultCounters` instance -- the tracer never owns a second set
    of counters, so every recovery decision bumps exactly one counter.
    """

    def __init__(self, max_spans: Optional[int] = None):
        self.max_spans = max_spans
        self.spans: List[CallSpan] = []
        self.dropped = 0
        self.faults: Optional[FaultCounters] = None

    def record(self, span: CallSpan) -> None:
        if self.max_spans is not None and len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    def by_function(self) -> Dict[str, FunctionSummary]:
        out: Dict[str, FunctionSummary] = {}
        for span in self.spans:
            s = out.setdefault(span.function,
                               FunctionSummary(span.function))
            s.calls += 1
            s.total_latency += span.latency
            s.request_bytes += span.request_bytes
            s.response_bytes += span.response_bytes
            s.protocols.add(span.protocol or span.transport)
        return out

    def summary_lines(self) -> List[str]:
        lines = [f"{'function':16s} {'calls':>6s} {'mean lat':>10s} "
                 f"{'req B':>10s} {'resp B':>10s}  protocols"]
        for name, s in sorted(self.by_function().items()):
            lines.append(
                f"{name:16s} {s.calls:6d} {s.mean_latency * 1e6:8.2f}us "
                f"{s.request_bytes:10d} {s.response_bytes:10d}  "
                f"{','.join(sorted(s.protocols))}")
        if self.dropped:
            lines.append(f"({self.dropped} spans dropped at "
                         f"max_spans={self.max_spans})")
        if self.faults is not None and any(self.faults.as_dict().values()):
            lines.append("faults: " + self.faults.summary_line())
        return lines


def attach_tracer(engine, tracer: Optional[Tracer] = None) -> Tracer:
    """Wrap an engine's ``call`` so every routed RPC records a span."""
    tracer = tracer or Tracer()
    tracer.faults = engine.faults
    inner = engine.call

    def traced_call(fn_name: str, message: bytes, oneway: bool = False, **kw):
        route = engine.plan.routes.get(fn_name)
        start = engine.node.sim.now
        resp = yield from inner(fn_name, message, oneway=oneway, **kw)
        ch = (engine.plan.channels[route.channel]
              if route is not None else None)
        tracer.record(CallSpan(
            function=fn_name,
            channel=ch.index if ch else -1,
            protocol=ch.protocol if ch else "",
            transport=ch.transport if ch else "",
            request_bytes=len(message),
            response_bytes=len(resp or b""),
            start=start,
            end=engine.node.sim.now))
        return resp

    engine.call = traced_call
    return tracer
