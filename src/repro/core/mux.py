"""Connection multiplexing: many logical clients over a bounded QP pool.

Scaling client count by scaling QP count is how an RDMA service falls
over: every QP is a connection handshake, pinned ring memory, and -- for a
busy-polled server -- another spinner competing for cores.  A
:class:`MuxPool` caps all of that at ``size`` *pipelined* connections per
(remote node, service), however many logical clients the application
spawns: each :meth:`lease` hands out a :class:`MuxClient` bound to the
least-loaded pooled connection, and every call rides that connection's
in-flight window through the engine's asynchronous path.

Correctness hinges on two existing invariants rather than new machinery:

* stub serialization in :meth:`~repro.core.runtime.AsyncCaller.call_async`
  runs *synchronously* before the first simulator yield, so interleaved
  logical clients on one shared connection get unique Thrift seqids;
* responses are correlated by the ``0xC4`` PIP header the pipelined
  engine already stamps on every request, so out-of-order completions
  find their caller whichever logical client posted first.

The pool does not retry across slots: rejection/retry semantics stay in
each slot's engine (one shared :class:`~repro.core.resilience.RetryBudget`
passed here bounds the *pool-wide* retry rate).
"""

from __future__ import annotations

from typing import List, Optional

from repro import obs
from repro.core.runtime import HatRpcClient

__all__ = ["MuxClient", "MuxPool"]


class MuxPool:
    """A bounded pool of pipelined connections shared by logical clients.

    Construct, ``yield from pool.connect(remote)``, then :meth:`lease` one
    :class:`MuxClient` per logical client.  Extra keyword arguments
    (``plan``, ``retry_policy``, ``retry_budget``, ``deadline``, ...) are
    passed to every underlying :class:`~repro.core.runtime.HatRpcClient`;
    pass ``pipeline=True`` or a windowed plan so the slots actually
    overlap calls.
    """

    def __init__(self, node, gen_module, service_name: str, size: int = 4,
                 **client_kw):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.node = node
        self.service_name = service_name
        self.size = size
        self._clients: List[HatRpcClient] = [
            HatRpcClient(node, gen_module, service_name, **client_kw)
            for _ in range(size)]
        self._leases = [0] * size         # live leases per slot
        self.leases_granted = 0
        self._connected = False
        reg = obs.current()
        if reg is not None:
            self._m_size = reg.gauge("mux.pool_size")
            self._m_logical = reg.gauge("mux.logical_clients")
            self._m_leases = reg.counter("mux.leases")
            self._m_size.set(size)
        else:
            self._m_size = None
            self._m_logical = None
            self._m_leases = None

    def connect(self, remote_node):
        """Coroutine: open every pooled connection."""
        for client in self._clients:
            yield from client.connect(remote_node)
        self._connected = True
        return self

    def lease(self) -> "MuxClient":
        """A logical client bound to the least-loaded pooled connection."""
        if not self._connected:
            raise RuntimeError("pool not connected")
        slot = min(range(self.size), key=lambda i: self._leases[i])
        self._leases[slot] += 1
        self.leases_granted += 1
        if self._m_leases is not None:
            self._m_leases.inc()
            self._m_logical.set(sum(self._leases))
        return MuxClient(self, slot)

    def _release(self, slot: int) -> None:
        if self._leases[slot] > 0:
            self._leases[slot] -= 1
        if self._m_logical is not None:
            self._m_logical.set(sum(self._leases))

    @property
    def engines(self):
        """The pooled engines (for fault-counter aggregation in tests)."""
        return [c.engine for c in self._clients]

    def close(self) -> None:
        self._connected = False
        for client in self._clients:
            client.close()


class MuxClient:
    """One logical client: the stub-level API over a pooled connection.

    ``call`` / ``call_async`` mirror the generated stub's methods by name;
    many MuxClients share one wire connection, so holding a handle across
    other clients' calls is the normal case, not a hazard.
    """

    def __init__(self, pool: MuxPool, slot: int):
        self._pool = pool
        self._slot = slot
        self._caller = pool._clients[slot].async_caller()
        self._released = False

    def call_async(self, method: str, *args):
        """Coroutine: post ``method(*args)``; returns a StubCallHandle."""
        if self._released:
            raise RuntimeError("lease already released")
        return (yield from self._caller.call_async(method, *args))

    def call(self, method: str, *args, timeout: Optional[float] = None):
        """Coroutine: blocking call via the shared pipelined connection."""
        handle = yield from self.call_async(method, *args)
        return (yield from handle.wait(timeout))

    def release(self) -> None:
        """Return the lease (idempotent); the pooled connection lives on."""
        if not self._released:
            self._released = True
            self._pool._release(self._slot)
