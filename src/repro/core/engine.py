"""The hint-aware communication engine (Section 4.3).

From a service's hierarchical hint map (the ``SERVICE_HINTS`` emitted by the
IDL compiler) the engine derives a **channel plan**: every RPC function is
resolved on both sides, run through the Figure 6 selector, and assigned to a
channel -- one per distinct (transport, wire protocol, polling pair).
Functions with identical choices share a connection; functions with
different optimization goals are isolated on their own connections (the
paper's *optimization isolation*).

Wire-protocol agreement: both peers derive the plan from the same generated
hint map, so the mapping is deterministic.  The wire scheme (protocol +
buffer geometry) follows the server-side resolution -- the server owns the
serving resources -- with the payload hint taken as the max of both sides
(request and response travel the same connection); each side keeps its own
polling discipline and NUMA binding from its own lateral hints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.obs import trace as obstrace
from repro.core.hints import ResolvedHints, cacheable_hint, resolve_hints
from repro.core.overload import split_rej
from repro.core.pipeline import (BoundedSeqidSet, CallHandle, ChannelPipeline,
                                 PipelineDead, pack_epo, pack_pip, split_epo)
from repro.core.resilience import CircuitBreaker, RetryBudget, RetryPolicy
from repro.core.selector import (SMALL_MESSAGE_THRESHOLD,
                                 TUNER_CONCURRENCY_GRID, TUNER_PAYLOAD_GRID,
                                 ProtocolChoice, select_protocol)
from repro.core.tracing import FaultCounters
from repro.protocols import ProtocolError
from repro.sim.units import KiB
from repro.thrift.errors import (TRejectedException, TTransportException,
                                 transport_exception_from_wc)
from repro.verbs.cq import PollMode
from repro.verbs.errors import QPStateError, WCError

__all__ = ["ChannelPlan", "FunctionRoute", "HatRpcEngine", "ServicePlan",
           "build_service_plan", "pinned_plan", "plan_with_window"]

#: bounds on the in-flight window derived from the concurrency hint: at
#: least 4 (a window of 2-3 barely overlaps anything) and at most 64 (the
#: eager receive-ring depth -- a wider window could overrun the ring).
_MIN_WINDOW = 4
_MAX_WINDOW = 64

#: headroom added to the payload hint when sizing connection buffers
_MAX_MSG_SLACK = 8 * KiB
#: buffer floor for channels whose functions carry NO payload_size hint:
#: without the hint the engine cannot right-size pinned buffers and must
#: provision conservatively -- precisely the memory cost hints remove.
_UNHINTED_MAX_MSG = 128 * KiB


@dataclass(frozen=True)
class ChannelPlan:
    """One connection shared by all functions with identical choices."""

    index: int                  # service-id offset from the base
    transport: str              # 'rdma' | 'tcp'
    protocol: str               # protocols registry name ('' for tcp)
    server_poll: PollMode
    client_poll: PollMode
    server_numa: bool
    client_numa: bool
    max_msg: int
    #: largest expected response on this channel (sizes RFP's first READ)
    resp_size: int
    functions: tuple            # function names routed here
    #: True when derived from hints (enables hint-only tuning like RFP
    #: slot sizing); pinned baseline plans keep stock settings.
    hinted: bool = True
    #: in-flight window this channel is provisioned for (slot count on the
    #: wire, admission bound in the engine); 1 = classic blocking geometry.
    window: int = 1
    #: True for a channel provisioned ONLY as a tuner target: no function
    #: routes here at plan time, but the server serves it and the online
    #: tuner may re-route functions onto it at runtime.
    alternate: bool = False
    #: True for the one-sided hot-read channel provisioned by a
    #: ``cacheable(hot_promote = N)`` hint: no function routes here at plan
    #: time; the client cache steers promoted hot-key misses onto it
    #: per-call (server-bypass read instead of full RPC).
    hot_read: bool = False

    def key(self):
        return (self.transport, self.protocol, self.server_poll,
                self.client_poll, self.server_numa, self.client_numa)


@dataclass(frozen=True)
class FunctionRoute:
    channel: int                # ChannelPlan.index
    resp_hint: int              # expected response size (server payload hint)
    server_hints: ResolvedHints
    client_hints: ResolvedHints
    choice: ProtocolChoice


@dataclass(frozen=True)
class ServicePlan:
    service: str
    channels: tuple             # of ChannelPlan
    routes: Mapping[str, FunctionRoute]

    def channel_for(self, fn: str) -> ChannelPlan:
        return self.channels[self.routes[fn].channel]


def build_service_plan(service: str,
                       hint_map: Mapping[str, Any],
                       function_names: Sequence[str],
                       concurrency_override: Optional[int] = None,
                       pipeline: bool = False,
                       tunable: bool = False
                       ) -> ServicePlan:
    """Derive the channel plan for one service.

    ``hint_map`` is the generated ``SERVICE_HINTS[service]`` entry
    ({'service': {...}, 'functions': {fn: {...}}}).  ``concurrency_override``
    lets deployments inject the real expected client count when the IDL
    author left it unspecified.  ``pipeline=True`` provisions RDMA channels
    for overlapped requests: the in-flight window is sized from the
    concurrency hint (clamped to [4, 64]) and both peers must pass the same
    flag -- window size changes the wire-slot geometry.

    ``tunable=True`` (or a ``tunable = true`` hint anywhere in the service)
    appends **alternate channels**: one per selector choice reachable over
    the tuning grid that no declared channel already covers, provisioned
    with the conservative unhinted buffer floor.  They carry no functions
    at plan time; an attached :class:`~repro.core.tuner.HintTuner`
    re-routes functions onto them at runtime.  Both peers derive the same
    alternates from the same hint map, so the server is already serving
    every channel the tuner could ever pick -- the switch is pure
    client-side routing, no renegotiation.
    """
    service_map = hint_map.get("service", {})
    fn_maps = hint_map.get("functions", {})
    keyed: Dict[tuple, dict] = {}
    routes: Dict[str, dict] = {}
    for fn in function_names:
        fn_map = fn_maps.get(fn)
        server = resolve_hints(service_map, fn_map, "server")
        client = resolve_hints(service_map, fn_map, "client")
        payload_hinted = any(
            "payload_size" in layer
            for layer in (service_map.get("shared", {}),
                          service_map.get("server", {}),
                          service_map.get("client", {}),
                          *((fn_map or {}).values())))
        if concurrency_override is not None:
            server = replace(server, concurrency=concurrency_override)
            client = replace(client, concurrency=concurrency_override)
        sel_payload = max(server.payload_size, client.payload_size)
        wire = select_protocol(replace(server, payload_size=sel_payload))
        client_choice = select_protocol(replace(client,
                                                payload_size=sel_payload))
        # Channels segregate by payload class too: bulk-data functions
        # never inflate the pinned buffer geometry of small-message ones.
        small = sel_payload <= SMALL_MESSAGE_THRESHOLD
        key = (wire.transport, wire.protocol, wire.poll_mode,
               client_choice.poll_mode, server.numa_binding,
               client.numa_binding, small)
        entry = keyed.setdefault(key, {"functions": [], "max_msg": 0,
                                       "resp": 0, "conc": 1})
        entry["functions"].append(fn)
        floor = sel_payload if payload_hinted else max(sel_payload,
                                                       _UNHINTED_MAX_MSG)
        entry["max_msg"] = max(entry["max_msg"], floor + _MAX_MSG_SLACK)
        entry["resp"] = max(entry["resp"], server.payload_size)
        entry["conc"] = max(entry["conc"], server.concurrency,
                            client.concurrency)
        routes[fn] = {"key": key, "resp_hint": server.payload_size,
                      "server": server, "client": client, "choice": wire}

    reg = obs.current()
    if reg is not None:
        # Selector decision counts: one per routed function (plan build is
        # cold path, so the registry lookup here is fine).
        for r in routes.values():
            choice = r["choice"]
            reg.counter(f"selector.{choice.protocol or 'tcp'}."
                        f"{choice.poll_mode.value}").inc()

    channels = []
    key_to_index = {}
    for i, (key, entry) in enumerate(sorted(keyed.items(),
                                            key=lambda kv: repr(kv[0]))):
        transport, protocol, s_poll, c_poll, s_numa, c_numa, _small = key
        window = 1
        if pipeline and transport == "rdma":
            window = min(max(entry["conc"], _MIN_WINDOW), _MAX_WINDOW)
        channels.append(ChannelPlan(
            index=i, transport=transport, protocol=protocol,
            server_poll=s_poll, client_poll=c_poll,
            server_numa=s_numa, client_numa=c_numa,
            max_msg=entry["max_msg"],
            resp_size=entry["resp"],
            functions=tuple(entry["functions"]),
            window=window))
        key_to_index[key] = i

    if not tunable:
        tunable = any(r["server"].tunable or r["client"].tunable
                      for r in routes.values())
    if tunable:
        # Alternates get the unhinted floor: the tuner switches *because*
        # the declared payload hint went stale, so the target must fit
        # whatever actually shows up (the tuner still checks max_msg
        # against the observed payloads before routing there).
        alt_max_msg = _UNHINTED_MAX_MSG + _MAX_MSG_SLACK
        covered = {key[:6] for key, entry in keyed.items()
                   if entry["max_msg"] >= alt_max_msg}
        alts: Dict[tuple, int] = {}
        for r in routes.values():
            server, client = r["server"], r["client"]
            for conc in TUNER_CONCURRENCY_GRID:
                for payload in TUNER_PAYLOAD_GRID:
                    alt_wire = select_protocol(
                        replace(server, payload_size=payload,
                                concurrency=conc))
                    alt_client = select_protocol(
                        replace(client, payload_size=payload,
                                concurrency=conc))
                    k6 = (alt_wire.transport, alt_wire.protocol,
                          alt_wire.poll_mode, alt_client.poll_mode,
                          server.numa_binding, client.numa_binding)
                    if k6 in covered:
                        continue
                    alts[k6] = max(alts.get(k6, 1), server.concurrency,
                                   client.concurrency)
        for k6 in sorted(alts, key=repr):
            transport, protocol, s_poll, c_poll, s_numa, c_numa = k6
            window = 1
            if pipeline and transport == "rdma":
                window = min(max(alts[k6], _MIN_WINDOW), _MAX_WINDOW)
            channels.append(ChannelPlan(
                index=len(channels), transport=transport, protocol=protocol,
                server_poll=s_poll, client_poll=c_poll,
                server_numa=s_numa, client_numa=c_numa,
                max_msg=alt_max_msg, resp_size=_UNHINTED_MAX_MSG,
                functions=(), alternate=True, window=window))

    # cacheable(hot_promote >= 1) on any RDMA-planned read provisions one
    # server-bypass hot-read channel.  Like alternates it carries no
    # functions at plan time; the client cache steers promoted hot-key
    # misses onto it per-call.  Both peers derive it from the same hint
    # map, so the server is already serving it.
    hot = [(fn, r) for fn, r in routes.items()
           if r["choice"].transport == "rdma"
           and any(cacheable_hint(r[side]) is not None
                   and cacheable_hint(r[side]).hot_promote >= 1
                   for side in ("server", "client"))]
    if hot:
        h_max_msg = max(keyed[r["key"]]["max_msg"] for _, r in hot)
        h_resp = max(keyed[r["key"]]["resp"] for _, r in hot)
        h_conc = max(keyed[r["key"]]["conc"] for _, r in hot)
        window = 1
        if pipeline:
            window = min(max(h_conc, _MIN_WINDOW), _MAX_WINDOW)
        _, r0 = hot[0]
        channels.append(ChannelPlan(
            index=len(channels), transport="rdma", protocol="pilaf",
            server_poll=r0["choice"].poll_mode,
            client_poll=r0["choice"].poll_mode,
            server_numa=r0["server"].numa_binding,
            client_numa=r0["client"].numa_binding,
            max_msg=h_max_msg, resp_size=h_resp,
            functions=(), hot_read=True, window=window))

    final_routes = {
        fn: FunctionRoute(channel=key_to_index[r["key"]],
                          resp_hint=r["resp_hint"],
                          server_hints=r["server"],
                          client_hints=r["client"],
                          choice=r["choice"])
        for fn, r in routes.items()
    }
    return ServicePlan(service=service, channels=tuple(channels),
                       routes=final_routes)


def pinned_plan(service: str, function_names: Sequence[str], protocol: str,
                poll_mode: PollMode, max_msg: int,
                numa_local: bool = True,
                resp_hint: int = 4 * KiB,
                window: int = 1) -> ServicePlan:
    """A one-channel plan with a fixed protocol + polling, ignoring hints.

    This is how the paper's per-protocol baselines (e.g. "Thrift over
    Hybrid-EagerRNDV") are expressed: the same generated code and runtime,
    with the hint machinery bypassed.  ``window > 1`` provisions the channel
    for pipelined calls (both peers must agree on it).
    """
    transport = "tcp" if protocol == "tcp" else "rdma"
    channel = ChannelPlan(index=0, transport=transport,
                          protocol="" if transport == "tcp" else protocol,
                          server_poll=poll_mode, client_poll=poll_mode,
                          server_numa=numa_local, client_numa=numa_local,
                          max_msg=max_msg, resp_size=resp_hint,
                          functions=tuple(function_names), hinted=False,
                          window=window if transport == "rdma" else 1)
    choice = ProtocolChoice(transport, channel.protocol, poll_mode,
                            "pinned baseline")
    reg = obs.current()
    if reg is not None:
        reg.counter("selector.pinned").inc(len(function_names))
    routes = {fn: FunctionRoute(channel=0, resp_hint=resp_hint,
                                server_hints=ResolvedHints.from_mapping({}),
                                client_hints=ResolvedHints.from_mapping({}),
                                choice=choice)
              for fn in function_names}
    return ServicePlan(service=service, channels=(channel,), routes=routes)


def plan_with_window(plan: ServicePlan, window: int) -> ServicePlan:
    """``plan`` with every RDMA channel re-provisioned for ``window``
    in-flight calls.  Apply it on *both* peers -- the window sets the
    wire-slot geometry, which the direct-write blob exchange does not
    carry."""
    channels = tuple(
        replace(ch, window=window) if ch.transport == "rdma" else ch
        for ch in plan.channels)
    return replace(plan, channels=channels)


#: exceptions that mean "this channel's transport failed" (as opposed to
#: application errors, which ride inside successful responses)
_CHANNEL_ERRORS = (WCError, QPStateError, ProtocolError, ConnectionError,
                   TTransportException)

#: trace-event kinds that are good news: they never mark the trace for
#: always-commit (everything else in the fault trace does)
_BENIGN_TRACE_KINDS = ("failback", "tuner_switch", "tuner_revert",
                       "tuner_retire")


class _PendingCall:
    """One asynchronous call from post to completion.

    Owns the engine-side bookkeeping a blocking call does inline: the
    in-flight gauge, breaker verdicts, per-channel metrics, and the trace.
    :class:`~repro.core.pipeline.ChannelPipeline` drives ``wire`` /
    ``complete`` / ``fail``; the engine drives the rest.
    """

    __slots__ = ("engine", "fn", "route", "message", "oneway", "seqid",
                 "handle", "act", "attempt", "channel", "t_start",
                 "_gauge_idx", "epoch")

    def __init__(self, engine, fn, route, message, oneway, seqid, handle,
                 act):
        self.engine = engine
        self.fn = fn
        self.route = route
        self.message = message
        self.oneway = oneway
        self.seqid = seqid
        self.handle = handle
        self.act = act
        self.attempt = 0
        self.channel = -1
        self.t_start = engine.node.sim.now
        self._gauge_idx = None
        self.epoch = None            # tuner plan epoch riding on the wire

    @property
    def resp_hint(self):
        return self.route.resp_hint

    def wire(self, pip_seq):
        """The wire bytes: [trace envelope][pip header][epoch][message]."""
        env = self.act.envelope() if self.act is not None else b""
        pip = pack_pip(pip_seq) if pip_seq is not None else b""
        epo = pack_epo(self.epoch) if self.epoch is not None else b""
        return env + pip + epo + self.message

    def mark_inflight(self, idx: int) -> None:
        self.channel = idx
        self.handle.channel = idx
        m = self.engine._chan_metrics.get(idx)
        if m is not None:
            m[3].inc()
            self._gauge_idx = idx

    def drop_gauge(self) -> None:
        """Decrement the in-flight gauge exactly once, whatever the path."""
        if self._gauge_idx is not None:
            m = self.engine._chan_metrics.get(self._gauge_idx)
            if m is not None:
                m[3].dec()
            self._gauge_idx = None

    def complete(self, resp) -> None:
        eng = self.engine
        resp_epoch = None
        if eng.tuner is not None and resp:
            resp_epoch, resp = split_epo(resp)
        if resp:
            # A rejection frame is not a response: the request never
            # dispatched server-side.  Hand it to the engine's rejection
            # path (budgeted re-send or a typed TRejectedException).
            retry_after, resp = split_rej(resp)
            if retry_after is not None:
                eng._on_rejected(self, retry_after)
                return
        now = eng.node.sim.now
        self.drop_gauge()
        if self.seqid is not None:
            eng._sent_seqids.unpin((self.fn, self.seqid))
        eng._breaker(self.channel).record_success()
        eng.calls_routed += 1
        if eng._obs is not None:
            eng._m_calls.inc()
            eng._m_latency.record(now - self.t_start)
            m = eng._chan_metrics.get(self.channel)
            if m is not None:
                m[0].inc()
                m[1].inc(len(self.message))
                m[2].inc(len(resp or b""))
        if self.act is not None:
            self.act.end_attempt(now, status="ok")
            self.act.finish(now, status="ok",
                            resp_bytes=len(resp or b""))
        if eng.tuner is not None and not self.oneway:
            eng.tuner.observe(
                self.fn, len(self.message), now - self.t_start, now,
                self.channel,
                epoch_ok=(resp_epoch is None
                          or resp_epoch == eng.tuner.epoch))
        if eng._drain_pending:
            eng._drain_unrouted()
        self.handle._resolve(b"" if self.oneway else resp)

    def fail(self, exc: BaseException) -> None:
        eng = self.engine
        self.drop_gauge()
        if self.seqid is not None:
            eng._sent_seqids.unpin((self.fn, self.seqid))
        # Last resort before surfacing the failure: a router holding
        # replicas of this key's shard may take the call over (idempotent
        # reads only -- a re-sent write could double-apply).
        if (eng.sweep_reroute is not None and not self.handle.done
                and eng._connected and self.fn in eng.idempotent_fns):
            try:
                taken = eng.sweep_reroute(self, exc)
            except Exception:
                taken = False
            if taken:
                eng.faults.reroutes += 1
                eng._trace("reroute", self.fn, self.channel,
                           type(exc).__name__)
                if self.act is not None:
                    self.act.finish(eng.node.sim.now, status="rerouted")
                return
        if self.act is not None:
            self.act.finish(eng.node.sim.now,
                            status=type(exc).__name__)
        self.handle._fail(exc)


class HatRpcEngine:
    """Client-side engine: one protocol/TCP connection per channel plan.

    Static hints configure connections at establishment (buffer geometry,
    polling); the per-call dynamic hint path is just the function -> route
    lookup, mirroring the paper's "only pass the pointer and cache the RPC
    function type" minimization.

    Failure handling (all deterministic under a seeded ``rng``):

    * **deadline** -- an optional total per-call time budget; expiry raises
      ``TTransportException(TIMED_OUT)`` and discards the in-flight channel
      so the next call reconnects cleanly;
    * **retry** -- transport errors are retried under ``retry_policy``
      (capped exponential backoff + jitter), but only while the request has
      provably not reached the wire, or when the function is registered
      idempotent (``mark_idempotent``) -- non-idempotent writes are never
      blind-retried;
    * **breaker + failover** -- each channel has a
      :class:`~repro.core.resilience.CircuitBreaker`; while a channel's
      breaker is open, calls degrade onto the best surviving channel of the
      same plan (two-sided eager first, then other RDMA, then TCP) and fail
      back automatically once the primary's breaker re-admits traffic;
    * **rejection + budget** -- a server admission rejection (the typed
      ``0xC5`` frame) is *not* a channel failure: the breaker is not
      charged and -- because the gate runs before dispatch -- the re-send
      is safe even for non-idempotent functions, after honoring the
      server's advised ``retry_after``.  An optional shared
      :class:`~repro.core.resilience.RetryBudget` bounds the aggregate
      retry rate (transport *and* rejection retries) so a storm of
      rejections cannot amplify itself; an exhausted budget surfaces the
      typed :class:`~repro.thrift.errors.TRejectedException` immediately.

    Every decision lands in :attr:`faults` (counters) and
    :attr:`fault_trace` (an ordered, replayable list of
    ``(sim_time, kind, function, channel, detail)`` tuples).
    """

    def __init__(self, node, plan: ServicePlan,
                 base_service_id: int = 5000,
                 deadline: Optional[float] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 idempotent: Sequence[str] = (),
                 rng: Optional[random.Random] = None,
                 seqid_cache: int = 4096,
                 trace_attrs: Optional[Mapping[str, Any]] = None,
                 retry_budget: Optional[RetryBudget] = None):
        self.node = node
        self.plan = plan
        self.base_service_id = base_service_id
        self.deadline = deadline
        self.retry_policy = retry_policy or RetryPolicy()
        #: optional shared token bucket bounding this engine's retry rate
        #: (None = unlimited; pass ONE budget to many engines to bound
        #: their sum)
        self.retry_budget = retry_budget
        self.rng = rng or random.Random(0)
        self.idempotent_fns = set(idempotent)
        #: extra attributes stamped onto every call's trace (a shard router
        #: sets {"shard": N} so hint_select stages attribute per shard)
        self.trace_attrs = dict(trace_attrs or {})
        #: optional hook(entry, exc) -> bool consulted when an idempotent
        #: asynchronous call exhausts every channel of THIS engine: a
        #: returns-True taker (e.g. a shard router holding a replica's
        #: engine) assumes ownership of the entry's handle.
        self.sweep_reroute = None
        self.faults = FaultCounters()
        self.fault_trace: List[Tuple[float, str, str, int, str]] = []
        self._channels: Dict[int, Any] = {}
        self._breakers: Dict[int, CircuitBreaker] = {}
        self._failover_order: Dict[int, List[int]] = {}
        self._last_channel: Dict[int, int] = {}   # primary idx -> last used
        self._sent_seqids = BoundedSeqidSet(cap=seqid_cache)
        self._pipelines: Dict[int, ChannelPipeline] = {}
        self._connected = False
        self._closed = False
        self.calls_routed = 0
        #: optional online HintTuner (attach_tuner); None = declared hints
        #: only, and the whole tuner path costs one attribute check.
        self.tuner = None
        #: blocking calls in flight per channel (drain-and-close gating)
        self._ch_calls: Dict[int, int] = {}
        self._drain_pending = False
        # -- observability (instruments captured once; None = disabled, so
        # the per-call cost of a disabled run is one attribute check) --
        self._obs = obs.current()
        self._trc = obstrace.current()
        self._chan_metrics: Dict[int, tuple] = {}
        if self._obs is not None:
            # FaultCounters fold in as one probe group; groups with the
            # same name sum across engines at snapshot time.
            self._obs.probe("faults", self.faults.as_dict)
            self._m_calls = self._obs.counter("engine.calls")
            self._m_latency = self._obs.histogram("engine.call_latency")
        else:
            self._m_calls = None
            self._m_latency = None

    # -- lifecycle -----------------------------------------------------------
    def connect(self, remote_node, eager: bool = False):
        """Coroutine: bind to the server; channels open lazily on first use.

        Lazy establishment matters: a channel plan may include connections
        (e.g. a busy-polled latency channel) that a given client never
        exercises -- opening them eagerly would pin server-side polling
        threads for nothing.  Pass ``eager=True`` to pre-open everything
        (connection-setup-sensitive tests).

        A connect-phase failure leaves the engine cleanly closed: any
        channels already opened are torn down and ``is_open()`` is False --
        never a half-open engine holding dangling QPs.
        """
        self._remote_node = remote_node
        self._connected = True
        self._closed = False
        if eager:
            try:
                for ch in self.plan.channels:
                    yield from self._open_channel(ch)
            except BaseException:
                self.close()
                raise
        return self

    def is_open(self) -> bool:
        return self._connected

    def close(self) -> None:
        """Tear down every channel.  Idempotent.

        Resilience state is reset too: stale breakers and routing memory
        from a previous connection would otherwise leak into the next
        ``connect()`` -- e.g. a phantom ``failback`` event on the first
        call of a fresh connection because ``_last_channel`` still recorded
        the old one's failover."""
        if self._closed:
            return
        self._closed = True
        self._connected = False
        err = TTransportException(TTransportException.NOT_OPEN,
                                  "engine closed with calls in flight")
        for pipe in self._pipelines.values():
            for entry in pipe.drain():
                entry.fail(err)
        self._pipelines.clear()
        for chan in self._channels.values():
            chan.close()
        self._channels.clear()
        self._breakers.clear()
        self._last_channel.clear()

    def drain_close(self, poll: float = 1e-6):
        """Coroutine: wait until every in-flight call settles, then close.

        The polite shutdown for topology changes (a resharded-away shard,
        a migrating router): plain :meth:`close` fails whatever is still
        pipelined with NOT_OPEN, while this lets the tail drain first.
        Calls issued *after* drain_close starts extend the wait -- callers
        should stop routing new work to the engine before invoking it."""
        sim = self.node.sim
        while self._connected and (
                any(self._ch_calls.get(i, 0) for i in self._channels)
                or any(p.pending for p in self._pipelines.values())):
            yield sim.timeout(poll)
        self.close()

    def mark_idempotent(self, *fn_names: str) -> None:
        """Register functions that are safe to re-send after a failure."""
        self.idempotent_fns.update(fn_names)

    # -- online tuning -------------------------------------------------------
    def attach_tuner(self, tuner) -> None:
        """Install an online :class:`~repro.core.tuner.HintTuner`.

        The engine starts tagging RDMA requests with the tuner's plan epoch
        and feeding it one (payload, latency) sample per completed call.
        One tuner may be shared by many engines built from the same hint
        map (e.g. every client of a service): samples pool and a switch
        re-routes all of them together.
        """
        self.tuner = tuner
        tuner.bind(self)

    def retarget(self, fn: str, idx: int, choice: ProtocolChoice) -> None:
        """Re-route ``fn`` onto channel ``idx`` (the tuner's switch path).

        The target must already be in the plan -- tunable plans carry
        alternate channels for every reachable choice -- so the server is
        serving it and no wire renegotiation happens; in-flight calls
        complete on their old channel (their epoch tag marks their samples
        stale)."""
        route = self.plan.routes[fn]
        routes = dict(self.plan.routes)
        routes[fn] = replace(route, channel=idx, choice=choice)
        self.plan = replace(self.plan, routes=routes)
        self._drain_pending = True
        self._drain_unrouted()

    def _drain_unrouted(self) -> None:
        """Close channels no route references, once their last call drains.

        A tuner switch leaves the old channel open but unrouted; holding
        it open would keep its server-side poller running (a busy-polled
        connection burns a server core each) -- the exact cost the switch
        was meant to shed.  Channels with calls still in flight are left
        for the next completion to retire; a later re-route (or failover)
        simply reopens a retired channel lazily."""
        used = {r.channel for r in self.plan.routes.values()}
        pending = False
        for idx in list(self._channels):
            if idx in used:
                continue
            pipe = self._pipelines.get(idx)
            if self._ch_calls.get(idx, 0) or \
                    (pipe is not None and pipe.pending):
                pending = True
                continue
            self._retire_channel(idx)
        self._drain_pending = pending

    def _retire_channel(self, idx: int) -> None:
        """Close an idle, unrouted channel.  Unlike ``_discard_channel``
        this is not a failure: no fault counters, no breaker charge."""
        pipe = self._pipelines.pop(idx, None)
        if pipe is not None:
            pipe.drain()                   # idle: marks dead, returns []
        chan = self._channels.pop(idx, None)
        if chan is not None:
            chan.close()
            self._trace("tuner_retire", "", idx, "unrouted channel closed")

    # -- channels ------------------------------------------------------------
    def _open_channel(self, ch):
        from repro.core.runtime import RdmaChannel, TcpChannel  # cycle-free
        sid = self.base_service_id + ch.index
        if ch.transport == "tcp":
            chan = TcpChannel(self.node, self._remote_node, sid)
            yield from chan.open()
        else:
            chan = RdmaChannel(self.node, ch)
            yield from chan.open(self._remote_node, sid)
        self._channels[ch.index] = chan
        if self._obs is not None and ch.index not in self._chan_metrics:
            proto = ch.protocol or "tcp"
            self._chan_metrics[ch.index] = (
                self._obs.counter(f"engine.{proto}.ops"),
                self._obs.counter(f"engine.{proto}.req_bytes"),
                self._obs.counter(f"engine.{proto}.resp_bytes"),
                self._obs.gauge(f"engine.ch{ch.index}.inflight"),
                self._obs.gauge(f"engine.ch{ch.index}.window_occupancy"),
            )
            self._obs.counter("engine.channels_opened").inc()
        return chan

    def _breaker(self, idx: int) -> CircuitBreaker:
        br = self._breakers.get(idx)
        if br is None:
            def opened(_br, _idx=idx):
                self.faults.breaker_opens += 1
                self._trace("breaker_open", "", _idx)
            br = CircuitBreaker(self.node.sim, on_open=opened)
            self._breakers[idx] = br
        return br

    def _candidates(self, primary: int) -> List[int]:
        """Failover order for a primary channel: primary first, then
        two-sided eager channels, then other RDMA, then TCP."""
        order = self._failover_order.get(primary)
        if order is None:
            def rank(ch: ChannelPlan) -> tuple:
                if ch.index == primary:
                    tier = 0
                elif ch.transport == "rdma" and ch.protocol == "eager_sendrecv":
                    tier = 1
                elif ch.transport == "rdma":
                    tier = 2
                else:
                    tier = 3
                return (tier, ch.index)
            order = [ch.index for ch in sorted(self.plan.channels, key=rank)]
            self._failover_order[primary] = order
        return order

    def _discard_channel(self, idx: int) -> None:
        pipe = self._pipelines.pop(idx, None)
        if pipe is not None and not pipe.dead:
            # Sweeps the pipeline's in-flight entries through _pipeline_dead
            # (the pipe is popped first, so the re-pop there is a no-op).
            pipe._die(ConnectionError(f"channel {idx} discarded"))
        chan = self._channels.pop(idx, None)
        if chan is not None:
            chan.close()
            self.faults.reconnects += 1

    def _trace(self, kind: str, fn: str, channel: int, detail: str = ""
               ) -> None:
        now = self.node.sim.now
        self.fault_trace.append((now, kind, fn, channel, detail))
        if self._trc is not None:
            # Mirror the fault event into the distributed trace of the call
            # it happened inside (the context rides on the sim process; the
            # breaker's on_open fires synchronously in the caller, so it is
            # reachable here too).  Any fault marks the trace for
            # always-commit -- except failback, which is good news.
            ctx = obstrace.active(self.node.sim)
            if ctx is not None:
                ctx.event(kind, now, fault=kind not in _BENIGN_TRACE_KINDS,
                          fn=fn, channel=channel, detail=detail)

    # -- the call path -------------------------------------------------------
    def call(self, fn_name: str, message: bytes, oneway: bool = False,
             seqid: Optional[int] = None,
             deadline: Optional[float] = None,
             ser_start: Optional[float] = None):
        """Coroutine: route one serialized message; returns response bytes.

        ``seqid`` (from the Thrift message header) gates idempotency: a
        non-idempotent (fn, seqid) pair is sent onto the wire at most once,
        ever -- retrying it requires the application to re-issue the call
        under a fresh seqid.  ``deadline`` overrides the engine default for
        this call.  ``ser_start`` is the sim time serialization of
        ``message`` began (TRdma records it at ``write_message_begin``);
        it only feeds the "serialize" trace stage.
        """
        if not self._connected:
            raise RuntimeError("engine not connected")
        route = self.plan.routes.get(fn_name)
        if route is None:
            raise KeyError(f"function {fn_name!r} not in service plan "
                           f"for {self.plan.service!r}")
        pipe = self._pipelines.get(route.channel)
        if pipe is not None and not pipe.dead and pipe.pending:
            # A pipeline is active on this channel: a second blocking
            # receiver on the same CQ would steal its completions, so the
            # call rides the async path under the same window.
            handle = yield from self.call_async(fn_name, message,
                                                oneway=oneway, seqid=seqid)
            budget = deadline if deadline is not None else self.deadline
            return (yield from handle.wait(budget))
        if self._trc is None:
            return (yield from self._call_inner(fn_name, route, message,
                                                oneway, seqid, deadline,
                                                None))
        # -- traced path: open the trace, ride it on the sim process ---------
        sim = self.node.sim
        ch = self.plan.channels[route.channel]
        act = self._trc.start_call(
            fn_name, self.node.name, lambda: sim.now,
            attrs={
                "perf_goal": route.server_hints.perf_goal,
                "payload_size": route.server_hints.payload_size,
                "concurrency": route.server_hints.concurrency,
                "protocol": ch.protocol or "tcp",
                "transport": ch.transport,
                "rationale": route.choice.rationale,
                "req_bytes": len(message),
                "oneway": oneway,
                **self.trace_attrs,
            })
        act.stage("serialize",
                  sim.now if ser_start is None else ser_start, sim.now,
                  nbytes=len(message))
        # The dynamic-hint path is the route lookup above -- cached
        # function type, so it costs no simulated time.
        act.stage("hint_select", sim.now, sim.now,
                  channel=route.channel, rationale=route.choice.rationale,
                  **self.trace_attrs)
        p = sim.active_process
        prev_ctx = p.trace_ctx if p is not None else None
        if p is not None:
            p.trace_ctx = act
        try:
            resp = yield from self._call_inner(fn_name, route, message,
                                               oneway, seqid, deadline, act)
        except BaseException as exc:
            act.finish(sim.now, status=type(exc).__name__)
            raise
        else:
            act.stage("deserialize", sim.now, sim.now,
                      nbytes=len(resp or b""))
            act.finish(sim.now, status="ok", resp_bytes=len(resp or b""))
            return resp
        finally:
            if p is not None:
                p.trace_ctx = prev_ctx

    def _call_inner(self, fn_name: str, route: FunctionRoute,
                    message: bytes, oneway: bool, seqid: Optional[int],
                    deadline: Optional[float], act):
        budget = deadline if deadline is not None else self.deadline
        if budget is None:
            return (yield from self._call_with_recovery(
                fn_name, route, message, oneway, seqid, act))
        sim = self.node.sim
        # The spawned recovery process inherits the caller's trace_ctx, so
        # spans recorded inside it land in the same trace.
        attempt = sim.process(
            self._call_with_recovery(fn_name, route, message, oneway, seqid,
                                     act),
            name=f"call-{fn_name}")
        expiry = sim.timeout(budget)
        try:
            yield sim.any_of([attempt, expiry])
        except Exception:
            pass  # the attempt failed before the deadline; inspected below
        if attempt.triggered:
            return attempt.value       # re-raises the failure if there was one
        # Deadline expired with the attempt still in flight: cancel it and
        # discard whatever channel it was using -- its wire state is unknown.
        attempt.defuse()
        attempt.interrupt("deadline")
        if act is not None:
            # The interrupted process never reaches its own end_attempt;
            # close the span here so the committed trace has no dangling
            # attempt and stage attribution doesn't miscount the tail.
            act.end_attempt(sim.now, status="interrupted")
        self.faults.timeouts += 1
        self._trace("timeout", fn_name, route.channel, f"budget={budget}")
        self._discard_channel(self._last_channel.get(route.channel,
                                                     route.channel))
        raise TTransportException(
            TTransportException.TIMED_OUT,
            f"{fn_name} exceeded its {budget * 1e6:.0f}us deadline")

    def _call_with_recovery(self, fn_name: str, route: FunctionRoute,
                            message: bytes, oneway: bool,
                            seqid: Optional[int], act=None):
        """Coroutine wrapper: however the recovery loop exits (success,
        exhaustion, deadline interrupt), the seqid comes off the live pin
        so the ledger can evict it once it is merely historical."""
        try:
            return (yield from self._recovery_loop(fn_name, route, message,
                                                   oneway, seqid, act))
        finally:
            if seqid is not None:
                self._sent_seqids.unpin((fn_name, seqid))

    def _recovery_loop(self, fn_name: str, route: FunctionRoute,
                       message: bytes, oneway: bool,
                       seqid: Optional[int], act=None):
        policy = self.retry_policy
        idempotent = fn_name in self.idempotent_fns
        call_key = (fn_name, seqid)
        if not idempotent and seqid is not None and \
                call_key in self._sent_seqids:
            # The seqid gate: this exact message already reached the wire
            # once; re-sending it could double-apply a write.
            self.faults.blind_retries_prevented += 1
            self._trace("blind_retry_prevented", fn_name, route.channel,
                        f"seqid={seqid}")
            raise TTransportException(
                TTransportException.UNKNOWN,
                f"refusing to re-send non-idempotent {fn_name} seqid={seqid};"
                " re-issue the call under a fresh seqid")
        last_exc: Optional[Exception] = None
        t_start = self.node.sim.now
        for attempt in range(policy.max_attempts):
            idx = self._pick_channel(route, len(message))
            if idx is None:
                break  # every candidate's breaker is open
            breaker = self._breaker(idx)
            sent = False
            inflight = None
            if act is not None:
                ch_plan = self.plan.channels[idx]
                act.begin_attempt(self.node.sim.now, attempt=attempt,
                                  channel=idx,
                                  protocol=ch_plan.protocol or "tcp",
                                  transport=ch_plan.transport)
            try:
                chan = self._channels.get(idx)
                if chan is None:
                    t_conn = self.node.sim.now
                    chan = yield from self._open_channel(
                        self.plan.channels[idx])
                    if act is not None:
                        act.stage("connect", t_conn, self.node.sim.now,
                                  channel=idx)
                    if self.tuner is not None and idx not in {
                            r.channel for r in self.plan.routes.values()}:
                        # The tuner retargeted away from this channel while
                        # its handshake was in flight -- the retarget-time
                        # drain could not see it.  Run the committed call,
                        # then let the completion-side drain retire it.
                        self._drain_pending = True
                sent = True
                if seqid is not None:
                    # Pinned while in flight: cap pressure from later calls
                    # must not evict a live seqid (that would silently
                    # re-open the duplicate-send window).
                    self._sent_seqids.add(call_key, pinned=True)
                self._note_routing(fn_name, route, idx)
                if self._obs is not None:
                    m = self._chan_metrics.get(idx)
                    if m is not None:
                        inflight = m[3]
                        inflight.inc()
                # The wire envelope carries this attempt's span id, so the
                # server span parents to the attempt that reached it.  It
                # is empty for unsampled, unfaulted calls.
                wire_msg = message if act is None \
                    else act.envelope() + message
                if self.tuner is not None \
                        and self.plan.channels[idx].transport == "rdma":
                    env = b"" if act is None else act.envelope()
                    wire_msg = env + pack_epo(self.tuner.epoch) + message
                self._ch_calls[idx] = self._ch_calls.get(idx, 0) + 1
                try:
                    resp = yield from chan.call(wire_msg,
                                                resp_hint=route.resp_hint,
                                                oneway=oneway, trace=act)
                finally:
                    # Every exit path decrements -- including a deadline
                    # interrupt delivered into chan.call, which used to
                    # leave the gauge permanently high.
                    self._ch_calls[idx] -= 1
                    if inflight is not None:
                        inflight.dec()
                        inflight = None
            except _CHANNEL_ERRORS as exc:
                last_exc = self._map_error(exc)
                if self.tuner is not None and isinstance(exc, ProtocolError):
                    # Oversize payloads are the tuner's urgent case: the
                    # declared payload hint is provably wrong, not merely
                    # slow, so it may retarget without the usual dwell.
                    self.tuner.observe_error(fn_name, len(message), idx)
                if act is not None:
                    # Close the attempt before recording events so faults
                    # read as root-level siblings of the attempt subtrees.
                    act.end_attempt(self.node.sim.now, status="error",
                                    error=type(exc).__name__)
                breaker.record_failure()
                self.faults.channel_failures += 1
                self._trace("channel_error", fn_name, idx,
                            type(exc).__name__)
                self._discard_channel(idx)
                if sent and not idempotent:
                    self.faults.blind_retries_prevented += 1
                    self._trace("blind_retry_prevented", fn_name, idx,
                                f"seqid={seqid}")
                    raise last_exc from exc
                if attempt + 1 < policy.max_attempts:
                    if not self._spend_retry(fn_name, idx):
                        break
                    self.faults.retries += 1
                    delay = policy.backoff(attempt, self.rng)
                    self._trace("retry", fn_name, idx,
                                f"attempt={attempt + 1} backoff={delay:.2e}")
                    t_back = self.node.sim.now
                    yield self.node.sim.timeout(delay)
                    if act is not None:
                        act.stage("backoff", t_back, self.node.sim.now,
                                  attempt=attempt + 1)
                continue
            resp_epoch = None
            if self.tuner is not None and resp:
                # The server echoes the request's epoch tag ahead of the
                # response (rejections come back untagged; split_epo
                # passes them through).
                resp_epoch, resp = split_epo(resp)
            if resp:
                retry_after, resp = split_rej(resp)
                if retry_after is not None:
                    # Admission rejection: the request provably never
                    # dispatched, so the re-send is safe regardless of
                    # idempotency, and the transport worked -- the breaker
                    # is credited, not charged.
                    breaker.record_success()
                    self.faults.rejections += 1
                    self._trace("rejected", fn_name, idx,
                                f"retry_after={retry_after:.2e}")
                    if act is not None:
                        act.end_attempt(self.node.sim.now, status="rejected")
                    last_exc = TRejectedException(retry_after)
                    if attempt + 1 < policy.max_attempts \
                            and self._spend_retry(fn_name, idx):
                        self.faults.rejected_retries += 1
                        delay = max(retry_after,
                                    policy.backoff(attempt, self.rng))
                        self._trace("rejected_retry", fn_name, idx,
                                    f"attempt={attempt + 1} "
                                    f"backoff={delay:.2e}")
                        t_back = self.node.sim.now
                        yield self.node.sim.timeout(delay)
                        if act is not None:
                            act.stage("backoff", t_back, self.node.sim.now,
                                      attempt=attempt + 1)
                        continue
                    raise last_exc
            if act is not None:
                act.end_attempt(self.node.sim.now, status="ok")
            breaker.record_success()
            self.calls_routed += 1
            if self._obs is not None:
                self._m_calls.inc()
                self._m_latency.record(self.node.sim.now - t_start)
                m = self._chan_metrics.get(idx)
                if m is not None:
                    m[0].inc()
                    m[1].inc(len(message))
                    m[2].inc(len(resp or b""))
            if self.tuner is not None and not oneway:
                self.tuner.observe(
                    fn_name, len(message), self.node.sim.now - t_start,
                    self.node.sim.now, idx,
                    epoch_ok=(resp_epoch is None
                              or resp_epoch == self.tuner.epoch))
            if self._drain_pending:
                self._drain_unrouted()
            return resp
        if last_exc is not None:
            raise last_exc
        raise TTransportException(
            TTransportException.NOT_OPEN,
            f"no channel available for {fn_name}: all circuit breakers open")

    def hot_read_channel(self) -> Optional[int]:
        """Index of the plan's one-sided hot-read channel, if provisioned."""
        for ch in self.plan.channels:
            if ch.hot_read:
                return ch.index
        return None

    def channel_saturated(self, fn_name: str) -> bool:
        """True when ``fn_name``'s planned channel has a full in-flight
        window -- the next call would block for a credit.

        A cheap congestion signal for steering decisions: a one-sided
        hot read costs more round trips than the two-sided RPC, so the
        hot-key cache offloads a promoted miss only when the RPC window
        is already the bottleneck (credits exhausted) and the extra
        trips buy queue relief rather than pure latency."""
        route = self.plan.routes.get(fn_name)
        if route is None:
            return False
        pipe = self._pipelines.get(route.channel)
        return pipe is not None and pipe._credits <= 0

    # -- the asynchronous (pipelined) call path ------------------------------
    def call_async(self, fn_name: str, message: bytes, oneway: bool = False,
                   seqid: Optional[int] = None,
                   channel: Optional[int] = None):
        """Coroutine: post one serialized message without waiting for the
        response; returns a :class:`~repro.core.pipeline.CallHandle`.

        Up to the channel's ``window`` calls overlap on one connection;
        posting the window-plus-first call blocks here until a slot frees
        (the backpressure).  Results -- and failures -- surface at
        ``yield from handle.wait()``.  Channels whose protocol cannot
        pipeline (TCP, rendezvous) still work: the window degrades to one
        call at a time, preserving the API.

        ``channel`` overrides the planned channel for this one call (the
        hot-key cache steers promoted misses onto the hot-read channel
        this way); failover candidates are still ranked from the override.
        """
        if not self._connected:
            raise RuntimeError("engine not connected")
        route = self.plan.routes.get(fn_name)
        if route is None:
            raise KeyError(f"function {fn_name!r} not in service plan "
                           f"for {self.plan.service!r}")
        if channel is not None and channel != route.channel:
            if not 0 <= channel < len(self.plan.channels):
                raise KeyError(f"channel override {channel} out of range "
                               f"for {self.plan.service!r}")
            route = replace(route, channel=channel)
        if fn_name not in self.idempotent_fns and seqid is not None \
                and (fn_name, seqid) in self._sent_seqids:
            self.faults.blind_retries_prevented += 1
            self._trace("blind_retry_prevented", fn_name, route.channel,
                        f"seqid={seqid}")
            raise TTransportException(
                TTransportException.UNKNOWN,
                f"refusing to re-send non-idempotent {fn_name} seqid={seqid};"
                " re-issue the call under a fresh seqid")
        sim = self.node.sim
        handle = CallHandle(sim, fn_name)
        handle._engine = self
        act = None
        if self._trc is not None:
            ch = self.plan.channels[route.channel]
            act = self._trc.start_call(
                fn_name, self.node.name, lambda: sim.now,
                attrs={
                    "perf_goal": route.server_hints.perf_goal,
                    "protocol": ch.protocol or "tcp",
                    "transport": ch.transport,
                    "window": ch.window,
                    "req_bytes": len(message),
                    "oneway": oneway,
                    "async": True,
                    **self.trace_attrs,
                })
        entry = _PendingCall(self, fn_name, route, message, oneway, seqid,
                             handle, act)
        yield from self._submit_entry(entry)
        return handle

    def call_many(self, calls: Sequence[tuple],
                  return_exceptions: bool = False):
        """Coroutine: issue a batch of calls under the in-flight window and
        gather every result.

        ``calls`` is a sequence of ``(fn_name, message)`` (optionally
        ``(fn_name, message, oneway, seqid)``) tuples.  All requests are
        posted before the first response is awaited, so per-call round-trip
        latency amortizes across the batch.  Results come back in call
        order; with ``return_exceptions`` per-call failures are returned in
        place, otherwise the first failure is raised after the batch
        settles.
        """
        sim = self.node.sim
        batch = None
        if self._trc is not None:
            batch = self._trc.start_call(
                "call_many", self.node.name, lambda: sim.now,
                attrs={"n": len(calls), "service": self.plan.service})
        try:
            t0 = sim.now
            handles = []
            for item in calls:
                fn, message = item[0], item[1]
                oneway = item[2] if len(item) > 2 else False
                seqid = item[3] if len(item) > 3 else None
                handles.append((yield from self.call_async(
                    fn, message, oneway=oneway, seqid=seqid)))
            if batch is not None:
                batch.stage("post", t0, sim.now, n=len(handles))
            t1 = sim.now
            results: List[Any] = []
            first_exc: Optional[Exception] = None
            for h in handles:
                try:
                    results.append((yield from h.wait()))
                except Exception as exc:
                    if first_exc is None:
                        first_exc = exc
                    results.append(exc)
            if batch is not None:
                batch.stage("gather", t1, sim.now)
        except BaseException as exc:
            if batch is not None:
                batch.finish(sim.now, status=type(exc).__name__)
            raise
        if batch is not None:
            batch.finish(sim.now, status="ok" if first_exc is None
                         else type(first_exc).__name__)
        if first_exc is not None and not return_exceptions:
            raise first_exc
        return results

    def _submit_entry(self, entry: _PendingCall):
        """Coroutine: put one pending call on a channel, retrying channel
        establishment / admission failures under the retry policy.  On
        exhaustion the entry is *failed*, never raised -- async failures
        surface at the handle."""
        policy = self.retry_policy
        sim = self.node.sim
        while entry.attempt < policy.max_attempts:
            idx = self._pick_channel(entry.route, len(entry.message))
            if idx is None:
                break  # every candidate's breaker is open
            breaker = self._breaker(idx)
            try:
                pipe = yield from self._pipeline_for(idx)
                if self.tuner is not None and idx not in {
                        r.channel for r in self.plan.routes.values()}:
                    # Retargeted mid-open: commit this call, drain after.
                    self._drain_pending = True
            except _CHANNEL_ERRORS as exc:
                breaker.record_failure()
                self.faults.channel_failures += 1
                self._trace("channel_error", entry.fn, idx,
                            type(exc).__name__)
                self._discard_channel(idx)
                entry.attempt += 1
                if entry.attempt < policy.max_attempts \
                        and self._spend_retry(entry.fn, idx):
                    yield from self._async_backoff(entry, idx)
                    continue
                entry.fail(self._map_error(exc))
                return
            if entry.act is not None:
                ch_plan = self.plan.channels[idx]
                entry.act.begin_attempt(sim.now, attempt=entry.attempt,
                                        channel=idx,
                                        protocol=ch_plan.protocol or "tcp",
                                        transport=ch_plan.transport)
            if entry.seqid is not None:
                self._sent_seqids.add((entry.fn, entry.seqid), pinned=True)
            self._note_routing(entry.fn, entry.route, idx)
            entry.epoch = (self.tuner.epoch if self.tuner is not None
                           and self.plan.channels[idx].transport == "rdma"
                           else None)
            p = sim.active_process
            prev_ctx = p.trace_ctx if p is not None else None
            if p is not None:
                p.trace_ctx = entry.act
            try:
                yield from pipe.submit(entry)
            except PipelineDead as exc:
                if entry.act is not None:
                    entry.act.end_attempt(sim.now, status="error",
                                          error="PipelineDead")
                cause = exc.__cause__
                entry.attempt += 1
                if cause is None:
                    # Died while this entry waited for a window slot: it
                    # never reached the wire (the sweep already charged the
                    # breaker), so re-picking is always safe.
                    if entry.attempt < policy.max_attempts \
                            and self._connected:
                        continue
                    entry.fail(self._map_error(exc))
                    return
                # The post itself failed: wire state is unknown.
                breaker.record_failure()
                self.faults.channel_failures += 1
                if self.tuner is not None \
                        and isinstance(cause, ProtocolError):
                    self.tuner.observe_error(entry.fn, len(entry.message),
                                             idx)
                self._trace("channel_error", entry.fn, idx,
                            type(cause).__name__)
                self._discard_channel(idx)
                if entry.fn not in self.idempotent_fns:
                    self.faults.blind_retries_prevented += 1
                    self._trace("blind_retry_prevented", entry.fn, idx,
                                f"seqid={entry.seqid}")
                    entry.fail(self._map_error(cause))
                    return
                if entry.attempt < policy.max_attempts \
                        and self._spend_retry(entry.fn, idx):
                    yield from self._async_backoff(entry, idx)
                    continue
                entry.fail(self._map_error(cause))
                return
            finally:
                if p is not None:
                    p.trace_ctx = prev_ctx
            entry.mark_inflight(idx)
            return
        entry.fail(TTransportException(
            TTransportException.NOT_OPEN,
            f"no channel available for {entry.fn}: "
            "all circuit breakers open"))

    def _async_backoff(self, entry: _PendingCall, idx: int):
        self.faults.retries += 1
        delay = self.retry_policy.backoff(entry.attempt - 1, self.rng)
        self._trace("retry", entry.fn, idx,
                    f"attempt={entry.attempt} backoff={delay:.2e}")
        t_back = self.node.sim.now
        yield self.node.sim.timeout(delay)
        if entry.act is not None:
            entry.act.stage("backoff", t_back, self.node.sim.now,
                            attempt=entry.attempt)

    def _pipeline_for(self, idx: int):
        """Coroutine: the live pipeline for channel ``idx``, opening the
        channel (and creating the pipeline) on first use."""
        pipe = self._pipelines.get(idx)
        if pipe is not None and not pipe.dead:
            return pipe
        chan = self._channels.get(idx)
        if chan is None:
            chan = yield from self._open_channel(self.plan.channels[idx])
        m = self._chan_metrics.get(idx)
        pipe = ChannelPipeline(self.node.sim, chan,
                               window=self.plan.channels[idx].window,
                               index=idx, error_types=_CHANNEL_ERRORS,
                               on_dead=self._pipeline_dead,
                               occupancy=m[4] if m is not None else None)
        self._pipelines[idx] = pipe
        return pipe

    def _pipeline_dead(self, pipe: ChannelPipeline, entries, exc) -> None:
        """A channel died with calls in flight: charge the breaker, discard
        the connection, then retry idempotent calls elsewhere and fail the
        rest -- one in-flight call's fate never blocks its neighbors'."""
        idx = pipe.index
        self._breaker(idx).record_failure()
        self.faults.channel_failures += 1
        self._trace("channel_error", entries[0].fn if entries else "", idx,
                    type(exc).__name__)
        self._pipelines.pop(idx, None)
        self._discard_channel(idx)
        mapped = self._map_error(exc)
        policy = self.retry_policy
        now = self.node.sim.now
        for entry in entries:
            entry.drop_gauge()
            if entry.act is not None:
                entry.act.end_attempt(now, status="error",
                                      error=type(exc).__name__)
            entry.attempt += 1
            if entry.fn not in self.idempotent_fns:
                self.faults.blind_retries_prevented += 1
                self._trace("blind_retry_prevented", entry.fn, idx,
                            f"seqid={entry.seqid}")
                entry.fail(mapped)
            elif entry.attempt < policy.max_attempts and self._connected \
                    and self._spend_retry(entry.fn, idx):
                self.faults.retries += 1
                delay = policy.backoff(entry.attempt - 1, self.rng)
                self._trace("retry", entry.fn, idx,
                            f"attempt={entry.attempt} backoff={delay:.2e}")
                self.node.sim.process(self._resubmit(entry, delay),
                                      name=f"resubmit-{entry.fn}")
            else:
                entry.fail(mapped)

    def _on_rejected(self, entry: _PendingCall, retry_after: float) -> None:
        """A pipelined call came back REJECTED.

        Rejection is load, not failure: the channel stays up, the breaker
        is credited, and -- because admission runs before dispatch -- the
        re-send is safe whatever the function's idempotency.  The entry is
        re-submitted after honoring the server's ``retry_after`` (under the
        retry budget), or failed with the typed exception.  Deliberately
        NOT routed through ``entry.fail``: rerouting a rejection onto a
        replica would shift the storm sideways instead of shedding it."""
        now = self.node.sim.now
        entry.drop_gauge()
        self._breaker(entry.channel).record_success()
        self.faults.rejections += 1
        self._trace("rejected", entry.fn, entry.channel,
                    f"retry_after={retry_after:.2e}")
        if entry.act is not None:
            entry.act.end_attempt(now, status="rejected")
        entry.attempt += 1
        if entry.attempt < self.retry_policy.max_attempts \
                and self._connected \
                and self._spend_retry(entry.fn, entry.channel):
            self.faults.rejected_retries += 1
            delay = max(retry_after,
                        self.retry_policy.backoff(entry.attempt - 1,
                                                  self.rng))
            self._trace("rejected_retry", entry.fn, entry.channel,
                        f"attempt={entry.attempt} backoff={delay:.2e}")
            self.node.sim.process(self._resubmit(entry, delay),
                                  name=f"resubmit-{entry.fn}")
            return
        if entry.seqid is not None:
            self._sent_seqids.unpin((entry.fn, entry.seqid))
        if entry.act is not None:
            entry.act.finish(now, status="TRejectedException")
        entry.handle._fail(TRejectedException(retry_after))

    def _spend_retry(self, fn: str, idx: int) -> bool:
        """One retry decision against the shared budget (None = unlimited).
        A denial is terminal for the call: the typed error surfaces instead
        of another wire attempt."""
        if self.retry_budget is None:
            return True
        if self.retry_budget.try_spend():
            return True
        self.faults.budget_exhausted += 1
        self._trace("retry_budget_exhausted", fn, idx)
        return False

    def _resubmit(self, entry: _PendingCall, delay: float):
        """Detached process: back off, then re-run submission for one
        swept in-flight call."""
        t_back = self.node.sim.now
        yield self.node.sim.timeout(delay)
        if entry.act is not None:
            entry.act.stage("backoff", t_back, self.node.sim.now,
                            attempt=entry.attempt)
        try:
            yield from self._submit_entry(entry)
        except Exception as exc:
            entry.fail(exc)

    def _note_abandoned(self, handle: CallHandle) -> None:
        """A waiter timed out on a still-in-flight pipelined call: account
        it as a timeout, but leave the wire alone -- the late response is
        dropped on arrival and window neighbors keep flowing."""
        self.faults.timeouts += 1
        self._trace("timeout", handle.fn, handle.channel,
                    "abandoned in-flight (pipelined)")

    def _pick_channel(self, route: FunctionRoute, msg_len: int
                      ) -> Optional[int]:
        for idx in self._candidates(route.channel):
            ch = self.plan.channels[idx]
            if idx != route.channel and msg_len > ch.max_msg:
                continue  # message would not fit the fallback's buffers
            if self._breaker(idx).allow():
                return idx
        return None

    def _note_routing(self, fn_name: str, route: FunctionRoute, idx: int
                      ) -> None:
        prev = self._last_channel.get(route.channel, route.channel)
        if idx != route.channel:
            self.faults.failovers += 1
            self._trace("failover", fn_name, idx,
                        f"primary={route.channel}")
        elif prev != route.channel:
            self.faults.failbacks += 1
            self._trace("failback", fn_name, idx, f"from={prev}")
        self._last_channel[route.channel] = idx

    @staticmethod
    def _map_error(exc: Exception) -> Exception:
        """Normalize transport failures onto the Thrift error taxonomy."""
        if isinstance(exc, WCError):
            return transport_exception_from_wc(exc.status)
        if isinstance(exc, TTransportException):
            return exc
        if isinstance(exc, ConnectionError):
            return TTransportException(TTransportException.NOT_OPEN,
                                       str(exc))
        return TTransportException(TTransportException.UNKNOWN, str(exc))
