"""The hint-aware communication engine (Section 4.3).

From a service's hierarchical hint map (the ``SERVICE_HINTS`` emitted by the
IDL compiler) the engine derives a **channel plan**: every RPC function is
resolved on both sides, run through the Figure 6 selector, and assigned to a
channel -- one per distinct (transport, wire protocol, polling pair).
Functions with identical choices share a connection; functions with
different optimization goals are isolated on their own connections (the
paper's *optimization isolation*).

Wire-protocol agreement: both peers derive the plan from the same generated
hint map, so the mapping is deterministic.  The wire scheme (protocol +
buffer geometry) follows the server-side resolution -- the server owns the
serving resources -- with the payload hint taken as the max of both sides
(request and response travel the same connection); each side keeps its own
polling discipline and NUMA binding from its own lateral hints.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.hints import ResolvedHints, resolve_hints
from repro.core.selector import (SMALL_MESSAGE_THRESHOLD, ProtocolChoice,
                                 select_protocol)
from repro.protocols import ProtoConfig, get_protocol
from repro.sim.units import KiB
from repro.verbs.cq import PollMode

__all__ = ["ChannelPlan", "FunctionRoute", "HatRpcEngine", "ServicePlan",
           "build_service_plan", "pinned_plan"]

#: headroom added to the payload hint when sizing connection buffers
_MAX_MSG_SLACK = 8 * KiB
#: buffer floor for channels whose functions carry NO payload_size hint:
#: without the hint the engine cannot right-size pinned buffers and must
#: provision conservatively -- precisely the memory cost hints remove.
_UNHINTED_MAX_MSG = 128 * KiB


@dataclass(frozen=True)
class ChannelPlan:
    """One connection shared by all functions with identical choices."""

    index: int                  # service-id offset from the base
    transport: str              # 'rdma' | 'tcp'
    protocol: str               # protocols registry name ('' for tcp)
    server_poll: PollMode
    client_poll: PollMode
    server_numa: bool
    client_numa: bool
    max_msg: int
    #: largest expected response on this channel (sizes RFP's first READ)
    resp_size: int
    functions: tuple            # function names routed here
    #: True when derived from hints (enables hint-only tuning like RFP
    #: slot sizing); pinned baseline plans keep stock settings.
    hinted: bool = True

    def key(self):
        return (self.transport, self.protocol, self.server_poll,
                self.client_poll, self.server_numa, self.client_numa)


@dataclass(frozen=True)
class FunctionRoute:
    channel: int                # ChannelPlan.index
    resp_hint: int              # expected response size (server payload hint)
    server_hints: ResolvedHints
    client_hints: ResolvedHints
    choice: ProtocolChoice


@dataclass(frozen=True)
class ServicePlan:
    service: str
    channels: tuple             # of ChannelPlan
    routes: Mapping[str, FunctionRoute]

    def channel_for(self, fn: str) -> ChannelPlan:
        return self.channels[self.routes[fn].channel]


def build_service_plan(service: str,
                       hint_map: Mapping[str, Any],
                       function_names: Sequence[str],
                       concurrency_override: Optional[int] = None
                       ) -> ServicePlan:
    """Derive the channel plan for one service.

    ``hint_map`` is the generated ``SERVICE_HINTS[service]`` entry
    ({'service': {...}, 'functions': {fn: {...}}}).  ``concurrency_override``
    lets deployments inject the real expected client count when the IDL
    author left it unspecified.
    """
    service_map = hint_map.get("service", {})
    fn_maps = hint_map.get("functions", {})
    keyed: Dict[tuple, dict] = {}
    routes: Dict[str, dict] = {}
    for fn in function_names:
        fn_map = fn_maps.get(fn)
        server = resolve_hints(service_map, fn_map, "server")
        client = resolve_hints(service_map, fn_map, "client")
        payload_hinted = any(
            "payload_size" in layer
            for layer in (service_map.get("shared", {}),
                          service_map.get("server", {}),
                          service_map.get("client", {}),
                          *((fn_map or {}).values())))
        if concurrency_override is not None:
            server = replace(server, concurrency=concurrency_override)
            client = replace(client, concurrency=concurrency_override)
        sel_payload = max(server.payload_size, client.payload_size)
        wire = select_protocol(replace(server, payload_size=sel_payload))
        client_choice = select_protocol(replace(client,
                                                payload_size=sel_payload))
        # Channels segregate by payload class too: bulk-data functions
        # never inflate the pinned buffer geometry of small-message ones.
        small = sel_payload <= SMALL_MESSAGE_THRESHOLD
        key = (wire.transport, wire.protocol, wire.poll_mode,
               client_choice.poll_mode, server.numa_binding,
               client.numa_binding, small)
        entry = keyed.setdefault(key, {"functions": [], "max_msg": 0,
                                       "resp": 0})
        entry["functions"].append(fn)
        floor = sel_payload if payload_hinted else max(sel_payload,
                                                       _UNHINTED_MAX_MSG)
        entry["max_msg"] = max(entry["max_msg"], floor + _MAX_MSG_SLACK)
        entry["resp"] = max(entry["resp"], server.payload_size)
        routes[fn] = {"key": key, "resp_hint": server.payload_size,
                      "server": server, "client": client, "choice": wire}

    channels = []
    key_to_index = {}
    for i, (key, entry) in enumerate(sorted(keyed.items(),
                                            key=lambda kv: repr(kv[0]))):
        transport, protocol, s_poll, c_poll, s_numa, c_numa, _small = key
        channels.append(ChannelPlan(
            index=i, transport=transport, protocol=protocol,
            server_poll=s_poll, client_poll=c_poll,
            server_numa=s_numa, client_numa=c_numa,
            max_msg=entry["max_msg"],
            resp_size=entry["resp"],
            functions=tuple(entry["functions"])))
        key_to_index[key] = i
    final_routes = {
        fn: FunctionRoute(channel=key_to_index[r["key"]],
                          resp_hint=r["resp_hint"],
                          server_hints=r["server"],
                          client_hints=r["client"],
                          choice=r["choice"])
        for fn, r in routes.items()
    }
    return ServicePlan(service=service, channels=tuple(channels),
                       routes=final_routes)


def pinned_plan(service: str, function_names: Sequence[str], protocol: str,
                poll_mode: PollMode, max_msg: int,
                numa_local: bool = True,
                resp_hint: int = 4 * KiB) -> ServicePlan:
    """A one-channel plan with a fixed protocol + polling, ignoring hints.

    This is how the paper's per-protocol baselines (e.g. "Thrift over
    Hybrid-EagerRNDV") are expressed: the same generated code and runtime,
    with the hint machinery bypassed.
    """
    transport = "tcp" if protocol == "tcp" else "rdma"
    channel = ChannelPlan(index=0, transport=transport,
                          protocol="" if transport == "tcp" else protocol,
                          server_poll=poll_mode, client_poll=poll_mode,
                          server_numa=numa_local, client_numa=numa_local,
                          max_msg=max_msg, resp_size=resp_hint,
                          functions=tuple(function_names), hinted=False)
    from repro.core.selector import ProtocolChoice
    choice = ProtocolChoice(transport, channel.protocol, poll_mode,
                            "pinned baseline")
    routes = {fn: FunctionRoute(channel=0, resp_hint=resp_hint,
                                server_hints=ResolvedHints.from_mapping({}),
                                client_hints=ResolvedHints.from_mapping({}),
                                choice=choice)
              for fn in function_names}
    return ServicePlan(service=service, channels=(channel,), routes=routes)


class HatRpcEngine:
    """Client-side engine: one protocol/TCP connection per channel plan.

    Static hints configure connections at establishment (buffer geometry,
    polling); the per-call dynamic hint path is just the function -> route
    lookup, mirroring the paper's "only pass the pointer and cache the RPC
    function type" minimization.
    """

    def __init__(self, node, plan: ServicePlan,
                 base_service_id: int = 5000):
        self.node = node
        self.plan = plan
        self.base_service_id = base_service_id
        self._channels: Dict[int, Any] = {}
        self._connected = False
        self.calls_routed = 0

    def connect(self, remote_node, eager: bool = False):
        """Coroutine: bind to the server; channels open lazily on first use.

        Lazy establishment matters: a channel plan may include connections
        (e.g. a busy-polled latency channel) that a given client never
        exercises -- opening them eagerly would pin server-side polling
        threads for nothing.  Pass ``eager=True`` to pre-open everything
        (connection-setup-sensitive tests).
        """
        self._remote_node = remote_node
        self._connected = True
        if eager:
            for ch in self.plan.channels:
                yield from self._open_channel(ch)
        return self

    def _open_channel(self, ch):
        from repro.core.runtime import RdmaChannel, TcpChannel  # cycle-free
        sid = self.base_service_id + ch.index
        if ch.transport == "tcp":
            chan = TcpChannel(self.node, self._remote_node, sid)
            yield from chan.open()
        else:
            chan = RdmaChannel(self.node, ch)
            yield from chan.open(self._remote_node, sid)
        self._channels[ch.index] = chan
        return chan

    def call(self, fn_name: str, message: bytes, oneway: bool = False):
        """Coroutine: route one serialized message; returns response bytes."""
        if not self._connected:
            raise RuntimeError("engine not connected")
        route = self.plan.routes.get(fn_name)
        if route is None:
            raise KeyError(f"function {fn_name!r} not in service plan "
                           f"for {self.plan.service!r}")
        chan = self._channels.get(route.channel)
        if chan is None:
            chan = yield from self._open_channel(
                self.plan.channels[route.channel])
        self.calls_routed += 1
        return (yield from chan.call(message, resp_hint=route.resp_hint,
                                     oneway=oneway))

    def close(self) -> None:
        for chan in self._channels.values():
            chan.close()
