"""Hint -> RDMA protocol selection: the Figure 6 mapping.

The selection algorithm encodes the design-space analysis of Section 3.3,
backed by the characterization results (Figs. 4-5, reproduced by
``tests/protocols/test_characterization.py``):

* **latency** goal: busy polling, Direct-WriteIMM at every payload size
  (one WR, one doorbell, notification folded into the data delivery);
* **throughput** goal: Direct-WriteIMM for small payloads; for large
  payloads Direct-WriteIMM while the server is under-subscribed, switching
  to RFP + event polling beyond the concurrency threshold (S5.2: "switches
  to RFP with event-based polling when the concurrency is above the
  threshold 16");
* **res_util** goal: protocols that avoid per-connection pinned buffers --
  Direct-WriteIMM / Write-RNDV under-subscribed, Eager-SendRecv /
  Write-RNDV at full/over-subscription -- with event polling to free CPU;
* an explicit ``polling`` hint always wins; a ``transport = tcp`` hint
  bypasses RDMA entirely (hybrid transports, Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.core.hints import ResolvedHints
from repro.sim.units import KiB
from repro.verbs.cq import PollMode

__all__ = ["FULL_SUB_THRESHOLD", "ProtocolChoice", "SMALL_MESSAGE_THRESHOLD",
           "TUNER_CONCURRENCY_GRID", "TUNER_PAYLOAD_GRID",
           "UNDER_SUB_THRESHOLD", "candidate_choices", "select_protocol",
           "subscription_regime"]

#: small/large payload boundary: the Hybrid-EagerRNDV threshold (S4.3).
SMALL_MESSAGE_THRESHOLD = 4 * KiB
#: payload size beyond which RFP overtakes Direct-WriteIMM at scale.  The
#: paper's Fig. 6 says only "large messages"; this reproduction's own
#: Fig. 5 characterization places the RFP/Direct-WriteIMM throughput
#: crossover between 32 KiB and 64 KiB at 64 clients, so the selector
#: switches there (the mapping is derived from measurement, as in S3.3).
RFP_SWITCH_THRESHOLD = 48 * KiB
#: under-subscription: clients fit the NIC-local NUMA node (S5.2 uses 16).
UNDER_SUB_THRESHOLD = 16
#: full subscription: clients fit the whole 28-core server socket pair.
FULL_SUB_THRESHOLD = 28


@dataclass(frozen=True)
class ProtocolChoice:
    """The engine configuration derived from a resolved hint set."""

    transport: str              # 'rdma' | 'tcp'
    protocol: str               # repro.protocols registry name ('' for tcp)
    poll_mode: PollMode
    rationale: str

    @property
    def is_rdma(self) -> bool:
        return self.transport == "rdma"


def subscription_regime(concurrency: int) -> str:
    if concurrency <= UNDER_SUB_THRESHOLD:
        return "under"
    if concurrency <= FULL_SUB_THRESHOLD:
        return "full"
    return "over"


def select_protocol(hints: ResolvedHints) -> ProtocolChoice:
    """Map one resolved hint set to (transport, protocol, polling)."""
    if hints.transport == "tcp":
        return ProtocolChoice("tcp", "", PollMode.EVENT,
                              "transport hint requests kernel TCP")

    small = hints.payload_size <= SMALL_MESSAGE_THRESHOLD
    regime = subscription_regime(hints.concurrency)
    goal = hints.perf_goal

    # Low-priority functions (S4.1's periodic heartbeats) "neither require
    # a lot of resources, nor have critical performance requirement": they
    # give way to significant RPCs by taking the resource-efficient path,
    # whatever their nominal perf goal says.
    if hints.priority == "low":
        goal = "res_util"

    if goal == "latency":
        proto = "direct_writeimm"
        poll = PollMode.BUSY
        why = "latency goal: busy polling + Direct-WriteIMM (Fig. 4)"
    elif goal == "throughput":
        if small:
            proto = "direct_writeimm"
            why = "throughput/small: Direct-WriteIMM best at all scales (Fig. 5)"
        elif regime == "under" or hints.payload_size <= RFP_SWITCH_THRESHOLD:
            proto = "direct_writeimm"
            why = ("throughput/large below the RFP crossover or "
                   "under-subscribed: Direct-WriteIMM (S5.2)")
        else:
            proto = "rfp"
            why = ("throughput/very-large beyond concurrency threshold: RFP "
                   "in-bound RDMA advantage (S5.2, Fig. 5)")
        poll = PollMode.BUSY if regime == "under" else PollMode.EVENT
    elif goal == "res_util":
        if regime == "under":
            proto = "direct_writeimm" if small else "write_rndv"
            why = ("res_util/under-subscription: pre-registered buffers are "
                   "affordable for small payloads only (Fig. 6)")
        else:
            proto = "eager_sendrecv" if small else "write_rndv"
            why = ("res_util at scale: circular buffers / rendezvous pool "
                   "minimize pinned memory (S4.3)")
        poll = PollMode.EVENT
    else:  # pragma: no cover - ResolvedHints validates perf_goal
        raise AssertionError(f"unknown perf_goal {goal!r}")

    if hints.polling is not None:
        poll = PollMode.BUSY if hints.polling == "busy" else PollMode.EVENT
        why += f"; explicit polling={hints.polling} override"
    return ProtocolChoice("rdma", proto, poll, why)


# -- candidate enumeration for the online tuner ------------------------------
#
# One representative per payload regime the selection algorithm
# distinguishes (inline-able, eager-able, past the RFP crossover, bulk)
# and per subscription regime.  The grid is what bounds a tunable plan:
# every choice the tuner could ever re-resolve to is reachable from it,
# so both peers can provision the alternate channels at plan time -- the
# plan-exchange stays a deterministic derivation, never a negotiation.

TUNER_PAYLOAD_GRID: Tuple[int, ...] = (
    256, SMALL_MESSAGE_THRESHOLD, RFP_SWITCH_THRESHOLD + KiB, 128 * KiB)
TUNER_CONCURRENCY_GRID: Tuple[int, ...] = (
    1, UNDER_SUB_THRESHOLD + 1, FULL_SUB_THRESHOLD + 1)


def candidate_choices(hints: ResolvedHints) -> List[ProtocolChoice]:
    """Every distinct choice reachable from ``hints`` as the observed
    payload size and concurrency range over the tuning grid.

    Declared hints that pin a dimension (an explicit ``polling`` override,
    ``transport = tcp``) naturally collapse the candidate set -- the tuner
    never overrides an author's explicit knob, only the derived ones.
    """
    out: List[ProtocolChoice] = []
    seen = set()
    for conc in TUNER_CONCURRENCY_GRID:
        for payload in TUNER_PAYLOAD_GRID:
            choice = select_protocol(replace(hints, payload_size=payload,
                                             concurrency=conc))
            key = (choice.transport, choice.protocol, choice.poll_mode)
            if key not in seen:
                seen.add(key)
                out.append(choice)
    return out
