"""TRdma: the TSocket-compatible bridge between Thrift and the RDMA engine.

The paper keeps TRdma's programming model "fully compatible with that of
TSocket" so the generated code works unchanged over either transport
(Section 4.3).  Concretely:

* :class:`TRdma` is a :class:`~repro.thrift.transport.TTransport` whose
  ``flush()`` routes the buffered message through the hint-aware engine and
  whose ``read()`` serves the response -- so the IDL-generated ``TClient``
  stubs drive it exactly like a framed socket;
* :class:`HintedProtocol` wraps any serialization protocol and captures the
  method name at ``write_message_begin`` -- the paper's dynamic-hint path
  ("caching the RPC function type at a high level and only pass hints when
  a new RPC function is invoked").
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import HatRpcEngine
from repro.thrift.transport import TTransport
from repro.thrift.ttypes import TMessageType

__all__ = ["HintedProtocol", "TRdma", "TRdmaServerTransport"]

#: sentinel yielded by _AsyncTRdma.ready() -- pauses the generated stub
#: between its send and receive halves (see _AsyncTRdma).
_PAUSE = object()


class TRdma(TTransport):
    """Client-side message transport over a connected HatRpcEngine."""

    def __init__(self, engine: HatRpcEngine):
        self.engine = engine
        self._wbuf = bytearray()
        self._rbuf = b""
        self._rpos = 0
        self._current_fn: Optional[str] = None
        self._current_oneway = False
        self._current_seqid: Optional[int] = None
        self._ser_start: Optional[float] = None
        self._fn_switches = 0   # dynamic-hint ablation instrumentation

    # -- routing state (set by HintedProtocol) ------------------------------
    def set_current_function(self, name: str, mtype: int,
                             seqid: Optional[int] = None) -> None:
        if name != self._current_fn:
            self._fn_switches += 1
        self._current_fn = name
        self._current_oneway = mtype == TMessageType.ONEWAY
        self._current_seqid = seqid
        # Serialization of the args begins now; the engine turns this into
        # the "serialize" trace stage.
        self._ser_start = self.engine.node.sim.now

    # -- TTransport interface --------------------------------------------------
    def is_open(self) -> bool:
        return self.engine.is_open()

    def close(self) -> None:
        self.engine.close()

    def write(self, data: bytes) -> None:
        self._wbuf += data

    def flush(self):
        if self._current_fn is None:
            raise RuntimeError(
                "TRdma.flush without a method context; wrap the protocol "
                "in HintedProtocol")
        message = bytes(self._wbuf)
        self._wbuf.clear()
        resp = yield from self.engine.call(self._current_fn, message,
                                           oneway=self._current_oneway,
                                           seqid=self._current_seqid,
                                           ser_start=self._ser_start)
        self._rbuf = resp or b""
        self._rpos = 0

    def ready(self):
        # The response was delivered synchronously by flush(); nothing to
        # await.  (RPC over RDMA is a single round trip; keeping ready() a
        # no-op preserves the TSocket-framed calling convention.)
        return
        yield  # pragma: no cover

    def read(self, n: int) -> bytes:
        out = self._rbuf[self._rpos:self._rpos + n]
        self._rpos += len(out)
        return out


class _AsyncTRdma(TRdma):
    """Capture transport for the asynchronous stub path.

    The generated stub methods are two-phase coroutines: serialize +
    ``flush`` (send), then ``ready`` + deserialize (receive).  This
    transport exploits that shape without touching the generated code:

    * ``flush()`` does NOT call the engine -- it captures
      ``(fn, message, oneway, seqid)`` for the caller to post via
      ``engine.call_async``;
    * ``ready()`` yields the :data:`_PAUSE` sentinel, so driving the stub
      generator with ``next()`` runs serialization and stops right between
      the halves.  When the response arrives, the caller loads ``_rbuf``
      and resumes the generator, which deserializes and returns the result
      (including throwing declared exceptions) exactly as the blocking
      path would.

    See :class:`repro.core.runtime.AsyncCaller` for the driver.
    """

    def __init__(self, engine: HatRpcEngine):
        super().__init__(engine)
        self.captured = None    # (fn, message, oneway, seqid)

    def flush(self):
        if self._current_fn is None:
            raise RuntimeError(
                "TRdma.flush without a method context; wrap the protocol "
                "in HintedProtocol")
        self.captured = (self._current_fn, bytes(self._wbuf),
                         self._current_oneway, self._current_seqid)
        self._wbuf.clear()
        return
        yield  # pragma: no cover

    def ready(self):
        yield _PAUSE

    def deliver(self, resp: bytes) -> None:
        """Load the response for the stub's receive half to read."""
        self._rbuf = resp or b""
        self._rpos = 0


class HintedProtocol:
    """Serialization-protocol wrapper feeding method names to TRdma."""

    def __init__(self, protocol, trdma: TRdma):
        self._proto = protocol
        self._trdma = trdma
        self.trans = protocol.trans

    def write_message_begin(self, name: str, mtype: int, seqid: int):
        self._trdma.set_current_function(name, mtype, seqid)
        self._proto.write_message_begin(name, mtype, seqid)

    def __getattr__(self, item):
        return getattr(self._proto, item)


class TRdmaServerTransport:
    """Server-side endpoint set (the paper's TServerRdma).

    Owns one protocol server (or TCP Thrift server) per channel of the
    service plan; construction and wiring happen in
    :class:`repro.core.runtime.HatRpcServer`, which passes ready-made
    factories here.
    """

    def __init__(self, node, plan, base_service_id: int):
        self.node = node
        self.plan = plan
        self.base_service_id = base_service_id
        self.servers = []

    def add(self, server) -> None:
        self.servers.append(server)

    def stop(self) -> None:
        for server in self.servers:
            server.stop()

    @property
    def connections(self) -> int:
        return sum(s.connections for s in self.servers)

    @property
    def requests(self) -> int:
        return sum(s.requests for s in self.servers)
