"""The hierarchical hint scheme (Section 4.1).

Hints live at two vertical levels -- **service** and **function** -- and
three lateral sides -- **shared** (``hint:``), **server** (``s_hint:``),
**client** (``c_hint:``).  Resolution for one RPC function on one side
applies, in increasing precedence:

    defaults < service.shared < service.<side>
             < function.shared < function.<side>

i.e. function-level hints override the same keys at service level (the
paper's override rule), and side-specific hints override shared ones within
a level.

Supported keys (the paper's performance-oriented categories of Fig. 6, plus
the NUMA-binding / hybrid-transport hints of Section 3.3 and the priority
hint motivating function-level granularity in Section 4.1):

=============== ======== ===========================================
key             type     values
=============== ======== ===========================================
perf_goal       str      latency | throughput | res_util
concurrency     int      expected concurrent clients (>= 1)
payload_size    int      expected payload bytes (> 0)
numa_binding    bool     bind worker threads to the NIC's NUMA node
transport       str      rdma | tcp        (hybrid transports)
polling         str      busy | event      (explicit override)
priority        str      high | normal | low
batch_size      int      expected batching factor (>= 1)
tunable         bool     allow the online tuner to re-resolve choices
cacheable       dict     ``cacheable(ttl = <dur>, hot_promote = <int>)``
=============== ======== ===========================================

``tunable`` extends the paper's grammar for the closed-loop tuner: a
tunable service's channel plan is provisioned with alternate channels so
an attached :class:`~repro.core.tuner.HintTuner` can re-route functions
at runtime; the declared hints remain the starting point and the
fallback.

``cacheable`` extends the grammar for the client hot-key cache: a
read function marked ``cacheable(ttl = 200us, hot_promote = 8)`` lets
the server grant per-key leases of ``ttl`` seconds on its replies (the
client may serve the key locally until the lease expires or a newer
version is observed), and promotes keys read at least ``hot_promote``
times to the one-sided hot-read channel on a cache miss
(``hot_promote = 0`` disables promotion).  Writers to a leased key are
held until every outstanding lease has expired, so a cached read can
never return a value older than the last acknowledged write.  The
parsed value is a dict and rides in :attr:`ResolvedHints.extras`;
:func:`cacheable_hint` gives the typed view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

__all__ = [
    "CacheableHint",
    "DEFAULT_HINTS",
    "HINT_SCHEMA",
    "HintError",
    "HintSpec",
    "ResolvedHints",
    "cacheable_hint",
    "merge_hint_groups",
    "resolve_hints",
    "validate_hint",
]

SIDES = ("shared", "server", "client")


class HintError(ValueError):
    """An undefined hint key or unsupported value."""


@dataclass(frozen=True)
class HintSpec:
    key: str
    type: type
    check: Callable[[Any], bool]
    describe: str

    def validate(self, value: Any) -> Any:
        if self.type is int and isinstance(value, bool):
            raise HintError(f"hint {self.key!r}: expected int, got bool")
        if not isinstance(value, self.type):
            raise HintError(
                f"hint {self.key!r}: expected {self.type.__name__}, "
                f"got {type(value).__name__} ({value!r})")
        if not self.check(value):
            raise HintError(
                f"hint {self.key!r}: unsupported value {value!r} "
                f"({self.describe})")
        return value


HINT_SCHEMA: Dict[str, HintSpec] = {
    spec.key: spec for spec in [
        HintSpec("perf_goal", str,
                 lambda v: v in ("latency", "throughput", "res_util"),
                 "one of latency|throughput|res_util"),
        HintSpec("concurrency", int, lambda v: v >= 1, "integer >= 1"),
        HintSpec("payload_size", int, lambda v: v > 0, "bytes > 0"),
        HintSpec("numa_binding", bool, lambda v: True, "bool"),
        HintSpec("transport", str, lambda v: v in ("rdma", "tcp"),
                 "one of rdma|tcp"),
        HintSpec("polling", str, lambda v: v in ("busy", "event"),
                 "one of busy|event"),
        HintSpec("priority", str, lambda v: v in ("high", "normal", "low"),
                 "one of high|normal|low"),
        HintSpec("batch_size", int, lambda v: v >= 1, "integer >= 1"),
        HintSpec("tunable", bool, lambda v: True, "bool"),
        HintSpec("cacheable", dict, lambda v: _check_cacheable(v),
                 "cacheable(ttl = <seconds > 0>, hot_promote = <int >= 0>)"),
    ]
}


def _check_cacheable(value: Dict[str, Any]) -> bool:
    if set(value) - {"ttl", "hot_promote"} or "ttl" not in value:
        return False
    ttl = value["ttl"]
    if isinstance(ttl, bool) or not isinstance(ttl, (int, float)) or ttl <= 0:
        return False
    hot = value.get("hot_promote", 0)
    return not isinstance(hot, bool) and isinstance(hot, int) and hot >= 0

DEFAULT_HINTS: Dict[str, Any] = {
    "perf_goal": "throughput",
    "concurrency": 1,
    "payload_size": 4096,
    "numa_binding": False,
    "transport": "rdma",
    "priority": "normal",
    "batch_size": 1,
    "tunable": False,
    # 'polling' has no default: absent means "derive from perf_goal".
}


def validate_hint(key: str, value: Any) -> Any:
    """Validate one pair; raises HintError for unknown keys or bad values."""
    spec = HINT_SCHEMA.get(key)
    if spec is None:
        raise HintError(f"undefined hint key {key!r} "
                        f"(known: {', '.join(sorted(HINT_SCHEMA))})")
    return spec.validate(value)


def merge_hint_groups(groups: Iterable) -> Dict[str, Dict[str, Any]]:
    """Merge HintGroup-like objects into one {side: {key: value}} map.

    This is the paper's 'merging process [that] group[s] common hints from
    the same level': multiple groups of the same side collapse, with later
    declarations overriding earlier ones key-by-key.
    """
    merged: Dict[str, Dict[str, Any]] = {s: {} for s in SIDES}
    for group in groups:
        side = getattr(group, "side", None) or group["side"]
        if side not in merged:
            raise HintError(f"unknown hint side {side!r}")
        hints = getattr(group, "hints", None)
        items = ([(h.key, h.value) for h in hints] if hints is not None
                 else list(group["hints"].items()))
        for key, value in items:
            merged[side][key] = value
    return merged


@dataclass(frozen=True)
class ResolvedHints:
    """The effective hints for one function on one side."""

    perf_goal: str
    concurrency: int
    payload_size: int
    numa_binding: bool
    transport: str
    priority: str
    batch_size: int
    tunable: bool = False
    polling: Optional[str] = None   # None -> selector derives from perf_goal
    extras: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def from_mapping(cls, m: Mapping[str, Any]) -> "ResolvedHints":
        known = {k: m[k] for k in DEFAULT_HINTS if k in m}
        base = dict(DEFAULT_HINTS)
        base.update(known)
        return cls(polling=m.get("polling"),
                   extras={k: v for k, v in m.items()
                           if k not in DEFAULT_HINTS and k != "polling"},
                   **base)


@dataclass(frozen=True)
class CacheableHint:
    """Typed view of the ``cacheable(...)`` hint (seconds on the sim clock)."""

    ttl: float
    hot_promote: int = 0


def cacheable_hint(resolved: ResolvedHints) -> Optional[CacheableHint]:
    """The function's cacheable config, or None when the hint is absent."""
    raw = resolved.extras.get("cacheable")
    if raw is None:
        return None
    return CacheableHint(ttl=float(raw["ttl"]),
                         hot_promote=int(raw.get("hot_promote", 0)))


def resolve_hints(service_map: Mapping[str, Mapping[str, Any]],
                  function_map: Optional[Mapping[str, Mapping[str, Any]]],
                  side: str) -> ResolvedHints:
    """Apply the precedence chain for one function and side.

    ``service_map`` / ``function_map`` are {side: {key: value}} maps as
    produced by :func:`merge_hint_groups` (function_map may be None for a
    function with no hints of its own).
    """
    if side not in ("server", "client"):
        raise HintError(f"resolution side must be server|client, not {side!r}")
    out: Dict[str, Any] = {}
    layers: List[Mapping[str, Any]] = [
        service_map.get("shared", {}),
        service_map.get(side, {}),
    ]
    if function_map:
        layers += [function_map.get("shared", {}), function_map.get(side, {})]
    for layer in layers:
        for key, value in layer.items():
            out[key] = validate_hint(key, value)
    return ResolvedHints.from_mapping(out)
