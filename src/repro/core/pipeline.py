"""Pipelined RPC machinery: bounded in-flight windows over one channel.

The synchronous engine path (`HatRpcEngine.call`) is strictly
one-RPC-at-a-time per channel -- exactly the contract of a blocking Thrift
client.  The paper's throughput results, however, depend on many requests
being in flight per connection, which the RDMA protocols were built for
(Direct-WriteIMM slots, eager rings).  This module supplies the pieces the
engine's asynchronous path (`call_async` / `call_many`) composes:

* :func:`pack_pip` / :func:`split_pip` -- the 8-byte engine-level
  correlation header (magic ``0xC4 'PIP'`` + u32 sequence number) that
  rides between the trace envelope and the Thrift message.  The server
  echoes it onto the response, so a client receiver can match completions
  to in-flight calls even when they return out of submission order (e.g.
  after a retry).  Requests without the header pass through untouched --
  the blocking path stays byte-identical on the wire.
* :class:`CallHandle` -- the completion handle `call_async` returns:
  ``yield from handle.wait()`` blocks until the correlated response (or
  failure) arrives; an optional per-wait deadline abandons the call
  without disturbing its window neighbors.
* :class:`ChannelPipeline` -- per-channel in-flight bookkeeping: a bounded
  credit window sized from the channel plan (admission blocks when full --
  the backpressure), a receiver process that correlates responses by
  sequence number, and a sweep hook that hands in-flight calls back to the
  engine when the channel dies (so idempotent calls can retry elsewhere).
* :class:`BoundedSeqidSet` -- the LRU-bounded (function, seqid) set behind
  the engine's idempotency gate, so a long-lived client's duplicate-send
  guard does not grow one entry per call forever.
* :func:`pack_epo` / :func:`split_epo` -- the 8-byte tuner-epoch tag
  (magic ``0xC6 'EPO'`` + u32 epoch) a tuner-enabled engine prepends to
  every RDMA request.  The server strips it, records the highest epoch it
  has seen, and echoes it onto the response; a client whose tuner has
  since re-planned drops the stale sample instead of attributing it to
  the new choice -- the split-brain guard for plans changing mid-flight.

The magic byte ``0xC4`` cannot start a Thrift binary message (strict
messages start ``0x80``; non-strict ones with a sane name length start
``0x00``), so servers detect the header without ambiguity -- the same trick
the ``0xC3`` trace envelope uses one layer up (and the ``0xC6`` epoch tag
one layer down).
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.thrift.errors import TTransportException

__all__ = [
    "EPO_BYTES",
    "PIP_BYTES",
    "BoundedSeqidSet",
    "CallHandle",
    "ChannelPipeline",
    "PipelineDead",
    "pack_epo",
    "pack_pip",
    "split_epo",
    "split_pip",
]

_PIP_MAGIC = b"\xc4PIP"
_PIP = struct.Struct("!4sI")
PIP_BYTES = _PIP.size          # 8

_EPO_MAGIC = b"\xc6EPO"
_EPO = struct.Struct("!4sI")
EPO_BYTES = _EPO.size          # 8


def pack_pip(seq: int) -> bytes:
    """The correlation header for in-flight sequence number ``seq``."""
    return _PIP.pack(_PIP_MAGIC, seq & 0xFFFFFFFF)


def split_pip(data: bytes) -> Tuple[Optional[int], bytes]:
    """(seq, payload) if ``data`` leads with a correlation header, else
    (None, data) -- unframed messages pass through byte-identical."""
    if len(data) < PIP_BYTES or data[:4] != _PIP_MAGIC:
        return None, data
    _magic, seq = _PIP.unpack_from(data)
    return seq, data[PIP_BYTES:]


def pack_epo(epoch: int) -> bytes:
    """The tuner-epoch tag for plan epoch ``epoch``."""
    return _EPO.pack(_EPO_MAGIC, epoch & 0xFFFFFFFF)


def split_epo(data: bytes) -> Tuple[Optional[int], bytes]:
    """(epoch, payload) if ``data`` leads with an epoch tag, else
    (None, data) -- untagged messages pass through byte-identical."""
    if len(data) < EPO_BYTES or data[:4] != _EPO_MAGIC:
        return None, data
    _magic, epoch = _EPO.unpack_from(data)
    return epoch, data[EPO_BYTES:]


class BoundedSeqidSet:
    """Insertion-ordered set of (function, seqid) keys capped at ``cap``.

    The engine's idempotency gate only needs to recognize *recent*
    duplicates (a retry races its original by at most the in-flight
    window, not by thousands of calls), so the oldest entries are evicted
    once the cap is reached -- a long-lived client no longer leaks one
    tuple per call forever.

    A seqid whose call is still in flight must never be evicted, whatever
    the cap pressure: losing it silently re-opens the duplicate-send window
    the gate exists to close.  Callers ``add(key, pinned=True)`` when the
    message reaches the wire and :meth:`unpin` on completion; eviction only
    ever removes unpinned (completed) entries, growing past ``cap``
    transiently if a full window of stalled calls pins everything.
    """

    def __init__(self, cap: int = 4096):
        if cap < 1:
            raise ValueError(f"cap must be >= 1: {cap}")
        self.cap = cap
        self._keys: Dict[Any, None] = {}     # insertion-ordered
        self._pinned: set = set()            # live (in-flight) keys
        self.evictions = 0

    def add(self, key, pinned: bool = False) -> None:
        self._keys.pop(key, None)            # refresh recency
        self._keys[key] = None
        if pinned:
            self._pinned.add(key)
        self._evict()

    def unpin(self, key) -> None:
        """The call behind ``key`` completed: the entry stays (it still
        gates duplicates) but becomes evictable under cap pressure."""
        self._pinned.discard(key)
        self._evict()

    def pinned(self, key) -> bool:
        return key in self._pinned

    def _evict(self) -> None:
        if len(self._keys) <= self.cap:
            return
        over = len(self._keys) - self.cap
        for key in [k for k in self._keys if k not in self._pinned][:over]:
            self._keys.pop(key)
            self.evictions += 1

    def discard(self, key) -> None:
        self._keys.pop(key, None)
        self._pinned.discard(key)

    def __contains__(self, key) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self):
        return iter(self._keys)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"BoundedSeqidSet(len={len(self._keys)}, cap={self.cap}, "
                f"pinned={len(self._pinned)})")


class CallHandle:
    """Completion handle for one asynchronous call.

    The engine resolves it from the pipeline's receiver process; the
    caller blocks on :meth:`wait` (or polls :attr:`done` / calls
    :meth:`result` after completion).  Failures are *stored*, never raised
    into the simulator's event loop -- they surface when (and only when)
    the caller waits.
    """

    def __init__(self, sim, fn: str):
        self.sim = sim
        self.fn = fn
        self.done = False
        #: a deadline expired in wait(); the call stays in flight and its
        #: eventual completion is dropped silently
        self.abandoned = False
        self.channel = -1
        #: sim time the call completed (set at resolution -- benchmarks
        #: read it for per-call latency even when waits batch up later)
        self.t_done: Optional[float] = None
        self._value = None
        self._error: Optional[BaseException] = None
        self._event = sim.event()
        self._engine = None        # set by the engine for fault accounting

    def _resolve(self, value) -> None:
        if self.done:
            return
        self.done = True
        self.t_done = self.sim.now
        self._value = value
        self._event.succeed(value)

    def _fail(self, exc: BaseException) -> None:
        if self.done:
            return
        self.done = True
        self.t_done = self.sim.now
        self._error = exc
        # succeed(), not fail(): the exception belongs to whoever waits on
        # the handle, and an unobserved failed event would crash the
        # simulator's event loop.
        self._event.succeed(None)

    def result(self):
        """The response bytes (raises the stored failure) -- only valid
        once :attr:`done` is True."""
        if not self.done:
            raise RuntimeError(f"call {self.fn!r} is still in flight")
        if self._error is not None:
            raise self._error
        return self._value

    def wait(self, timeout: Optional[float] = None):
        """Coroutine: block until the call completes; returns the response
        bytes or raises the call's failure.

        With ``timeout``, a still-in-flight call is *abandoned* after the
        budget: TIMED_OUT is raised, but the wire state is untouched --
        window neighbors keep flowing and the late response is discarded
        when it eventually arrives.
        """
        if not self.done and timeout is not None:
            expiry = self.sim.timeout(timeout)
            yield self.sim.any_of([self._event, expiry])
            if not self.done:
                self.abandoned = True
                if self._engine is not None:
                    self._engine._note_abandoned(self)
                raise TTransportException(
                    TTransportException.TIMED_OUT,
                    f"{self.fn} exceeded its {timeout * 1e6:.0f}us deadline "
                    "(abandoned in flight)")
        elif not self.done:
            yield self._event
        return self.result()


class PipelineDead(RuntimeError):
    """The pipeline's channel died before this call reached the wire."""


class ChannelPipeline:
    """Bounded in-flight window over one engine channel.

    Two modes, chosen from the channel's capability:

    * **pipelined** (``chan.supports_pipelining``) -- requests are framed
      with a correlation header and posted via the protocol's split
      ``post()``; a single receiver process pairs ``recv()`` completions
      back to entries by sequence number.  Up to ``window`` calls overlap
      on the one connection.
    * **solo** (everything else: TCP, rendezvous protocols, RFP) -- the
      window degrades to 1 and each call runs the classic blocking
      ``chan.call`` in its own process, preserving the async API without
      violating the protocol's single-outstanding contract.

    Entries are duck-typed: ``wire(seq)``, ``complete(resp)``,
    ``fail(exc)``, plus ``resp_hint`` / ``oneway`` / ``act`` for solo mode
    (the engine's ``_PendingCall``).  When the channel dies, every
    in-flight entry is handed to ``on_dead(pipe, entries, exc)`` in
    submission order so the engine can retry or fail them.
    """

    def __init__(self, sim, chan, window: int, index: int = 0,
                 error_types: tuple = (Exception,), on_dead=None,
                 occupancy=None):
        self.sim = sim
        self.chan = chan
        self.index = index
        self.pipelined = bool(getattr(chan, "supports_pipelining", False))
        self.window = max(1, int(window)) if self.pipelined else 1
        self._errors = tuple(error_types)
        self.on_dead = on_dead
        self._occupancy = occupancy          # Gauge or None
        self._credits = self.window
        self._waiters: Deque[Any] = deque()
        self._next_seq = 0
        self.inflight: Dict[int, Any] = {}   # seq -> entry (pipelined mode)
        self._solo = 0                       # outstanding solo-mode calls
        self._receiver = None
        self.dead = False
        self.posted = 0
        self.completed = 0
        self.high_water = 0

    @property
    def pending(self) -> int:
        return len(self.inflight) + self._solo

    # -- window credits ------------------------------------------------------
    def _acquire(self):
        while self._credits <= 0 and not self.dead:
            ev = self.sim.event()
            self._waiters.append(ev)
            yield ev
        if self.dead:
            raise PipelineDead(
                f"channel {self.index} died while waiting for a window slot")
        self._credits -= 1

    def _release(self) -> None:
        self._credits += 1
        if self._occupancy is not None:
            self._occupancy.set(self.pending)
        if self._waiters:
            self._waiters.popleft().succeed()

    # -- submission ----------------------------------------------------------
    def submit(self, entry):
        """Coroutine: admit one call under the window (backpressure blocks
        here), then put it on the wire.  Raises :class:`PipelineDead` if
        the channel fails before this call is posted -- the caller re-picks
        a channel; entries that *were* posted go through ``on_dead``."""
        if self.dead:
            raise PipelineDead(f"channel {self.index} is dead")
        yield from self._acquire()
        if not self.pipelined:
            self._solo += 1
            self.high_water = max(self.high_water, self.pending)
            if self._occupancy is not None:
                self._occupancy.set(self.pending)
            self.sim.process(self._solo_call(entry),
                             name=f"solo-call-ch{self.index}")
            return
        self._next_seq += 1
        seq = self._next_seq
        self.inflight[seq] = entry
        self.high_water = max(self.high_water, self.pending)
        if self._occupancy is not None:
            self._occupancy.set(self.pending)
        try:
            yield from self.chan.post(entry.wire(seq))
        except BaseException as exc:
            self.inflight.pop(seq, None)
            self._release()
            if isinstance(exc, self._errors):
                # The post hit a dead channel: sweep the *other* in-flight
                # entries; this one goes back to the caller (as the cause
                # of PipelineDead) so the engine retries or fails it.
                self._die(exc)
                raise PipelineDead(str(exc)) from exc
            raise
        self.posted += 1
        self._ensure_receiver()

    def _solo_call(self, entry):
        try:
            resp = yield from self.chan.call(entry.wire(None),
                                             resp_hint=entry.resp_hint,
                                             oneway=entry.oneway,
                                             trace=entry.act)
        except BaseException as exc:
            self._solo -= 1
            self._release()
            if isinstance(exc, self._errors):
                self._die(exc, extra=(entry,))
            else:
                entry.fail(exc)
            return
        self._solo -= 1
        self.completed += 1
        self._release()
        entry.complete(resp)

    # -- completion ----------------------------------------------------------
    def _ensure_receiver(self) -> None:
        if self._receiver is None and self.inflight:
            p = self.sim.process(self._receive_loop(),
                                 name=f"pipeline-recv-ch{self.index}")
            # Completions belong to the entries they resolve, not to
            # whichever call happened to spawn the receiver.
            p.trace_ctx = None
            self._receiver = p

    def _receive_loop(self):
        try:
            while self.inflight:
                resp = yield from self.chan.recv()
                seq, payload = split_pip(resp)
                if seq is None:
                    # Unframed response (shouldn't happen on a pipelined
                    # channel): pair it FIFO.
                    seq = min(self.inflight)
                entry = self.inflight.pop(seq, None)
                if entry is None:
                    continue      # response to an unknown/abandoned seq
                self.completed += 1
                self._release()
                entry.complete(payload)
        except BaseException as exc:
            self._receiver = None
            if isinstance(exc, self._errors):
                self._die(exc)
                return
            raise
        self._receiver = None

    # -- failure -------------------------------------------------------------
    def _die(self, exc: BaseException, extra: tuple = ()) -> None:
        """Mark the pipeline dead and sweep every in-flight entry."""
        if self.dead:
            entries: List[Any] = list(extra)
        else:
            self.dead = True
            entries = list(extra) + [self.inflight[k]
                                     for k in sorted(self.inflight)]
            self.inflight.clear()
        self._credits = self.window
        while self._waiters:
            self._waiters.popleft().succeed()   # they observe dead -> re-pick
        if self._occupancy is not None:
            self._occupancy.set(0)
        if not entries:
            return
        if self.on_dead is not None:
            self.on_dead(self, entries, exc)
        else:
            for entry in entries:
                entry.fail(exc)

    def drain(self) -> List[Any]:
        """Remove and return every in-flight entry (engine close path)."""
        self.dead = True
        entries = [self.inflight[k] for k in sorted(self.inflight)]
        self.inflight.clear()
        self._credits = self.window
        while self._waiters:
            self._waiters.popleft().succeed()
        if self._occupancy is not None:
            self._occupancy.set(0)
        return entries
