"""Failure-handling policy objects for the hint-aware engine.

Two small, deterministic pieces:

* :class:`RetryPolicy` -- capped exponential backoff with jitter drawn from
  a *seeded* RNG the engine owns, so two runs with the same seed produce
  byte-identical retry schedules (the fault-replay guarantee);
* :class:`CircuitBreaker` -- a per-channel consecutive-failure breaker with
  a timed OPEN -> HALF_OPEN probe cycle, evaluated purely against the
  simulated clock.

Neither knows anything about channels or protocols; the engine composes
them (see :meth:`repro.core.engine.HatRpcEngine.call`).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Tuple

from repro.sim.units import us

__all__ = ["CircuitBreaker", "RetryBudget", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff.

    ``backoff(attempt, rng)`` gives the wait before retry number
    ``attempt`` (0-based): ``base_backoff * multiplier**attempt`` capped at
    ``max_backoff``, then spread by ``+-jitter`` (a fraction) using the
    caller's RNG.  With a seeded RNG the schedule is deterministic.
    """

    max_attempts: int = 4
    base_backoff: float = 50 * us
    multiplier: float = 2.0
    max_backoff: float = 1000 * us
    jitter: float = 0.2

    def backoff(self, attempt: int, rng: Optional[random.Random] = None
                ) -> float:
        raw = min(self.base_backoff * self.multiplier ** attempt,
                  self.max_backoff)
        if self.jitter and rng is not None:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw


class CircuitBreaker:
    """Consecutive-failure breaker over the simulated clock.

    CLOSED -> (``failure_threshold`` consecutive failures) -> OPEN ->
    (``reset_after`` of sim time) -> HALF_OPEN -> one probe call ->
    CLOSED on success / OPEN again on failure.

    The engine's connections are single-outstanding, so HALF_OPEN needs no
    probe-in-flight bookkeeping: at most one call can be probing.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, sim, failure_threshold: int = 3,
                 reset_after: float = 1000 * us,
                 on_open: Optional[Callable[["CircuitBreaker"], None]] = None,
                 transitions_cap: int = 256):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if transitions_cap < 1:
            raise ValueError("transitions_cap must be >= 1")
        self.sim = sim
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self.on_open = on_open
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = float("-inf")
        self.opens = 0
        #: state-transition log: (sim time, from-state, to-state); purely
        #: clock-driven, so it replays byte-identically with the scenario.
        #: Bounded: a channel that flaps for the whole run keeps only the
        #: most recent ``transitions_cap`` entries (``transitions_dropped``
        #: counts the evicted ones) instead of growing without limit.
        self.transitions: Deque[Tuple[float, str, str]] = \
            deque(maxlen=transitions_cap)
        self.transitions_dropped = 0

    def _goto(self, state: str) -> None:
        if state != self.state:
            if len(self.transitions) == self.transitions.maxlen:
                self.transitions_dropped += 1
            self.transitions.append((self.sim.now, self.state, state))
            self.state = state

    def allow(self) -> bool:
        """May a call go through right now?"""
        if self.state == self.OPEN:
            if self.sim.now - self.opened_at >= self.reset_after:
                self._goto(self.HALF_OPEN)
            else:
                return False
        return True

    def record_success(self) -> None:
        self.failures = 0
        self._goto(self.CLOSED)

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == self.HALF_OPEN or \
                self.failures >= self.failure_threshold:
            if self.state != self.OPEN:
                self.opens += 1
                if self.on_open is not None:
                    self.on_open(self)
            self._goto(self.OPEN)
            self.opened_at = self.sim.now
            self.failures = 0


class RetryBudget:
    """A token bucket bounding a client's aggregate retry *rate*.

    Retries amplify overload: a server shedding load makes every client
    retry, which multiplies the offered load exactly when the server can
    least absorb it.  The budget caps that feedback -- ``cap`` tokens,
    refilled at ``refill_rate`` tokens per second of simulated time; every
    retry (rejection or transport) spends one.  An empty bucket means the
    retry is *not* taken and the typed error surfaces immediately, so the
    steady-state retry rate of any one engine never exceeds
    ``refill_rate`` however hard the storm.

    Evaluated purely against the simulated clock: deterministic, and
    shareable across the engines of one process (a shard router passes one
    budget to all its per-shard engines so the *sum* of their retries is
    what the cap bounds).
    """

    def __init__(self, sim, cap: float = 16.0, refill_rate: float = 1000.0):
        if cap < 1.0:
            raise ValueError("cap must be >= 1")
        if refill_rate <= 0.0:
            raise ValueError("refill_rate must be > 0")
        self.sim = sim
        self.cap = float(cap)
        self.refill_rate = float(refill_rate)
        self.tokens = float(cap)
        self._last = sim.now
        self.spent = 0
        self.denied = 0

    def _refill(self) -> None:
        now = self.sim.now
        if now > self._last:
            self.tokens = min(self.cap,
                              self.tokens + (now - self._last)
                              * self.refill_rate)
            self._last = now

    def try_spend(self) -> bool:
        """Take one retry token; False = budget exhausted, fail fast."""
        self._refill()
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False
