"""Closed-loop hint auto-tuning: Figure 6's selection algorithm, online.

The paper's hints are static IDL declarations: the author states the
expected payload size and concurrency, the selector maps them to a
protocol/polling choice, and the plan is fixed at build time.  Declared
hints go stale the moment the workload shifts -- and the attribution layer
already measures exactly the per-(function, payload-class) stage costs the
selection was predicated on.  :class:`HintTuner` closes that loop:

* every completed call feeds one ``(payload, latency)`` sample into a
  :class:`~repro.obs.attribution.WindowedAttribution` keyed by
  ``(function, payload_class, choice)``;
* every ``epoch_samples`` observations per function, the tuner re-runs
  :func:`~repro.core.selector.select_protocol` with the *observed* p95
  payload (and declared or observed concurrency) in place of the declared
  hints;
* when the re-resolved choice differs from the live one, the switch is
  gated by **hysteresis** -- the same target must win ``confirm_epochs``
  consecutive epochs, a minimum dwell time must have passed since the
  last switch, the per-function switch rate is capped, and (once both
  choices have confident measurement windows) the candidate must beat the
  incumbent's p50 by ``improvement_threshold`` -- so the tuner cannot
  flap;
* an accepted switch calls ``engine.retarget``: pure client-side
  re-routing onto a channel the tunable plan already provisioned (and the
  server is already serving), so both peers converge without any wire
  negotiation.  The tuner's **plan epoch** rides on every request
  (``0xC6 'EPO'`` tag) and is echoed by the server; samples whose echoed
  epoch predates the current plan are dropped as stale -- the split-brain
  guard for calls in flight across a switch.

Declared hints remain the fallback throughout: below-confidence windows
never switch, a disabled tuner observes nothing, and an engine with no
tuner attached pays one ``is None`` check per call -- zero-cost-when-off
like the rest of the observability stack.

A post-switch **revert watch** keeps the loop honest: if the switched-to
choice's measured p50 regresses beyond ``revert_threshold`` against the
pre-switch baseline, the tuner switches back and puts the failed choice on
an epoch cooldown.

One tuner may be shared by every client engine of a service (they must be
built from the same hint map): samples pool across engines -- which is
what makes convergence fast at high client counts -- and a switch
re-routes all of them together.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro import obs
from repro.core.selector import ProtocolChoice, select_protocol
from repro.core.tracing import TunerDecision
from repro.obs.attribution import (StageStats, WindowedAttribution,
                                   payload_class)

__all__ = ["HintTuner", "TunerConfig"]

#: the attribution stage name the tuner's end-to-end samples land under
CALL_STAGE = "call"


def _choice_label(protocol: str, poll) -> str:
    return f"{protocol or 'tcp'}/{poll.value}"


@dataclass(frozen=True)
class TunerConfig:
    """Hysteresis and confidence knobs for one :class:`HintTuner`."""

    #: ring-buffer depth per (function, payload-class, choice) window
    window: int = 128
    #: minimum samples before ANY decision (the confidence floor: below
    #: it, declared hints stand)
    min_samples: int = 16
    #: observations per function between decision points (the epoch)
    epoch_samples: int = 32
    #: consecutive epochs the same target must win before a switch
    confirm_epochs: int = 2
    #: minimum sim time between switches of the same function
    min_dwell: float = 5e-4
    #: measured-vs-measured gate: the candidate's p50 must beat the
    #: incumbent's by this fraction (only once both windows are confident;
    #: an unmeasured candidate switches on the selector's prior)
    improvement_threshold: float = 0.05
    #: post-switch regression that triggers a revert.  Deliberately loose:
    #: the baseline window predates the switch, and comparing latency
    #: windows across eras is noisy under contention -- the forward
    #: improvement gate is the optimizer, the revert is the safety net
    #: against a selection that is *egregiously* wrong in practice.
    revert_threshold: float = 2.0
    #: epochs a reverted-from choice stays blocked
    cooldown_epochs: int = 8
    #: switch-rate cap: at most this many switches per function ...
    max_switch_rate: int = 4
    #: ... within this much sim time
    rate_window: float = 1e-2
    #: 'declared' re-resolves with the hinted concurrency; 'observed'
    #: uses the number of engines sharing this tuner (one per client
    #: connection in the runtime)
    concurrency_source: str = "declared"
    #: a disabled tuner observes nothing: declared hints stand untouched
    enabled: bool = True


@dataclass
class _FnState:
    payloads: Deque[int]
    seen: int = 0
    epochs: int = 0
    holds: int = 0
    pending: Optional[str] = None
    pending_choice: Optional[ProtocolChoice] = None
    pending_count: int = 0
    last_switch: float = float("-inf")
    switch_times: Deque[float] = field(default_factory=deque)
    #: (choice_key, channel, choice, measured_p50, payload_class) of the
    #: incumbent at the moment of the last switch -- the revert baseline
    prev: Optional[Tuple[str, int, ProtocolChoice, float, str]] = None
    cooldown: Dict[str, int] = field(default_factory=dict)


class HintTuner:
    """Online re-resolution of protocol/polling choices from live stats.

    Attach with ``engine.attach_tuner(tuner)`` (repeatable across engines
    built from the same tunable plan).  The engine feeds :meth:`observe`
    on every completed call and :meth:`observe_error` on oversize
    failures; everything else is internal.
    """

    def __init__(self, config: Optional[TunerConfig] = None):
        self.cfg = config or TunerConfig()
        self.enabled = self.cfg.enabled
        #: monotonically increasing plan epoch; rides on the wire
        self.epoch = 0
        self.decisions: List[TunerDecision] = []
        #: observers called with each TunerDecision as it lands (the phased
        #: bench harness annotates epoch switches into its live stream)
        self.on_decision: List[Any] = []
        self.switches = 0
        self.reverts = 0
        self.holds = 0
        self.stale_samples = 0
        self.urgent_switches = 0
        self._engines: List[Any] = []
        self._attr = WindowedAttribution(window=self.cfg.window)
        self._fns: Dict[str, _FnState] = {}
        # -- metrics (captured once; None = obs disabled) --
        reg = obs.current()
        if reg is not None:
            self._m_switch = reg.counter("tuner.switches")
            self._m_revert = reg.counter("tuner.reverts")
            self._m_hold = reg.counter("tuner.holds")
            self._m_stale = reg.counter("tuner.stale_samples")
            self._m_epoch = reg.gauge("tuner.epoch")
        else:
            self._m_switch = self._m_revert = None
            self._m_hold = self._m_stale = self._m_epoch = None

    # -- wiring --------------------------------------------------------------
    def bind(self, engine) -> None:
        """Called by ``engine.attach_tuner``; engines must share the same
        hint-map-derived plan shape (identical channel indices)."""
        if engine in self._engines:
            return
        if self._engines and self.epoch:
            # A late joiner starts from the declared plan; bring its routes
            # up to the tuner's current epoch, or a wave of post-switch
            # connections would pile back onto the channel the fleet just
            # left (and, busy-polled, pin server cores all over again).
            live = self._engines[0].plan.routes
            for fn, route in live.items():
                mine = engine.plan.routes.get(fn)
                if mine is not None and (mine.channel != route.channel
                                         or mine.choice != route.choice):
                    engine.retarget(fn, route.channel, route.choice)
        self._engines.append(engine)

    # -- the sample feed -----------------------------------------------------
    def observe(self, fn: str, nbytes: int, latency: float, now: float,
                channel: int, epoch_ok: bool = True) -> None:
        """One completed call: payload size, end-to-end latency, and the
        channel it actually ran on (failovers attribute to the channel
        that served them, not the nominal route)."""
        if not self.enabled or not self._engines:
            return
        if not epoch_ok:
            # Issued under an older plan epoch: attributing it to the
            # current choice would poison the window that just justified
            # the switch.
            self.stale_samples += 1
            if self._m_stale is not None:
                self._m_stale.inc()
            return
        eng = self._engines[0]
        channels = eng.plan.channels
        if not (0 <= channel < len(channels)):
            return
        ch = channels[channel]
        key = _choice_label(ch.protocol, ch.server_poll)
        st = self._state(fn)
        st.payloads.append(nbytes)
        self._attr.observe((fn, payload_class(nbytes), key), CALL_STAGE,
                           latency)
        st.seen += 1
        if st.seen >= self.cfg.epoch_samples:
            st.seen = 0
            st.epochs += 1
            self._decide(fn, st, now)

    def observe_error(self, fn: str, nbytes: int, channel: int) -> None:
        """An oversize failure (request exceeds the channel's buffers):
        the declared payload hint is provably wrong, so retarget urgently
        -- no confirmation epochs, no dwell -- onto a channel that fits."""
        if not self.enabled or not self._engines:
            return
        eng = self._engines[0]
        route = eng.plan.routes.get(fn)
        if route is None:
            return
        cur_ch = eng.plan.channels[route.channel]
        if nbytes <= cur_ch.max_msg:
            return                      # some other protocol failure
        now = eng.node.sim.now
        conc = self._concurrency(route)
        target = select_protocol(replace(route.server_hints,
                                         payload_size=nbytes,
                                         concurrency=conc))
        idx = self._find_channel(eng, target, nbytes)
        choice = target
        if idx is None:
            # No channel matches the re-resolved choice at this size;
            # any RDMA channel that fits beats calls that cannot be sent.
            fits = [c for c in eng.plan.channels
                    if c.transport == "rdma" and c.max_msg >= nbytes
                    and c.index != route.channel]
            if not fits:
                self._hold(self._state(fn), "oversize: no channel fits")
                return
            ch = min(fits, key=lambda c: c.max_msg)
            idx = ch.index
            choice = ProtocolChoice("rdma", ch.protocol, ch.server_poll,
                                    "tuner urgent oversize retarget")
        st = self._state(fn)
        self.urgent_switches += 1
        self._apply(fn, st, idx, choice, now, kind="switch",
                    reason=f"urgent: {nbytes}B exceeds channel max_msg "
                           f"{cur_ch.max_msg}")

    # -- the decision loop ---------------------------------------------------
    def _decide(self, fn: str, st: _FnState, now: float) -> None:
        eng = self._engines[0]
        route = eng.plan.routes[fn]
        cur = route.choice
        cur_key = _choice_label(cur.protocol, cur.poll_mode)

        if len(st.payloads) < self.cfg.min_samples:
            self._hold(st, "below confidence")
            return
        svals = sorted(st.payloads)
        p95_payload = svals[min(len(svals) - 1, (len(svals) * 95) // 100)]
        cls = payload_class(p95_payload)
        conc = self._concurrency(route)
        target = select_protocol(replace(route.server_hints,
                                         payload_size=p95_payload,
                                         concurrency=conc))
        tgt_key = _choice_label(target.protocol, target.poll_mode)

        # Revert watch: the last switch must prove itself once its window
        # fills; a regression beyond the threshold rolls it back and puts
        # the failed choice on cooldown.
        if st.prev is not None:
            prev_key, prev_idx, prev_choice, prev_p50, prev_cls = st.prev
            new_stats = self.stats(fn, prev_cls, cur_key)
            if new_stats is not None \
                    and new_stats.count >= self.cfg.min_samples:
                if prev_p50 > 0 and new_stats.p50 > prev_p50 * (
                        1 + self.cfg.revert_threshold):
                    st.cooldown[cur_key] = st.epochs + \
                        self.cfg.cooldown_epochs
                    st.prev = None
                    self.reverts += 1
                    if self._m_revert is not None:
                        self._m_revert.inc()
                    self._apply(fn, st, prev_idx, prev_choice, now,
                                kind="revert",
                                reason=f"p50 {new_stats.p50:.3e} vs "
                                       f"baseline {prev_p50:.3e}")
                    return
                st.prev = None          # the switch held up

        if target.transport == cur.transport and tgt_key == cur_key:
            st.pending = None
            st.pending_count = 0
            self._hold(st, "steady")
            return
        if st.cooldown.get(tgt_key, 0) > st.epochs:
            self._hold(st, "cooldown")
            return
        if st.pending != tgt_key:
            st.pending = tgt_key
            st.pending_choice = target
            st.pending_count = 1
        else:
            st.pending_count += 1
        if st.pending_count < self.cfg.confirm_epochs:
            self._hold(st, "awaiting confirmation")
            return
        if now - st.last_switch < self.cfg.min_dwell:
            self._hold(st, "dwell")
            return
        if not self._rate_ok(st, now):
            self._hold(st, "switch rate capped")
            return
        cur_stats = self.stats(fn, cls, cur_key)
        cand_stats = self.stats(fn, cls, tgt_key)
        if (cur_stats is not None and cand_stats is not None
                and cur_stats.count >= self.cfg.min_samples
                and cand_stats.count >= self.cfg.min_samples
                and cand_stats.p50 > cur_stats.p50 * (
                    1 - self.cfg.improvement_threshold)):
            self._hold(st, "improvement below threshold")
            return
        idx = self._find_channel(eng, target, max(st.payloads))
        if idx is None:
            self._hold(st, "no channel for target choice")
            return
        st.prev = (cur_key, route.channel, cur,
                   cur_stats.p50 if cur_stats is not None else 0.0, cls)
        st.pending = None
        st.pending_count = 0
        self._apply(fn, st, idx, target, now, kind="switch",
                    reason=f"re-resolved @ payload~{p95_payload}B "
                           f"c={conc}")

    def _apply(self, fn: str, st: _FnState, idx: int,
               choice: ProtocolChoice, now: float, kind: str,
               reason: str) -> None:
        eng = self._engines[0]
        from_choice = eng.plan.routes[fn].choice
        for engine in self._engines:
            engine.retarget(fn, idx, choice)
        self.epoch += 1
        st.last_switch = now
        st.switch_times.append(now)
        if kind == "switch":
            self.switches += 1
            if self._m_switch is not None:
                self._m_switch.inc()
        if self._m_epoch is not None:
            self._m_epoch.set(self.epoch)
        decision = TunerDecision(
            time=now, function=fn, kind=kind,
            from_choice=_choice_label(from_choice.protocol,
                                      from_choice.poll_mode),
            to_choice=_choice_label(choice.protocol, choice.poll_mode),
            channel=idx, epoch=self.epoch, reason=reason)
        self.decisions.append(decision)
        for hook in self.on_decision:
            hook(decision)
        for engine in self._engines:
            engine._trace(f"tuner_{kind}", fn, idx,
                          f"{decision.from_choice}->{decision.to_choice} "
                          f"epoch={self.epoch}")

    # -- helpers -------------------------------------------------------------
    def _state(self, fn: str) -> _FnState:
        st = self._fns.get(fn)
        if st is None:
            st = _FnState(payloads=deque(maxlen=self.cfg.window))
            self._fns[fn] = st
        return st

    def _hold(self, st: _FnState, reason: str) -> None:
        st.holds += 1
        self.holds += 1
        if self._m_hold is not None:
            self._m_hold.inc()

    def _rate_ok(self, st: _FnState, now: float) -> bool:
        cutoff = now - self.cfg.rate_window
        while st.switch_times and st.switch_times[0] < cutoff:
            st.switch_times.popleft()
        return len(st.switch_times) < self.cfg.max_switch_rate

    def _concurrency(self, route) -> int:
        if self.cfg.concurrency_source == "observed":
            return max(len(self._engines), 1)
        return route.server_hints.concurrency

    def _find_channel(self, eng, choice: ProtocolChoice,
                      need: int) -> Optional[int]:
        """The lowest-index plan channel serving ``choice`` whose buffers
        fit the observed payloads (declared channels beat alternates)."""
        best = None
        for ch in eng.plan.channels:
            if (ch.transport != choice.transport
                    or ch.protocol != choice.protocol
                    or ch.server_poll != choice.poll_mode
                    or ch.max_msg < need):
                continue
            if best is None or (best.alternate and not ch.alternate):
                best = ch
        return best.index if best is not None else None

    def stats(self, fn: str, cls: str, choice_key: str
              ) -> Optional[StageStats]:
        """The live window stats for one (function, class, choice)."""
        return self._attr.stats((fn, cls, choice_key), CALL_STAGE)

    def epochs(self, fn: str) -> int:
        st = self._fns.get(fn)
        return st.epochs if st is not None else 0

    def summary_lines(self) -> List[str]:
        lines = [f"tuner: epoch={self.epoch} switches={self.switches} "
                 f"reverts={self.reverts} holds={self.holds} "
                 f"stale={self.stale_samples} "
                 f"urgent={self.urgent_switches}"]
        for d in self.decisions:
            lines.append("  " + d.label())
        return lines
