"""HatRPC runtime: assembling generated code, engine, and servers.

Client side::

    client = yield from hatrpc_connect(node, server_node, gen, "KVService")
    value = yield from client.Get(key)

Server side::

    server = HatRpcServer(node, gen, "KVService", handler).start()

Both ends derive the same channel plan from the generated ``SERVICE_HINTS``
map, so no protocol negotiation happens on the wire.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.engine import HatRpcEngine, ServicePlan, build_service_plan
from repro.core.trdma import HintedProtocol, TRdma, TRdmaServerTransport
from repro.protocols import ProtoConfig, get_protocol
from repro.thrift.errors import TTransportException
from repro.thrift.protocol.binary import TBinaryProtocol
from repro.thrift.transport import (
    TFramedTransport,
    TMemoryBuffer,
    TServerSocket,
    TSocket,
)
from repro.thrift.server import TThreadedServer

__all__ = ["HatRpcClient", "HatRpcServer", "RdmaChannel", "TcpChannel",
           "hatrpc_connect", "service_plan_of"]

DEFAULT_BASE_SERVICE_ID = 5000


def service_plan_of(gen_module, service_name: str,
                    concurrency: Optional[int] = None) -> ServicePlan:
    """Build the channel plan from a generated module's hint map."""
    hint_map = gen_module.SERVICE_HINTS.get(service_name)
    if hint_map is None:
        raise KeyError(f"service {service_name!r} not found in generated "
                       f"module (has: {sorted(gen_module.SERVICE_HINTS)})")
    functions = gen_module.SERVICE_FUNCTIONS[service_name]
    return build_service_plan(service_name, hint_map, functions,
                              concurrency_override=concurrency)


# ---------------------------------------------------------------------------
# Channels: a uniform message call interface over RDMA protocols and TCP.
# ---------------------------------------------------------------------------

class RdmaChannel:
    """One RDMA protocol connection (client side)."""

    def __init__(self, node, channel_plan):
        self.node = node
        self.plan = channel_plan
        client_cls, _ = get_protocol(channel_plan.protocol)
        # rfp_first_read: the hint-informed sizing of RFP's speculative
        # fetch -- a pinned comparator keeps the stock 4 KiB slot, while a
        # hint-derived plan sizes it to the expected response.
        cfg = ProtoConfig(poll_mode=channel_plan.client_poll,
                          max_msg=channel_plan.max_msg,
                          numa_local=channel_plan.client_numa)
        if channel_plan.hinted:
            # Hint-informed speculative-READ sizing, capped: probing with a
            # huge READ wastes wire on every not-ready retry, so beyond the
            # cap RFP probes small and fetches the exact remainder once.
            cfg = cfg.with_(rfp_first_read=min(channel_plan.resp_size + 1024,
                                               4096))
        self._client = client_cls(node.nic, cfg)

    def open(self, remote_node, service_id: int):
        try:
            yield from self._client.connect(remote_node, service_id)
        except BaseException:
            # Never leave a half-open connection behind a failed handshake.
            self._client.abort()
            raise

    def call(self, message: bytes, resp_hint: int, oneway: bool = False,
             trace=None):
        # Oneway still receives the engine-level empty ack the server sends
        # for every request; the fixed cost is one tiny response message.
        return (yield from self._client.call(message, resp_hint=resp_hint,
                                             trace=trace))

    def close(self) -> None:
        # Error the QP pair: the peer-side flush wakes the server's serve
        # loop so it can release the connection.
        self._client.abort()


class TcpChannel:
    """One framed-TCP connection (hybrid-transport channels)."""

    def __init__(self, node, remote_node, port: int):
        self.node = node
        self.remote_node = remote_node
        self.port = port
        self._trans: Optional[TFramedTransport] = None

    def open(self):
        self._trans = TFramedTransport(
            TSocket(self.node, self.remote_node, self.port))
        yield from self._trans.open()

    def call(self, message: bytes, resp_hint: int, oneway: bool = False,
             trace=None):
        t0 = self.node.sim.now
        self._trans.write(message)
        yield from self._trans.flush()
        if trace is not None:
            trace.stage("post", t0, self.node.sim.now, nbytes=len(message))
        if oneway:
            return b""
        t1 = self.node.sim.now
        yield from self._trans.ready()
        resp = self._trans.read(1 << 30)
        if trace is not None:
            trace.stage("complete", t1, self.node.sim.now,
                        nbytes=len(resp))
        return resp

    def close(self) -> None:
        if self._trans is not None:
            self._trans.close()


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------

class HatRpcServer:
    """Serves one IDL service over its full channel plan."""

    def __init__(self, node, gen_module, service_name: str, handler,
                 base_service_id: int = DEFAULT_BASE_SERVICE_ID,
                 protocol_factory: Callable = TBinaryProtocol,
                 concurrency: Optional[int] = None,
                 plan: Optional[ServicePlan] = None):
        self.node = node
        self.gen = gen_module
        self.service_name = service_name
        self.handler = handler
        self.base_service_id = base_service_id
        self.protocol_factory = protocol_factory
        self.plan = plan or service_plan_of(gen_module, service_name,
                                            concurrency)
        self.processor = getattr(gen_module, f"{service_name}Processor")(
            handler)
        self.endpoint = TRdmaServerTransport(node, self.plan, base_service_id)

    def start(self) -> "HatRpcServer":
        for ch in self.plan.channels:
            sid = self.base_service_id + ch.index
            if ch.transport == "tcp":
                server = TThreadedServer(
                    self.processor, TServerSocket(self.node, sid),
                    protocol_factory=self.protocol_factory)
                server.serve()
            else:
                _, server_cls = get_protocol(ch.protocol)
                cfg = ProtoConfig(poll_mode=ch.server_poll,
                                  max_msg=ch.max_msg,
                                  numa_local=ch.server_numa)
                server = server_cls(self.node.nic, sid,
                                    self._bytes_handler(), cfg)
                server.start()
            self.endpoint.add(server)
        return self

    def stop(self) -> None:
        self.endpoint.stop()

    @property
    def requests(self) -> int:
        return self.endpoint.requests

    def _bytes_handler(self):
        """Bridge: protocol-level bytes -> Thrift processor -> bytes."""
        processor = self.processor
        factory = self.protocol_factory
        sim = self.node.sim

        def handle(request: bytes):
            itrans = TMemoryBuffer(request)
            # Hand the serve loop's trace context (a ServerCall, or None)
            # to the processor, which has no simulator handle of its own.
            # Always assigned so a previous request's context never leaks
            # onto this one.
            ap = sim.active_process
            itrans.trace_ctx = ap.trace_ctx if ap is not None else None
            otrans = TMemoryBuffer()
            replied = yield from processor.process(factory(itrans),
                                                   factory(otrans))
            return otrans.getvalue() if replied else b""

        return handle


class HatRpcClient:
    """Holds the engine + transport behind a generated client object."""

    def __init__(self, node, gen_module, service_name: str,
                 base_service_id: int = DEFAULT_BASE_SERVICE_ID,
                 protocol_factory: Callable = TBinaryProtocol,
                 concurrency: Optional[int] = None,
                 plan: Optional[ServicePlan] = None,
                 deadline: Optional[float] = None,
                 retry_policy=None, idempotent=(), rng=None):
        self.node = node
        self.gen = gen_module
        self.service_name = service_name
        self.plan = plan or service_plan_of(gen_module, service_name,
                                            concurrency)
        self.engine = HatRpcEngine(node, self.plan, base_service_id,
                                   deadline=deadline,
                                   retry_policy=retry_policy,
                                   idempotent=idempotent, rng=rng)
        self.trans = TRdma(self.engine)
        self.protocol = HintedProtocol(protocol_factory(self.trans),
                                       self.trans)
        self.stub = getattr(gen_module, f"{service_name}Client")(
            self.protocol)

    def connect(self, remote_node):
        """Coroutine: open all channels; returns the generated client stub."""
        yield from self.engine.connect(remote_node)
        return self.stub

    def close(self) -> None:
        self.engine.close()


def hatrpc_connect(node, remote_node, gen_module, service_name: str,
                   base_service_id: int = DEFAULT_BASE_SERVICE_ID,
                   protocol_factory: Callable = TBinaryProtocol,
                   concurrency: Optional[int] = None,
                   plan: Optional[ServicePlan] = None,
                   deadline: Optional[float] = None,
                   retry_policy=None, idempotent=(), rng=None):
    """Coroutine: one-call client setup; returns the generated stub.

    The stub's methods are coroutines: ``yield from stub.Method(...)``.
    Keep a reference to ``stub._hatrpc`` (the HatRpcClient) for close().
    ``deadline`` / ``retry_policy`` / ``idempotent`` / ``rng`` configure the
    engine's failure handling (see :class:`repro.core.engine.HatRpcEngine`).
    """
    client = HatRpcClient(node, gen_module, service_name, base_service_id,
                          protocol_factory, concurrency, plan,
                          deadline=deadline, retry_policy=retry_policy,
                          idempotent=idempotent, rng=rng)
    stub = yield from client.connect(remote_node)
    stub._hatrpc = client
    return stub
