"""HatRPC runtime: assembling generated code, engine, and servers.

Client side::

    client = yield from hatrpc_connect(node, server_node, gen, "KVService")
    value = yield from client.Get(key)

Server side::

    server = HatRpcServer(node, gen, "KVService", handler).start()

Both ends derive the same channel plan from the generated ``SERVICE_HINTS``
map, so no protocol negotiation happens on the wire.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.engine import HatRpcEngine, ServicePlan, build_service_plan
from repro.core.overload import (AdmissionConfig, AdmissionGate, pack_rej,
                                 peek_fn_name)
from repro.core.pipeline import pack_epo, pack_pip, split_epo, split_pip
from repro.core.trdma import (HintedProtocol, TRdma, TRdmaServerTransport,
                              _PAUSE, _AsyncTRdma)
from repro.protocols import SRQ_SERVERS, ProtoConfig, get_protocol
from repro.thrift.errors import TTransportException
from repro.thrift.protocol.binary import TBinaryProtocol
from repro.thrift.transport import (
    TFramedTransport,
    TMemoryBuffer,
    TServerSocket,
    TSocket,
)
from repro.thrift.server import TThreadedServer

__all__ = ["AsyncCaller", "HatRpcClient", "HatRpcServer", "RdmaChannel",
           "StubCallHandle", "TcpChannel", "hatrpc_connect",
           "service_plan_of"]

DEFAULT_BASE_SERVICE_ID = 5000


def service_plan_of(gen_module, service_name: str,
                    concurrency: Optional[int] = None,
                    pipeline: bool = False,
                    tunable: bool = False) -> ServicePlan:
    """Build the channel plan from a generated module's hint map.

    ``pipeline=True`` provisions RDMA channels for overlapped in-flight
    requests (window sized from the concurrency hint); both peers must
    build their plan with the same flag.  ``tunable=True`` (or a
    ``tunable`` hint on any function) additionally provisions the
    alternate channels the online :class:`~repro.core.tuner.HintTuner`
    may retarget onto; like ``pipeline``, both peers must agree.
    """
    hint_map = gen_module.SERVICE_HINTS.get(service_name)
    if hint_map is None:
        raise KeyError(f"service {service_name!r} not found in generated "
                       f"module (has: {sorted(gen_module.SERVICE_HINTS)})")
    functions = gen_module.SERVICE_FUNCTIONS[service_name]
    return build_service_plan(service_name, hint_map, functions,
                              concurrency_override=concurrency,
                              pipeline=pipeline, tunable=tunable)


# ---------------------------------------------------------------------------
# Channels: a uniform message call interface over RDMA protocols and TCP.
# ---------------------------------------------------------------------------

class RdmaChannel:
    """One RDMA protocol connection (client side)."""

    def __init__(self, node, channel_plan):
        self.node = node
        self.plan = channel_plan
        client_cls, _ = get_protocol(channel_plan.protocol)
        # rfp_first_read: the hint-informed sizing of RFP's speculative
        # fetch -- a pinned comparator keeps the stock 4 KiB slot, while a
        # hint-derived plan sizes it to the expected response.
        cfg = ProtoConfig(poll_mode=channel_plan.client_poll,
                          max_msg=channel_plan.max_msg,
                          numa_local=channel_plan.client_numa,
                          window=channel_plan.window)
        if channel_plan.hinted:
            # Hint-informed speculative-READ sizing, capped: probing with a
            # huge READ wastes wire on every not-ready retry, so beyond the
            # cap RFP probes small and fetches the exact remainder once.
            cfg = cfg.with_(rfp_first_read=min(channel_plan.resp_size + 1024,
                                               4096))
        self._client = client_cls(node.nic, cfg)
        # Pipelining needs both a capable protocol AND a plan that
        # provisioned multiple wire slots; window-1 channels keep the
        # classic (single-outstanding) call path.
        self.supports_pipelining = (self._client.supports_pipelining
                                    and channel_plan.window > 1)

    def open(self, remote_node, service_id: int):
        try:
            yield from self._client.connect(remote_node, service_id)
        except BaseException:
            # Never leave a half-open connection behind a failed handshake.
            self._client.abort()
            raise

    def call(self, message: bytes, resp_hint: int, oneway: bool = False,
             trace=None):
        # Oneway still receives the engine-level empty ack the server sends
        # for every request; the fixed cost is one tiny response message.
        return (yield from self._client.call(message, resp_hint=resp_hint,
                                             trace=trace))

    def post(self, message: bytes):
        """Coroutine: pipelined send half (pair with :meth:`recv`)."""
        yield from self._client.post(message)

    def recv(self):
        """Coroutine: next response in arrival order (pipelined)."""
        return (yield from self._client.recv())

    def close(self) -> None:
        # Error the QP pair: the peer-side flush wakes the server's serve
        # loop so it can release the connection.
        self._client.abort()


class TcpChannel:
    """One framed-TCP connection (hybrid-transport channels)."""

    supports_pipelining = False

    def __init__(self, node, remote_node, port: int):
        self.node = node
        self.remote_node = remote_node
        self.port = port
        self._trans: Optional[TFramedTransport] = None

    def open(self):
        self._trans = TFramedTransport(
            TSocket(self.node, self.remote_node, self.port))
        yield from self._trans.open()

    def call(self, message: bytes, resp_hint: int, oneway: bool = False,
             trace=None):
        t0 = self.node.sim.now
        self._trans.write(message)
        yield from self._trans.flush()
        if trace is not None:
            trace.stage("post", t0, self.node.sim.now, nbytes=len(message))
        if oneway:
            return b""
        t1 = self.node.sim.now
        yield from self._trans.ready()
        resp = self._trans.read(1 << 30)
        if trace is not None:
            trace.stage("complete", t1, self.node.sim.now,
                        nbytes=len(resp))
        return resp

    def close(self) -> None:
        if self._trans is not None:
            self._trans.close()


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------

class HatRpcServer:
    """Serves one IDL service over its full channel plan.

    ``admission`` (an :class:`~repro.core.overload.AdmissionConfig`, or a
    pre-built :class:`~repro.core.overload.AdmissionGate` to share one gate
    across services) installs priority-tiered admission control: every
    request -- on every channel, RDMA and TCP alike -- passes ONE gate
    before dispatch, keyed by the function's resolved ``priority`` hint,
    and a refusal answers with the typed rejection frame.  ``srq=True``
    swaps each eligible RDMA channel's server onto the shared-receive-queue
    path (:class:`~repro.protocols.srq.SrqEagerServer`): one recv-WQE pool
    and one dispatcher instead of a poll loop per connection, which is what
    keeps a busy-polled server upright when connections outnumber cores.
    ``srq_slots`` sizes that pool (default: the channel's ring depth).
    """

    def __init__(self, node, gen_module, service_name: str, handler,
                 base_service_id: int = DEFAULT_BASE_SERVICE_ID,
                 protocol_factory: Callable = TBinaryProtocol,
                 concurrency: Optional[int] = None,
                 plan: Optional[ServicePlan] = None,
                 pipeline: bool = False,
                 admission=None,
                 srq: bool = False,
                 srq_slots: Optional[int] = None,
                 tunable: bool = False):
        self.node = node
        self.gen = gen_module
        self.service_name = service_name
        self.handler = handler
        self.base_service_id = base_service_id
        self.protocol_factory = protocol_factory
        self.plan = plan or service_plan_of(gen_module, service_name,
                                            concurrency, pipeline=pipeline,
                                            tunable=tunable)
        #: highest tuner plan epoch seen on the wire (-1: none yet).  The
        #: server needs no tuner of its own -- dispatch is channel-agnostic
        #: and a tunable plan already serves every alternate -- but the
        #: echoed epoch is the client's split-brain guard, and this counter
        #: is the observable proof the peers converged.
        self.tuner_epoch_seen = -1
        self.processor = getattr(gen_module, f"{service_name}Processor")(
            handler)
        self.endpoint = TRdmaServerTransport(node, self.plan, base_service_id)
        self.srq = srq
        self.srq_slots = srq_slots
        if admission is None:
            self.gate = None
        elif isinstance(admission, AdmissionGate):
            self.gate = admission
        elif isinstance(admission, AdmissionConfig):
            self.gate = AdmissionGate(node.sim, admission)
        else:
            raise TypeError("admission must be an AdmissionConfig or "
                            f"AdmissionGate, not {type(admission).__name__}")
        #: fn -> resolved server-side priority hint, for the pre-dispatch
        #: peek (the shed-order key)
        self._priorities = {fn: route.server_hints.priority
                            for fn, route in self.plan.routes.items()}

    def start(self) -> "HatRpcServer":
        for ch in self.plan.channels:
            sid = self.base_service_id + ch.index
            if ch.transport == "tcp":
                server = TThreadedServer(
                    self.processor, TServerSocket(self.node, sid),
                    protocol_factory=self.protocol_factory,
                    admission=self.gate, priorities=self._priorities)
                server.serve()
            else:
                server_cls = SRQ_SERVERS.get(ch.protocol) if self.srq \
                    else None
                if server_cls is None:
                    _, server_cls = get_protocol(ch.protocol)
                    extra = {}
                else:
                    extra = {"srq_slots": self.srq_slots} \
                        if self.srq_slots is not None else {}
                cfg = ProtoConfig(poll_mode=ch.server_poll,
                                  max_msg=ch.max_msg,
                                  numa_local=ch.server_numa,
                                  window=ch.window)
                server = server_cls(self.node.nic, sid,
                                    self._bytes_handler(), cfg, **extra)
                server.start()
            self.endpoint.add(server)
        return self

    def stop(self) -> None:
        self.endpoint.stop()

    @property
    def requests(self) -> int:
        return self.endpoint.requests

    def _bytes_handler(self):
        """Bridge: protocol-level bytes -> Thrift processor -> bytes."""
        processor = self.processor
        factory = self.protocol_factory
        sim = self.node.sim
        gate = self.gate
        priorities = self._priorities

        server = self

        def handle(request: bytes):
            # A pipelined request leads with the engine's correlation
            # header; strip it and echo it onto the response so the client
            # receiver can pair out-of-order completions.  Sync requests
            # have no header and stay byte-identical both ways.
            pip_seq, request = split_pip(request)
            # A tuner-tagged request next carries the client's plan epoch;
            # echo it so the client can discard samples issued under a
            # stale plan.  Untagged requests round-trip unchanged.
            epoch, request = split_epo(request)
            if epoch is not None and epoch > server.tuner_epoch_seen:
                server.tuner_epoch_seen = epoch
            if gate is not None:
                # Admission runs before deserialization, let alone
                # dispatch: only the function name is peeked, so a
                # rejection costs the server a header parse and one tiny
                # reply -- that cheapness is what makes shedding work.
                priority = priorities.get(peek_fn_name(request), "normal")
                retry_after = gate.admit(priority)
                if retry_after is not None:
                    ap = sim.active_process
                    ctx = ap.trace_ctx if ap is not None else None
                    if ctx is not None:
                        ctx.stage("admission", sim.now, sim.now,
                                  admitted=False, priority=priority)
                    # No epoch echo on a rejection: the typed frame must
                    # stay recognizable to every client, tuned or not (and
                    # a shed request says nothing about the plan choice).
                    rej = pack_rej(retry_after)
                    return pack_pip(pip_seq) + rej \
                        if pip_seq is not None else rej
                # Everything after a successful admit -- the trace stage
                # included -- sits inside the try, so any dispatch-path
                # exception still releases the slot and re-syncs the
                # occupancy gauge (a leaked slot would shed load forever).
                try:
                    ap = sim.active_process
                    ctx = ap.trace_ctx if ap is not None else None
                    if ctx is not None:
                        ctx.stage("admission", sim.now, sim.now,
                                  admitted=True, priority=priority)
                    return (yield from _process(pip_seq, epoch, request))
                finally:
                    gate.release()
            return (yield from _process(pip_seq, epoch, request))

        def _process(pip_seq, epoch, request):
            itrans = TMemoryBuffer(request)
            # Hand the serve loop's trace context (a ServerCall, or None)
            # to the processor, which has no simulator handle of its own.
            # Always assigned so a previous request's context never leaks
            # onto this one.
            ap = sim.active_process
            itrans.trace_ctx = ap.trace_ctx if ap is not None else None
            otrans = TMemoryBuffer()
            replied = yield from processor.process(factory(itrans),
                                                   factory(otrans))
            out = otrans.getvalue() if replied else b""
            if epoch is not None:
                out = pack_epo(epoch) + out
            if pip_seq is not None:
                # Echo even on an empty (oneway) reply: the header alone
                # lets the client release the window slot.
                return pack_pip(pip_seq) + out
            return out

        return handle


class HatRpcClient:
    """Holds the engine + transport behind a generated client object."""

    def __init__(self, node, gen_module, service_name: str,
                 base_service_id: int = DEFAULT_BASE_SERVICE_ID,
                 protocol_factory: Callable = TBinaryProtocol,
                 concurrency: Optional[int] = None,
                 plan: Optional[ServicePlan] = None,
                 deadline: Optional[float] = None,
                 retry_policy=None, idempotent=(), rng=None,
                 pipeline: bool = False, trace_attrs=None,
                 retry_budget=None, tunable: bool = False, tuner=None):
        self.node = node
        self.gen = gen_module
        self.service_name = service_name
        self.protocol_factory = protocol_factory
        self.plan = plan or service_plan_of(gen_module, service_name,
                                            concurrency, pipeline=pipeline,
                                            tunable=tunable or
                                            tuner is not None)
        self.engine = HatRpcEngine(node, self.plan, base_service_id,
                                   deadline=deadline,
                                   retry_policy=retry_policy,
                                   idempotent=idempotent, rng=rng,
                                   trace_attrs=trace_attrs,
                                   retry_budget=retry_budget)
        if tuner is not None:
            self.engine.attach_tuner(tuner)
        self.trans = TRdma(self.engine)
        self.protocol = HintedProtocol(protocol_factory(self.trans),
                                       self.trans)
        self._stub_cls = getattr(gen_module, f"{service_name}Client")
        self.stub = self._stub_cls(self.protocol)
        self._async_caller: Optional["AsyncCaller"] = None

    def connect(self, remote_node):
        """Coroutine: open all channels; returns the generated client stub."""
        yield from self.engine.connect(remote_node)
        return self.stub

    def async_caller(self) -> "AsyncCaller":
        """The (cached) asynchronous driver for this client's stubs."""
        if self._async_caller is None:
            self._async_caller = AsyncCaller(self)
        return self._async_caller

    def close(self) -> None:
        self.engine.close()


class StubCallHandle:
    """Completion handle for one asynchronous *stub* call.

    Wraps the engine's :class:`~repro.core.pipeline.CallHandle` and the
    paused generated-stub generator: ``yield from handle.wait()`` blocks
    for the raw response, then resumes the stub to deserialize it --
    returning the decoded result and raising declared IDL exceptions
    exactly as the blocking path would.
    """

    def __init__(self, method: str, engine_handle, gen, trdma):
        self.method = method
        self.handle = engine_handle        # engine-level CallHandle
        self._gen = gen                    # paused stub generator (None=oneway)
        self._trdma = trdma
        self._decoded = False
        self._result = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self.handle.done

    def wait(self, timeout: Optional[float] = None):
        """Coroutine: the decoded result of the call (or its exception)."""
        if self._decoded:
            if self._error is not None:
                raise self._error
            return self._result
        resp = yield from self.handle.wait(timeout)
        self._decoded = True
        if self._gen is None:              # oneway: nothing to decode
            self._result = None
            return None
        try:
            self._trdma.deliver(resp)
            self._gen.send(None)
        except StopIteration as stop:
            self._result = stop.value
            return stop.value
        except BaseException as exc:
            # Declared IDL exceptions / TApplicationException from the
            # stub's receive half: cache so repeat waits re-raise.
            self._error = exc
            raise
        raise RuntimeError(
            f"stub generator for {self.method} paused unexpectedly")


class AsyncCaller:
    """Drives generated stub methods through the engine's pipelined path.

    Generated stub methods are two-phase coroutines (send half, receive
    half); the caller runs the send half against a capture transport
    (:class:`repro.core.trdma._AsyncTRdma`), posts the captured message via
    ``engine.call_async``, and parks the paused generator in a
    :class:`StubCallHandle` to finish deserialization when the response
    lands.  One shared seqid counter spans every async (and batch) call, so
    the engine's duplicate-send gate keeps working.
    """

    def __init__(self, client: HatRpcClient):
        self.client = client
        self.engine = client.engine

    def call_async(self, method: str, *args, channel: Optional[int] = None):
        """Coroutine: issue ``stub.<method>(*args)`` without waiting;
        returns a :class:`StubCallHandle`.  ``channel`` overrides the
        planned channel for this one call (hot-read steering)."""
        trdma = _AsyncTRdma(self.engine)
        proto = HintedProtocol(self.client.protocol_factory(trdma), trdma)
        stub = self.client._stub_cls(proto)
        # One numbering across every stub, sync AND async: the throwaway
        # capture stub continues the connection stub's counter and writes
        # it back, so no later call (on either path) can collide with an
        # earlier seqid and trip the engine's duplicate-send gate.
        stub._seqid = self.client.stub._seqid
        gen = getattr(stub, method)(*args)
        try:
            paused = next(gen)
        except StopIteration:
            gen = None                     # oneway: send half ran to the end
        else:
            if paused is not _PAUSE:
                raise RuntimeError(
                    f"stub method {method} yielded mid-serialization; "
                    "async stubs must not block before flush")
        self.client.stub._seqid = stub._seqid
        fn, message, oneway, seqid = trdma.captured
        handle = yield from self.engine.call_async(fn, message,
                                                   oneway=oneway,
                                                   seqid=seqid,
                                                   channel=channel)
        return StubCallHandle(method, handle, gen, trdma)

    def call_many(self, calls, timeout: Optional[float] = None):
        """Coroutine: issue ``[(method, *args), ...]`` as one pipelined
        batch and gather the decoded results in call order.

        All requests post before the first response is awaited; per-call
        round trips overlap under the channel window.  The first per-call
        failure is raised after the batch settles.
        """
        eng = self.engine
        sim = eng.node.sim
        batch = None
        if eng._trc is not None:
            batch = eng._trc.start_call(
                "call_many", eng.node.name, lambda: sim.now,
                attrs={"n": len(calls), "service": self.client.service_name})
        try:
            t0 = sim.now
            handles = []
            for call in calls:
                method, args = call[0], call[1:]
                handles.append((yield from self.call_async(method, *args)))
            if batch is not None:
                batch.stage("post", t0, sim.now, n=len(handles))
            t1 = sim.now
            results = []
            first_exc: Optional[Exception] = None
            for h in handles:
                try:
                    results.append((yield from h.wait(timeout)))
                except Exception as exc:
                    if first_exc is None:
                        first_exc = exc
                    results.append(None)
            if batch is not None:
                batch.stage("gather", t1, sim.now)
        except BaseException as exc:
            if batch is not None:
                batch.finish(sim.now, status=type(exc).__name__)
            raise
        if batch is not None:
            batch.finish(sim.now, status="ok" if first_exc is None
                         else type(first_exc).__name__)
        if first_exc is not None:
            raise first_exc
        return results


def hatrpc_connect(node, remote_node, gen_module, service_name: str,
                   base_service_id: int = DEFAULT_BASE_SERVICE_ID,
                   protocol_factory: Callable = TBinaryProtocol,
                   concurrency: Optional[int] = None,
                   plan: Optional[ServicePlan] = None,
                   deadline: Optional[float] = None,
                   retry_policy=None, idempotent=(), rng=None,
                   pipeline: bool = False, trace_attrs=None,
                   retry_budget=None, tunable: bool = False, tuner=None):
    """Coroutine: one-call client setup; returns the generated stub.

    The stub's methods are coroutines: ``yield from stub.Method(...)``.
    Keep a reference to ``stub._hatrpc`` (the HatRpcClient) for close().
    ``deadline`` / ``retry_policy`` / ``idempotent`` / ``rng`` configure the
    engine's failure handling (see :class:`repro.core.engine.HatRpcEngine`).
    ``pipeline=True`` provisions RDMA channels for overlapped in-flight
    calls (drive them via ``stub._hatrpc.async_caller()``); the server must
    be started with the same flag or the same plan.  ``trace_attrs`` are
    stamped onto every call's trace (a shard router passes its shard id so
    hint_select stages attribute per shard).  ``tunable=True`` provisions
    the online tuner's alternate channels (server must match); ``tuner``
    attaches a (shareable) :class:`~repro.core.tuner.HintTuner` and
    implies ``tunable``.
    """
    client = HatRpcClient(node, gen_module, service_name, base_service_id,
                          protocol_factory, concurrency, plan,
                          deadline=deadline, retry_policy=retry_policy,
                          idempotent=idempotent, rng=rng, pipeline=pipeline,
                          trace_attrs=trace_attrs, retry_budget=retry_budget,
                          tunable=tunable, tuner=tuner)
    stub = yield from client.connect(remote_node)
    stub._hatrpc = client
    return stub
