"""HatRPC core: the paper's primary contribution.

* :mod:`repro.core.hints` -- the hierarchical hint schema and resolution
  rules (service/function levels x shared/server/client sides);
* :mod:`repro.core.selector` -- the hint -> (protocol, polling) mapping of
  Figure 6;
* :mod:`repro.core.trdma` -- TRdma / TServerRdma: the TSocket-compatible
  bridge between Thrift and the RDMA engine;
* :mod:`repro.core.engine` -- the hint-aware RDMA communication engine;
* :mod:`repro.core.runtime` -- HatRPC server/client assembly on top of
  IDL-generated code.
"""

from repro.core.hints import (
    DEFAULT_HINTS,
    HINT_SCHEMA,
    HintError,
    ResolvedHints,
    merge_hint_groups,
    resolve_hints,
    validate_hint,
)
from repro.core.selector import ProtocolChoice, select_protocol
from repro.core.trdma import TRdma, TRdmaServerTransport
from repro.core.engine import HatRpcEngine, ServicePlan, build_service_plan, pinned_plan
from repro.core.runtime import HatRpcClient, HatRpcServer, hatrpc_connect
from repro.core.tracing import CallSpan, Tracer, attach_tracer

__all__ = [
    "CallSpan",
    "DEFAULT_HINTS",
    "HINT_SCHEMA",
    "HatRpcClient",
    "HatRpcEngine",
    "ServicePlan",
    "HatRpcServer",
    "HintError",
    "ProtocolChoice",
    "ResolvedHints",
    "TRdma",
    "TRdmaServerTransport",
    "Tracer",
    "attach_tracer",
    "build_service_plan",
    "hatrpc_connect",
    "pinned_plan",
    "merge_hint_groups",
    "resolve_hints",
    "select_protocol",
    "validate_hint",
]
