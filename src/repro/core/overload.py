"""Overload protection: server admission control and typed rejection.

Three pieces compose the graceful-degradation path:

* :func:`pack_rej` / :func:`split_rej` -- the 12-byte rejection frame
  (magic ``0xC5 'REJ'`` + f64 retry-after seconds) a server returns in
  place of a response body when its admission gate refuses a request.
  Like the ``0xC4`` correlation header one layer down, the magic byte
  cannot start a Thrift binary message, so clients detect rejection
  without a protocol round trip -- and because the gate runs *before*
  dispatch, a rejected request provably never executed, which is what
  makes re-sending it safe even for non-idempotent functions.
* :class:`AdmissionGate` -- a token/occupancy gate keyed off in-flight
  work.  Admission is priority-tiered against the ``priority`` IDL hint:
  low-priority traffic is refused once occupancy crosses
  ``low_fraction`` of capacity, normal at ``normal_fraction``, and
  high-priority only when the gate is completely full -- the shed-order
  guarantee (low strictly before high).  Rejections carry a
  ``retry_after`` that grows with occupancy, so a storm's retries spread
  out instead of synchronizing.
* :func:`peek_fn_name` -- a read-only parse of a Thrift binary
  message-begin, letting a server look up the function's resolved
  priority before paying for full deserialization.

The client half (the retry *budget* that keeps rejection retries from
amplifying a storm) lives in :class:`repro.core.resilience.RetryBudget`;
the engine composes both ends.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro import obs
from repro.sim.units import us

__all__ = [
    "REJ_BYTES",
    "AdmissionConfig",
    "AdmissionGate",
    "pack_rej",
    "peek_fn_name",
    "split_rej",
]

_REJ_MAGIC = b"\xc5REJ"
_REJ = struct.Struct("!4sd")
REJ_BYTES = _REJ.size          # 12


def pack_rej(retry_after: float) -> bytes:
    """The rejection frame for a request refused at admission."""
    return _REJ.pack(_REJ_MAGIC, max(0.0, retry_after))


def split_rej(data: bytes) -> Tuple[Optional[float], bytes]:
    """(retry_after, rest) if ``data`` leads with a rejection frame, else
    (None, data) -- ordinary responses pass through byte-identical."""
    if len(data) < REJ_BYTES or data[:4] != _REJ_MAGIC:
        return None, data
    _magic, retry_after = _REJ.unpack_from(data)
    return retry_after, data[REJ_BYTES:]


def peek_fn_name(message: bytes) -> Optional[str]:
    """The function name of a strict Thrift binary message, or None.

    Read-only and allocation-light: header word, name length, name bytes.
    Anything malformed (short buffer, non-strict framing, absurd length)
    returns None -- the caller falls back to default-priority admission
    rather than guessing.
    """
    if len(message) < 8:
        return None
    header = struct.unpack_from("!i", message)[0]
    if header >= 0:                       # strict messages are negative
        return None
    (nlen,) = struct.unpack_from("!i", message, 4)
    if nlen < 0 or nlen > 512 or len(message) < 8 + nlen:
        return None
    try:
        return message[8:8 + nlen].decode("utf-8")
    except UnicodeDecodeError:
        return None


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs for one server's admission gate.

    ``capacity`` is the total in-flight work the server accepts across
    every connection and channel; the per-priority fractions set where
    each tier starts shedding.  ``retry_after_base`` anchors the advised
    backoff; the advice scales up with occupancy so rejected clients of a
    deep queue wait longer than those of a barely-full one.
    """

    capacity: int = 64
    low_fraction: float = 0.5
    normal_fraction: float = 0.8
    retry_after_base: float = 200 * us

    def threshold(self, priority: str) -> int:
        frac = {"low": self.low_fraction,
                "normal": self.normal_fraction}.get(priority, 1.0)
        return max(1, int(self.capacity * frac))


class AdmissionGate:
    """Priority-tiered occupancy gate over a server's in-flight work.

    Not a coroutine -- admit/release are instantaneous bookkeeping, so the
    gate can sit on any request path (RDMA bytes handler, TCP connection
    loop) without perturbing event ordering.
    """

    def __init__(self, sim, config: Optional[AdmissionConfig] = None):
        self.sim = sim
        self.cfg = config or AdmissionConfig()
        self.inflight = 0
        self.high_water = 0
        self.admitted = 0
        self.rejected = 0
        self.shed_by_priority = {"low": 0, "normal": 0, "high": 0}
        #: observers called with the new mark each time ``high_water``
        #: advances (the phased bench harness annotates these live);
        #: exceptions are contained and counted in ``hook_errors``
        self.on_high_water: list = []
        self.hook_errors = 0
        reg = obs.current()
        if reg is not None:
            self._m_occupancy = reg.gauge("admission.occupancy")
            self._m_admitted = reg.counter("admission.admitted")
            self._m_rejected = reg.counter("admission.rejected")
            self._m_shed = {p: reg.counter(f"admission.shed.{p}")
                            for p in ("low", "normal", "high")}
        else:
            self._m_occupancy = None
            self._m_admitted = None
            self._m_rejected = None
            self._m_shed = None

    def admit(self, priority: str = "normal") -> Optional[float]:
        """None = admitted (caller owes a :meth:`release`); a float is the
        advised ``retry_after`` of a rejection."""
        if self.inflight >= self.cfg.threshold(priority):
            self.rejected += 1
            self.shed_by_priority[priority] = \
                self.shed_by_priority.get(priority, 0) + 1
            if self._m_rejected is not None:
                self._m_rejected.inc()
                self._m_shed.get(priority, self._m_shed["normal"]).inc()
            # Deeper queue -> longer advice; deterministic, so replayable.
            occupancy = self.inflight / max(1, self.cfg.capacity)
            return self.cfg.retry_after_base * (1.0 + occupancy)
        self.inflight += 1
        self.admitted += 1
        # Gauge first: observer hooks run below, and a raising hook must
        # not leave ``admission.occupancy`` lagging the slot it consumed.
        if self._m_occupancy is not None:
            self._m_occupancy.set(self.inflight)
            self._m_admitted.inc()
        if self.inflight > self.high_water:
            self.high_water = self.inflight
            for hook in self.on_high_water:
                try:
                    hook(self.high_water)
                except Exception:
                    # Observers are best-effort annotators; a broken one
                    # must not poison the admission path (the caller would
                    # never reach its release(), under-reporting occupancy
                    # forever after).
                    self.hook_errors += 1
        return None

    def release(self) -> None:
        if self.inflight > 0:
            self.inflight -= 1
        if self._m_occupancy is not None:
            self._m_occupancy.set(self.inflight)
