"""Tokenizer for the hint-extended Thrift IDL.

Equivalent of the paper's modified flex scanner: standard Thrift tokens plus
the three hint keywords (``hint``, ``s_hint``, ``c_hint``).  Comments come in
all three Thrift flavors (``//``, ``#``, ``/* ... */``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["LexError", "Lexer", "Token", "TokenKind", "KEYWORDS"]


class LexError(SyntaxError):
    pass


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    DOUBLE = "double"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


#: Thrift reserved words we recognize (subset relevant to the grammar) plus
#: the HatRPC hint keywords of Figure 7.
KEYWORDS = frozenset({
    "include", "namespace", "const", "typedef", "enum", "struct", "union",
    "exception", "service", "extends", "throws", "oneway", "void",
    "required", "optional",
    "bool", "byte", "i8", "i16", "i32", "i64", "double", "string", "binary",
    "list", "map", "set",
    # -- HatRPC extension --
    "hint", "s_hint", "c_hint",
})

_SYMBOLS = set("{}()[]<>,;:=*")


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.value!r}, {self.line}:{self.col})"


class Lexer:
    def __init__(self, source: str, filename: str = "<idl>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    def _error(self, msg: str) -> LexError:
        return LexError(f"{self.filename}:{self.line}:{self.col}: {msg}")

    def _peek(self, ahead: int = 0) -> str:
        # "\0" (never present in source) rather than "" at EOF: the empty
        # string is a substring of everything, so `self._peek() in "+-"`
        # style checks would otherwise loop forever at end of input.
        i = self.pos + ahead
        return self.source[i] if i < len(self.source) else "\0"

    def _advance(self, n: int = 1) -> str:
        out = self.source[self.pos:self.pos + n]
        for ch in out:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += n
        return out

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "#" or (ch == "/" and self._peek(1) == "/"):
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            line, col = self.line, self.col
            if self.pos >= len(self.source):
                yield Token(TokenKind.EOF, "", line, col)
                return
            ch = self._peek()
            if ch.isalpha() or ch == "_":
                yield self._ident(line, col)
            elif ch.isdigit() or (ch in "+-" and self._peek(1).isdigit()):
                yield self._number(line, col)
            elif ch in "\"'":
                yield self._string(line, col)
            elif ch in _SYMBOLS:
                self._advance()
                yield Token(TokenKind.SYMBOL, ch, line, col)
            else:
                raise self._error(f"unexpected character {ch!r}")

    def _ident(self, line: int, col: int) -> Token:
        start = self.pos
        while self.pos < len(self.source) and (
                self._peek().isalnum() or self._peek() in "._"):
            self._advance()
        text = self.source[start:self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line, col)

    def _number(self, line: int, col: int) -> Token:
        start = self.pos
        if self._peek() in "+-":
            self._advance()
        seen_dot = seen_exp = False
        while self.pos < len(self.source):
            ch = self._peek()
            if ch.isdigit():
                self._advance()
            elif ch == "." and not seen_dot and not seen_exp:
                seen_dot = True
                self._advance()
            elif ch in "eE" and not seen_exp:
                seen_exp = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
            elif ch in "xX" and self.source[start:self.pos] in ("0", "+0", "-0"):
                self._advance()
                while self._peek() in "0123456789abcdefABCDEF":
                    self._advance()
                return Token(TokenKind.INT, self.source[start:self.pos],
                             line, col)
            else:
                break
        text = self.source[start:self.pos]
        kind = TokenKind.DOUBLE if (seen_dot or seen_exp) else TokenKind.INT
        return Token(kind, text, line, col)

    def _string(self, line: int, col: int) -> Token:
        quote = self._advance()
        out: List[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated string literal")
            ch = self._advance()
            if ch == quote:
                break
            if ch == "\\":
                esc = self._advance()
                out.append({"n": "\n", "t": "\t", "r": "\r",
                            "\\": "\\", quote: quote}.get(esc, esc))
            else:
                out.append(ch)
        return Token(TokenKind.STRING, "".join(out), line, col)


def tokenize(source: str, filename: str = "<idl>") -> List[Token]:
    return list(Lexer(source, filename).tokens())
