"""AST node classes for the hint-extended Thrift IDL."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "ConstNode",
    "Document",
    "EnumNode",
    "Field",
    "FunctionNode",
    "Hint",
    "HintGroup",
    "ServiceNode",
    "StructNode",
    "TypeRef",
    "TypedefNode",
]


@dataclass(frozen=True)
class TypeRef:
    """A type use: base type, container, or a named (struct/enum/typedef) type.

    ``name`` is one of the base type keywords, ``list``/``set``/``map``, or a
    user identifier; container element types live in ``args``.
    """

    name: str
    args: tuple = ()

    @property
    def is_container(self) -> bool:
        return self.name in ("list", "set", "map")

    def __str__(self) -> str:
        if self.args:
            return f"{self.name}<{', '.join(map(str, self.args))}>"
        return self.name


@dataclass
class Hint:
    """One ``key = value`` pair."""

    key: str
    value: Any
    line: int = 0


@dataclass
class HintGroup:
    """A ``hint:``/``s_hint:``/``c_hint:`` declaration (one 'HintGroup' of
    Fig. 7).  ``side`` is 'shared', 'server', or 'client'."""

    side: str
    hints: List[Hint] = field(default_factory=list)


@dataclass
class Field:
    fid: int
    name: str
    type: TypeRef
    required: Optional[str] = None   # 'required' | 'optional' | None
    default: Any = None


@dataclass
class FunctionNode:
    name: str
    return_type: TypeRef            # TypeRef("void") for void
    args: List[Field] = field(default_factory=list)
    throws: List[Field] = field(default_factory=list)
    oneway: bool = False
    hint_groups: List[HintGroup] = field(default_factory=list)


@dataclass
class ServiceNode:
    name: str
    extends: Optional[str] = None
    hint_groups: List[HintGroup] = field(default_factory=list)
    functions: List[FunctionNode] = field(default_factory=list)


@dataclass
class StructNode:
    name: str
    fields: List[Field] = field(default_factory=list)
    kind: str = "struct"            # 'struct' | 'union' | 'exception'


@dataclass
class EnumNode:
    name: str
    members: List[tuple] = field(default_factory=list)  # (name, value)


@dataclass
class TypedefNode:
    name: str
    type: TypeRef


@dataclass
class ConstNode:
    name: str
    type: TypeRef
    value: Any


@dataclass
class Document:
    """A parsed IDL file."""

    namespaces: Dict[str, str] = field(default_factory=dict)
    includes: List[str] = field(default_factory=list)
    typedefs: List[TypedefNode] = field(default_factory=list)
    consts: List[ConstNode] = field(default_factory=list)
    enums: List[EnumNode] = field(default_factory=list)
    structs: List[StructNode] = field(default_factory=list)
    services: List[ServiceNode] = field(default_factory=list)

    def struct(self, name: str) -> StructNode:
        for s in self.structs:
            if s.name == name:
                return s
        raise KeyError(name)

    def service(self, name: str) -> ServiceNode:
        for s in self.services:
            if s.name == name:
                return s
        raise KeyError(name)
