"""Recursive-descent parser for the hint-extended Thrift IDL (Fig. 7).

Accepts the standard Thrift document grammar (namespaces, includes, consts,
typedefs, enums, structs/unions/exceptions, services with extends) plus the
HatRPC hint extension:

* ``HintGroup* Function*`` inside a service body (service-level hints),
* ``[' HintGroup* ']`` after a function's argument list / throws clause
  (function-level hints),
* ``HintGroup ::= ('hint' | 's_hint' | 'c_hint') ':' HintList ';'``,
* ``Hint ::= key '=' value | key '(' (param '=' value)* ')'`` with integer,
  float, string, identifier, size-suffixed (``64KB``) and time-suffixed
  (``200us``) values; the parameterized form (e.g.
  ``cacheable(ttl = 200us, hot_promote = 8)``) yields a dict-valued hint.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.idl.lexer import Lexer, Token, TokenKind
from repro.idl.nodes import (
    ConstNode,
    Document,
    EnumNode,
    Field,
    FunctionNode,
    Hint,
    HintGroup,
    ServiceNode,
    StructNode,
    TypedefNode,
    TypeRef,
)

__all__ = ["ParseError", "Parser", "parse"]

_BASE_TYPES = {"bool", "byte", "i8", "i16", "i32", "i64", "double",
               "string", "binary"}
_HINT_SIDES = {"hint": "shared", "s_hint": "server", "c_hint": "client"}
_SIZE_UNITS = {"B": 1, "KB": 1024, "MB": 1024**2, "GB": 1024**3,
               "K": 1024, "M": 1024**2, "G": 1024**3}
# Durations normalise to float seconds (the sim clock's unit).
_TIME_UNITS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


class ParseError(SyntaxError):
    pass


class Parser:
    def __init__(self, source: str, filename: str = "<idl>"):
        self.filename = filename
        self._tokens = list(Lexer(source, filename).tokens())
        self._i = 0

    # -- token plumbing ------------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        i = min(self._i + ahead, len(self._tokens) - 1)
        return self._tokens[i]

    def _next(self) -> Token:
        tok = self._tokens[self._i]
        if tok.kind is not TokenKind.EOF:
            self._i += 1
        return tok

    def _error(self, msg: str, tok: Optional[Token] = None) -> ParseError:
        tok = tok or self._peek()
        return ParseError(
            f"{self.filename}:{tok.line}:{tok.col}: {msg} (got {tok.value!r})")

    def _accept(self, kind: TokenKind, value: Optional[str] = None) -> Optional[Token]:
        tok = self._peek()
        if tok.kind is kind and (value is None or tok.value == value):
            return self._next()
        return None

    def _expect(self, kind: TokenKind, value: Optional[str] = None) -> Token:
        tok = self._accept(kind, value)
        if tok is None:
            want = value or kind.value
            raise self._error(f"expected {want!r}")
        return tok

    def _accept_symbol(self, sym: str) -> bool:
        return self._accept(TokenKind.SYMBOL, sym) is not None

    def _expect_symbol(self, sym: str) -> None:
        self._expect(TokenKind.SYMBOL, sym)

    def _list_separator(self) -> bool:
        return self._accept_symbol(",") or self._accept_symbol(";")

    def _identifier(self) -> str:
        tok = self._peek()
        if tok.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            # Thrift allows keywords in a few identifier positions; be
            # permissive for field/arg names.
            return self._next().value
        raise self._error("expected identifier")

    # -- entry point ------------------------------------------------------------
    def parse(self) -> Document:
        doc = Document()
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.EOF:
                return doc
            if tok.kind is not TokenKind.KEYWORD:
                raise self._error("expected a definition keyword")
            kw = tok.value
            if kw == "include":
                self._next()
                doc.includes.append(self._expect(TokenKind.STRING).value)
            elif kw == "namespace":
                self._next()
                scope = self._identifier()
                doc.namespaces[scope] = self._identifier()
            elif kw == "typedef":
                self._next()
                ty = self._type()
                doc.typedefs.append(TypedefNode(self._identifier(), ty))
                self._list_separator()
            elif kw == "const":
                self._next()
                ty = self._type()
                name = self._identifier()
                self._expect_symbol("=")
                doc.consts.append(ConstNode(name, ty, self._const_value()))
                self._list_separator()
            elif kw == "enum":
                doc.enums.append(self._enum())
            elif kw in ("struct", "union", "exception"):
                doc.structs.append(self._struct(kw))
            elif kw == "service":
                doc.services.append(self._service())
            else:
                raise self._error(f"unexpected keyword {kw!r} at top level")

    # -- types --------------------------------------------------------------------
    def _type(self) -> TypeRef:
        tok = self._peek()
        if tok.kind is TokenKind.KEYWORD and tok.value in _BASE_TYPES:
            self._next()
            return TypeRef(tok.value)
        if tok.kind is TokenKind.KEYWORD and tok.value in ("list", "set"):
            self._next()
            self._expect_symbol("<")
            elem = self._type()
            self._expect_symbol(">")
            return TypeRef(tok.value, (elem,))
        if tok.kind is TokenKind.KEYWORD and tok.value == "map":
            self._next()
            self._expect_symbol("<")
            k = self._type()
            self._expect_symbol(",")
            v = self._type()
            self._expect_symbol(">")
            return TypeRef("map", (k, v))
        if tok.kind is TokenKind.IDENT:
            self._next()
            return TypeRef(tok.value)
        raise self._error("expected a type")

    # -- const values -----------------------------------------------------------------
    def _const_value(self) -> Any:
        tok = self._peek()
        if tok.kind is TokenKind.INT:
            self._next()
            return int(tok.value, 0)
        if tok.kind is TokenKind.DOUBLE:
            self._next()
            return float(tok.value)
        if tok.kind is TokenKind.STRING:
            self._next()
            return tok.value
        if tok.kind is TokenKind.IDENT:
            self._next()
            if tok.value == "true":
                return True
            if tok.value == "false":
                return False
            return tok.value  # reference to another const / enum member
        if self._accept_symbol("["):
            items = []
            while not self._accept_symbol("]"):
                items.append(self._const_value())
                self._list_separator()
            return items
        if self._accept_symbol("{"):
            mapping = {}
            while not self._accept_symbol("}"):
                k = self._const_value()
                self._expect_symbol(":")
                mapping[k] = self._const_value()
                self._list_separator()
            return mapping
        raise self._error("expected a constant value")

    # -- enums ----------------------------------------------------------------------------
    def _enum(self) -> EnumNode:
        self._expect(TokenKind.KEYWORD, "enum")
        node = EnumNode(self._identifier())
        self._expect_symbol("{")
        next_value = 0
        while not self._accept_symbol("}"):
            name = self._identifier()
            if self._accept_symbol("="):
                value = int(self._expect(TokenKind.INT).value, 0)
            else:
                value = next_value
            next_value = value + 1
            node.members.append((name, value))
            self._list_separator()
        return node

    # -- structs ---------------------------------------------------------------------------
    def _struct(self, kind: str) -> StructNode:
        self._expect(TokenKind.KEYWORD, kind)
        node = StructNode(self._identifier(), kind=kind)
        self._expect_symbol("{")
        while not self._accept_symbol("}"):
            node.fields.append(self._field())
        return node

    def _field(self) -> Field:
        tok = self._expect(TokenKind.INT)
        fid = int(tok.value, 0)
        self._expect_symbol(":")
        required = None
        nxt = self._peek()
        if nxt.kind is TokenKind.KEYWORD and nxt.value in ("required",
                                                           "optional"):
            required = self._next().value
        ty = self._type()
        name = self._identifier()
        default = None
        if self._accept_symbol("="):
            default = self._const_value()
        self._list_separator()
        return Field(fid, name, ty, required, default)

    # -- hints (the Figure 7 extension) -----------------------------------------------------
    def _hint_groups(self) -> List[HintGroup]:
        groups: List[HintGroup] = []
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.KEYWORD and tok.value in _HINT_SIDES:
                self._next()
                self._expect_symbol(":")
                group = HintGroup(_HINT_SIDES[tok.value])
                while True:
                    group.hints.append(self._hint())
                    if not self._accept_symbol(","):
                        break
                self._expect_symbol(";")
                groups.append(group)
            else:
                return groups

    def _hint(self) -> Hint:
        tok = self._peek()
        key = self._identifier()
        if self._accept_symbol("("):
            # Parameterized hint: key '(' (param '=' value (',' ...))* ')'
            params: dict = {}
            while not self._accept_symbol(")"):
                pname = self._identifier()
                self._expect_symbol("=")
                params[pname] = self._hint_value()
                if not self._accept_symbol(","):
                    self._expect_symbol(")")
                    break
            return Hint(key, params, line=tok.line)
        self._expect_symbol("=")
        return Hint(key, self._hint_value(), line=tok.line)

    def _hint_value(self) -> Any:
        tok = self._peek()
        if tok.kind is TokenKind.INT:
            self._next()
            value = int(tok.value, 0)
            unit = self._peek()
            if unit.kind is TokenKind.IDENT and unit.value in _SIZE_UNITS:
                self._next()
                return value * _SIZE_UNITS[unit.value]
            if unit.kind is TokenKind.IDENT and unit.value in _TIME_UNITS:
                self._next()
                return value * _TIME_UNITS[unit.value]
            return value
        if tok.kind is TokenKind.DOUBLE:
            self._next()
            value = float(tok.value)
            unit = self._peek()
            if unit.kind is TokenKind.IDENT and unit.value in _TIME_UNITS:
                self._next()
                return value * _TIME_UNITS[unit.value]
            return value
        if tok.kind is TokenKind.STRING:
            self._next()
            return tok.value
        if tok.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            self._next()
            if tok.value == "true":
                return True
            if tok.value == "false":
                return False
            return tok.value
        raise self._error("expected a hint value")

    # -- services -------------------------------------------------------------------------------
    def _service(self) -> ServiceNode:
        self._expect(TokenKind.KEYWORD, "service")
        name = self._identifier()
        extends = None
        if self._accept(TokenKind.KEYWORD, "extends"):
            extends = self._identifier()
        node = ServiceNode(name, extends=extends)
        self._expect_symbol("{")
        node.hint_groups = self._hint_groups()
        while not self._accept_symbol("}"):
            node.functions.append(self._function())
        return node

    def _function(self) -> FunctionNode:
        oneway = self._accept(TokenKind.KEYWORD, "oneway") is not None
        if self._accept(TokenKind.KEYWORD, "void"):
            ret = TypeRef("void")
        else:
            ret = self._type()
        name = self._identifier()
        self._expect_symbol("(")
        args = []
        while not self._accept_symbol(")"):
            args.append(self._field())
        throws: List[Field] = []
        if self._accept(TokenKind.KEYWORD, "throws"):
            self._expect_symbol("(")
            while not self._accept_symbol(")"):
                throws.append(self._field())
        self._list_separator()
        hint_groups: List[HintGroup] = []
        if self._accept_symbol("["):
            hint_groups = self._hint_groups()
            self._expect_symbol("]")
        self._list_separator()
        return FunctionNode(name, ret, args, throws, oneway, hint_groups)


def parse(source: str, filename: str = "<idl>") -> Document:
    """Parse IDL source into a Document AST."""
    return Parser(source, filename).parse()
