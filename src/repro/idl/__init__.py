"""The HatRPC IDL compiler.

Substitutes for the paper's flex/Bison extension of the Apache Thrift
compiler (Section 4.2): a hand-written lexer and recursive-descent parser
for the full Thrift IDL grammar *plus* the hierarchical hint extension of
Figure 7 --

* service-level hint groups declared before the functions,
* function-level hint groups in brackets after the argument list,
* each group laterally split by keyword: ``hint`` (shared), ``s_hint``
  (server), ``c_hint`` (client).

The pipeline mirrors the paper's: scan -> parse (AST) -> validate & merge
hints -> generate code.  Output is an importable Python module containing
args/result structs, a client, a processor, an Iface, and the hierarchical
``SERVICE_HINTS`` map consumed by the HatRPC runtime.
"""

from repro.idl.lexer import Lexer, LexError, Token, TokenKind
from repro.idl.nodes import (
    Document,
    EnumNode,
    Field,
    FunctionNode,
    Hint,
    HintGroup,
    ServiceNode,
    StructNode,
    TypeRef,
)
from repro.idl.parser import ParseError, Parser, parse
from repro.idl.validator import HintValidationError, validate_document
from repro.idl.codegen import compile_idl, generate_python, load_idl

__all__ = [
    "Document",
    "EnumNode",
    "Field",
    "FunctionNode",
    "Hint",
    "HintGroup",
    "HintValidationError",
    "LexError",
    "Lexer",
    "ParseError",
    "Parser",
    "ServiceNode",
    "StructNode",
    "Token",
    "TokenKind",
    "TypeRef",
    "compile_idl",
    "generate_python",
    "load_idl",
    "parse",
    "validate_document",
]
