"""Command-line entry point: the hatrpc-gen compiler.

Usage::

    python -m repro.idl service.thrift                # emit service_gen.py
    python -m repro.idl service.thrift -o out/gen.py
    python -m repro.idl service.thrift --print        # source to stdout
    python -m repro.idl service.thrift --check        # parse+validate only
    python -m repro.idl service.thrift --plan         # show channel plan
    python -m repro.idl service.thrift --lenient      # filter bad hints

Mirrors the workflow of the paper's modified `thrift --gen` compiler.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.idl.codegen import compile_idl, load_idl
from repro.idl.lexer import LexError
from repro.idl.parser import ParseError, parse
from repro.idl.validator import HintValidationError, validate_document


def build_arg_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro.idl",
        description="HatRPC IDL compiler: hint-extended Thrift -> Python")
    ap.add_argument("input", help="IDL source file (.thrift)")
    ap.add_argument("-o", "--output", help="output .py path "
                    "(default: <input stem>_gen.py beside the input)")
    ap.add_argument("--print", action="store_true", dest="print_source",
                    help="write the generated module to stdout")
    ap.add_argument("--check", action="store_true",
                    help="parse and validate hints only; no code emitted")
    ap.add_argument("--plan", action="store_true",
                    help="show the hint-derived channel plan per service")
    ap.add_argument("--lenient", action="store_true",
                    help="filter invalid hints with warnings instead of "
                         "failing (the paper's compiler behaviour)")
    return ap


def main(argv=None) -> int:
    args = build_arg_parser().parse_args(argv)
    path = Path(args.input)
    try:
        source = path.read_text()
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        return 2
    strict = not args.lenient
    try:
        if args.check or args.plan:
            doc = parse(source, str(path))
            _hints, warnings = validate_document(doc, strict=strict)
            for w in warnings:
                print(f"warning: {w}", file=sys.stderr)
            if args.check:
                n_fns = sum(len(s.functions) for s in doc.services)
                print(f"{path}: OK ({len(doc.services)} service(s), "
                      f"{n_fns} function(s), {len(doc.structs)} struct(s))")
            if args.plan:
                module = load_idl(source, "plan_probe", str(path),
                                  strict_hints=strict)
                from repro.core.runtime import service_plan_of
                for svc in module.SERVICE_NAMES:
                    plan = service_plan_of(module, svc)
                    print(f"service {svc}:")
                    for ch in plan.channels:
                        fns = ", ".join(ch.functions)
                        print(f"  channel {ch.index}: "
                              f"{ch.transport}/{ch.protocol or 'tcp'} "
                              f"server={ch.server_poll.value} "
                              f"client={ch.client_poll.value} "
                              f"max_msg={ch.max_msg}  [{fns}]")
            return 0
        code = compile_idl(source, str(path), strict_hints=strict)
        if args.print_source:
            sys.stdout.write(code)
            return 0
        out = Path(args.output) if args.output else \
            path.with_name(path.stem + "_gen.py")
        out.write_text(code)
        print(f"wrote {out}")
        return 0
    except (LexError, ParseError, HintValidationError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
