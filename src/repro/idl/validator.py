"""Hint validation and merging (the check/merge/analysis step of Fig. 8).

After parsing, the code generator 'first check[s] the validity of each hint
key-value pair, filtering out the hints that have undefined types or
unsupported values.  Then a merging process will group common hints from the
same level' (Section 4.2).  ``validate_document`` implements exactly that:

* strict mode raises on the first invalid hint (developer-facing);
* non-strict mode drops invalid hints and reports them as warnings
  (the paper's filtering behaviour).

The result is the hierarchical hint map embedded in generated modules.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.hints import HintError, merge_hint_groups, validate_hint
from repro.idl.nodes import Document, ServiceNode

__all__ = ["HintValidationError", "validate_document", "validate_service"]


class HintValidationError(HintError):
    pass


def _validate_merged(merged: Dict[str, Dict[str, Any]], where: str,
                     strict: bool, warnings: List[str]) -> Dict[str, Dict[str, Any]]:
    clean: Dict[str, Dict[str, Any]] = {}
    for side, pairs in merged.items():
        kept = {}
        for key, value in pairs.items():
            try:
                kept[key] = validate_hint(key, value)
            except HintError as e:
                if strict:
                    raise HintValidationError(f"{where}: {e}") from None
                warnings.append(f"{where}: dropped hint {key}={value!r} ({e})")
        if kept:
            clean[side] = kept
    return clean


def validate_service(service: ServiceNode, strict: bool = True,
                     warnings: List[str] | None = None) -> Dict[str, Any]:
    """Validate+merge one service's hints into the hierarchical map."""
    warnings = warnings if warnings is not None else []
    service_map = _validate_merged(
        merge_hint_groups(service.hint_groups),
        f"service {service.name}", strict, warnings)
    functions = {}
    for fn in service.functions:
        fn_map = _validate_merged(
            merge_hint_groups(fn.hint_groups),
            f"function {service.name}.{fn.name}", strict, warnings)
        if fn_map:
            functions[fn.name] = fn_map
    return {"service": service_map, "functions": functions}


def validate_document(doc: Document, strict: bool = True
                      ) -> Tuple[Dict[str, Dict[str, Any]], List[str]]:
    """Validate every service; returns ({service_name: map}, warnings)."""
    warnings: List[str] = []
    out = {}
    for service in doc.services:
        out[service.name] = validate_service(service, strict, warnings)
    return out, warnings
