"""Python code generation from the hint-extended IDL AST.

For every service the generator emits (mirroring Apache Thrift's Python
target, Section 4.2 of the paper):

* ``<Fn>_args`` / ``<Fn>_result`` structs with read/write methods,
* ``<Service>Iface`` -- the handler interface,
* ``<Service>Client`` -- coroutine method stubs over a TClient,
* ``<Service>Processor`` -- the server dispatch table,
* plus module-level enums, consts, typedef comments, struct/exception
  classes, and the hierarchical ``SERVICE_HINTS`` map the HatRPC runtime
  consumes.

``compile_idl`` returns the module source; ``load_idl`` execs it into a
fresh module object so tests and applications can use generated code without
touching disk.
"""

from __future__ import annotations

import types
from typing import Any, Dict, List, Optional

from repro.idl.nodes import (
    Document,
    Field,
    FunctionNode,
    ServiceNode,
    StructNode,
    TypeRef,
)
from repro.idl.parser import parse
from repro.idl.validator import validate_document

__all__ = ["compile_idl", "generate_python", "load_idl"]

_BASE_TTYPE = {
    "bool": "TType.BOOL",
    "byte": "TType.BYTE",
    "i8": "TType.BYTE",
    "i16": "TType.I16",
    "i32": "TType.I32",
    "i64": "TType.I64",
    "double": "TType.DOUBLE",
    "string": "TType.STRING",
    "binary": "TType.STRING",
    "list": "TType.LIST",
    "set": "TType.SET",
    "map": "TType.MAP",
}


class CodegenError(ValueError):
    pass


class _TypeEnv:
    """Typedef/enum/struct name resolution for the generator."""

    def __init__(self, doc: Document):
        self.typedefs = {t.name: t.type for t in doc.typedefs}
        self.enums = {e.name for e in doc.enums}
        self.structs = {s.name: s for s in doc.structs}

    def resolve(self, tref: TypeRef) -> TypeRef:
        seen = set()
        while tref.name in self.typedefs:
            if tref.name in seen:
                raise CodegenError(f"typedef cycle at {tref.name!r}")
            seen.add(tref.name)
            tref = self.typedefs[tref.name]
        return tref

    def ttype_expr(self, tref: TypeRef) -> str:
        tref = self.resolve(tref)
        if tref.name in _BASE_TTYPE:
            return _BASE_TTYPE[tref.name]
        if tref.name in self.enums:
            return "TType.I32"
        if tref.name in self.structs:
            return "TType.STRUCT"
        raise CodegenError(f"unknown type {tref.name!r}")


class _Emitter:
    def __init__(self):
        self.lines: List[str] = []

    def emit(self, line: str = "", indent: int = 0):
        self.lines.append("    " * indent + line if line else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _write_value(env: _TypeEnv, tref: TypeRef, var: str, out: _Emitter,
                 ind: int, depth: int = 0) -> None:
    tref = env.resolve(tref)
    name = tref.name
    if name == "bool":
        out.emit(f"oprot.write_bool({var})", ind)
    elif name in ("byte", "i8"):
        out.emit(f"oprot.write_byte({var})", ind)
    elif name == "i16":
        out.emit(f"oprot.write_i16({var})", ind)
    elif name == "i32" or name in env.enums:
        out.emit(f"oprot.write_i32({var})", ind)
    elif name == "i64":
        out.emit(f"oprot.write_i64({var})", ind)
    elif name == "double":
        out.emit(f"oprot.write_double({var})", ind)
    elif name == "string":
        out.emit(f"oprot.write_string({var})", ind)
    elif name == "binary":
        out.emit(f"oprot.write_binary({var})", ind)
    elif name in ("list", "set"):
        elem = tref.args[0]
        kind = "list" if name == "list" else "set"
        ev = f"_e{depth}"
        out.emit(f"oprot.write_{kind}_begin({env.ttype_expr(elem)}, "
                 f"len({var}))", ind)
        out.emit(f"for {ev} in {var}:", ind)
        _write_value(env, elem, ev, out, ind + 1, depth + 1)
        out.emit(f"oprot.write_{kind}_end()", ind)
    elif name == "map":
        k, v = tref.args
        kv, vv = f"_k{depth}", f"_v{depth}"
        out.emit(f"oprot.write_map_begin({env.ttype_expr(k)}, "
                 f"{env.ttype_expr(v)}, len({var}))", ind)
        out.emit(f"for {kv}, {vv} in {var}.items():", ind)
        _write_value(env, k, kv, out, ind + 1, depth + 1)
        _write_value(env, v, vv, out, ind + 1, depth + 1)
        out.emit("oprot.write_map_end()", ind)
    elif name in env.structs:
        out.emit(f"{var}.write(oprot)", ind)
    else:
        raise CodegenError(f"cannot write type {name!r}")


def _read_value(env: _TypeEnv, tref: TypeRef, target: str, out: _Emitter,
                ind: int, depth: int = 0) -> None:
    tref = env.resolve(tref)
    name = tref.name
    if name == "bool":
        out.emit(f"{target} = iprot.read_bool()", ind)
    elif name in ("byte", "i8"):
        out.emit(f"{target} = iprot.read_byte()", ind)
    elif name == "i16":
        out.emit(f"{target} = iprot.read_i16()", ind)
    elif name == "i32" or name in env.enums:
        out.emit(f"{target} = iprot.read_i32()", ind)
    elif name == "i64":
        out.emit(f"{target} = iprot.read_i64()", ind)
    elif name == "double":
        out.emit(f"{target} = iprot.read_double()", ind)
    elif name == "string":
        out.emit(f"{target} = iprot.read_string()", ind)
    elif name == "binary":
        out.emit(f"{target} = iprot.read_binary()", ind)
    elif name in ("list", "set"):
        elem = tref.args[0]
        sz, i, ev = f"_sz{depth}", f"_i{depth}", f"_e{depth}"
        kind = "list" if name == "list" else "set"
        out.emit(f"_et{depth}, {sz} = iprot.read_{kind}_begin()", ind)
        out.emit(f"{target} = []" if name == "list" else f"{target} = set()",
                 ind)
        out.emit(f"for {i} in range({sz}):", ind)
        _read_value(env, elem, ev, out, ind + 1, depth + 1)
        if name == "list":
            out.emit(f"{target}.append({ev})", ind + 1)
        else:
            out.emit(f"{target}.add({ev})", ind + 1)
        out.emit(f"iprot.read_{kind}_end()", ind)
    elif name == "map":
        k, v = tref.args
        sz, i = f"_sz{depth}", f"_i{depth}"
        kv, vv = f"_k{depth}", f"_v{depth}"
        out.emit(f"_kt{depth}, _vt{depth}, {sz} = iprot.read_map_begin()", ind)
        out.emit(f"{target} = {{}}", ind)
        out.emit(f"for {i} in range({sz}):", ind)
        _read_value(env, k, kv, out, ind + 1, depth + 1)
        _read_value(env, v, vv, out, ind + 1, depth + 1)
        out.emit(f"{target}[{kv}] = {vv}", ind + 1)
        out.emit("iprot.read_map_end()", ind)
    elif name in env.structs:
        out.emit(f"{target} = {name}()", ind)
        out.emit(f"{target}.read(iprot)", ind)
    else:
        raise CodegenError(f"cannot read type {name!r}")


def _emit_struct(env: _TypeEnv, node: StructNode, out: _Emitter,
                 base: Optional[str] = None) -> None:
    base = base or ("TException" if node.kind == "exception" else "object")
    out.emit(f"class {node.name}({base}):")
    out.emit(f'    """IDL {node.kind} {node.name}."""')
    out.emit()
    params = ", ".join(f"{f.name}={f.default!r}" for f in node.fields)
    out.emit(f"    def __init__(self{', ' + params if params else ''}):")
    if node.kind == "exception":
        out.emit("        TException.__init__(self)")
    if not node.fields:
        out.emit("        pass")
    for f in node.fields:
        out.emit(f"        self.{f.name} = {f.name}")
    out.emit()
    # -- write --
    out.emit("    def write(self, oprot):")
    out.emit(f"        oprot.write_struct_begin({node.name!r})")
    for f in node.fields:
        ind = 2
        if f.required == "required":
            out.emit(f"        if self.{f.name} is None:", 0)
            out.emit(f"            raise TProtocolException("
                     f"TProtocolException.INVALID_DATA, "
                     f"'required field {node.name}.{f.name} is unset')", 0)
        out.emit(f"        if self.{f.name} is not None:")
        out.emit(f"            oprot.write_field_begin({f.name!r}, "
                 f"{env.ttype_expr(f.type)}, {f.fid})")
        _write_value(env, f.type, f"self.{f.name}", out, 3)
        out.emit("            oprot.write_field_end()")
    out.emit("        oprot.write_field_stop()")
    out.emit("        oprot.write_struct_end()")
    out.emit()
    # -- read --
    out.emit("    def read(self, iprot):")
    out.emit("        iprot.read_struct_begin()")
    out.emit("        while True:")
    out.emit("            _fname, _ftype, _fid = iprot.read_field_begin()")
    out.emit("            if _ftype == TType.STOP:")
    out.emit("                break")
    first = True
    for f in node.fields:
        kw = "if" if first else "elif"
        first = False
        out.emit(f"            {kw} _fid == {f.fid} and _ftype == "
                 f"{env.ttype_expr(f.type)}:")
        _read_value(env, f.type, f"self.{f.name}", out, 4)
    if node.fields:
        out.emit("            else:")
        out.emit("                iprot.skip(_ftype)")
    else:
        out.emit("            iprot.skip(_ftype)")
    out.emit("            iprot.read_field_end()")
    out.emit("        iprot.read_struct_end()")
    out.emit("        return self")
    out.emit()
    # -- dunder helpers --
    names = [f.name for f in node.fields]
    out.emit("    def __eq__(self, other):")
    out.emit("        return isinstance(other, self.__class__) and "
             "self.__dict__ == other.__dict__")
    out.emit()
    out.emit("    def __repr__(self):")
    fields_fmt = ", ".join(f"{n}={{self.{n}!r}}" for n in names)
    out.emit(f"        return f{('%s(%s)' % (node.name, fields_fmt))!r}")
    out.emit()
    out.emit()


def _args_struct(fn: FunctionNode) -> StructNode:
    return StructNode(f"{fn.name}_args", list(fn.args))


def _result_struct(env: _TypeEnv, fn: FunctionNode) -> StructNode:
    fields = []
    if fn.return_type.name != "void":
        fields.append(Field(0, "success", fn.return_type))
    fields.extend(fn.throws)
    return StructNode(f"{fn.name}_result", fields)


def _emit_client(doc_env: _TypeEnv, service: ServiceNode, out: _Emitter,
                 parent: Optional[ServiceNode]) -> None:
    base = f"{parent.name}Client" if parent else "TClient"
    out.emit(f"class {service.name}Client({base}):")
    out.emit(f'    """Generated client for service {service.name}."""')
    out.emit()
    if not service.functions:
        out.emit("    pass")
    for fn in service.functions:
        argnames = ", ".join(f.name for f in fn.args)
        sig = f"self{', ' + argnames if argnames else ''}"
        out.emit(f"    def {fn.name}({sig}):")
        kwargs = ", ".join(f"{f.name}={f.name}" for f in fn.args)
        if fn.oneway:
            out.emit(f"        yield from self._send({fn.name!r}, "
                     f"{fn.name}_args({kwargs}), TMessageType.ONEWAY)")
            out.emit("        return None")
            out.emit()
            continue
        out.emit(f"        yield from self._send({fn.name!r}, "
                 f"{fn.name}_args({kwargs}))")
        out.emit(f"        _r = yield from self._recv({fn.name!r}, "
                 f"{fn.name}_result())")
        if fn.return_type.name != "void":
            out.emit("        if _r.success is not None:")
            out.emit("            return _r.success")
        for t in fn.throws:
            out.emit(f"        if _r.{t.name} is not None:")
            out.emit(f"            raise _r.{t.name}")
        if fn.return_type.name != "void":
            out.emit(f"        raise TApplicationException("
                     f"TApplicationException.MISSING_RESULT, "
                     f"'{fn.name} failed: unknown result')")
        else:
            out.emit("        return None")
        out.emit()
    out.emit()


def _emit_iface(service: ServiceNode, out: _Emitter,
                parent: Optional[ServiceNode]) -> None:
    base = f"{parent.name}Iface" if parent else "object"
    out.emit(f"class {service.name}Iface({base}):")
    out.emit(f'    """Handler interface for service {service.name}."""')
    out.emit()
    if not service.functions:
        out.emit("    pass")
    for fn in service.functions:
        argnames = ", ".join(f.name for f in fn.args)
        sig = f"self{', ' + argnames if argnames else ''}"
        out.emit(f"    def {fn.name}({sig}):")
        out.emit(f"        raise NotImplementedError({fn.name!r})")
        out.emit()
    out.emit()


def _emit_processor(service: ServiceNode, out: _Emitter,
                    parent: Optional[ServiceNode]) -> None:
    base = f"{parent.name}Processor" if parent else "TProcessor"
    out.emit(f"class {service.name}Processor({base}):")
    out.emit(f'    """Generated processor for service {service.name}."""')
    out.emit()
    out.emit("    def __init__(self, handler):")
    out.emit("        super().__init__(handler)")
    for fn in service.functions:
        out.emit(f"        self._process_map[{fn.name!r}] = "
                 f"self._process_{fn.name}")
    out.emit()
    for fn in service.functions:
        out.emit(f"    def _process_{fn.name}(self, seqid, iprot, oprot):")
        out.emit(f"        _args = {fn.name}_args()")
        out.emit("        _args.read(iprot)")
        out.emit("        iprot.read_message_end()")
        argpass = "".join(f", _args.{f.name}" for f in fn.args)
        if fn.oneway:
            out.emit("        try:")
            out.emit(f"            yield from self._invoke("
                     f"{fn.name!r}{argpass})")
            out.emit("        except Exception:")
            out.emit("            pass  # oneway: nowhere to report")
            out.emit("        return False")
            out.emit()
            continue
        out.emit(f"        _result = {fn.name}_result()")
        out.emit("        try:")
        if fn.return_type.name != "void":
            out.emit(f"            _result.success = yield from "
                     f"self._invoke({fn.name!r}{argpass})")
        else:
            out.emit(f"            yield from self._invoke("
                     f"{fn.name!r}{argpass})")
        for t in fn.throws:
            out.emit(f"        except {t.type.name} as _e:")
            out.emit(f"            _result.{t.name} = _e")
        out.emit("        except Exception as _e:")
        out.emit("            _exc = TApplicationException("
                 "TApplicationException.INTERNAL_ERROR, str(_e))")
        out.emit(f"            oprot.write_message_begin({fn.name!r}, "
                 f"TMessageType.EXCEPTION, seqid)")
        out.emit("            _exc.write(oprot)")
        out.emit("            oprot.write_message_end()")
        out.emit("            return True")
        out.emit(f"        oprot.write_message_begin({fn.name!r}, "
                 f"TMessageType.REPLY, seqid)")
        out.emit("        _result.write(oprot)")
        out.emit("        oprot.write_message_end()")
        out.emit("        return True")
        out.emit()
    out.emit()


def generate_python(doc: Document, strict_hints: bool = True,
                    module_doc: str = "") -> str:
    """Generate the Python module source for a parsed Document."""
    env = _TypeEnv(doc)
    hint_maps, warnings = validate_document(doc, strict=strict_hints)
    out = _Emitter()
    out.emit('"""Generated by the HatRPC IDL compiler (repro.idl). '
             'Do not edit."""')
    if module_doc:
        out.emit(f"# {module_doc}")
    for w in warnings:
        out.emit(f"# hint warning: {w}")
    out.emit()
    out.emit("from repro.thrift import (TType, TMessageType, TClient, "
             "TProcessor,")
    out.emit("                          TApplicationException, "
             "TProtocolException)")
    out.emit("from repro.thrift.errors import TException")
    out.emit()
    out.emit()
    for enum in doc.enums:
        out.emit(f"class {enum.name}(object):")
        out.emit(f'    """IDL enum {enum.name}."""')
        out.emit()
        for name, value in enum.members:
            out.emit(f"    {name} = {value}")
        names_map = {v: n for n, v in enum.members}
        out.emit(f"    _VALUES_TO_NAMES = {names_map!r}")
        out.emit()
        out.emit()
    const_env: Dict[str, Any] = {}
    for const in doc.consts:
        out.emit(f"{const.name} = {const.value!r}")
        const_env[const.name] = const.value
    if doc.consts:
        out.emit()
        out.emit()
    for struct in doc.structs:
        _emit_struct(env, struct, out)
    by_name = {s.name: s for s in doc.services}
    for service in doc.services:
        parent = None
        if service.extends:
            parent = by_name.get(service.extends)
            if parent is None:
                raise CodegenError(
                    f"service {service.name} extends unknown service "
                    f"{service.extends!r}")
        for fn in service.functions:
            _emit_struct(env, _args_struct(fn), out)
            _emit_struct(env, _result_struct(env, fn), out)
        _emit_iface(service, out, parent)
        _emit_client(env, service, out, parent)
        _emit_processor(service, out, parent)
    out.emit(f"SERVICE_HINTS = {hint_maps!r}")
    out.emit()
    service_names = [s.name for s in doc.services]
    out.emit(f"SERVICE_NAMES = {service_names!r}")
    out.emit()
    fn_names = {}
    for service in doc.services:
        names: List[str] = []
        cursor: Optional[ServiceNode] = service
        while cursor is not None:
            names = [f.name for f in cursor.functions] + names
            cursor = by_name.get(cursor.extends) if cursor.extends else None
        fn_names[service.name] = names
    out.emit(f"SERVICE_FUNCTIONS = {fn_names!r}")
    out.emit()
    oneway = {s.name: [f.name for f in s.functions if f.oneway]
              for s in doc.services}
    out.emit(f"SERVICE_ONEWAY = {oneway!r}")
    return out.source()


def compile_idl(source: str, filename: str = "<idl>",
                strict_hints: bool = True) -> str:
    """Parse + validate + generate in one step; returns module source."""
    return generate_python(parse(source, filename), strict_hints=strict_hints)


def load_idl(source: str, module_name: str = "hatrpc_generated",
             filename: str = "<idl>", strict_hints: bool = True):
    """Compile IDL source and exec it into a fresh module object."""
    code = compile_idl(source, filename, strict_hints=strict_hints)
    module = types.ModuleType(module_name)
    module.__dict__["__hatrpc_source__"] = code
    exec(compile(code, f"{module_name}.py", "exec"), module.__dict__)
    return module
