"""Deterministic, seeded fault injection for the simulated testbed.

Declare a :class:`FaultPlan` (link flaps, packet-loss windows, forced QP
errors, server crash/restart, overload storms), arm it with a
:class:`FaultInjector`, and run the workload -- the same plan + seed always
replays the identical execution.  See DESIGN.md, "Fault model & recovery".
"""

from repro.faults.plan import (FaultPlan, LinkFlap, OverloadStorm, PacketLoss,
                               QPError, ServerCrash)
from repro.faults.injector import FaultInjector, StormHandle

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "LinkFlap",
    "OverloadStorm",
    "PacketLoss",
    "QPError",
    "ServerCrash",
    "StormHandle",
]
