"""Deterministic, seeded fault injection for the simulated testbed.

Declare a :class:`FaultPlan` (link flaps, packet-loss windows, forced QP
errors, server crash/restart), arm it with a :class:`FaultInjector`, and
run the workload -- the same plan + seed always replays the identical
execution.  See DESIGN.md, "Fault model & recovery".
"""

from repro.faults.plan import (FaultPlan, LinkFlap, PacketLoss, QPError,
                               ServerCrash)
from repro.faults.injector import FaultInjector

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "LinkFlap",
    "PacketLoss",
    "QPError",
    "ServerCrash",
]
