"""Declarative fault plans.

A :class:`FaultPlan` is an immutable schedule of fault events against named
nodes, plus a seed.  Armed onto a testbed by
:class:`~repro.faults.injector.FaultInjector`, the same (plan, seed,
workload) triple always produces the identical simulated execution -- every
fault either fires at a fixed simulated time or draws from an RNG seeded
purely from (plan seed, event index).

Event types
-----------
* :class:`LinkFlap` -- a node's port goes hard-down for a window; traffic
  crossing it fails (``WCStatus.RETRY_EXC_ERR`` on verbs, connection reset
  on TCP).
* :class:`PacketLoss` -- a seeded per-message drop probability over a
  window; reliable transports retransmit, so loss surfaces as latency.
* :class:`QPError` -- force a node's queue pair(s) to the ERROR state at an
  instant (cable pull / HCA fault on one connection).
* :class:`ServerCrash` -- fail-stop the node at ``at``, restore it
  ``downtime`` later.  Crash kills live QPs, listeners, and TCP
  connections; durable state (e.g. HatKV's LMDB) survives.
* :class:`OverloadStorm` -- a burst of ``clients`` extra load generators
  from ``node`` over a window.  Pure load, no broken hardware: the injector
  cannot fabricate RPC traffic itself, so scenarios register the driver via
  :meth:`~repro.faults.injector.FaultInjector.on_storm` and the injector
  starts/stops it on schedule (deterministically, like every other event).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

__all__ = ["FaultPlan", "LinkFlap", "OverloadStorm", "PacketLoss", "QPError",
           "ServerCrash"]


@dataclass(frozen=True)
class LinkFlap:
    node: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class PacketLoss:
    node: str
    start: float
    duration: float
    drop_prob: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class QPError:
    node: str
    at: float
    #: a specific qp_num, or None for every QP on the node's device
    qp_num: Optional[int] = None


@dataclass(frozen=True)
class ServerCrash:
    node: str
    at: float
    downtime: float

    @property
    def restore_at(self) -> float:
        return self.at + self.downtime


@dataclass(frozen=True)
class OverloadStorm:
    node: str                 # node the storm's clients run on
    start: float
    duration: float
    clients: int = 32         # extra load generators during the window

    @property
    def end(self) -> float:
        return self.start + self.duration


FaultEvent = Union[LinkFlap, PacketLoss, QPError, ServerCrash, OverloadStorm]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered schedule of fault events."""

    seed: int = 0
    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))
        for ev in self.events:
            if not isinstance(ev, (LinkFlap, PacketLoss, QPError,
                                   ServerCrash, OverloadStorm)):
                raise TypeError(f"unknown fault event type: {ev!r}")

    def event_seed(self, index: int) -> int:
        """Per-event RNG seed: a pure function of (plan seed, event index)."""
        return self.seed * 1_000_003 + index
