"""Arming fault plans onto a testbed.

The injector translates a :class:`~repro.faults.plan.FaultPlan` into the
simulator's native mechanisms:

* window events (:class:`LinkFlap`, :class:`PacketLoss`) install
  clock-evaluated windows on the fabric ports -- no injector process runs
  during the window, so they cannot perturb event ordering;
* instant events (:class:`QPError`, :class:`ServerCrash`) are driven by one
  injector process per event that sleeps to the scheduled time and acts;
* load events (:class:`OverloadStorm`) are driven the same way, except the
  "act" is calling back into the scenario: the injector cannot invent RPC
  traffic, so drivers registered via :meth:`FaultInjector.on_storm` are
  started at ``ev.start`` with a :class:`StormHandle` and the handle is
  deactivated at ``ev.end`` (drivers poll ``handle.active`` between calls).

Everything the injector does is appended to :attr:`FaultInjector.log` as
``(sim_time, kind, node)`` tuples, giving tests a replayable record.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.faults.plan import (FaultPlan, LinkFlap, OverloadStorm, PacketLoss,
                               QPError, ServerCrash)

__all__ = ["FaultInjector", "StormHandle"]


class StormHandle:
    """Liveness flag for one OverloadStorm window.

    Handed to every :meth:`FaultInjector.on_storm` hook at storm start;
    ``active`` flips to False exactly at ``ev.end``, telling the driver's
    load generators to stop issuing new calls (in-flight calls drain
    normally -- a storm ends by easing off, not by vanishing mid-RPC).
    """

    def __init__(self):
        self.active = True


class FaultInjector:
    """Installs a :class:`FaultPlan` onto a testbed.

    ``tb`` is anything with ``sim``, ``cluster``, and ``fabric`` attributes
    (normally :class:`repro.testbed.Testbed`).  Call :meth:`arm` once,
    before running the workload.
    """

    def __init__(self, tb, plan: FaultPlan):
        self.sim = tb.sim
        self.cluster = tb.cluster
        self.fabric = tb.fabric
        self.plan = plan
        self.log: List[Tuple[float, str, str]] = []
        #: optional per-node callbacks run after a crashed node restores
        #: (e.g. restart its servers); registered via :meth:`on_restore`.
        self._restart: Dict[str, List[Callable[[], None]]] = {}
        #: scenario drivers for OverloadStorm events; see :meth:`on_storm`.
        self._storm_hooks: List[
            Callable[[OverloadStorm, StormHandle], None]] = []
        self._armed = False

    def on_restore(self, node_name: str, hook: Callable[[], None]) -> None:
        """Run ``hook`` after ``node_name`` comes back from a ServerCrash."""
        self._restart.setdefault(node_name, []).append(hook)

    def on_storm(self,
                 hook: Callable[[OverloadStorm, StormHandle], None]) -> None:
        """Run ``hook(event, handle)`` at each OverloadStorm's start.

        The hook must return immediately (spawn simulator processes for the
        actual load) and have its generators stop once ``handle.active`` is
        False.
        """
        self._storm_hooks.append(hook)

    def arm(self) -> "FaultInjector":
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        for i, ev in enumerate(self.plan.events):
            if isinstance(ev, LinkFlap):
                self.fabric.ports[ev.node].schedule_down(ev.start, ev.end)
                self.log.append((ev.start, "link_down", ev.node))
                self.log.append((ev.end, "link_up", ev.node))
            elif isinstance(ev, PacketLoss):
                self.fabric.ports[ev.node].schedule_drops(
                    ev.start, ev.end, ev.drop_prob,
                    seed=self.plan.event_seed(i))
                self.log.append((ev.start, "loss_start", ev.node))
                self.log.append((ev.end, "loss_end", ev.node))
            elif isinstance(ev, QPError):
                self.sim.process(self._qp_error(ev),
                                 name=f"fault-qperr-{ev.node}")
            elif isinstance(ev, ServerCrash):
                self.sim.process(self._crash(ev),
                                 name=f"fault-crash-{ev.node}")
            elif isinstance(ev, OverloadStorm):
                self.sim.process(self._storm(ev),
                                 name=f"fault-storm-{ev.node}")
        self.log.sort()
        return self

    # -- instant-event processes ---------------------------------------------
    def _qp_error(self, ev: QPError):
        yield self.sim.timeout(ev.at)
        device = self.cluster[ev.node].nic
        if ev.qp_num is not None:
            qps = [device._qps[ev.qp_num]]
        else:
            qps = list(device._qps.values())
        for qp in qps:
            qp.to_error()
            if qp.peer is not None:
                qp.peer.to_error()
        self.log.append((self.sim.now, "qp_error", ev.node))
        self.log.sort()

    def _crash(self, ev: ServerCrash):
        node = self.cluster[ev.node]
        yield self.sim.timeout(ev.at)
        node.crash()
        self.log.append((self.sim.now, "crash", ev.node))
        yield self.sim.timeout(ev.downtime)
        node.restore()
        self.log.append((self.sim.now, "restore", ev.node))
        for hook in self._restart.get(ev.node, ()):
            hook()
        self.log.sort()

    def _storm(self, ev: OverloadStorm):
        yield self.sim.timeout(ev.start)
        handle = StormHandle()
        self.log.append((self.sim.now, "storm_start", ev.node))
        for hook in self._storm_hooks:
            hook(ev, handle)
        yield self.sim.timeout(ev.duration)
        handle.active = False
        self.log.append((self.sim.now, "storm_end", ev.node))
        self.log.sort()
