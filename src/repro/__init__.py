"""HatRPC reproduction: hint-accelerated Thrift RPC over simulated RDMA.

Full-system reproduction of Li, Shi & Lu, "HatRPC: Hint-Accelerated Thrift
RPC over RDMA" (SC '21).  See README.md for the tour, DESIGN.md for the
system inventory and simulation-substitution argument, EXPERIMENTS.md for
paper-vs-measured results.

The calls most users need::

    from repro import Testbed, load_idl, HatRpcServer, hatrpc_connect

    gen = load_idl(open("service.thrift").read())
    tb = Testbed(n_nodes=2)
    HatRpcServer(tb.node(0), gen, "MyService", Handler()).start()
    # ... then inside a simulator process:
    #     stub = yield from hatrpc_connect(tb.node(1), tb.node(0),
    #                                      gen, "MyService")
"""

from repro.core.runtime import HatRpcClient, HatRpcServer, hatrpc_connect
from repro.idl import compile_idl, load_idl
from repro.testbed import Testbed

__version__ = "1.0.0"

__all__ = [
    "HatRpcClient",
    "HatRpcServer",
    "Testbed",
    "__version__",
    "compile_idl",
    "hatrpc_connect",
    "load_idl",
]
