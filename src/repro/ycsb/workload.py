"""The extended core workload of Section 5.4."""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.ycsb.generators import (
    DiscreteGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
)

__all__ = ["InsertSequence", "OpType", "WORKLOAD_A", "WORKLOAD_B",
           "Workload", "WorkloadSpec"]

KEY_LENGTH = 24          # bytes (S5.4)
FIELD_LENGTH = 100       # bytes per field
FIELD_COUNT = 10         # -> 1000-byte values
BATCH_SIZE = 10          # MultiGET / MultiPUT batching


class OpType(enum.Enum):
    GET = "get"
    PUT = "put"
    MULTI_GET = "multi_get"
    MULTI_PUT = "multi_put"
    SCAN = "scan"
    INSERT = "insert"


@dataclass(frozen=True)
class WorkloadSpec:
    """Operation mix + keyspace parameters.

    ``theta`` is the zipfian skew constant (YCSB's 0.99 default; only
    meaningful for the zipfian distribution) and ``field_length`` the
    bytes per field (values are ``field_length * FIELD_COUNT`` bytes) --
    the two scenario-matrix axes of the phased benchmark harness.
    """

    name: str
    mix: tuple                      # ((OpType, weight), ...)
    record_count: int = 1000
    distribution: str = "zipfian"   # or 'uniform'
    theta: float = 0.99             # zipfian request skew
    field_length: int = FIELD_LENGTH


#: Workload A with GET/PUT halved for MultiGET/MultiPUT (S5.4).
WORKLOAD_A = WorkloadSpec("A", ((OpType.GET, 0.25), (OpType.PUT, 0.25),
                                (OpType.MULTI_GET, 0.25),
                                (OpType.MULTI_PUT, 0.25)))

#: Workload B (read-intensive), likewise halved.
WORKLOAD_B = WorkloadSpec("B", ((OpType.GET, 0.475), (OpType.PUT, 0.025),
                                (OpType.MULTI_GET, 0.475),
                                (OpType.MULTI_PUT, 0.025)))

#: Library extensions beyond the paper's evaluation: the remaining standard
#: YCSB mixes, with the paper's halving convention applied to reads.
WORKLOAD_C = WorkloadSpec("C", ((OpType.GET, 0.5),
                                (OpType.MULTI_GET, 0.5)))
WORKLOAD_D = WorkloadSpec("D", ((OpType.GET, 0.95), (OpType.INSERT, 0.05)),
                          distribution="latest")
WORKLOAD_E = WorkloadSpec("E", ((OpType.SCAN, 0.95), (OpType.INSERT, 0.05)))


class InsertSequence:
    """Run-wide insert index allocator, shared by every client's Workload.

    Each INSERT claims the next global index, and the high-water mark it
    exposes is what the 'latest' distribution keys off.  A per-client view
    (the old ``insert_start`` stripes) only advanced on that client's own
    inserts, so with 16 clients the 'latest' hot set was ~16x staler than
    the true most-recent insert.  The simulator is cooperatively scheduled,
    so claim-then-increment needs no locking.
    """

    def __init__(self, start: int):
        self._next = start
        self.start = start

    def next_index(self) -> int:
        idx = self._next
        self._next += 1
        return idx

    @property
    def high_water(self) -> int:
        """Largest index claimed so far (start - 1 if none yet)."""
        return self._next - 1


class Workload:
    """Generates keys, values, and an operation stream for one client."""

    def __init__(self, spec: WorkloadSpec, seed: int = 0,
                 insert_start: int | None = None,
                 insert_seq: InsertSequence | None = None):
        self.spec = spec
        hwm = ((lambda: insert_seq.high_water)
               if insert_seq is not None else None)
        if spec.distribution == "zipfian":
            self._keychooser = ScrambledZipfianGenerator(spec.record_count,
                                                         seed=seed,
                                                         theta=spec.theta)
        elif spec.distribution == "uniform":
            self._keychooser = UniformGenerator(0, spec.record_count - 1,
                                                seed=seed)
        elif spec.distribution == "latest":
            self._keychooser = LatestGenerator(spec.record_count, seed=seed,
                                               hwm=hwm)
        else:
            raise ValueError(f"unknown distribution {spec.distribution!r}")
        self._ops = DiscreteGenerator(
            [(op.value, w) for op, w in spec.mix], seed=seed + 1)
        self._value_rng = random.Random(seed + 2)
        # INSERT ops claim fresh indices past the loaded keyspace: from the
        # shared run-wide sequence when one is wired, else from a private
        # stripe (disjoint per client so concurrent inserts never collide).
        self._insert_seq = insert_seq
        self._insert_next = (insert_start if insert_start is not None
                             else spec.record_count)

    # -- data shaping -----------------------------------------------------------
    @staticmethod
    def key_of(index: int) -> bytes:
        # Zero-padded so every index maps to a distinct fixed-width key.
        return f"user{index:020d}".encode()[:KEY_LENGTH]

    def value(self) -> bytes:
        return self._value_rng.randbytes(self.spec.field_length * FIELD_COUNT)

    def load_items(self):
        """The (key, value) pairs of the load phase."""
        for i in range(self.spec.record_count):
            yield self.key_of(i), self.value()

    # -- the request stream ----------------------------------------------------------
    def next_op(self):
        """One operation: (OpType, payload tuple)."""
        op = OpType(self._ops.next())
        if op is OpType.GET:
            return op, (self.key_of(self._keychooser.next()),)
        if op is OpType.PUT:
            return op, (self.key_of(self._keychooser.next()), self.value())
        if op is OpType.SCAN:
            return op, (self.key_of(self._keychooser.next()), BATCH_SIZE)
        if op is OpType.INSERT:
            if self._insert_seq is not None:
                idx = self._insert_seq.next_index()
            else:
                idx = self._insert_next
                self._insert_next += 1
                if hasattr(self._keychooser, "advance"):
                    self._keychooser.advance()
            return op, (self.key_of(idx), self.value())
        keys = [self.key_of(self._keychooser.next())
                for _ in range(BATCH_SIZE)]
        if op is OpType.MULTI_GET:
            return op, (keys,)
        return op, (keys, [self.value() for _ in keys])
