"""Time-phased YCSB: the scenario-matrix runner over the bench harness.

:func:`run_ycsb` (one-shot, op-count-driven) answers "what is the steady
throughput"; this module answers "what happened *during* the run".
:func:`run_ycsb_phased` drives the same workload/stub machinery through a
:class:`~repro.bench.harness.PhasedRun`: clients loop on wall (sim) time
instead of op counts, every completed op is attributed to the phase it
*started* in, and an optional :class:`~repro.bench.harness.StormSpec`
turns into an :class:`~repro.faults.plan.OverloadStorm` armed exactly
when MEASUREMENT opens (the fault injector interprets event times
relative to arming, so ``storm.at`` is an offset into the measurement
window by construction).

Primary clients are rejection-aware: a
:class:`~repro.thrift.errors.TRejectedException` (admission shed) is not
a failure -- the client honors the advised ``retry_after`` and moves on,
so an overloaded run degrades in throughput instead of crashing the
bench.  Storm clients are pure background load: they assert nothing,
swallow rejections, and stop issuing when the storm's handle goes
inactive.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, List, Optional

from repro.bench.harness import Phase, PhasedRun, Scenario, StormSpec
from repro.bench.stats import LatencyStats
from repro.sim.core import AllOf
from repro.thrift.errors import TRejectedException
from repro.ycsb.runner import YcsbResult, _load_server
from repro.ycsb.workload import (InsertSequence, OpType, Workload,
                                 WorkloadSpec)

__all__ = ["measurement_result", "run_ycsb_phased", "scenario_spec"]


def scenario_spec(base: WorkloadSpec, scenario: Scenario) -> WorkloadSpec:
    """Apply a matrix cell's skew / value-size axes to a base workload."""
    return replace(base, theta=scenario.skew,
                   field_length=scenario.value_size)


def measurement_result(run: PhasedRun) -> YcsbResult:
    """The MEASUREMENT phase of a finished run as a ``YcsbResult``.

    The figure benchmarks' tables and ordering gates were written against
    the one-shot runner's result type; this keeps them byte-identical
    while the numbers now provably exclude warmup (phase attribution is
    by op *start* time).
    """
    per_op = {op: run.stats[Phase.MEASUREMENT].get(op.value, LatencyStats())
              for op in OpType}
    return YcsbResult(throughput_ops=run.throughput(Phase.MEASUREMENT),
                      per_op=per_op,
                      total_ops=run.ops(Phase.MEASUREMENT))


def _dispatch(stub, op: OpType, args, spec: WorkloadSpec, check: bool):
    """Issue one YCSB op on a KV stub (shared by primary/storm clients)."""
    if op is OpType.GET:
        res = yield from stub.Get(*args)
        # 'latest' may pick an index whose insert is still in flight on
        # another client; a miss is then legitimate.
        if check:
            assert res.found or spec.distribution == "latest", \
                f"missing key {args[0]!r}"
    elif op is OpType.PUT or op is OpType.INSERT:
        yield from stub.Put(*args)
    elif op is OpType.MULTI_GET:
        values = yield from stub.MultiGet(*args)
        if check:
            assert len(values) == len(args[0])
    elif op is OpType.MULTI_PUT:
        yield from stub.MultiPut(*args)
    else:  # SCAN
        flat = yield from stub.Scan(*args)
        if check:
            assert len(flat) % 2 == 0


def run_ycsb_phased(server: Any, connect: Callable, spec: WorkloadSpec,
                    testbed: Any, run: PhasedRun,
                    n_clients: int = 16, n_client_nodes: int = 4,
                    seed: int = 0,
                    storm: Optional[StormSpec] = None) -> PhasedRun:
    """Drive one phased YCSB run to completion; returns the (finished)
    ``run`` with per-phase stats populated.

    ``connect(node)`` is the same coroutine stub factory ``run_ycsb``
    takes; ``server`` anything with ``load(items)`` and ``node``/
    ``nodes``.  The PREPARING window covers the bulk load plus every
    client's connection setup; clients then loop until the harness stops
    them at the end of COOLDOWN.
    """
    sim = testbed.sim
    server_nodes = getattr(server, "nodes", None) or [server.node]
    candidates = [n for n in testbed.nodes if n not in server_nodes]
    client_nodes = candidates[:n_client_nodes]
    if not client_nodes:
        raise ValueError("no client nodes left after excluding servers")
    # One run-wide insert sequence: every client's 'latest' distribution
    # keys off the same high-water mark, as YCSB-D intends.
    insert_seq = InsertSequence(spec.record_count)
    client_procs: List[Any] = []

    def client(i: int, stub) -> Any:
        wl = Workload(spec, seed=seed * 7919 + i, insert_seq=insert_seq)
        while not run.stopped:
            op, args = wl.next_op()
            t0 = sim.now
            try:
                yield from _dispatch(stub, op, args, spec, check=True)
            except TRejectedException as e:
                # Shed, not failed: honor the advised backoff and retry
                # with the next op (the server provably never ran this
                # one, so dropping it under-counts nothing but load).
                yield sim.timeout(max(e.retry_after, 1e-9))
                continue
            run.record(op.value, sim.now - t0, start=t0)

    def prepare() -> Any:
        loader = Workload(spec, seed=seed)
        _load_server(server, loader.load_items())
        for i in range(n_clients):
            node = client_nodes[i % len(client_nodes)]
            stub = yield from connect(node)
            client_procs.append(
                sim.process(client(i, stub), name=f"ycsb-{i}"))

    if storm is not None:
        _arm_storm(run, testbed, connect, spec, storm,
                   node=client_nodes[-1], seed=seed)

    driver = sim.process(run.drive(prepare=prepare()), name="phase-driver")
    sim.run(until=driver)
    if client_procs:
        sim.run(until=AllOf(sim, client_procs))
    for p in client_procs:
        p.value  # surface any client failure instead of undercounting
    run.stop()
    sim.run()
    return run


def _arm_storm(run: PhasedRun, testbed: Any, connect: Callable,
               spec: WorkloadSpec, storm: StormSpec, node: str,
               seed: int) -> None:
    """Wire a StormSpec to fire ``storm.at`` into the MEASUREMENT window."""
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan, OverloadStorm
    sim = testbed.sim
    inj = FaultInjector(testbed, FaultPlan(events=(
        OverloadStorm(node=node, start=storm.at,
                      duration=storm.duration, clients=storm.clients),)))

    def storm_client(j: int, ev, handle) -> Any:
        wl = Workload(spec, seed=seed * 104729 + j)
        stub = yield from connect(ev.node)
        while handle.active and not run.stopped:
            op, args = wl.next_op()
            try:
                yield from _dispatch(stub, op, args, spec, check=False)
            except TRejectedException as e:
                yield sim.timeout(max(e.retry_after, 1e-9))

    def on_storm(ev, handle) -> None:
        run.annotate("storm_start", node=ev.node, clients=ev.clients,
                     duration=ev.duration)
        for j in range(ev.clients):
            sim.process(storm_client(j, ev, handle), name=f"storm-{j}")

        def ender() -> Any:
            yield sim.timeout(ev.duration)
            run.annotate("storm_end", node=ev.node)

        sim.process(ender(), name="storm-end")

    inj.on_storm(on_storm)

    def on_phase(phase: Phase, t: float) -> None:
        if phase is Phase.MEASUREMENT:
            inj.arm()   # event times are relative to arming: storm.at
            run.annotate("storm_armed", at=storm.at,
                         duration=storm.duration, clients=storm.clients)

    run.on_phase.append(on_phase)
