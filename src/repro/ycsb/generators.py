"""YCSB request-distribution generators.

Ports of the generators in the YCSB core package [Cooper et al., SoCC'10]:
the zipfian generator uses the Gray et al. "Quickly generating
billion-record synthetic databases" constant-time algorithm, and the
scrambled variant spreads the hot items across the keyspace with a hash,
both exactly as upstream YCSB does.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

__all__ = [
    "DiscreteGenerator",
    "LatestGenerator",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "ZipfianGenerator",
]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """FNV-1a over the 8 little-endian bytes of ``value`` (YCSB's hash)."""
    h = _FNV_OFFSET
    for _ in range(8):
        h ^= value & 0xFF
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return h


class UniformGenerator:
    def __init__(self, lo: int, hi: int, seed: int = 0):
        if hi < lo:
            raise ValueError("hi < lo")
        self.lo, self.hi = lo, hi
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randint(self.lo, self.hi)


class ZipfianGenerator:
    """Zipf-distributed integers in [0, n) with constant-time sampling."""

    ZIPFIAN_CONSTANT = 0.99

    def __init__(self, n: int, theta: float = ZIPFIAN_CONSTANT,
                 seed: int = 0):
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        self.zeta_n = self._zeta(n, theta)
        self.zeta2 = self._zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        denom = 1 - self.zeta2 / self.zeta_n
        # n <= 2 degenerates (zeta2 == zeta_n); the early-return branches in
        # next() then cover the whole [0, zeta_n) range, so eta is unused.
        self.eta = (0.0 if abs(denom) < 1e-12
                    else (1 - (2.0 / n) ** (1 - theta)) / denom)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i + 1) ** theta for i in range(n))

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self.zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        base = max(self.eta * u - self.eta + 1, 0.0)
        return min(int(self.n * base ** self.alpha), self.n - 1)


class ScrambledZipfianGenerator:
    """Zipfian popularity ranks scattered over the keyspace via FNV."""

    def __init__(self, n: int, seed: int = 0,
                 theta: float = ZipfianGenerator.ZIPFIAN_CONSTANT):
        self.n = n
        self.theta = theta
        self._zipf = ZipfianGenerator(n, theta=theta, seed=seed)

    def next(self) -> int:
        return fnv1a_64(self._zipf.next()) % self.n


class LatestGenerator:
    """Skewed towards the most recently inserted item (YCSB 'latest').

    ``hwm`` is an optional zero-arg callable returning the run-wide insert
    high-water mark.  Without it the generator only sees its *own* client's
    inserts -- with 16 concurrent clients the hot end of the distribution
    then lags the true latest insert by ~16x, which is not what YCSB-D
    models.  Wire every client's generator to one shared
    :class:`~repro.ycsb.workload.InsertSequence` to fix that.
    """

    def __init__(self, n: int, seed: int = 0, hwm=None):
        self._max = n - 1
        self._hwm = hwm
        self._zipf = ZipfianGenerator(n, seed=seed)

    def advance(self) -> None:
        self._max += 1

    def next(self) -> int:
        last = self._max if self._hwm is None else max(self._hwm(), self._max)
        return last - self._zipf.next() % (last + 1)


class DiscreteGenerator:
    """Weighted choice among labeled outcomes (the operation mix)."""

    def __init__(self, weighted: Sequence[Tuple[str, float]], seed: int = 0):
        if not weighted:
            raise ValueError("empty mix")
        total = sum(w for _, w in weighted)
        if total <= 0:
            raise ValueError("weights must sum to > 0")
        self._items: List[Tuple[str, float]] = []
        acc = 0.0
        for label, w in weighted:
            if w < 0:
                raise ValueError(f"negative weight for {label}")
            acc += w / total
            self._items.append((label, acc))
        self._rng = random.Random(seed)

    def next(self) -> str:
        u = self._rng.random()
        for label, cum in self._items:
            if u <= cum:
                return label
        return self._items[-1][0]
