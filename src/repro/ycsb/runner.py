"""YCSB run loop against any KVService stub factory.

The runner owns the simulation choreography of Section 5.4: server nodes,
clients spread across four client nodes, a load phase (direct into the
backend -- load time is not measured by the paper), then a measured run
phase.  It is transport- and topology-agnostic: pass a ``connect``
coroutine factory so the same runner drives HatKV, every emulated
comparator, and the sharded cluster (any ``server`` exposing
``load(items)`` and either ``node`` or ``nodes`` works).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.bench.stats import LatencyStats
from repro.hatkv.server import HatKVServer
from repro.testbed import Testbed
from repro.ycsb.workload import InsertSequence, OpType, Workload, WorkloadSpec

__all__ = ["YcsbResult", "run_ycsb"]


@dataclass
class YcsbResult:
    throughput_ops: float
    per_op: Dict[OpType, LatencyStats]
    total_ops: int

    def latency(self, op: OpType) -> LatencyStats:
        return self.per_op[op]


def _load_server(server, items) -> None:
    """Bulk-load (key, value) pairs, bypassing RPC.  Prefers the server's
    own ``load`` (which a sharded cluster routes per shard); falls back to
    writing straight into a single backend's LMDB env."""
    load = getattr(server, "load", None)
    if load is not None:
        load(items)
        return
    with server.backend.env.begin(write=True) as txn:
        for key, value in items:
            txn.put(key, value)


def run_ycsb(server: HatKVServer, connect: Callable, spec: WorkloadSpec,
             testbed: Testbed, n_clients: int = 16, ops_per_client: int = 20,
             warmup_per_client: int = 3, n_client_nodes: int = 4,
             seed: int = 0) -> YcsbResult:
    """Run one YCSB experiment; ``connect(node)`` is a coroutine returning
    a stub with Get/Put/MultiGet/MultiPut coroutines."""
    sim = testbed.sim
    # Load phase: populate the backend(s) directly (not timed, as in YCSB).
    loader = Workload(spec, seed=seed)
    _load_server(server, loader.load_items())

    per_op: Dict[OpType, LatencyStats] = {op: LatencyStats() for op in OpType}
    window = {"start": None, "end": 0.0, "ops": 0}
    server_nodes = getattr(server, "nodes", None) or [server.node]
    candidates = [n for n in testbed.nodes if n not in server_nodes]
    client_nodes = candidates[:n_client_nodes]
    # One run-wide insert sequence: every client's 'latest' distribution
    # keys off the same high-water mark, as YCSB-D intends.
    insert_seq = InsertSequence(spec.record_count)

    def client(i):
        node = client_nodes[i % len(client_nodes)]
        wl = Workload(spec, seed=seed * 7919 + i, insert_seq=insert_seq)
        stub = yield from connect(node)
        for k in range(warmup_per_client + ops_per_client):
            op, args = wl.next_op()
            t0 = sim.now
            if op is OpType.GET:
                res = yield from stub.Get(*args)
                # 'latest' may pick an index whose insert is still in
                # flight on another client; a miss is then legitimate.
                assert res.found or spec.distribution == "latest", \
                    f"missing key {args[0]!r}"
            elif op is OpType.PUT:
                yield from stub.Put(*args)
            elif op is OpType.MULTI_GET:
                values = yield from stub.MultiGet(*args)
                assert len(values) == len(args[0])
            elif op is OpType.MULTI_PUT:
                yield from stub.MultiPut(*args)
            elif op is OpType.SCAN:
                flat = yield from stub.Scan(*args)
                assert len(flat) % 2 == 0
            else:  # INSERT
                yield from stub.Put(*args)
            if k < warmup_per_client:
                continue
            if window["start"] is None:
                window["start"] = t0
            per_op[op].record(sim.now - t0)
            window["ops"] += 1
            window["end"] = max(window["end"], sim.now)

    procs = [sim.process(client(i), name=f"ycsb-{i}")
             for i in range(n_clients)]
    sim.run()
    for p in procs:
        p.value  # surface any client-side failure instead of undercounting
    duration = max(window["end"] - (window["start"] or 0.0), 1e-12)
    return YcsbResult(throughput_ops=window["ops"] / duration,
                      per_op=per_op, total_ops=window["ops"])
