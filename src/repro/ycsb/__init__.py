"""YCSB: the Yahoo! Cloud Serving Benchmark core, extended per Section 5.4.

A faithful reimplementation of the YCSB pieces the paper uses:

* the standard request-distribution generators (zipfian with the
  Gray et al. incremental algorithm, scrambled zipfian, uniform, latest);
* the core workload geometry (24-byte keys, 10 fields x 100 bytes);
* workloads A and B extended with MultiGET/MultiPUT at batch size 10 --
  the paper halves the original GET/PUT proportions in favor of the Multi
  variants (A: 25/25/25/25; B: 47.5/2.5/47.5/2.5);
* a load phase + a measured run phase against any KV stub.
"""

from repro.ycsb.generators import (
    DiscreteGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)
from repro.ycsb.workload import (OpType, Workload, WORKLOAD_A, WORKLOAD_B,
                                 WORKLOAD_C, WORKLOAD_D, WORKLOAD_E)
from repro.ycsb.runner import YcsbResult, run_ycsb
from repro.ycsb.phased import (measurement_result, run_ycsb_phased,
                               scenario_spec)

__all__ = [
    "DiscreteGenerator",
    "LatestGenerator",
    "OpType",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "WORKLOAD_D",
    "WORKLOAD_E",
    "Workload",
    "YcsbResult",
    "ZipfianGenerator",
    "measurement_result",
    "run_ycsb",
    "run_ycsb_phased",
    "scenario_spec",
]
