"""ATB multi-client throughput benchmark (drives Figure 12).

N client connections spread over the cluster's client nodes hammer one
server's ``Echo`` RPC.  HatRPC mode uses service-level hints
``perf_goal = throughput`` with the deployment's concurrency, so the plan
switches protocol/polling at the paper's thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atb.harness import EchoHandler, connect_stub, start_server
from repro.atb.idl import load_atb_module
from repro.bench.stats import LatencyStats
from repro.sim.units import KiB
from repro.testbed import Testbed

__all__ = ["ThroughputBenchmark", "ThroughputResult"]


@dataclass
class ThroughputResult:
    ops_per_sec: float
    latency: LatencyStats
    server_registered_bytes: int


@dataclass
class ThroughputBenchmark:
    mode: str = "hatrpc"
    payload: int = 512
    n_clients: int = 16
    iters: int = 20
    warmup: int = 5
    n_nodes: int = 10
    #: per-connection in-flight window; >1 switches each client from
    #: blocking call/response to the pipelined async path
    outstanding: int = 1

    def run(self, testbed: Testbed | None = None) -> ThroughputResult:
        tb = testbed or Testbed(n_nodes=self.n_nodes)
        gen = load_atb_module(goal="throughput", payload=self.payload,
                              concurrency=self.n_clients)
        max_msg = self.payload + 8 * KiB
        handler = EchoHandler(tb.node(0), resp_payload=self.payload)
        start_server(tb, gen, handler, self.mode, self.n_clients, max_msg,
                     window=self.outstanding)
        stats = LatencyStats()
        payload = bytes(i % 251 for i in range(self.payload))
        window = {"start": None, "end": 0.0, "ops": 0}
        client_nodes = tb.nodes[1:]

        def record(k, t0, t_done):
            if k >= self.warmup:
                if window["start"] is None:
                    window["start"] = t0
                stats.record(t_done - t0)
                window["ops"] += 1
                window["end"] = max(window["end"], t_done)

        def client(i):
            node = client_nodes[i % len(client_nodes)]
            stub = yield from connect_stub(tb, node, gen, self.mode,
                                           self.n_clients, max_msg,
                                           window=self.outstanding)
            if self.outstanding <= 1:
                for k in range(self.warmup + self.iters):
                    t0 = tb.sim.now
                    yield from stub.Echo(payload)
                    record(k, t0, tb.sim.now)
                return
            # Pipelined: keep up to `outstanding` Echoes in flight on one
            # connection; the engine's window provides the backpressure.
            caller = stub._hatrpc.async_caller()
            handles = []
            for k in range(self.warmup + self.iters):
                t0 = tb.sim.now
                h = yield from caller.call_async("Echo", payload)
                handles.append((k, t0, h))
            for k, t0, h in handles:
                yield from h.wait()
                record(k, t0, h.handle.t_done)

        for i in range(self.n_clients):
            tb.sim.process(client(i))
        tb.sim.run()
        duration = max(window["end"] - (window["start"] or 0.0), 1e-12)
        return ThroughputResult(
            ops_per_sec=window["ops"] / duration,
            latency=stats,
            server_registered_bytes=tb.node(0).nic.registered_bytes)
