"""ATB multi-client throughput benchmark (drives Figure 12).

N client connections spread over the cluster's client nodes hammer one
server's ``Echo`` RPC.  HatRPC mode uses service-level hints
``perf_goal = throughput`` with the deployment's concurrency, so the plan
switches protocol/polling at the paper's thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atb.harness import EchoHandler, connect_stub, start_server
from repro.atb.idl import load_atb_module
from repro.bench.stats import LatencyStats
from repro.sim.units import KiB
from repro.testbed import Testbed

__all__ = ["ThroughputBenchmark", "ThroughputResult"]


@dataclass
class ThroughputResult:
    ops_per_sec: float
    latency: LatencyStats
    server_registered_bytes: int


@dataclass
class ThroughputBenchmark:
    mode: str = "hatrpc"
    payload: int = 512
    n_clients: int = 16
    iters: int = 20
    warmup: int = 5
    n_nodes: int = 10

    def run(self, testbed: Testbed | None = None) -> ThroughputResult:
        tb = testbed or Testbed(n_nodes=self.n_nodes)
        gen = load_atb_module(goal="throughput", payload=self.payload,
                              concurrency=self.n_clients)
        max_msg = self.payload + 8 * KiB
        handler = EchoHandler(tb.node(0), resp_payload=self.payload)
        start_server(tb, gen, handler, self.mode, self.n_clients, max_msg)
        stats = LatencyStats()
        payload = bytes(i % 251 for i in range(self.payload))
        window = {"start": None, "end": 0.0, "ops": 0}
        client_nodes = tb.nodes[1:]

        def client(i):
            node = client_nodes[i % len(client_nodes)]
            stub = yield from connect_stub(tb, node, gen, self.mode,
                                           self.n_clients, max_msg)
            for k in range(self.warmup + self.iters):
                t0 = tb.sim.now
                yield from stub.Echo(payload)
                if k >= self.warmup:
                    if window["start"] is None:
                        window["start"] = t0
                    stats.record(tb.sim.now - t0)
                    window["ops"] += 1
                    window["end"] = max(window["end"], tb.sim.now)

        for i in range(self.n_clients):
            tb.sim.process(client(i))
        tb.sim.run()
        duration = max(window["end"] - (window["start"] or 0.0), 1e-12)
        return ThroughputResult(
            ops_per_sec=window["ops"] / duration,
            latency=stats,
            server_registered_bytes=tb.node(0).nic.registered_bytes)
