"""ATB IDL definitions, parameterized by the experiment's hint values."""

from __future__ import annotations

from repro.idl import load_idl

__all__ = ["atb_idl", "load_atb_module"]

_COUNTER = [0]


def atb_idl(goal: str = "throughput", payload: int = 512,
            concurrency: int = 1, mix_lat_payload: int = 512,
            mix_tput_payload: int = 512) -> str:
    """The ATB service definition with experiment-specific hints.

    ``Echo`` carries the service-level hints (latency/throughput benches);
    ``LatCall``/``TputCall`` carry function-level hints (mix bench).
    """
    # The paper's runs bind to the NIC's NUMA node up to 16 clients (S5.2);
    # benchmark IDLs state that knowledge as a hint.
    numa = "true" if concurrency <= 16 else "false"
    return f"""
// Apache Thrift Benchmarks (ATB) service, generated per experiment.
service ATBench {{
    hint: perf_goal = {goal}, payload_size = {payload},
          concurrency = {concurrency}, numa_binding = {numa};

    binary Echo(1: binary payload),
    binary LatCall(1: binary payload) [
        hint: perf_goal = latency, payload_size = {mix_lat_payload};
    ]
    binary TputCall(1: binary payload) [
        hint: perf_goal = throughput, payload_size = {mix_tput_payload},
              concurrency = {concurrency};
    ]
}}
"""


def load_atb_module(**kw):
    """Compile the ATB IDL into a uniquely named module."""
    _COUNTER[0] += 1
    return load_idl(atb_idl(**kw), f"atb_gen_{_COUNTER[0]}")
