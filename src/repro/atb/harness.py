"""Shared ATB machinery: server/client setup for every transport mode.

``mode`` selects the system under test:

* ``"hatrpc"`` -- the full hint-driven HatRPC runtime;
* ``"ipoib"`` -- vanilla Thrift over the kernel TCP/IPoIB stack;
* any protocol registry name (e.g. ``"hybrid_eager_rndv"``) -- the same
  generated Thrift code pinned to that one RDMA protocol (the paper's
  per-protocol baselines of Figs. 11-14).

Pinned baselines poll subscription-aware (busy <= 16 clients, event above),
so HatRPC's wins in the figures come from protocol choice, not from
handicapping the baselines with a bad polling mode.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.engine import ServicePlan, pinned_plan, plan_with_window
from repro.core.runtime import HatRpcServer, hatrpc_connect, service_plan_of
from repro.sim.units import KiB
from repro.testbed import Testbed
from repro.verbs.cq import PollMode

__all__ = ["baseline_poll_mode", "connect_stub", "plan_for_mode",
           "start_server"]

SERVICE = "ATBench"
BASE_SID = 7000


def baseline_poll_mode(mode: str, n_clients: int) -> PollMode:
    # Hybrid-EagerRNDV stands in for "vanilla Thrift over RDMA without
    # hints": lacking any knowledge of the deployment, it must default to
    # the polling mode that does not monopolize a core -- event polling.
    # The per-protocol baselines (the paper's hand-tuned comparators) get
    # the subscription-aware polling an expert would configure.
    if mode == "hybrid_eager_rndv":
        return PollMode.EVENT
    return PollMode.BUSY if n_clients <= 16 else PollMode.EVENT


def plan_for_mode(gen, mode: str, n_clients: int, max_msg: int,
                  window: int = 1) -> Optional[ServicePlan]:
    """None for hatrpc (hint-driven); a pinned plan for baselines.

    ``window > 1`` provisions the plan for pipelined calls -- and forces an
    explicit plan even for hatrpc mode, since both peers must share the
    widened wire-slot geometry.
    """
    if mode == "hatrpc":
        if window <= 1:
            return None
        return plan_with_window(
            service_plan_of(gen, SERVICE, concurrency=n_clients,
                            pipeline=True), window)
    protocol = "tcp" if mode == "ipoib" else mode
    plan = pinned_plan(SERVICE, gen.SERVICE_FUNCTIONS[SERVICE], protocol,
                       baseline_poll_mode(mode, n_clients), max_msg,
                       numa_local=n_clients <= 16,
                       resp_hint=max_msg - 4 * KiB)
    return plan_with_window(plan, window) if window > 1 else plan


def start_server(tb: Testbed, gen, handler, mode: str, n_clients: int,
                 max_msg: int, server_node: int = 0,
                 window: int = 1) -> HatRpcServer:
    plan = plan_for_mode(gen, mode, n_clients, max_msg, window)
    server = HatRpcServer(tb.node(server_node), gen, SERVICE, handler,
                          base_service_id=BASE_SID,
                          concurrency=n_clients, plan=plan)
    return server.start()


def connect_stub(tb: Testbed, client_node, gen, mode: str, n_clients: int,
                 max_msg: int, server_node: int = 0, window: int = 1):
    """Coroutine: a connected ATBench stub on ``client_node``."""
    plan = plan_for_mode(gen, mode, n_clients, max_msg, window)
    stub = yield from hatrpc_connect(
        client_node, tb.node(server_node), gen, SERVICE,
        base_service_id=BASE_SID, concurrency=n_clients, plan=plan)
    return stub


class EchoHandler:
    """Echoes a fixed-size response; optional checksum work per request.

    The mix benchmark's server work models the paper's checksum whose cost
    grows with the payload (Section 5.3): ``payload_bytes / checksum_rate``
    seconds of CPU.
    """

    def __init__(self, node, resp_payload: int, checksum_rate: float = 0.0):
        self.node = node
        self.resp = bytes(i % 251 for i in range(resp_payload))
        self.checksum_rate = checksum_rate

    def _work(self, payload):
        if self.checksum_rate > 0:
            yield self.node.compute(len(payload) / self.checksum_rate)
        return self.resp

    def Echo(self, payload):
        return (yield from self._work(payload))

    def LatCall(self, payload):
        return (yield from self._work(payload))

    def TputCall(self, payload):
        return (yield from self._work(payload))
