"""ATB latency benchmark (drives Figure 11).

One client, one server, fixed-size ping-pong through the generated Thrift
``Echo`` RPC.  The HatRPC mode carries service-level hints
``perf_goal = latency, concurrency = 1`` exactly as Section 5.2 describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atb.harness import EchoHandler, connect_stub, start_server
from repro.atb.idl import load_atb_module
from repro.bench.stats import LatencyStats
from repro.sim.units import KiB
from repro.testbed import Testbed

__all__ = ["LatencyBenchmark"]


@dataclass
class LatencyBenchmark:
    """Single-client Echo latency for one payload size and mode."""

    mode: str = "hatrpc"
    payload: int = 512
    iters: int = 20
    warmup: int = 5

    def run(self, testbed: Testbed | None = None) -> LatencyStats:
        tb = testbed or Testbed(n_nodes=2)
        gen = load_atb_module(goal="latency", payload=self.payload,
                              concurrency=1)
        max_msg = self.payload + 8 * KiB
        handler = EchoHandler(tb.node(0), resp_payload=self.payload)
        start_server(tb, gen, handler, self.mode, n_clients=1,
                     max_msg=max_msg)
        stats = LatencyStats()
        payload = bytes(i % 251 for i in range(self.payload))

        def client():
            stub = yield from connect_stub(tb, tb.node(1), gen, self.mode,
                                           n_clients=1, max_msg=max_msg)
            for k in range(self.warmup + self.iters):
                t0 = tb.sim.now
                resp = yield from stub.Echo(payload)
                assert len(resp) == self.payload
                if k >= self.warmup:
                    stats.record(tb.sim.now - t0)

        tb.sim.run(tb.sim.process(client()))
        return stats
