"""ATB mixed-communication benchmark (drives Figures 13-14).

Clients randomly issue one of two RPCs -- ``LatCall`` (hinted latency) and
``TputCall`` (hinted throughput) -- at a configurable ratio (the paper uses
50/50).  The server computes a payload-proportional checksum per request.
Latency is reported for the latency calls, throughput for the throughput
calls, exactly as Section 5.3 measures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.atb.harness import EchoHandler, connect_stub, start_server
from repro.atb.idl import load_atb_module
from repro.bench.stats import LatencyStats
from repro.sim.units import KiB
from repro.testbed import Testbed

__all__ = ["MixBenchmark", "MixResult"]

#: checksum cost model: bytes per CPU-second (a simple rolling checksum).
CHECKSUM_RATE = 5e9


@dataclass
class MixResult:
    lat_stats: LatencyStats          # latency-function calls
    tput_ops_per_sec: float          # throughput-function calls
    tput_stats: LatencyStats


@dataclass
class MixBenchmark:
    mode: str = "hatrpc"
    payload: int = 512
    n_clients: int = 16
    lat_ratio: float = 0.5
    iters: int = 20
    warmup: int = 5
    n_nodes: int = 10
    seed: int = 42

    def run(self, testbed: Testbed | None = None) -> MixResult:
        tb = testbed or Testbed(n_nodes=self.n_nodes)
        gen = load_atb_module(goal="throughput", payload=self.payload,
                              concurrency=self.n_clients,
                              mix_lat_payload=self.payload,
                              mix_tput_payload=self.payload)
        max_msg = self.payload + 8 * KiB
        handler = EchoHandler(tb.node(0), resp_payload=self.payload,
                              checksum_rate=CHECKSUM_RATE)
        start_server(tb, gen, handler, self.mode, self.n_clients, max_msg)
        lat_stats = LatencyStats()
        tput_stats = LatencyStats()
        window = {"start": None, "end": 0.0, "ops": 0}
        payload = bytes(i % 251 for i in range(self.payload))
        client_nodes = tb.nodes[1:]
        rng = random.Random(self.seed)
        # Pre-draw the call schedule so the run is deterministic regardless
        # of process interleaving.
        schedule = [[rng.random() < self.lat_ratio
                     for _ in range(self.warmup + self.iters)]
                    for _ in range(self.n_clients)]

        def client(i):
            node = client_nodes[i % len(client_nodes)]
            stub = yield from connect_stub(tb, node, gen, self.mode,
                                           self.n_clients, max_msg)
            for k, is_lat in enumerate(schedule[i]):
                t0 = tb.sim.now
                if is_lat:
                    yield from stub.LatCall(payload)
                else:
                    yield from stub.TputCall(payload)
                if k < self.warmup:
                    continue
                elapsed = tb.sim.now - t0
                if is_lat:
                    lat_stats.record(elapsed)
                else:
                    if window["start"] is None:
                        window["start"] = t0
                    tput_stats.record(elapsed)
                    window["ops"] += 1
                    window["end"] = max(window["end"], tb.sim.now)

        for i in range(self.n_clients):
            tb.sim.process(client(i))
        tb.sim.run()
        duration = max(window["end"] - (window["start"] or 0.0), 1e-12)
        return MixResult(lat_stats=lat_stats,
                         tput_ops_per_sec=window["ops"] / duration,
                         tput_stats=tput_stats)
