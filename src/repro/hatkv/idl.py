"""The KVService IDL of Figure 10, in -Service and -Function variants.

Payload geometry follows Section 5.4: 24-byte keys, 10 fields x 100 bytes
(=1000-byte values), batch size 10 for the Multi ops.  So per call:

* GET: ~24 B request, ~1 KB response;
* PUT: ~1 KB request, tiny response;
* MultiGET: ~240 B request, ~10 KB response;
* MultiPUT: ~10 KB request, tiny response.

The -Function variant states those asymmetries with lateral c_hint/s_hint
payload sizes; the -Service variant only sets service-level hints (the
paper's HatRPC-Service ablation).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.idl import load_idl

__all__ = ["hatkv_idl", "load_hatkv_module"]

_COUNTER = [0]


def hatkv_idl(variant: str = "function", concurrency: int = 128,
              priorities: Optional[Mapping[str, str]] = None,
              cacheable: Optional[Mapping[str, object]] = None) -> str:
    """The KVService IDL text.

    ``priorities`` optionally maps function names to a ``priority`` hint
    level (``high``/``normal``/``low``) for admission-controlled
    deployments -- e.g. ``{"Scan": "low"}`` marks scans as first to shed
    under overload.  Opt-in because the priority hint also feeds the
    selector (low-priority functions take the resource-efficient polling
    path), which changes the channel plan.

    ``cacheable`` optionally marks Get as client-cacheable, e.g.
    ``{"ttl": 200e-6, "hot_promote": 8}``: the server grants per-key
    leases of ``ttl`` seconds on Get replies and the plan gains a
    one-sided hot-read channel when ``hot_promote >= 1`` (see the
    ``cacheable`` hint in :mod:`repro.core.hints`).
    """
    if variant not in ("service", "function"):
        raise ValueError("variant must be 'service' or 'function'")
    fn_hints = {
        "Get": "[ c_hint: payload_size = 64; s_hint: payload_size = 1KB; ]",
        "Put": "[ c_hint: payload_size = 1KB; s_hint: payload_size = 64; ]",
        # Delete mirrors Put's payload geometry (tiny request, tiny reply)
        # so it shares Put's channel and leaves the plan shape unchanged.
        "Delete": "[ c_hint: payload_size = 1KB; "
                  "s_hint: payload_size = 64; ]",
        "MultiGet": "[ c_hint: payload_size = 512; "
                    "s_hint: payload_size = 10KB; ]",
        "MultiPut": "[ c_hint: payload_size = 10KB; "
                    "s_hint: payload_size = 64; ]",
        "Scan": "[ c_hint: payload_size = 64; "
                "s_hint: payload_size = 10KB; ]",
    } if variant == "function" else {k: "" for k in
                                     ("Get", "Put", "Delete", "MultiGet",
                                      "MultiPut", "Scan")}
    for fn, level in (priorities or {}).items():
        if fn not in fn_hints:
            raise KeyError(f"unknown KVService function {fn!r}")
        if level not in ("high", "normal", "low"):
            raise ValueError(f"priority for {fn!r} must be high/normal/low, "
                             f"not {level!r}")
        clause = f"hint: priority = {level};"
        block = fn_hints[fn]
        fn_hints[fn] = f"[ {clause} ]" if not block \
            else block[:-1].rstrip() + f" {clause} ]"
    if cacheable is not None:
        ttl = float(cacheable["ttl"])
        if ttl <= 0:
            raise ValueError(f"cacheable ttl must be > 0, not {ttl!r}")
        hot = int(cacheable.get("hot_promote", 0))
        clause = (f"hint: cacheable(ttl = {ttl:.9f}, "
                  f"hot_promote = {hot});")
        block = fn_hints["Get"]
        fn_hints["Get"] = f"[ {clause} ]" if not block \
            else block[:-1].rstrip() + f" {clause} ]"
    return f"""
// HatKV service (Figure 10).  Variant: HatRPC-{variant.capitalize()}.

// Get's reply distinguishes "absent" from "stored an empty value":
// a bare binary return conflated the two (b"" either way), so a shard
// router could not tell a misrouted key from an empty one.
// version/lease are the cacheable-hint protocol fields: the key's write
// version and the granted lease duration in seconds (0 = not cacheable
// or a writer was in flight).  Both stay unset (None on the wire's
// skip-None encoding) when the service carries no cacheable hint, so
// uncached deployments keep today's byte-identical replies.
struct GetResult {{
    1: bool found,
    2: binary value,
    3: i64 version,
    4: double lease,
}}

service KVService {{
    hint: concurrency = {concurrency}, perf_goal = throughput;

    GetResult Get(1: binary key) {fn_hints['Get']}
    void Put(1: binary key, 2: binary value) {fn_hints['Put']}
    void Delete(1: binary key) {fn_hints['Delete']}
    list<binary> MultiGet(1: list<binary> keys) {fn_hints['MultiGet']}
    void MultiPut(1: list<binary> keys, 2: list<binary> values) {fn_hints['MultiPut']}
    list<binary> Scan(1: binary start_key, 2: i32 count) {fn_hints['Scan']}
}}
"""


def load_hatkv_module(variant: str = "function", concurrency: int = 128,
                      priorities: Optional[Mapping[str, str]] = None,
                      cacheable: Optional[Mapping[str, object]] = None):
    _COUNTER[0] += 1
    return load_idl(hatkv_idl(variant, concurrency, priorities, cacheable),
                    f"hatkv_gen_{variant}_{_COUNTER[0]}")
