"""HatKV server: generated KVService over HatRPC with an LMDB backend."""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.core.engine import ServicePlan
from repro.core.hints import resolve_hints
from repro.core.runtime import HatRpcServer
from repro.hatkv.backend import LmdbBackend
from repro.sim.cluster import Node
from repro.sim.units import GiB

__all__ = ["HatKVServer", "KVHandler"]

SERVICE = "KVService"
BASE_SID = 6000


class _PlainGetResult:
    """Stand-in for the generated GetResult when no gen module is wired
    (unit tests poking the handler directly)."""

    def __init__(self, found: bool = False, value: bytes = b""):
        self.found = found
        self.value = value


class KVHandler:
    """Generated-Iface implementation over the backend (all coroutines).

    ``result_cls`` is the generated ``GetResult`` struct; Get replies carry
    an explicit ``found`` flag so a missing key is never conflated with a
    stored-but-empty value.  ``shard`` (set by :mod:`repro.hatkv.sharding`)
    adds per-shard ``hatkv.shard<N>.*`` counters next to the global ones.
    """

    def __init__(self, backend: LmdbBackend, result_cls=None,
                 shard: Optional[int] = None):
        self.backend = backend
        self.result_cls = result_cls or _PlainGetResult
        self.shard = shard
        # Per-op instruments, captured once (None = metrics disabled).
        reg = obs.current()
        if reg is not None:
            ops = ("get", "put", "multi_get", "multi_put", "scan")
            self._m_ops = {op: reg.counter(f"hatkv.{op}") for op in ops}
            if shard is not None:
                self._m_shard = {op: reg.counter(f"hatkv.shard{shard}.{op}")
                                 for op in ops}
            else:
                self._m_shard = None
        else:
            self._m_ops = None
            self._m_shard = None

    def _count(self, op: str) -> None:
        if self._m_ops is not None:
            self._m_ops[op].inc()
            if self._m_shard is not None:
                self._m_shard[op].inc()

    def _annotate(self, op: str, **attrs) -> None:
        """Stamp the KV op onto the open "handler" trace stage (the Thrift
        processor holds it open across the handler coroutine)."""
        ap = self.backend.node.sim.active_process
        ctx = ap.trace_ctx if ap is not None else None
        if ctx is not None:
            ctx.annotate(op=op, **attrs)

    def Get(self, key):
        self._count("get")
        self._annotate("get", key_bytes=len(key))
        value = yield from self.backend.get(key)
        return self.result_cls(found=value is not None,
                               value=value if value is not None else b"")

    def Put(self, key, value):
        self._count("put")
        self._annotate("put", value_bytes=len(value))
        yield from self.backend.put(key, value)

    def MultiGet(self, keys):
        self._count("multi_get")
        self._annotate("multi_get", nkeys=len(keys))
        values = yield from self.backend.multi_get(keys)
        return [v if v is not None else b"" for v in values]

    def MultiPut(self, keys, values):
        self._count("multi_put")
        self._annotate("multi_put", nkeys=len(keys),
                       value_bytes=sum(len(v) for v in values))
        yield from self.backend.multi_put(keys, values)

    def Scan(self, start_key, count):
        self._count("scan")
        self._annotate("scan", count=count)
        rows = yield from self.backend.scan(start_key, count)
        # flatten to [k1, v1, k2, v2, ...] (the IDL carries one list)
        out = []
        for k, v in rows:
            out.append(k)
            out.append(v)
        return out


class HatKVServer:
    """One HatKV node: LMDB backend + HatRPC service endpoints."""

    def __init__(self, node: Node, gen_module,
                 map_size: int = 32 * GiB,
                 concurrency: Optional[int] = None,
                 plan: Optional[ServicePlan] = None,
                 base_service_id: int = BASE_SID,
                 tune_backend: bool = True,
                 pipeline: bool = False,
                 shard: Optional[int] = None,
                 admission=None,
                 srq: bool = False,
                 srq_slots: Optional[int] = None,
                 tunable: bool = False):
        self.node = node
        self.gen = gen_module
        self.shard = shard
        self.backend = LmdbBackend(node, map_size=map_size)
        # Backend co-design: tune LMDB from the service-level server hints
        # (Section 4.4 -- e.g. max readers from the concurrency hint).
        # Comparator systems (repro.emul) disable this: they share the
        # stock backend, as the paper's apples-to-apples setup requires.
        if tune_backend:
            service_map = gen_module.SERVICE_HINTS[SERVICE]["service"]
            hints = resolve_hints(service_map, None, "server")
            if concurrency is not None:
                from dataclasses import replace
                hints = replace(hints, concurrency=concurrency)
            self.backend.apply_hints(hints)
        self.handler = KVHandler(self.backend, result_cls=gen_module.GetResult,
                                 shard=shard)
        # pipeline=True provisions windowed channels; connect the clients
        # with pipeline=True too -- both peers must share the plan.
        # admission/srq: the overload-protection stack (see HatRpcServer) --
        # priority-tiered admission ahead of LMDB work, and the SRQ receive
        # path so client count can outgrow the node's core count.
        self.rpc = HatRpcServer(node, gen_module, SERVICE, self.handler,
                                base_service_id=base_service_id,
                                concurrency=concurrency, plan=plan,
                                pipeline=pipeline, admission=admission,
                                srq=srq, srq_slots=srq_slots,
                                tunable=tunable)

    def start(self) -> "HatKVServer":
        self.rpc.start()
        return self

    def stop(self) -> None:
        self.rpc.stop()

    def load(self, items) -> None:
        """Bulk-load (key, value) pairs straight into LMDB (no RPC) --
        the YCSB load phase, which the paper does not time."""
        with self.backend.env.begin(write=True) as txn:
            for key, value in items:
                txn.put(key, value)

    @property
    def requests(self) -> int:
        return self.rpc.requests
