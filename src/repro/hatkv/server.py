"""HatKV server: generated KVService over HatRPC with an LMDB backend."""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.core.engine import ServicePlan
from repro.core.hints import cacheable_hint, resolve_hints
from repro.core.runtime import HatRpcServer
from repro.hatkv.backend import LmdbBackend
from repro.sim.cluster import Node
from repro.sim.units import GiB

__all__ = ["HatKVServer", "KVHandler", "LeaseTable"]

SERVICE = "KVService"
BASE_SID = 6000


class _PlainGetResult:
    """Stand-in for the generated GetResult when no gen module is wired
    (unit tests poking the handler directly)."""

    def __init__(self, found: bool = False, value: bytes = b"",
                 version=None, lease=None):
        self.found = found
        self.value = value
        self.version = version
        self.lease = lease


#: Default write-rate suppression window, as a multiple of the lease ttl
#: (see :class:`LeaseTable`).
LEASE_SUPPRESS_FACTOR = 2.0

#: Leases at or below this ttl skip write-rate suppression entirely.  A
#: writer's stall is bounded by one lease epoch, so with short leases the
#: stall is cheap -- while suppression would mute the hottest keys, which
#: are exactly where a short-lease cache earns its keep.  Long leases
#: invert the trade: one stalled writer waits out most of a (long) epoch
#: and write-hot keys convoy, so suppression kicks in.
LEASE_SUPPRESS_MIN_TTL = 100e-6


class LeaseTable:
    """Server half of the ``cacheable`` hint's version/lease protocol.

    Invariant: while any granted lease on a key is unexpired, the key's
    value cannot change.  Writers register their intent first (which
    blocks new grants on the key), then wait out the outstanding lease
    horizon before applying, so a client serving a leased entry can never
    return a value older than the last *acknowledged* write.  Get grants
    a lease only when no writer is in flight AND the key's version did
    not move during its backend read.

    Grants on long leases (past :data:`LEASE_SUPPRESS_MIN_TTL`) are also
    *write-rate suppressed*: a key written within the last
    ``suppress_factor * ttl`` is refused a lease.  A write-hot key
    would otherwise convoy -- each Put waits out a lease horizon that
    concurrent Gets keep re-extending the moment the previous writer
    drains, so writers queue faster than barriers complete.  Suppression
    keeps such keys permanently lease-free (their writers sail through an
    already-expired horizon) while read-mostly keys, whose writes are
    rarer than the window, stay cacheable.
    """

    def __init__(self, sim, ttl: float,
                 suppress_factor: Optional[float] = None):
        self.sim = sim
        self.ttl = ttl
        if suppress_factor is None:
            suppress_factor = LEASE_SUPPRESS_FACTOR \
                if ttl > LEASE_SUPPRESS_MIN_TTL else 0.0
        self.suppress = suppress_factor * ttl
        self.versions = {}        # key -> write version (monotonic)
        self._expiry = {}         # key -> latest granted lease expiry
        self._writers = {}        # key -> in-flight writer count
        self._last_write = {}     # key -> sim time of latest version bump
        reg = obs.current()
        self._m_grants = reg.counter("hatkv.lease.grants") if reg else None
        self._m_stalls = reg.counter("hatkv.lease.write_stalls") if reg \
            else None
        self._m_suppressed = reg.counter("hatkv.lease.suppressed") if reg \
            else None

    def version(self, key) -> int:
        return self.versions.get(key, 0)

    def grant(self, key, v0: int) -> float:
        """A ``ttl`` lease, or 0.0 when the key is not safely cacheable
        right now (writer in flight, version moved past ``v0``, or the
        key was written within the suppression window)."""
        if self._writers.get(key) or self.versions.get(key, 0) != v0:
            return 0.0
        last = self._last_write.get(key)
        if last is not None and self.sim.now - last < self.suppress:
            if self._m_suppressed is not None:
                self._m_suppressed.inc()
            return 0.0
        # Epoch-capped: every grant inside one lease window shares the
        # window's expiry instead of extending it, so a writer's barrier
        # is bounded by one ttl from the epoch's *first* grant -- without
        # the cap, back-to-back reads would push the horizon out forever.
        exp = self._expiry.get(key, 0.0)
        if exp <= self.sim.now:
            exp = self.sim.now + self.ttl
            self._expiry[key] = exp
        if self._m_grants is not None:
            self._m_grants.inc()
        return exp - self.sim.now

    def begin_write(self, *keys) -> None:
        for k in keys:
            self._writers[k] = self._writers.get(k, 0) + 1

    def end_write(self, *keys) -> None:
        for k in keys:
            n = self._writers.get(k, 0) - 1
            if n <= 0:
                self._writers.pop(k, None)
            else:
                self._writers[k] = n

    def write_barrier(self, *keys):
        """Coroutine: wait until every outstanding lease on ``keys`` has
        expired.  The caller must hold ``begin_write`` on the keys so no
        new lease extends the horizon while waiting."""
        horizon = max((self._expiry.get(k, 0.0) for k in keys), default=0.0)
        if horizon > self.sim.now:
            if self._m_stalls is not None:
                self._m_stalls.inc()
            yield self.sim.timeout(horizon - self.sim.now)
        for k in keys:
            if self._expiry.get(k, 0.0) <= self.sim.now:
                self._expiry.pop(k, None)

    def bump(self, *keys) -> None:
        for k in keys:
            self.versions[k] = self.versions.get(k, 0) + 1
            self._last_write[k] = self.sim.now

    def adopt(self, key, version: int) -> None:
        """Import a version floor from another shard's table (migration
        handoff).  Client-visible versions must stay monotonic per key
        across a range move, so the new owner adopts the old owner's
        version *before* the copied value lands -- its own bumps then
        continue from there.  Never lowers an existing version."""
        if version > self.versions.get(key, 0):
            self.versions[key] = version


class KVHandler:
    """Generated-Iface implementation over the backend (all coroutines).

    ``result_cls`` is the generated ``GetResult`` struct; Get replies carry
    an explicit ``found`` flag so a missing key is never conflated with a
    stored-but-empty value.  ``shard`` (set by :mod:`repro.hatkv.sharding`)
    adds per-shard ``hatkv.shard<N>.*`` counters next to the global ones.
    """

    def __init__(self, backend: LmdbBackend, result_cls=None,
                 shard: Optional[int] = None,
                 leases: Optional[LeaseTable] = None):
        self.backend = backend
        self.result_cls = result_cls or _PlainGetResult
        self.shard = shard
        self.leases = leases
        #: migration write fence (a :class:`repro.hatkv.migration.HandoffGuard`
        #: installed by the cluster's resize driver): once a range's cutover
        #: completes, the old owner refuses writes for it.
        self.handoff = None
        # Per-op instruments, captured once (None = metrics disabled).
        reg = obs.current()
        if reg is not None:
            ops = ("get", "put", "delete", "multi_get", "multi_put", "scan")
            self._m_ops = {op: reg.counter(f"hatkv.{op}") for op in ops}
            if shard is not None:
                self._m_shard = {op: reg.counter(f"hatkv.shard{shard}.{op}")
                                 for op in ops}
            else:
                self._m_shard = None
        else:
            self._m_ops = None
            self._m_shard = None

    def _count(self, op: str) -> None:
        if self._m_ops is not None:
            self._m_ops[op].inc()
            if self._m_shard is not None:
                self._m_shard[op].inc()

    def _annotate(self, op: str, **attrs) -> None:
        """Stamp the KV op onto the open "handler" trace stage (the Thrift
        processor holds it open across the handler coroutine)."""
        ap = self.backend.node.sim.active_process
        ctx = ap.trace_ctx if ap is not None else None
        if ctx is not None:
            ctx.annotate(op=op, **attrs)

    def Get(self, key):
        self._count("get")
        self._annotate("get", key_bytes=len(key))
        lt = self.leases
        if lt is None:
            value = yield from self.backend.get(key)
            return self.result_cls(found=value is not None,
                                   value=value if value is not None else b"")
        # Capture the version BEFORE the backend read: a write landing
        # mid-read moves it, and grant() then refuses the lease (the value
        # we are about to return may already be stale).
        v0 = lt.version(key)
        value = yield from self.backend.get(key)
        lease = lt.grant(key, v0)
        return self.result_cls(found=value is not None,
                               value=value if value is not None else b"",
                               version=lt.version(key), lease=lease)

    def Put(self, key, value):
        self._count("put")
        self._annotate("put", value_bytes=len(value))
        if self.handoff is not None:
            self.handoff.check(key)
        lt = self.leases
        if lt is None:
            yield from self.backend.put(key, value)
            return
        lt.begin_write(key)
        try:
            yield from lt.write_barrier(key)
            yield from self.backend.put(key, value)
            lt.bump(key)
        finally:
            lt.end_write(key)

    def Delete(self, key):
        self._count("delete")
        self._annotate("delete", key_bytes=len(key))
        if self.handoff is not None:
            self.handoff.check(key)
        lt = self.leases
        if lt is None:
            yield from self.backend.delete(key)
            return
        lt.begin_write(key)
        try:
            yield from lt.write_barrier(key)
            yield from self.backend.delete(key)
            lt.bump(key)
        finally:
            lt.end_write(key)

    def MultiGet(self, keys):
        self._count("multi_get")
        self._annotate("multi_get", nkeys=len(keys))
        values = yield from self.backend.multi_get(keys)
        return [v if v is not None else b"" for v in values]

    def MultiPut(self, keys, values):
        self._count("multi_put")
        self._annotate("multi_put", nkeys=len(keys),
                       value_bytes=sum(len(v) for v in values))
        if self.handoff is not None:
            self.handoff.check(*keys)
        lt = self.leases
        if lt is None:
            yield from self.backend.multi_put(keys, values)
            return
        lt.begin_write(*keys)
        try:
            yield from lt.write_barrier(*keys)
            yield from self.backend.multi_put(keys, values)
            lt.bump(*keys)
        finally:
            lt.end_write(*keys)

    def Scan(self, start_key, count):
        self._count("scan")
        self._annotate("scan", count=count)
        rows = yield from self.backend.scan(start_key, count)
        # flatten to [k1, v1, k2, v2, ...] (the IDL carries one list)
        out = []
        for k, v in rows:
            out.append(k)
            out.append(v)
        return out


class HatKVServer:
    """One HatKV node: LMDB backend + HatRPC service endpoints."""

    def __init__(self, node: Node, gen_module,
                 map_size: int = 32 * GiB,
                 concurrency: Optional[int] = None,
                 plan: Optional[ServicePlan] = None,
                 base_service_id: int = BASE_SID,
                 tune_backend: bool = True,
                 pipeline: bool = False,
                 shard: Optional[int] = None,
                 admission=None,
                 srq: bool = False,
                 srq_slots: Optional[int] = None,
                 tunable: bool = False):
        self.node = node
        self.gen = gen_module
        self.shard = shard
        self.backend = LmdbBackend(node, map_size=map_size)
        # Backend co-design: tune LMDB from the service-level server hints
        # (Section 4.4 -- e.g. max readers from the concurrency hint).
        # Comparator systems (repro.emul) disable this: they share the
        # stock backend, as the paper's apples-to-apples setup requires.
        if tune_backend:
            service_map = gen_module.SERVICE_HINTS[SERVICE]["service"]
            hints = resolve_hints(service_map, None, "server")
            if concurrency is not None:
                from dataclasses import replace
                hints = replace(hints, concurrency=concurrency)
            self.backend.apply_hints(hints)
        # A cacheable hint on Get (resolved server-side) stands up the
        # lease table: Get replies then carry version + lease and writers
        # wait out outstanding leases before applying.
        hint_map = gen_module.SERVICE_HINTS.get(SERVICE, {})
        cc = cacheable_hint(resolve_hints(
            hint_map.get("service", {}),
            hint_map.get("functions", {}).get("Get"), "server"))
        self.leases = LeaseTable(node.sim, cc.ttl) if cc is not None else None
        self.handler = KVHandler(self.backend, result_cls=gen_module.GetResult,
                                 shard=shard, leases=self.leases)
        # pipeline=True provisions windowed channels; connect the clients
        # with pipeline=True too -- both peers must share the plan.
        # admission/srq: the overload-protection stack (see HatRpcServer) --
        # priority-tiered admission ahead of LMDB work, and the SRQ receive
        # path so client count can outgrow the node's core count.
        self.rpc = HatRpcServer(node, gen_module, SERVICE, self.handler,
                                base_service_id=base_service_id,
                                concurrency=concurrency, plan=plan,
                                pipeline=pipeline, admission=admission,
                                srq=srq, srq_slots=srq_slots,
                                tunable=tunable)

    def install_handoff(self, guard) -> None:
        """Arm (or replace) the migration write fence on this server's
        handler.  Each resize installs guards built from its own plan; the
        latest plan is the routing truth, so replacement is correct."""
        self.handler.handoff = guard

    def start(self) -> "HatKVServer":
        self.rpc.start()
        return self

    def stop(self) -> None:
        self.rpc.stop()

    def load(self, items) -> None:
        """Bulk-load (key, value) pairs straight into LMDB (no RPC) --
        the YCSB load phase, which the paper does not time."""
        with self.backend.env.begin(write=True) as txn:
            for key, value in items:
                txn.put(key, value)

    @property
    def requests(self) -> int:
        return self.rpc.requests
