"""Elastic resharding: live key migration between two ring sizes.

A consistent-hash ring owns keys by hash arcs, so resizing from ``n`` to
``m`` shards remaps exactly the arcs claimed by the added (or released by
the removed) vnode points -- ``|Δvnodes| / |vnodes|`` of the key space,
nothing else.  This module turns that delta into a live migration:

* :func:`ring_segments` walks the union of both rings' points and yields
  the maximal arcs of constant (old owner, new owner);
* :class:`MigrationPlan` materializes the arcs whose *replica set*
  changes as :class:`RangeTask` s, each with its own
  ``PENDING → MIGRATING → CUTOVER → DONE`` state, dirty set, in-flight
  write count, and cutover fence;
* :class:`HandoffGuard` is the server-side half of the fence: once a
  range is DONE the old primary *refuses* writes for it, so a Put can
  never be acknowledged by two primaries even if a buggy router routes
  one late;
* :class:`ResizeTrigger` watches the sampled ``hatkv.keys.shard<i>`` /
  ``hatkv.shard<i>.<op>`` series and fires a resize when per-shard load
  crosses a threshold.

The protocol per range (driven by
:meth:`repro.hatkv.sharding.ShardedKVCluster.resize`):

1. **MIGRATING** -- the old owner streams a snapshot of the range to the
   new holders via pipelined ``multi_put`` RPCs; writes keep landing on
   the old replica set (authoritative) and every acknowledged write is
   dirty-marked.  Unfenced catch-up rounds drain the dirty set while
   traffic flows.
2. **CUTOVER** -- the write fence closes: new writes to the range park on
   the fence event, in-flight ones drain (counted by the routers), and
   one final fenced delta makes the new holders exact.  Reads keep
   flowing to the old owner throughout -- its copy is frozen by the
   fence, so they stay fresh.
3. **DONE** -- the routing epoch bumps, the fence lifts (parked writers
   re-resolve to the new owner), and every connected router drops the
   range's cached entries.  For a *forwarding window* after the flip the
   old copy is retained and a miss on the new owner falls back to it
   (dual-read); cleanup then deletes the handed-off copies.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, \
    Tuple

from repro.sim.core import Event, SimulationError
from repro.sim.units import us

__all__ = ["FORWARD_WINDOW", "HandoffGuard", "MigrationPlan",
           "RangeHandedOffError", "RangeState", "RangeTask", "ResizeTrigger",
           "RING_SPACE", "VnodeRange", "coalesce_ranges", "hash_key",
           "ring_segments"]

#: the ring's hash space: 64-bit truncated md5 (see :func:`hash_key`).
RING_SPACE = 1 << 64

#: how long after a range's cutover the old copy keeps serving dual-read
#: fallbacks before cleanup deletes it.
FORWARD_WINDOW = 200 * us


def hash_key(data: bytes) -> int:
    """Ring placement hash -- md5 so it is identical across processes and
    runs (Python's salted ``hash()`` is not replayable)."""
    return int.from_bytes(hashlib.md5(data).digest()[:8], "big")


# -- ring deltas --------------------------------------------------------------

@dataclass(frozen=True)
class VnodeRange:
    """One half-open hash arc ``[lo, hi)`` (wrapping when ``hi <= lo``)
    whose primary ownership moves ``src`` → ``dst`` across a resize."""

    lo: int
    hi: int
    src: int
    dst: int

    def contains(self, h: int) -> bool:
        if self.lo < self.hi:
            return self.lo <= h < self.hi
        return h >= self.lo or h < self.hi

    @property
    def measure(self) -> int:
        """Arc length in hash units (the remapped-fraction numerator)."""
        return (self.hi - self.lo) % RING_SPACE


def ring_segments(old_ring, new_ring) -> Iterator[Tuple[int, int, int, int]]:
    """Yield ``(lo, hi, old_owner, new_owner)`` for every maximal arc of
    constant ownership across the union of both rings' vnode points.

    Every hash in ``[lo, hi)`` maps to ``old_owner`` under ``old_ring``
    and ``new_owner`` under ``new_ring`` (ownership is the first vnode
    point strictly clockwise, so no union segment straddles an owner
    change).  The final segment wraps past the highest point.
    """
    pts = sorted(set(old_ring._hashes) | set(new_ring._hashes))
    for i, lo in enumerate(pts):
        hi = pts[(i + 1) % len(pts)]
        yield lo, hi, old_ring.owner_of_hash(lo), new_ring.owner_of_hash(lo)


def coalesce_ranges(ranges: Sequence[VnodeRange]) -> List[VnodeRange]:
    """Merge adjacent arcs with the same (src, dst) into maximal runs."""
    out: List[VnodeRange] = []
    for r in sorted(ranges, key=lambda r: r.lo):
        if out and out[-1].hi == r.lo and (out[-1].src, out[-1].dst) == \
                (r.src, r.dst):
            out[-1] = VnodeRange(out[-1].lo, r.hi, r.src, r.dst)
        else:
            out.append(r)
    return out


# -- the migration plan -------------------------------------------------------

class RangeState(IntEnum):
    PENDING = 0
    MIGRATING = 1
    CUTOVER = 2
    DONE = 3


@dataclass
class RangeTask:
    """One migrating arc: hash bounds, old/new replica sets, live state.

    ``src``/``dst`` are full replica-set tuples (primary first); the task
    exists because they differ -- a pure replica reshuffle (primary
    unchanged, successors shifted by the shard-count change) migrates
    through exactly the same machinery as a primary move.
    """

    lo: int
    hi: int
    src: Tuple[int, ...]
    dst: Tuple[int, ...]
    state: RangeState = RangeState.PENDING
    keys_total: int = 0
    keys_moved: int = 0
    bytes_moved: int = 0
    #: keys written (acked) while the task was live -- the catch-up feed.
    dirty: Set[bytes] = field(default_factory=set)
    #: every key ever streamed or dirtied -- the cleanup feed.
    seen: Set[bytes] = field(default_factory=set)
    #: router-counted writes currently in flight against the old set.
    inflight: int = 0
    done_epoch: Optional[int] = None
    done_at: Optional[float] = None
    cleaned: bool = False
    fence: Optional[Event] = None       # created at CUTOVER, fired at DONE
    _drain: Optional[Event] = None      # cutover's in-flight write drain

    def contains(self, h: int) -> bool:
        if self.lo < self.hi:
            return self.lo <= h < self.hi
        return h >= self.lo or h < self.hi

    def settle_write(self, key: bytes) -> None:
        """Settle one write counted by :meth:`MigrationPlan.write_begin`:
        dirty-mark the key (a partially applied write must be re-streamed
        no less than a completed one) and release the cutover drain when
        the last in-flight write leaves."""
        self.inflight -= 1
        if self.state < RangeState.DONE:
            self.dirty.add(key)
            self.seen.add(key)
        if self.inflight == 0 and self._drain is not None \
                and not self._drain.triggered:
            self._drain.succeed()

    @property
    def moves_primary(self) -> bool:
        return self.src[0] != self.dst[0]

    @property
    def copy_targets(self) -> Tuple[int, ...]:
        return tuple(s for s in self.dst if s not in self.src)

    @property
    def drop_targets(self) -> Tuple[int, ...]:
        return tuple(s for s in self.src if s not in self.dst)


class MigrationPlan:
    """The remapped ranges of one resize, with live per-range state.

    Built from the old and new rings: a :class:`RangeTask` per maximal
    arc whose replica set changes (``replicas`` successors in each ring's
    own shard count).  The plan is the shared routing truth while a
    migration runs -- routers resolve preference, write gates, and
    dual-read fallbacks against it, and the cluster's driver walks its
    tasks through their states.
    """

    def __init__(self, sim, old_ring, new_ring, replicas: int = 1,
                 forward_window: float = FORWARD_WINDOW):
        if replicas > min(old_ring.n_shards, new_ring.n_shards):
            raise ValueError("cannot resize below the replica count")
        self.sim = sim
        self.old_ring = old_ring
        self.new_ring = new_ring
        self.replicas = replicas
        self.forward_window = forward_window
        raw: List[VnodeRange] = []
        for lo, hi, p_old, p_new in ring_segments(old_ring, new_ring):
            raw.append(VnodeRange(lo, hi, p_old, p_new))
        tasks: List[RangeTask] = []
        for r in coalesce_ranges(
                [r for r in raw if self._sets(r) is not None]):
            src, dst = self._sets(r)            # type: ignore[misc]
            tasks.append(RangeTask(r.lo, r.hi, src, dst))
        # One arc at most wraps past the top of the hash space; keep it
        # aside so `covering` stays a single bisect.
        self._wrapped = next((t for t in tasks if t.hi <= t.lo), None)
        self.tasks = sorted(tasks, key=lambda t: t.lo)
        self._los = [t.lo for t in self.tasks]

    def _sets(self, r: VnodeRange
              ) -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        """(old replica set, new replica set) for an arc, or None when the
        resize leaves it untouched."""
        src = tuple((r.src + j) % self.old_ring.n_shards
                    for j in range(self.replicas))
        dst = tuple((r.dst + j) % self.new_ring.n_shards
                    for j in range(self.replicas))
        return None if src == dst else (src, dst)

    # -- lookups -------------------------------------------------------------
    def covering(self, h: int) -> Optional[RangeTask]:
        idx = bisect.bisect_right(self._los, h) - 1
        if idx >= 0:
            t = self.tasks[idx]
            if t.contains(h):
                return t
        if self._wrapped is not None and self._wrapped.contains(h):
            return self._wrapped
        return None

    def preference(self, h: int) -> Optional[Tuple[int, ...]]:
        """The replica set currently serving hash ``h``, or None when the
        resize does not touch it.  The old set stays authoritative through
        CUTOVER (its copy is frozen by the fence); DONE flips to the new."""
        t = self.covering(h)
        if t is None:
            return None
        return t.dst if t.state >= RangeState.DONE else t.src

    def primary_at(self, h: int, epoch: int) -> int:
        """The primary shard for ``h`` as of routing epoch ``epoch`` --
        the frozen-view resolver scan dedup snapshots (a range counts as
        flipped only if its cutover bumped the epoch at or before the
        snapshot)."""
        t = self.covering(h)
        if t is None:
            return self.new_ring.owner_of_hash(h)
        if t.done_epoch is not None and t.done_epoch <= epoch:
            return t.dst[0]
        return t.src[0]

    def read_fallback(self, h: int) -> Tuple[int, ...]:
        """Shards still holding the pre-cutover copy of ``h``'s range --
        the dual-read forwarding window.  Non-empty only between a range's
        DONE flip and its cleanup (bounded by ``forward_window``)."""
        t = self.covering(h)
        if t is None or t.cleaned or t.state < RangeState.DONE:
            return ()
        if t.done_at is not None and \
                self.sim.now - t.done_at > self.forward_window:
            return ()
        return t.src

    # -- the write protocol --------------------------------------------------
    def fence_of(self, h: int) -> Optional[Event]:
        """The fence event a new write on ``h`` must wait out, or None.
        Non-None exactly while the covering range is in CUTOVER."""
        t = self.covering(h)
        if t is not None and t.state is RangeState.CUTOVER:
            return t.fence
        return None

    def write_begin(self, h: int) -> Optional[RangeTask]:
        """Count one write against the covering task (pre-flip only); the
        returned token must be passed to :meth:`write_end`."""
        t = self.covering(h)
        if t is None or t.state >= RangeState.DONE:
            return None
        t.inflight += 1
        return t

    def write_end(self, task: Optional[RangeTask], key: bytes) -> None:
        """Settle one write begun with :meth:`write_begin` (see
        :meth:`RangeTask.settle_write`)."""
        if task is not None:
            task.settle_write(key)

    # -- progress ------------------------------------------------------------
    def progress(self) -> Dict[str, float]:
        """Per-state range counts + volume, probe-shaped (sampled every
        tick into the JSONL stream as ``hatkv.migration.<key>``)."""
        by = {s: 0 for s in RangeState}
        for t in self.tasks:
            by[t.state] += 1
        total = len(self.tasks)
        done = by[RangeState.DONE]
        return {
            "ranges_total": float(total),
            "ranges_pending": float(by[RangeState.PENDING]),
            "ranges_migrating": float(by[RangeState.MIGRATING]),
            "ranges_cutover": float(by[RangeState.CUTOVER]),
            "ranges_done": float(done),
            "pct_done": 100.0 * done / total if total else 100.0,
            "keys_moved": float(sum(t.keys_moved for t in self.tasks)),
            "bytes_moved": float(sum(t.bytes_moved for t in self.tasks)),
            "inflight_writes": float(sum(t.inflight for t in self.tasks)),
        }

    @property
    def complete(self) -> bool:
        return all(t.state >= RangeState.DONE for t in self.tasks)


# -- server-side write fencing ------------------------------------------------

class RangeHandedOffError(SimulationError):
    """A write reached a shard for a range it already handed off.  The
    router-side gate plus the cutover's in-flight drain make this
    unreachable in correct operation, so it is a loud protocol error,
    not a retryable condition."""


class HandoffGuard:
    """Installed on a server's handler during (and after) a resize: the
    old primary refuses writes for ranges whose cutover completed, so a
    Put is never acknowledged by two primaries -- even a late or buggy
    router cannot double-apply across the fence."""

    def __init__(self, plan: MigrationPlan, shard: int):
        self.plan = plan
        self.shard = shard

    def check(self, *keys: bytes) -> None:
        for key in keys:
            t = self.plan.covering(hash_key(key))
            if t is not None and t.state >= RangeState.DONE \
                    and self.shard not in t.dst:
                raise RangeHandedOffError(
                    f"shard {self.shard} refused write for {key!r}: range "
                    f"[{t.lo:#x}, {t.hi:#x}) handed off to {t.dst}")


# -- load-aware triggering ----------------------------------------------------

class ResizeTrigger:
    """Fires a resize off the live per-shard gauges.

    Attached to a :class:`~repro.obs.timeseries.MetricsSampler`, it
    evaluates every tick: when mean keys per shard crosses
    ``keys_per_shard`` or the summed ``hatkv.shard<i>.{get,put}`` op rate
    per shard crosses ``ops_per_shard`` (ops/s), it calls ``fire(target)``
    exactly once.  ``phase`` restricts evaluation to one harness phase
    (e.g. only trigger mid-MEASUREMENT); by default ``fire`` starts
    ``cluster.resize(target)`` as a detached process.
    """

    _OPS = ("get", "put")

    def __init__(self, cluster, target_shards: int, *,
                 keys_per_shard: Optional[float] = None,
                 ops_per_shard: Optional[float] = None,
                 phase: Optional[str] = None,
                 fire: Optional[Callable[[int], object]] = None):
        if keys_per_shard is None and ops_per_shard is None:
            raise ValueError("need keys_per_shard and/or ops_per_shard")
        self.cluster = cluster
        self.target_shards = target_shards
        self.keys_per_shard = keys_per_shard
        self.ops_per_shard = ops_per_shard
        self.phase = phase
        self.fired = False
        self.fired_at: Optional[float] = None
        self._fire = fire if fire is not None else \
            (lambda n: cluster.start_resize(n))

    def attach(self, sampler) -> "ResizeTrigger":
        sampler.on_sample.append(self._on_sample)
        return self

    def _on_sample(self, t: float, metrics: Dict[str, float],
                   tags: Dict[str, object]) -> None:
        if self.fired or self.cluster.migration is not None:
            return
        if self.cluster.n_shards >= self.target_shards:
            return
        if self.phase is not None and tags.get("phase") != self.phase:
            return
        n = self.cluster.n_shards
        hot = False
        if self.keys_per_shard is not None:
            keys = [metrics.get(f"hatkv.keys.shard{i}") for i in range(n)]
            if all(k is not None for k in keys) and \
                    sum(keys) / n >= self.keys_per_shard:    # type: ignore
                hot = True
        if not hot and self.ops_per_shard is not None:
            rate = sum(metrics.get(f"hatkv.shard{i}.{op}.rate", 0.0)
                       for i in range(n) for op in self._OPS)
            if rate / n >= self.ops_per_shard:
                hot = True
        if hot:
            self.fired = True
            self.fired_at = t
            self._fire(self.target_shards)
