"""HatKV client helper."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.engine import ServicePlan
from repro.core.hints import cacheable_hint, resolve_hints
from repro.core.runtime import AsyncCaller, hatrpc_connect
from repro.hatkv.cache import (HIT_COST, HotKeyCache, cache_hit_result,
                               trace_cache_hit)
from repro.hatkv.server import BASE_SID, SERVICE

__all__ = ["IDEMPOTENT_FUNCTIONS", "KVClient", "cache_for", "connect_hatkv",
           "multi_delete", "multi_get", "multi_put"]

#: KVService functions that are safe to re-send after a transport failure:
#: the read set.  Put/MultiPut are deliberately absent -- a lost-ACK retry
#: could double-apply a write, so the engine refuses to blind-retry them
#: (the application must re-issue under a fresh seqid if it wants
#: at-least-once writes).
IDEMPOTENT_FUNCTIONS = ("Get", "MultiGet", "Scan")


def connect_hatkv(node, server_node, gen_module,
                  concurrency: Optional[int] = None,
                  plan: Optional[ServicePlan] = None,
                  base_service_id: int = BASE_SID,
                  deadline: Optional[float] = None,
                  retry_policy=None, rng=None,
                  pipeline: bool = False, trace_attrs=None,
                  tunable: bool = False, tuner=None):
    """Coroutine: a connected KVService stub.

    All stub methods are coroutines: ``value = yield from stub.Get(key)``.
    The read functions are pre-registered idempotent, so the engine may
    transparently retry / fail them over under injected faults; writes are
    never blind-retried.  ``pipeline=True`` (matched by the server) enables
    the batched helpers :func:`multi_get` / :func:`multi_put`, which
    overlap the per-key round trips under the channel's in-flight window.
    """
    stub = yield from hatrpc_connect(node, server_node, gen_module, SERVICE,
                                     base_service_id=base_service_id,
                                     concurrency=concurrency, plan=plan,
                                     deadline=deadline,
                                     retry_policy=retry_policy,
                                     idempotent=IDEMPOTENT_FUNCTIONS,
                                     rng=rng, pipeline=pipeline,
                                     trace_attrs=trace_attrs,
                                     tunable=tunable, tuner=tuner)
    return stub


def _caller_of(stub) -> AsyncCaller:
    client = getattr(stub, "_hatrpc", None)
    if client is None:
        raise RuntimeError("stub was not built by connect_hatkv / "
                           "hatrpc_connect (no _hatrpc client attached)")
    return client.async_caller()


def multi_get(stub, keys: Sequence[bytes]):
    """Coroutine: the values for ``keys``, fetched as one pipelined batch.

    Unlike the server-side ``MultiGet`` (one big request), this issues one
    ``Get`` per key under the channel's in-flight window -- the client-side
    batching the engine's ``call_many`` provides.  Missing keys come back
    as ``b""`` (flattened from Get's ``GetResult.found`` flag, matching
    the MultiGet wire convention).
    """
    results = yield from _caller_of(stub).call_many(
        [("Get", key) for key in keys])
    return [r.value if r.found else b"" for r in results]


def multi_put(stub, keys: Sequence[bytes], values: Sequence[bytes]):
    """Coroutine: store ``values`` under ``keys`` as one pipelined batch."""
    if len(keys) != len(values):
        raise ValueError("keys/values length mismatch")
    return _caller_of(stub).call_many(
        [("Put", k, v) for k, v in zip(keys, values)])


def multi_delete(stub, keys: Sequence[bytes]):
    """Coroutine: remove ``keys`` as one pipelined batch (one ``Delete``
    per key under the channel window).  The migration driver uses this to
    propagate deletions that landed while a range's snapshot streamed."""
    return _caller_of(stub).call_many([("Delete", k) for k in keys])


def cache_for(node, gen_module, capacity: int = 4096
              ) -> Optional[HotKeyCache]:
    """A :class:`HotKeyCache` sized from the gen module's cacheable hint
    (client-side resolution for Get), or None when the hint is absent."""
    hint_map = gen_module.SERVICE_HINTS.get(SERVICE, {})
    cc = cacheable_hint(resolve_hints(
        hint_map.get("service", {}),
        hint_map.get("functions", {}).get("Get"), "client"))
    if cc is None:
        return None
    return HotKeyCache(node.sim, cc.ttl, hot_promote=cc.hot_promote,
                       capacity=capacity)


class KVClient:
    """Cache-aware KVService client for one server.

    Wraps a connected stub: ``Get`` (and the batched ``multi_get``)
    consult the :class:`HotKeyCache` before any RPC, writes invalidate,
    and misses on promoted hot keys ride the plan's one-sided hot-read
    channel.  With ``cache=None`` (service not marked cacheable) every
    method delegates straight to the stub -- the call flow is untouched.
    """

    def __init__(self, stub, cache: Optional[HotKeyCache] = None):
        self._stub = stub
        self.cache = cache
        self._client = stub._hatrpc
        self._engine = self._client.engine
        self._result_cls = self._client.gen.GetResult
        self._caller = self._client.async_caller()
        self._hot = self._engine.hot_read_channel() if cache is not None \
            else None

    def _serve_hit(self, entry):
        yield self._engine.node.compute(HIT_COST)
        trace_cache_hit(self._engine, "Get", entry)
        return cache_hit_result(self._result_cls, entry)

    def _get_miss(self, key):
        """Coroutine: one Get over the wire, hot-read steered when the
        key is promoted AND the RPC window is saturated (the one-sided
        read costs more trips, so it only pays when it relieves a
        congested request channel); the reply feeds the cache."""
        issued = self._engine.node.sim.now
        if self._hot is not None and self.cache.promoted(key) \
                and self._engine.channel_saturated("Get"):
            self.cache.count_hot_read()
            h = yield from self._caller.call_async("Get", key,
                                                   channel=self._hot)
            r = yield from h.wait()
        else:
            r = yield from self._stub.Get(key)
        self.cache.admit(key, r, issued=issued)
        return r

    def Get(self, key):
        if self.cache is None:
            return (yield from self._stub.Get(key))
        entry = self.cache.lookup(key)
        if entry is not None:
            return (yield from self._serve_hit(entry))
        return (yield from self._get_miss(key))

    def Put(self, key, value):
        try:
            return (yield from self._stub.Put(key, value))
        finally:
            if self.cache is not None:
                self.cache.invalidate(key)

    def Delete(self, key):
        try:
            return (yield from self._stub.Delete(key))
        finally:
            if self.cache is not None:
                self.cache.invalidate(key)

    def MultiGet(self, keys):
        """Coroutine: server-side MultiGet with cached keys served
        locally (the big-batch replies carry no versions, so misses are
        not admitted here)."""
        if self.cache is None:
            return (yield from self._stub.MultiGet(keys))
        out: list = [None] * len(keys)
        miss_idx = []
        for i, key in enumerate(keys):
            entry = self.cache.lookup(key)
            if entry is not None:
                yield self._engine.node.compute(HIT_COST)
                trace_cache_hit(self._engine, "MultiGet", entry)
                out[i] = entry.value if entry.found else b""
            else:
                miss_idx.append(i)
        if miss_idx:
            values = yield from self._stub.MultiGet(
                [keys[i] for i in miss_idx])
            for i, v in zip(miss_idx, values):
                out[i] = v
        return out

    def MultiPut(self, keys, values):
        try:
            return (yield from self._stub.MultiPut(keys, values))
        finally:
            if self.cache is not None:
                for key in keys:
                    self.cache.invalidate(key)

    def Scan(self, start_key, count):
        return (yield from self._stub.Scan(start_key, count))

    def multi_get(self, keys: Sequence[bytes]):
        """Coroutine: per-key pipelined reads -- cache hits served
        locally, misses overlapped under the channel window (promoted
        keys one-sided), replies admitted."""
        if self.cache is None:
            return (yield from multi_get(self._stub, keys))
        out: list = [None] * len(keys)
        pending = []
        for i, key in enumerate(keys):
            entry = self.cache.lookup(key)
            if entry is not None:
                yield self._engine.node.compute(HIT_COST)
                trace_cache_hit(self._engine, "Get", entry)
                out[i] = entry.value if entry.found else b""
            else:
                chan = None
                if self._hot is not None and self.cache.promoted(key) \
                        and self._engine.channel_saturated("Get"):
                    self.cache.count_hot_read()
                    chan = self._hot
                issued = self._engine.node.sim.now
                h = yield from self._caller.call_async("Get", key,
                                                       channel=chan)
                pending.append((i, key, h, issued))
        for i, key, h, issued in pending:
            r = yield from h.wait()
            self.cache.admit(key, r, issued=issued)
            out[i] = r.value if r.found else b""
        return out

    def multi_put(self, keys: Sequence[bytes], values: Sequence[bytes]):
        try:
            return (yield from multi_put(self._stub, keys, values))
        finally:
            if self.cache is not None:
                for key in keys:
                    self.cache.invalidate(key)
