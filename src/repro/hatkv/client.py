"""HatKV client helper."""

from __future__ import annotations

from typing import Optional

from repro.core.engine import ServicePlan
from repro.core.runtime import hatrpc_connect
from repro.hatkv.server import BASE_SID, SERVICE

__all__ = ["connect_hatkv"]


def connect_hatkv(node, server_node, gen_module,
                  concurrency: Optional[int] = None,
                  plan: Optional[ServicePlan] = None,
                  base_service_id: int = BASE_SID):
    """Coroutine: a connected KVService stub.

    All stub methods are coroutines: ``value = yield from stub.Get(key)``.
    """
    stub = yield from hatrpc_connect(node, server_node, gen_module, SERVICE,
                                     base_service_id=base_service_id,
                                     concurrency=concurrency, plan=plan)
    return stub
