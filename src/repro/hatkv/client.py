"""HatKV client helper."""

from __future__ import annotations

from typing import Optional

from repro.core.engine import ServicePlan
from repro.core.runtime import hatrpc_connect
from repro.hatkv.server import BASE_SID, SERVICE

__all__ = ["IDEMPOTENT_FUNCTIONS", "connect_hatkv"]

#: KVService functions that are safe to re-send after a transport failure:
#: the read set.  Put/MultiPut are deliberately absent -- a lost-ACK retry
#: could double-apply a write, so the engine refuses to blind-retry them
#: (the application must re-issue under a fresh seqid if it wants
#: at-least-once writes).
IDEMPOTENT_FUNCTIONS = ("Get", "MultiGet", "Scan")


def connect_hatkv(node, server_node, gen_module,
                  concurrency: Optional[int] = None,
                  plan: Optional[ServicePlan] = None,
                  base_service_id: int = BASE_SID,
                  deadline: Optional[float] = None,
                  retry_policy=None, rng=None):
    """Coroutine: a connected KVService stub.

    All stub methods are coroutines: ``value = yield from stub.Get(key)``.
    The read functions are pre-registered idempotent, so the engine may
    transparently retry / fail them over under injected faults; writes are
    never blind-retried.
    """
    stub = yield from hatrpc_connect(node, server_node, gen_module, SERVICE,
                                     base_service_id=base_service_id,
                                     concurrency=concurrency, plan=plan,
                                     deadline=deadline,
                                     retry_policy=retry_policy,
                                     idempotent=IDEMPOTENT_FUNCTIONS,
                                     rng=rng)
    return stub
