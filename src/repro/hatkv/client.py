"""HatKV client helper."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.engine import ServicePlan
from repro.core.runtime import AsyncCaller, hatrpc_connect
from repro.hatkv.server import BASE_SID, SERVICE

__all__ = ["IDEMPOTENT_FUNCTIONS", "connect_hatkv", "multi_get",
           "multi_put"]

#: KVService functions that are safe to re-send after a transport failure:
#: the read set.  Put/MultiPut are deliberately absent -- a lost-ACK retry
#: could double-apply a write, so the engine refuses to blind-retry them
#: (the application must re-issue under a fresh seqid if it wants
#: at-least-once writes).
IDEMPOTENT_FUNCTIONS = ("Get", "MultiGet", "Scan")


def connect_hatkv(node, server_node, gen_module,
                  concurrency: Optional[int] = None,
                  plan: Optional[ServicePlan] = None,
                  base_service_id: int = BASE_SID,
                  deadline: Optional[float] = None,
                  retry_policy=None, rng=None,
                  pipeline: bool = False, trace_attrs=None,
                  tunable: bool = False, tuner=None):
    """Coroutine: a connected KVService stub.

    All stub methods are coroutines: ``value = yield from stub.Get(key)``.
    The read functions are pre-registered idempotent, so the engine may
    transparently retry / fail them over under injected faults; writes are
    never blind-retried.  ``pipeline=True`` (matched by the server) enables
    the batched helpers :func:`multi_get` / :func:`multi_put`, which
    overlap the per-key round trips under the channel's in-flight window.
    """
    stub = yield from hatrpc_connect(node, server_node, gen_module, SERVICE,
                                     base_service_id=base_service_id,
                                     concurrency=concurrency, plan=plan,
                                     deadline=deadline,
                                     retry_policy=retry_policy,
                                     idempotent=IDEMPOTENT_FUNCTIONS,
                                     rng=rng, pipeline=pipeline,
                                     trace_attrs=trace_attrs,
                                     tunable=tunable, tuner=tuner)
    return stub


def _caller_of(stub) -> AsyncCaller:
    client = getattr(stub, "_hatrpc", None)
    if client is None:
        raise RuntimeError("stub was not built by connect_hatkv / "
                           "hatrpc_connect (no _hatrpc client attached)")
    return client.async_caller()


def multi_get(stub, keys: Sequence[bytes]):
    """Coroutine: the values for ``keys``, fetched as one pipelined batch.

    Unlike the server-side ``MultiGet`` (one big request), this issues one
    ``Get`` per key under the channel's in-flight window -- the client-side
    batching the engine's ``call_many`` provides.  Missing keys come back
    as ``b""`` (flattened from Get's ``GetResult.found`` flag, matching
    the MultiGet wire convention).
    """
    results = yield from _caller_of(stub).call_many(
        [("Get", key) for key in keys])
    return [r.value if r.found else b"" for r in results]


def multi_put(stub, keys: Sequence[bytes], values: Sequence[bytes]):
    """Coroutine: store ``values`` under ``keys`` as one pipelined batch."""
    if len(keys) != len(values):
        raise ValueError("keys/values length mismatch")
    return _caller_of(stub).call_many(
        [("Put", k, v) for k, v in zip(keys, values)])
