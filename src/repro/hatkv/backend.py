"""LMDB backend adapter: simulated costs + hint-driven tuning.

The paper stores LMDB's lock and data files in tmpfs with a 32 GB map
(Section 5.4), so backend cost is CPU + memory, not disk.  The adapter
charges per-operation simulated time derived from the live tree shape:

* a lookup touches ``depth`` pages (bisect within cache-resident pages);
* a write additionally path-copies ``depth`` pages (LMDB's copy-on-write);
* values are copied once between LMDB and the RPC layer;
* commits pay a sync barrier priced by the environment's sync mode.

Hint-driven tuning (Section 4.4): ``max_readers`` is set from the
concurrency hint, and the sync/commit strategy follows the perf goal of the
protocol chosen for the writing functions -- latency keeps NOSYNC immediate
commits, throughput batches commits (group commit), res_util keeps SYNC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.hints import ResolvedHints
from repro.lmdb import Environment, SyncMode
from repro.sim.cluster import Node
from repro.sim.sync import Resource
from repro.sim.units import GiB, us

__all__ = ["BackendCosts", "LmdbBackend"]


@dataclass(frozen=True)
class BackendCosts:
    """Per-operation CPU cost constants (tmpfs-resident LMDB)."""

    page_touch: float = 0.08 * us      # one B+Tree page visit (bisect, cached)
    page_copy: float = 0.10 * us       # COW page copy on the write path
    value_copy_rate: float = 12e9      # bytes/s for value in/out copies
    commit_nosync: float = 0.2 * us    # root-pointer swap
    commit_sync: float = 5.0 * us      # + msync barrier into tmpfs
    txn_begin: float = 0.1 * us


class LmdbBackend:
    """A simulated-time facade over one LMDB environment on one node."""

    def __init__(self, node: Node, map_size: int = 32 * GiB,
                 costs: BackendCosts | None = None):
        self.node = node
        self.costs = costs or BackendCosts()
        self.env = Environment(map_size=map_size, sync_mode=SyncMode.NOSYNC)
        self.env.open_db("main")
        # LMDB's writer mutex, realized on the simulated clock so handler
        # coroutines queue instead of erroring.
        self._writer = Resource(node.sim, 1)
        # Writer-queue depth probe: pipelined clients can now stack many
        # writes behind the mutex on ONE connection, so the queue is worth
        # watching (zero-cost when obs is disabled).
        reg = obs.current()
        if reg is not None:
            reg.probe("hatkv.writer_queue",
                      lambda: {"depth": len(self._writer._waiters),
                               "in_use": self._writer.in_use})
        self._group_commit = False
        self._pending_since_commit = 0
        self.group_commit_batch = 8
        self.reads = 0
        self.writes = 0
        #: write transactions rolled back because the handler died mid-RPC
        #: (LMDB's ``with env.begin(write=True)`` aborts on exception)
        self.aborts = 0

    # -- hint-driven tuning (S4.4) -----------------------------------------------
    def apply_hints(self, hints: ResolvedHints) -> None:
        """Tune the backend from the service's resolved (server) hints."""
        self.env.max_readers = max(hints.concurrency, 1)
        if hints.perf_goal == "throughput":
            self._group_commit = True
            self.env.sync_mode = SyncMode.NOSYNC
        elif hints.perf_goal == "latency":
            self._group_commit = False
            self.env.sync_mode = SyncMode.NOSYNC
        else:  # res_util keeps durability
            self._group_commit = False
            self.env.sync_mode = SyncMode.SYNC

    # -- cost helpers -----------------------------------------------------------------
    def _depth(self) -> int:
        return self.env.stat().depth

    def _charge(self, cpu_seconds: float):
        yield self.node.compute(cpu_seconds)

    def _commit_cost(self) -> float:
        if self.env.sync_mode is SyncMode.NOSYNC:
            base = self.costs.commit_nosync
        else:
            base = self.costs.commit_sync
        if self._group_commit:
            # Amortized: one barrier per batch of commits.
            return base / self.group_commit_batch + self.costs.commit_nosync
        return base

    def _begin_read(self):
        """Coroutine: begin a read txn, waiting out a full reader table.

        An untuned environment (stock max_readers=126) can saturate under
        128+ concurrent handlers -- part of why the concurrency hint
        matters for the backend (Section 4.4).
        """
        from repro.lmdb import ReadersFullError
        while True:
            try:
                return self.env.begin()
            except ReadersFullError:
                yield self.node.sim.timeout(2 * us)

    # -- operations (coroutines) ----------------------------------------------------------
    # Public ops are thin wrappers that bracket the real coroutine into a
    # "backend" trace stage when the serving process carries a trace
    # context (set by the protocol serve loop); with tracing off the
    # wrapper returns the inner generator untouched.
    def _traced(self, op: str, gen, nbytes: int = 0):
        ap = self.node.sim.active_process
        ctx = ap.trace_ctx if ap is not None else None
        if ctx is None:
            return gen
        return self._traced_run(op, gen, ctx, nbytes)

    def _traced_run(self, op: str, gen, ctx, nbytes: int):
        t0 = self.node.sim.now
        result = yield from gen
        ctx.stage("backend", t0, self.node.sim.now, op=op, nbytes=nbytes)
        return result

    def get(self, key: bytes):
        return self._traced("get", self._get(key))

    def multi_get(self, keys):
        return self._traced("multi_get", self._multi_get(keys))

    def scan(self, start_key: bytes, count: int):
        return self._traced("scan", self._scan(start_key, count))

    def put(self, key: bytes, value: bytes):
        return self._traced("put", self._put(key, value),
                            nbytes=len(value))

    def delete(self, key: bytes):
        return self._traced("delete", self._delete(key))

    def multi_put(self, keys, values):
        return self._traced("multi_put", self._multi_put(keys, values),
                            nbytes=sum(len(v) for v in values))

    def _get(self, key: bytes):
        c = self.costs
        yield from self._charge(c.txn_begin + self._depth() * c.page_touch)
        txn = yield from self._begin_read()
        try:
            value = txn.get(key)
        finally:
            txn.commit()
        if value is not None:
            yield from self._charge(len(value) / c.value_copy_rate)
        self.reads += 1
        return value

    def _multi_get(self, keys):
        c = self.costs
        yield from self._charge(c.txn_begin)
        out = []
        txn = yield from self._begin_read()
        try:
            for key in keys:
                yield from self._charge(self._depth() * c.page_touch)
                out.append(txn.get(key))
        finally:
            txn.commit()
        total = sum(len(v) for v in out if v is not None)
        if total:
            yield from self._charge(total / c.value_copy_rate)
        self.reads += len(keys)
        return out

    def _scan(self, start_key: bytes, count: int):
        """Coroutine: up to ``count`` (key, value) pairs from start_key on."""
        if count < 0:
            raise ValueError("negative scan count")
        c = self.costs
        yield from self._charge(c.txn_begin + self._depth() * c.page_touch)
        txn = yield from self._begin_read()
        try:
            rows = txn.cursor().scan(lo=start_key, limit=count)
        finally:
            txn.commit()
        total = sum(len(k) + len(v) for k, v in rows)
        # Sequential leaf walk: one page touch per few entries + copy out.
        yield from self._charge(len(rows) * c.page_touch / 4
                                + total / c.value_copy_rate)
        self.reads += len(rows)
        return rows

    def _put(self, key: bytes, value: bytes):
        c = self.costs
        yield self._writer.acquire()
        try:
            depth = self._depth()
            yield from self._charge(
                c.txn_begin + depth * (c.page_touch + c.page_copy)
                + len(value) / c.value_copy_rate)
            with self.env.begin(write=True) as txn:
                txn.put(key, value)
            yield from self._charge(self._commit_cost())
        except BaseException:
            # A fault mid-RPC (deadline interrupt, dead connection) lands
            # here before commit: the context manager rolled the txn back.
            self.aborts += 1
            raise
        finally:
            self._writer.release()
        self.writes += 1

    def _delete(self, key: bytes):
        """Coroutine: remove one key; returns whether it existed."""
        c = self.costs
        yield self._writer.acquire()
        try:
            depth = self._depth()
            yield from self._charge(
                c.txn_begin + depth * (c.page_touch + c.page_copy))
            with self.env.begin(write=True) as txn:
                found = txn.delete(key)
            yield from self._charge(self._commit_cost())
        except BaseException:
            self.aborts += 1
            raise
        finally:
            self._writer.release()
        self.writes += 1
        return found

    def _multi_put(self, keys, values):
        if len(keys) != len(values):
            raise ValueError("keys/values length mismatch")
        c = self.costs
        yield self._writer.acquire()
        try:
            # Batched writes sort the keys and walk with a cursor, so the
            # descent + path copy-on-write amortizes over the batch: one
            # full descent plus a page copy and value copy per entry.
            depth = self._depth()
            total_values = sum(len(v) for v in values)
            yield from self._charge(
                c.txn_begin + depth * (c.page_touch + c.page_copy)
                + len(keys) * c.page_copy
                + total_values / c.value_copy_rate)
            with self.env.begin(write=True) as txn:
                for key, value in sorted(zip(keys, values)):
                    txn.put(key, value)
            yield from self._charge(self._commit_cost())
        except BaseException:
            self.aborts += 1
            raise
        finally:
            self._writer.release()
        self.writes += len(keys)
