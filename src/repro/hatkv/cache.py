"""Client-side hot-key cache: the ``cacheable`` hint's client half.

Zipfian traffic concentrates on a tiny hot set, yet every Get pays a full
RPC.  A read function marked ``cacheable(ttl, hot_promote)`` lets the
server grant per-key leases on its replies (see
:class:`repro.hatkv.server.LeaseTable` for the server half and the safety
argument); the client may then serve the key locally until the lease
expires or a newer version is observed.  :class:`HotKeyCache` holds those
leased entries -- bounded, LRU-evicted, with per-key access frequencies so
keys read at least ``hot_promote`` times get their *misses* steered onto
the plan's one-sided hot-read channel (Pilaf-style READ instead of full
RPC) by :class:`repro.hatkv.client.KVClient` / the shard router.

Metrics (shared registry, like the ``hatkv.<op>`` counters):

* ``hatkv.cache.hits`` / ``hatkv.cache.misses`` -- lookup outcomes;
* ``hatkv.cache.invalidations`` -- entries dropped by writes, observed
  newer versions, failover, reroute, or migration cutover;
* ``hatkv.cache.lease_expiries`` -- entries that aged out on the sim
  clock before being served;
* ``hatkv.cache.hot_reads`` -- promoted misses sent one-sided.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro import obs
from repro.sim.units import us

__all__ = ["CacheEntry", "HotKeyCache", "cache_hit_result", "trace_cache_hit"]

#: simulated client CPU per served hit (hash probe + value copy); also
#: keeps closed-loop clients from spinning in zero simulated time.
HIT_COST = 0.15 * us


@dataclass
class CacheEntry:
    found: bool
    value: bytes
    version: int
    expiry: float               # absolute sim time the lease runs out


class HotKeyCache:
    """Bounded per-client cache of leased Get replies.

    ``lookup`` serves unexpired entries (LRU order maintained);
    ``admit`` stores a reply iff the server granted a lease; every write
    or suspicious read path calls ``invalidate`` -- correctness never
    depends on eviction.
    """

    def __init__(self, sim, ttl: float, hot_promote: int = 0,
                 capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.ttl = ttl
        self.hot_promote = hot_promote
        self.capacity = capacity
        self._entries: "OrderedDict[bytes, CacheEntry]" = OrderedDict()
        self._freq: Dict[bytes, int] = {}
        self._accesses = 0
        reg = obs.current()
        if reg is not None:
            self._m_hits = reg.counter("hatkv.cache.hits")
            self._m_misses = reg.counter("hatkv.cache.misses")
            self._m_inval = reg.counter("hatkv.cache.invalidations")
            self._m_expiries = reg.counter("hatkv.cache.lease_expiries")
            self._m_hot = reg.counter("hatkv.cache.hot_reads")
        else:
            self._m_hits = self._m_misses = None
            self._m_inval = self._m_expiries = self._m_hot = None

    def __len__(self) -> int:
        return len(self._entries)

    # -- frequency promotion -------------------------------------------------
    def _touch(self, key: bytes) -> None:
        self._freq[key] = self._freq.get(key, 0) + 1
        self._accesses += 1
        if self._accesses >= 8 * self.capacity:
            # Periodic halving keeps the sketch bounded and recency-biased
            # (a key that stopped being hot decays out within a few rounds).
            self._accesses = 0
            self._freq = {k: n // 2 for k, n in self._freq.items() if n > 1}

    def promoted(self, key: bytes) -> bool:
        """True when misses on ``key`` should ride the hot-read channel."""
        return (self.hot_promote >= 1
                and self._freq.get(key, 0) >= self.hot_promote)

    def count_hot_read(self) -> None:
        if self._m_hot is not None:
            self._m_hot.inc()

    # -- the read path -------------------------------------------------------
    def lookup(self, key: bytes) -> Optional[CacheEntry]:
        """The unexpired entry for ``key``, or None (counted as a miss)."""
        self._touch(key)
        entry = self._entries.get(key)
        if entry is not None and entry.expiry <= self.sim.now:
            del self._entries[key]
            if self._m_expiries is not None:
                self._m_expiries.inc()
            entry = None
        if entry is None:
            if self._m_misses is not None:
                self._m_misses.inc()
            return None
        self._entries.move_to_end(key)
        if self._m_hits is not None:
            self._m_hits.inc()
        return entry

    def admit(self, key: bytes, result,
              issued: Optional[float] = None) -> None:
        """Absorb one Get reply: adopt its lease, invalidate on newer
        versions.  Replies without a lease grant (lease 0 / None -- a
        writer was in flight, or the service is not cacheable) only
        invalidate stale state and are never stored.

        ``issued`` is when the Get *request* was posted.  The lease is
        counted from there, not from reply arrival: the server's write
        barrier waits until grant-time + lease, and the request was
        posted at or before the grant, so issue-relative expiry can only
        undershoot the server's horizon.  Reply-relative expiry would
        overshoot it by the response flight time -- a window where a hit
        could serve a value an already-acknowledged Put replaced."""
        version = getattr(result, "version", None)
        lease = getattr(result, "lease", None)
        if version is None:
            return
        cached = self._entries.get(key)
        if cached is not None and cached.version < version:
            self.invalidate(key)
            cached = None
        if not lease:
            return
        if cached is not None and cached.version >= version:
            return
        expiry = (self.sim.now if issued is None else issued) \
            + min(lease, self.ttl)
        if expiry <= self.sim.now:
            return                      # already stale-by-flight: useless
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[key] = CacheEntry(
            found=result.found, value=result.value, version=version,
            expiry=expiry)

    # -- invalidation --------------------------------------------------------
    def invalidate(self, key: bytes) -> None:
        if self._entries.pop(key, None) is not None \
                and self._m_inval is not None:
            self._m_inval.inc()

    def invalidate_match(self, pred) -> int:
        """Drop every entry whose key satisfies ``pred`` and return the
        count.  The scoped topology-change invalidation: a single shard's
        reroute or one migrated range taints only the keys it owns, so the
        rest of the hot set keeps serving."""
        doomed = [k for k in self._entries if pred(k)]
        for k in doomed:
            del self._entries[k]
        if doomed and self._m_inval is not None:
            self._m_inval.inc(len(doomed))
        return len(doomed)

    def clear(self) -> None:
        """Drop everything (router teardown: provenance of every entry is
        suspect, so none may be served)."""
        n = len(self._entries)
        self._entries.clear()
        if n and self._m_inval is not None:
            self._m_inval.inc(n)


def cache_hit_result(result_cls, entry: CacheEntry):
    """A GetResult served from cache (lease 0: not re-cacheable)."""
    return result_cls(found=entry.found, value=entry.value,
                      version=entry.version, lease=0.0)


def trace_cache_hit(engine, fn_name: str, entry: CacheEntry) -> None:
    """Mirror a cache-served call into the distributed trace: the same
    ``hint_select`` stage the engine emits, with a cache rationale, so
    stage attribution can separate served-local from on-the-wire calls."""
    trc = engine._trc
    if trc is None:
        return
    sim = engine.node.sim
    act = trc.start_call(
        fn_name, engine.node.name, lambda: sim.now,
        attrs={"cache": "hit", **engine.trace_attrs})
    act.stage("hint_select", sim.now, sim.now, channel=-1,
              rationale="client hot-key cache hit (leased)", cache="hit")
    act.finish(sim.now, status="ok", resp_bytes=len(entry.value))
